/**
 * @file
 * Wire-level trace of one SIP call through the proxy over TCP: every
 * message each phone sends and receives is printed with its simulated
 * timestamp, showing the §2 invite and bye transactions end to end —
 * REGISTER/200, INVITE/100/180/200, ACK, BYE/200.
 */

#include <cstdio>

#include "core/proxy.hh"
#include "net/network.hh"
#include "phone/phone.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/trace.hh"

int
main()
{
    using namespace siprox;

    sim::trace::setSink(sim::trace::stdoutSink());

    sim::Simulation simulation;
    auto &server_machine = simulation.addMachine("server", 4);
    auto &client_machine = simulation.addMachine("client", 2);
    net::Network network(simulation);
    auto &server_host = network.attach(server_machine);
    auto &client_host = network.attach(client_machine);

    core::ProxyConfig cfg;
    cfg.transport = core::Transport::Tcp;
    cfg.workers = 2;
    core::Proxy proxy(server_machine, server_host, cfg);
    proxy.start();

    sim::Latch registered(2), start(1), done(1);

    phone::PhoneConfig callee_cfg;
    callee_cfg.user = "bob";
    callee_cfg.port = 16000;
    callee_cfg.transport = core::Transport::Tcp;
    callee_cfg.proxyAddr = proxy.addr();
    // Give the call a tiny bit of shape: Bob "rings" for 50 ms.
    callee_cfg.answerDelay = sim::msecs(50);
    phone::Phone bob(client_machine, client_host, callee_cfg);
    bob.startCallee(1, &registered, nullptr);

    phone::PhoneConfig caller_cfg = callee_cfg;
    caller_cfg.user = "alice";
    caller_cfg.port = 6000;
    caller_cfg.answerDelay = 0;
    phone::Phone alice(client_machine, client_host, caller_cfg);
    alice.startCaller(1, "bob", &registered, &start, &done);

    start.arrive();
    simulation.runUntil(sim::secs(10));
    proxy.requestStop();

    std::printf("\ncall %s; proxy handled %llu messages\n",
                alice.stats().callsCompleted == 1 ? "completed"
                                                  : "FAILED",
                static_cast<unsigned long long>(
                    proxy.shared().counters.messagesIn));
    return alice.stats().callsCompleted == 1 ? 0 : 1;
}

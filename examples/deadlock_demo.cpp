/**
 * @file
 * Demonstrates the §6 deadlock in OpenSER's TCP architecture: a worker
 * blocks waiting for a file-descriptor reply from the supervisor while
 * the supervisor blocks pushing a new connection into that worker's
 * full dispatch channel. Neither can make progress, every other worker
 * soon needs the supervisor too, and the whole proxy wedges.
 *
 * The demo runs the same churn-heavy workload twice: with blocking
 * IPC and a tiny dispatch buffer (wedges), then with the event-driven
 * supervisor (never blocks; completes).
 */

#include <cstdio>
#include <cstdint>

#include "core/proxy.hh"
#include "net/network.hh"
#include "phone/phone.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace {

using namespace siprox;

/** @return true if the run completed, false if it wedged. */
bool
runOnce(bool event_driven)
{
    sim::Simulation simulation;
    auto &server_machine = simulation.addMachine("server", 4);
    auto &client_machine = simulation.addMachine("client", 4);
    net::Network network(simulation);
    auto &server_host = network.attach(server_machine);
    auto &client_host = network.attach(client_machine);

    core::ProxyConfig cfg;
    cfg.transport = core::Transport::Tcp;
    cfg.workers = 2;
    cfg.dispatchChannelCapacity = 1; // makes the race easy to hit
    cfg.eventDrivenIpc = event_driven;
    core::Proxy proxy(server_machine, server_host, cfg);
    proxy.start();

    const int pairs = 12;
    const int calls = 40;
    sim::Latch registered(2 * pairs), start(1), done(pairs);
    std::vector<std::unique_ptr<phone::Phone>> phones;
    for (int i = 0; i < pairs; ++i) {
        phone::PhoneConfig cc;
        cc.transport = core::Transport::Tcp;
        cc.proxyAddr = proxy.addr();
        cc.opsPerConn = 2; // reconnect every call: heavy accept traffic
        cc.user = "c" + std::to_string(i);
        cc.port = static_cast<std::uint16_t>(16000 + i);
        phones.push_back(std::make_unique<phone::Phone>(
            client_machine, client_host, cc));
        phones.back()->startCallee(calls, &registered, nullptr);
        cc.user = "a" + std::to_string(i);
        cc.port = static_cast<std::uint16_t>(6000 + i);
        phones.push_back(std::make_unique<phone::Phone>(
            client_machine, client_host, cc));
        phones.back()->startCaller(calls, "c" + std::to_string(i),
                                   &registered, &start, &done);
    }
    start.arrive();

    // Run in slices; declare a wedge when the proxy stops making
    // progress while calls are still outstanding.
    std::uint64_t last_messages = 0;
    int stalled_slices = 0;
    for (int slice = 0; slice < 300; ++slice) {
        simulation.runFor(sim::msecs(200));
        if (done.remaining() == 0) {
            proxy.requestStop();
            std::printf("  completed all calls at t=%.2fs\n",
                        sim::toSecs(simulation.now()));
            return true;
        }
        std::uint64_t messages = proxy.shared().counters.messagesIn;
        stalled_slices = messages == last_messages
            ? stalled_slices + 1
            : 0;
        last_messages = messages;
        if (stalled_slices >= 10) {
            std::printf("  WEDGED at t=%.2fs after %llu messages; "
                        "blocked processes:\n",
                        sim::toSecs(simulation.now()),
                        static_cast<unsigned long long>(messages));
            for (const auto &line : simulation.blockedReport()) {
                if (line.find("server/") == 0)
                    std::printf("    %s\n", line.c_str());
            }
            proxy.requestStop();
            return false;
        }
    }
    proxy.requestStop();
    return false;
}

} // namespace

int
main()
{
    std::printf("=== blocking IPC (OpenSER as shipped), dispatch "
                "buffer of 1 ===\n");
    bool blocking_completed = runOnce(false);

    std::printf("\n=== event-driven IPC (the fix: never write unless "
                "poll says writable) ===\n");
    bool event_driven_completed = runOnce(true);

    std::printf("\nblocking IPC:     %s\n",
                blocking_completed ? "completed (lucky schedule)"
                                   : "deadlocked");
    std::printf("event-driven IPC: %s\n",
                event_driven_completed ? "completed" : "deadlocked");
    return event_driven_completed ? 0 : 1;
}

/**
 * @file
 * A one-minute version of the paper's headline experiment: the same
 * call workload over UDP, baseline TCP, TCP with both fixes, and
 * SCTP, printed as a throughput table. (The full figure benches in
 * bench/ run the complete grids.)
 */

#include <cstdio>

#include "stats/table.hh"
#include "workload/scenario.hh"

int
main()
{
    using namespace siprox;
    using namespace siprox::workload;

    struct Config
    {
        const char *name;
        core::Transport transport;
        bool fdCache;
        core::IdleStrategy idle;
    };
    const Config configs[] = {
        {"UDP", core::Transport::Udp, false,
         core::IdleStrategy::LinearScan},
        {"TCP (stock OpenSER)", core::Transport::Tcp, false,
         core::IdleStrategy::LinearScan},
        {"TCP (paper's fixes)", core::Transport::Tcp, true,
         core::IdleStrategy::PriorityQueue},
        {"SCTP", core::Transport::Sctp, false,
         core::IdleStrategy::LinearScan},
    };

    std::printf("200 phones, 100 concurrent calls, stateful proxy, "
                "4-core server\n\n");
    stats::Table table({"transport", "ops/s", "% of UDP",
                        "p50 invite latency"});
    double udp_ops = 0;
    for (const auto &config : configs) {
        Scenario sc = paperScenario(config.transport, 100, 0);
        sc.measureWindow = sim::secs(4);
        sc.proxy.fdCache = config.fdCache;
        sc.proxy.idleStrategy = config.idle;
        RunResult r = runScenario(sc);
        if (udp_ops == 0)
            udp_ops = r.opsPerSec;
        table.addRow({config.name, stats::Table::num(r.opsPerSec),
                      stats::Table::pct(r.opsPerSec / udp_ops),
                      stats::Table::num(sim::toMsecs(r.inviteP50), 2)
                          + " ms"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nThe paper's finding in one table: stock OpenSER "
                "over TCP loses most of its\nthroughput to its own "
                "architecture (fd-passing IPC and idle-scan locking),"
                "\nnot to TCP itself.\n");
    return 0;
}

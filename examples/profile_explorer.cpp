/**
 * @file
 * Interactive-ish profile explorer: run any proxy configuration from
 * the command line and print the OProfile-style simulated CPU profile,
 * proxy counters, and throughput — the §5 methodology as a tool.
 *
 * Usage:
 *   profile_explorer [udp|tcp|sctp] [clients] [opsPerConn]
 *                    [fdCache 0|1] [pq 0|1] [seconds]
 * e.g.
 *   profile_explorer tcp 500 50 1 0 10
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/table.hh"
#include "workload/scenario.hh"

int
main(int argc, char **argv)
{
    using namespace siprox;
    using namespace siprox::workload;

    const char *transport_name = argc > 1 ? argv[1] : "tcp";
    int clients = argc > 2 ? std::atoi(argv[2]) : 100;
    int ops_per_conn = argc > 3 ? std::atoi(argv[3]) : 0;
    bool fd_cache = argc > 4 && std::atoi(argv[4]) != 0;
    bool pq = argc > 5 && std::atoi(argv[5]) != 0;
    double seconds = argc > 6 ? std::atof(argv[6]) : 6.0;

    core::Transport transport = core::Transport::Tcp;
    if (std::strcmp(transport_name, "udp") == 0)
        transport = core::Transport::Udp;
    else if (std::strcmp(transport_name, "sctp") == 0)
        transport = core::Transport::Sctp;

    Scenario sc = paperScenario(transport, clients, ops_per_conn);
    sc.measureWindow = sim::secs(seconds);
    sc.proxy.fdCache = fd_cache;
    sc.proxy.idleStrategy = pq ? core::IdleStrategy::PriorityQueue
                               : core::IdleStrategy::LinearScan;

    std::printf("running %s for %.1fs (simulated)...\n",
                sc.name.c_str(), seconds);
    RunResult r = runScenario(sc);

    std::printf("\nthroughput: %.0f ops/s over %.2fs  "
                "(server %.0f%% busy, worst client %.0f%%)\n",
                r.opsPerSec, sim::toSecs(r.duration),
                100 * r.serverUtilization,
                100 * r.maxClientUtilization);
    std::printf("invite latency: p50 %.2f ms, p99 %.2f ms\n\n",
                sim::toMsecs(r.inviteP50), sim::toMsecs(r.inviteP99));

    std::printf("server CPU profile (simulated OProfile):\n%s\n",
                r.serverProfile.report(16).c_str());

    stats::Table counters({"counter", "value"});
    auto add = [&](const char *name, std::uint64_t v) {
        counters.addRow({name, std::to_string(v)});
    };
    add("messages in", r.counters.messagesIn);
    add("forwards", r.counters.forwards);
    add("local replies", r.counters.localReplies);
    add("retransmissions absorbed", r.counters.retransAbsorbed);
    add("retransmissions sent", r.counters.retransSent);
    add("fd requests", r.counters.fdRequests);
    add("fd cache hits", r.counters.fdCacheHits);
    add("connections accepted", r.counters.connsAccepted);
    add("connections destroyed", r.counters.connsDestroyed);
    add("idle scans", r.counters.idleScans);
    add("idle-scan entries visited", r.counters.idleScanVisited);
    add("phone reconnects", r.reconnects);
    add("failed calls", r.callsFailed);
    std::printf("%s", counters.render().c_str());
    return 0;
}

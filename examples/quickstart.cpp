/**
 * @file
 * Quickstart: stand up a 4-core proxy server and two phones on a
 * simulated LAN, place a few calls over UDP, and print the outcome.
 *
 * This is the smallest complete use of the public API:
 *   Simulation -> Machines -> Network -> Proxy -> Phones -> run.
 */

#include <cstdio>

#include "core/proxy.hh"
#include "net/network.hh"
#include "phone/phone.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

int
main()
{
    using namespace siprox;

    // The testbed: one 4-core server and one 2-core client machine.
    sim::Simulation simulation;
    auto &server_machine = simulation.addMachine("server", 4);
    auto &client_machine = simulation.addMachine("client", 2);
    net::Network network(simulation);
    auto &server_host = network.attach(server_machine);
    auto &client_host = network.attach(client_machine);

    // A stateful UDP proxy with 4 worker processes on port 5060.
    core::ProxyConfig cfg;
    cfg.transport = core::Transport::Udp;
    cfg.workers = 4;
    core::Proxy proxy(server_machine, server_host, cfg);
    proxy.start();

    // One caller and one callee. Phones register, then the caller
    // places calls; every INVITE and BYE transaction flows through
    // the proxy.
    const int calls = 5;
    sim::Latch registered(2), start(1), done(1);

    phone::PhoneConfig callee_cfg;
    callee_cfg.user = "bob";
    callee_cfg.port = 16000;
    callee_cfg.proxyAddr = proxy.addr();
    phone::Phone bob(client_machine, client_host, callee_cfg);
    bob.startCallee(calls, &registered, nullptr);

    phone::PhoneConfig caller_cfg = callee_cfg;
    caller_cfg.user = "alice";
    caller_cfg.port = 6000;
    phone::Phone alice(client_machine, client_host, caller_cfg);
    alice.startCaller(calls, "bob", &registered, &start, &done);

    // Release the callers once everyone has registered, then run the
    // simulation until it quiesces.
    start.arrive();
    simulation.runUntil(sim::secs(30));
    proxy.requestStop();

    const auto &stats = alice.stats();
    std::printf("calls completed: %llu (failed %llu)\n",
                static_cast<unsigned long long>(stats.callsCompleted),
                static_cast<unsigned long long>(stats.callsFailed));
    std::printf("SIP transactions (invite+bye): %llu\n",
                static_cast<unsigned long long>(stats.opsCompleted));
    std::printf("median INVITE setup latency: %.2f ms\n",
                sim::toMsecs(stats.inviteLatency.percentile(0.5)));
    const auto &counters = proxy.shared().counters;
    std::printf("proxy: %llu messages in, %llu forwarded, "
                "%llu local replies\n",
                static_cast<unsigned long long>(counters.messagesIn),
                static_cast<unsigned long long>(counters.forwards),
                static_cast<unsigned long long>(counters.localReplies));
    return stats.callsCompleted == calls ? 0 : 1;
}

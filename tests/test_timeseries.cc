/**
 * @file
 * Windowed-telemetry tests: Series delta bookkeeping (Σ per-window
 * deltas == end-of-run totals, exactly), deterministic JSON/CSV
 * renderings, the explain report's attribution heuristics on
 * synthetic series, percentileMid accuracy, MetricsSnapshot::diff
 * edge cases, and end-to-end telemetry over real scenario runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json_check.hh"
#include "sim/trace.hh"
#include "stats/explain.hh"
#include "stats/histogram.hh"
#include "stats/metrics.hh"
#include "stats/timeseries.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::stats;

TEST(SeriesTest, DeltasSumToTotalsExactly)
{
    Series s("server", 0, "symmetric", "UDP");
    s.beginWindow(0);
    s.counter("msgs", 10);
    s.counter("bytes", 1000);
    s.beginWindow(sim::msecs(100));
    s.counter("msgs", 25);
    s.counter("bytes", 1000); // idle window: zero delta
    s.beginWindow(sim::msecs(200));
    s.counter("msgs", 31);
    s.counter("bytes", 4000);
    s.finish(sim::msecs(250));

    ASSERT_EQ(s.windows().size(), 3u);
    EXPECT_EQ(s.windows()[0].counterOr("msgs"), 10u);
    EXPECT_EQ(s.windows()[1].counterOr("msgs"), 15u);
    EXPECT_EQ(s.windows()[2].counterOr("msgs"), 6u);

    for (const char *name : {"msgs", "bytes"}) {
        std::uint64_t sum = 0;
        for (const Window &w : s.windows())
            sum += w.counterOr(name);
        EXPECT_EQ(sum, s.totals().at(name)) << name;
    }

    // Windows tile the run: starts strictly increase and each window
    // ends where the next begins.
    for (std::size_t i = 0; i + 1 < s.windows().size(); ++i) {
        EXPECT_LT(s.windows()[i].startNs, s.windows()[i + 1].startNs);
        EXPECT_EQ(s.windows()[i].endNs, s.windows()[i + 1].startNs);
    }
    EXPECT_EQ(s.windows().back().endNs, sim::msecs(250));
}

TEST(SeriesTest, NonMonotoneSampleClampsAndGaugeKeepsLastValue)
{
    Series s("m", -1, "", "UDP");
    s.beginWindow(0);
    s.counter("c", 10);
    s.counter("c", 7); // producer bug: clamped to zero delta
    EXPECT_EQ(s.windows()[0].counterOr("c"), 10u);
    s.gauge("g", 1.0);
    s.gauge("g", 2.5);
    EXPECT_DOUBLE_EQ(s.windows()[0].gaugeOr("g"), 2.5);
    // Absent names fall back to the caller's default.
    EXPECT_EQ(s.windows()[0].counterOr("nope", 9u), 9u);
    EXPECT_DOUBLE_EQ(s.windows()[0].gaugeOr("nope", -1.0), -1.0);
}

TimeSeries
syntheticSeries()
{
    TimeSeries ts("synthetic", 7, sim::msecs(100), "UDP");
    Series &server = ts.add("server", 0, "symmetric", "UDP");
    Series &phones = ts.add("phones", -1, "", "UDP");
    // Cumulative feeds over four 100ms windows. The server's blocking
    // wait is ipc-dominated, its recv queue saturates in window #2,
    // and the phone fleet's goodput collapses in window #3.
    const std::uint64_t ipc[] = {80, 160, 240, 320};
    const std::uint64_t lock[] = {20, 40, 60, 80};
    const std::uint64_t busy[] = {300, 600, 900, 1200};
    const std::uint64_t calls[] = {100, 200, 290, 300};
    const double occ[] = {0.2, 0.5, 0.95, 0.97};
    for (int i = 0; i < 4; ++i) {
        sim::SimTime start = sim::msecs(100) * i;
        server.beginWindow(start);
        phones.beginWindow(start);
        server.counter("wait.ipc", ipc[i]);
        server.counter("wait.lockspin", lock[i]);
        // Huge cpu/runqueue waits that the blocking rank must ignore.
        server.counter("wait.cpu", 100000u * (i + 1u));
        server.counter("wait.runqueue", 200000u * (i + 1u));
        server.counter("cpu.busyNs", busy[i]);
        server.gauge("cpu.cores", 4);
        server.gauge("occ.recvQueue", occ[i]);
        phones.counter("phone.callsCompleted", calls[i]);
    }
    server.finish(sim::msecs(400));
    phones.finish(sim::msecs(400));
    ts.setMeasurePhase(0, sim::msecs(400));
    return ts;
}

TEST(ExplainTest, RanksBlockingWaitsAndFindsSaturationBeforeCollapse)
{
    TimeSeries ts = syntheticSeries();
    ExplainReport rep = explain(ts);

    const MachineReport *server = rep.machine("server");
    ASSERT_NE(server, nullptr);
    const PhaseAttribution *measure = server->phase("measure");
    ASSERT_NE(measure, nullptr);
    // cpu/runqueue are excluded from the blocking rank by design.
    EXPECT_EQ(measure->topWait, "ipc");
    ASSERT_EQ(measure->waits.size(), 2u);
    EXPECT_NEAR(measure->waits[0].value, 0.8, 1e-9);
    EXPECT_EQ(measure->waits[1].name, "lockspin");

    // occ.recvQueue crosses 0.9 in window #2.
    EXPECT_EQ(measure->saturationWindow, 2);
    EXPECT_EQ(measure->saturationStartNs, sim::msecs(200));
    EXPECT_EQ(measure->topResource, "recvQueue");

    // Goodput peaks in window #0 (1000/s) and collapses in #3
    // (100/s < half the running peak) — after saturation onset.
    EXPECT_EQ(rep.goodputPeakWindow, 0);
    EXPECT_NEAR(rep.goodputPeakPerSec, 1000.0, 1e-6);
    EXPECT_EQ(rep.goodputCollapseWindow, 3);
    EXPECT_LT(measure->saturationStartNs, rep.goodputCollapseStartNs);

    // Renderings are deterministic and the JSON parses strictly.
    EXPECT_EQ(rep.text(), explain(ts).text());
    auto doc = testjson::parse(rep.toJson());
    EXPECT_EQ(doc->at("goodput").at("collapseWindow").number, 3.0);
}

TEST(ExplainTest, WarmupAndMeasurePhasesSplitOnMeasureStart)
{
    TimeSeries ts = syntheticSeries();
    ts.setMeasurePhase(sim::msecs(200), sim::msecs(400));
    ExplainReport rep = explain(ts);
    const MachineReport *server = rep.machine("server");
    ASSERT_NE(server, nullptr);
    ASSERT_EQ(server->phases.size(), 2u);
    EXPECT_EQ(server->phases[0].phase, "warmup");
    EXPECT_EQ(server->phases[1].phase, "measure");
    // Saturation-onset indexes are global window indexes: warmup never
    // saturates, measure does immediately (window #2).
    EXPECT_EQ(server->phases[0].saturationWindow, -1);
    EXPECT_EQ(server->phases[1].saturationWindow, 2);
}

TEST(ExplainTest, LittleCheckAcceptsLowerBoundAndFlagsDeficit)
{
    TimeSeries ts("little", 1, sim::msecs(100), "UDP");
    Series &s = ts.add("server", 0, "symmetric", "UDP");
    // λ = 100 served / 0.1s = 1000/s; W = 50ms → λ·W = 50 records.
    s.beginWindow(0);
    s.counter("served.count", 100);
    s.gauge("latency.meanMs", 50.0);
    s.gauge("txn.records", 40.0); // within tolerance (err 0.2)
    s.beginWindow(sim::msecs(100));
    s.counter("served.count", 200);
    s.gauge("latency.meanMs", 50.0);
    s.gauge("txn.records", 100.0); // L > λ·W: reclaim lag, fine
    s.beginWindow(sim::msecs(200));
    s.counter("served.count", 300);
    s.gauge("latency.meanMs", 50.0);
    s.gauge("txn.records", 5.0); // err 0.9: inconsistent
    s.finish(sim::msecs(300));

    ExplainReport rep = explain(ts);
    EXPECT_EQ(rep.little.checked, 3);
    EXPECT_EQ(rep.little.consistent, 2);
    EXPECT_NEAR(rep.little.worstError, 0.9, 1e-9);
}

TEST(ExplainTest, KneeIndexFindsMaxChordDistance)
{
    EXPECT_EQ(kneeIndex({1, 2}, {1, 2}), -1);
    EXPECT_EQ(kneeIndex({1, 1, 1}, {1, 2, 3}), -1); // degenerate x
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {10, 20, 28, 30, 30};
    EXPECT_EQ(kneeIndex(xs, ys), 2);
}

TEST(HistogramTest, PercentileMidWithinFourPercent)
{
    // Uniform 10us grid over [10us, 100ms]: the exact quantile is
    // known, and the spec pins percentileMid to <= 4% relative error
    // (log buckets with 16 sub-buckets: <= ~3.2% at the midpoint).
    LatencyHistogram h;
    const int n = 10000;
    for (int i = 1; i <= n; ++i)
        h.record(static_cast<sim::SimTime>(i) * 10'000);
    for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        double exact = static_cast<double>(
                           static_cast<int>(q * n)) // ceil on grid
            * 10'000.0;
        double got = static_cast<double>(h.percentileMid(q));
        EXPECT_NEAR(got, exact, exact * 0.04) << "q=" << q;
    }
    // The digest-pinned upper-bound percentile() is unchanged: it
    // must never report below the true quantile.
    EXPECT_GE(h.percentile(0.5), 50'000'000 / 10'000 * 10'000);
}

TEST(MetricsDiffTest, EdgeCases)
{
    MetricsRegistry reg;
    reg.setCounter("grew", 10);
    reg.setCounter("idle", 5);
    reg.setCounter("shrank", 100); // non-monotone producer
    reg.setGauge("g", 1.0);
    MetricsSnapshot base = reg.snapshot();
    reg.setCounter("grew", 17);
    reg.setCounter("shrank", 90);
    reg.setCounter("fresh", 3); // appears only after the baseline
    reg.setGauge("g", 2.0);
    MetricsSnapshot d = reg.snapshot().diff(base);

    // Moved counters keep their delta; fresh ones their full value.
    EXPECT_EQ(d.counterOr("grew"), 7u);
    EXPECT_EQ(d.counterOr("fresh"), 3u);
    // Zero and clamped-negative deltas are suppressed outright.
    EXPECT_EQ(d.counters().count("idle"), 0u);
    EXPECT_EQ(d.counters().count("shrank"), 0u);
    // A key only in the baseline never appears.
    MetricsRegistry other;
    other.setCounter("fresh", 1);
    EXPECT_EQ(other.snapshot().diff(base).counters().count("grew"),
              0u);
    // Gauges ride along with their current values.
    EXPECT_DOUBLE_EQ(d.gaugeOr("g"), 2.0);
}

workload::Scenario
smallScenario(int window_ms)
{
    workload::Scenario sc =
        workload::paperScenario(core::Transport::Tcp, 8, 0);
    sc.callsPerClient = 12;
    sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
    sc.telemetry.windowMs = window_ms;
    return sc;
}

TEST(TelemetryRunTest, DisabledByDefault)
{
    workload::Scenario sc = smallScenario(0);
    EXPECT_FALSE(sc.telemetry.enabled());
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_EQ(r.timeseries, nullptr);
}

TEST(TelemetryRunTest, SeriesAreConsistentAndDeterministic)
{
    workload::RunResult r = workload::runScenario(smallScenario(50));
    ASSERT_NE(r.timeseries, nullptr);
    const TimeSeries &ts = *r.timeseries;

    // Same seed, same scenario: byte-identical artifacts.
    workload::RunResult r2 = workload::runScenario(smallScenario(50));
    ASSERT_NE(r2.timeseries, nullptr);
    EXPECT_EQ(ts.toJson(), r2.timeseries->toJson());
    EXPECT_EQ(ts.toCsv(), r2.timeseries->toCsv());

    // Every series: windows tile the run and Σ deltas == totals.
    ASSERT_FALSE(ts.series().empty());
    for (const auto &s : ts.series()) {
        const auto &wins = s->windows();
        ASSERT_FALSE(wins.empty()) << s->machine();
        for (std::size_t i = 0; i + 1 < wins.size(); ++i) {
            EXPECT_LT(wins[i].startNs, wins[i + 1].startNs);
            EXPECT_EQ(wins[i].endNs, wins[i + 1].startNs);
        }
        for (const auto &[name, total] : s->totals()) {
            std::uint64_t sum = 0;
            for (const Window &w : wins)
                sum += w.counterOr(name);
            EXPECT_EQ(sum, total) << s->machine() << " " << name;
        }
    }

    // The telemetry totals agree exactly with the RunResult counters
    // read at the same instant.
    const Series *server = ts.find("server");
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->hop(), 0);
    EXPECT_EQ(server->arch(), "supervisor");
    EXPECT_EQ(server->totals().at("proxy.messagesIn"),
              r.counters.messagesIn);
    EXPECT_EQ(server->totals().at("proxy.forwards"),
              r.counters.forwards);
    EXPECT_EQ(server->totals().at("proxy.fdRequests"),
              r.counters.fdRequests);
    const Series *phones = ts.find("phones");
    ASSERT_NE(phones, nullptr);
    EXPECT_EQ(phones->totals().at("phone.ops"), r.ops);
    EXPECT_EQ(phones->totals().at("phone.callsCompleted"),
              r.callsCompleted);
    const Series *net = ts.find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->totals().at("net.tcpSegments"), r.net.tcpSegments);

    // Serve-latency gauges appear once the proxy served anything.
    bool saw_latency = false;
    for (const Window &w : server->windows())
        saw_latency |= w.gauges.count("latency.p95Ms") > 0;
    EXPECT_TRUE(saw_latency);

    // The exported JSON parses strictly and carries the meta block.
    auto doc = testjson::parse(ts.toJson());
    EXPECT_EQ(doc->at("meta").at("windowNs").number,
              static_cast<double>(sim::msecs(50)));
    EXPECT_TRUE(doc->at("series").isArray());
}

TEST(TelemetryRunTest, RecorderFeedsWaitRanking)
{
    // 2ms windows: the whole 8-client run lasts ~16ms of simulated
    // time, so wider windows would fold the measured phase into the
    // warmup window that contains the registration burst.
    sim::trace::Recorder rec(
        sim::trace::Recorder::Options{1u << 14});
    sim::trace::setRecorder(&rec);
    workload::RunResult r = workload::runScenario(smallScenario(2));
    sim::trace::setRecorder(nullptr);
    ASSERT_NE(r.timeseries, nullptr);

    ExplainReport rep = explain(*r.timeseries);
    const MachineReport *server = rep.machine("server");
    ASSERT_NE(server, nullptr);
    const PhaseAttribution *measure = server->phase("measure");
    ASSERT_NE(measure, nullptr);
    // The supervisor/worker TCP proxy blocks on fd-passing IPC; with
    // the recorder attached the rank must surface it.
    EXPECT_EQ(measure->topWait, "ipc");
    EXPECT_FALSE(measure->topResource.empty());
    // Little's law holds on every thick-enough window.
    EXPECT_GT(rep.little.checked, 0);
    EXPECT_EQ(rep.little.consistent, rep.little.checked);
}

} // namespace

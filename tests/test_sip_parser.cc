/**
 * @file
 * Parser and framer tests: canonical messages, odd-but-legal syntax
 * (compact names, folding, LF endings), malformed input rejection, a
 * round-trip property over built messages, and parameterized framing
 * sweeps that split the byte stream at every chunk size.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"

namespace {

using namespace siprox;
using namespace siprox::sip;

const char kCanonicalInvite[] =
    "INVITE sip:bob@h3:10002 SIP/2.0\r\n"
    "Via: SIP/2.0/UDP h2:10001;branch=z9hG4bK776asdhds\r\n"
    "Max-Forwards: 70\r\n"
    "From: <sip:alice@h2:10001>;tag=1928301774\r\n"
    "To: <sip:bob@h3:10002>\r\n"
    "Call-ID: a84b4c76e66710@h2\r\n"
    "CSeq: 314159 INVITE\r\n"
    "Contact: <sip:alice@h2:10001>\r\n"
    "Content-Type: application/sdp\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n";

TEST(ParserTest, ParsesCanonicalInvite)
{
    auto r = parseMessage(kCanonicalInvite);
    ASSERT_TRUE(r.ok) << r.error;
    const SipMessage &m = r.message;
    EXPECT_TRUE(m.isRequest());
    EXPECT_EQ(m.method(), Method::Invite);
    EXPECT_EQ(m.requestUri().user, "bob");
    EXPECT_EQ(m.topVia()->branch, "z9hG4bK776asdhds");
    EXPECT_EQ(m.callId(), "a84b4c76e66710@h2");
    EXPECT_EQ(m.cseq()->number, 314159u);
    EXPECT_EQ(m.body(), "v=0\n");
    EXPECT_EQ(*m.maxForwards(), 70);
}

TEST(ParserTest, ParsesResponse)
{
    auto r = parseMessage("SIP/2.0 180 Ringing\r\n"
                          "Via: SIP/2.0/TCP h1;branch=z9hG4bKx\r\n"
                          "Call-ID: c1\r\n"
                          "CSeq: 1 INVITE\r\n"
                          "Content-Length: 0\r\n\r\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.message.isResponse());
    EXPECT_EQ(r.message.statusCode(), 180);
    EXPECT_EQ(r.message.reason(), "Ringing");
    EXPECT_TRUE(r.message.isProvisional());
    EXPECT_FALSE(r.message.isFinal());
}

TEST(ParserTest, AcceptsBareLfLineEndings)
{
    auto r = parseMessage("OPTIONS sip:h1 SIP/2.0\n"
                          "Via: SIP/2.0/UDP h2;branch=z9hG4bKy\n"
                          "Call-ID: c2\n"
                          "CSeq: 7 OPTIONS\n"
                          "Content-Length: 0\n\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.message.method(), Method::Options);
    EXPECT_EQ(r.message.cseq()->number, 7u);
}

TEST(ParserTest, ExpandsCompactHeaderNames)
{
    auto r = parseMessage("BYE sip:h1 SIP/2.0\r\n"
                          "v: SIP/2.0/UDP h2;branch=z9hG4bKz\r\n"
                          "i: compact-call\r\n"
                          "f: <sip:a@h2>;tag=1\r\n"
                          "t: <sip:b@h3>\r\n"
                          "m: <sip:a@h2:9>\r\n"
                          "l: 0\r\n\r\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.message.callId(), "compact-call");
    EXPECT_TRUE(r.message.topVia());
    EXPECT_FALSE(r.message.from().empty());
    EXPECT_TRUE(r.message.contactUri());
}

TEST(ParserTest, UnfoldsContinuationLines)
{
    auto r = parseMessage("INVITE sip:h1 SIP/2.0\r\n"
                          "Subject: first part\r\n"
                          " second part\r\n"
                          "\tthird part\r\n"
                          "Content-Length: 0\r\n\r\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(*r.message.header("Subject"),
              "first part second part third part");
}

TEST(ParserTest, BodyRespectsContentLengthWithTrailingBytes)
{
    std::string text = "INVITE sip:h1 SIP/2.0\r\n"
                       "Content-Length: 3\r\n\r\n"
                       "abcEXTRA";
    auto r = parseMessage(text);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.message.body(), "abc");
}

TEST(ParserTest, MissingContentLengthConsumesRest)
{
    auto r = parseMessage("INVITE sip:h1 SIP/2.0\r\n\r\nwhole body");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.message.body(), "whole body");
}

TEST(ParserTest, RejectsMalformedInputs)
{
    const char *bad[] = {
        "",
        "\r\n\r\n",
        "INVITE\r\n\r\n",
        "INVITE sip:h1\r\n\r\n",
        "INVITE sip:h1 SIP/3.0\r\n\r\n",
        "INVITE notauri SIP/2.0\r\n\r\n",
        "SIP/2.0 banana OK\r\n\r\n",
        "SIP/2.0 99 Too Low\r\n\r\n",
        "INVITE sip:h1 SIP/2.0\r\nHeaderWithoutColon\r\n\r\n",
        "INVITE sip:h1 SIP/2.0\r\n: empty name\r\n\r\n",
        "INVITE sip:h1 SIP/2.0\r\n cont without header\r\n\r\n",
        "INVITE sip:h1 SIP/2.0\r\nContent-Length: 10\r\n\r\nshort",
        "INVITE sip:h1 SIP/2.0\r\nContent-Length: -1\r\n\r\n",
        "INVITE sip:h1 SIP/2.0\r\nCall-ID: x", // unterminated
    };
    for (const char *text : bad) {
        auto r = parseMessage(text);
        EXPECT_FALSE(r.ok) << "should reject: " << text;
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(ParserTest, RoundTripProperty)
{
    // serialize(parse(serialize(m))) == serialize(m) over builder output.
    for (int i = 0; i < 20; ++i) {
        RequestSpec spec;
        spec.method = i % 2 ? Method::Invite : Method::Bye;
        spec.requestUri = uriForAddr("u" + std::to_string(i),
                                     net::Addr{3, 5060});
        spec.from = uriForAddr("a" + std::to_string(i),
                               net::Addr{1, static_cast<std::uint16_t>(
                                                10000 + i)});
        spec.to = uriForAddr("b", net::Addr{2, 10001});
        spec.fromTag = "tag" + std::to_string(i);
        spec.callId = "cid-" + std::to_string(i) + "@h1";
        spec.cseq = static_cast<std::uint32_t>(i + 1);
        spec.viaSentBy = uriForAddr("", net::Addr{1, 10000});
        spec.branch = "z9hG4bK-" + std::to_string(i);
        spec.contact = spec.from;
        SipMessage msg = buildRequest(spec);
        std::string wire = msg.serialize();
        auto r = parseMessage(wire);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.message.serialize(), wire);
    }
}

TEST(ParserTest, FuzzedMutationsNeverCrash)
{
    sim::Rng rng(123);
    std::string base = kCanonicalInvite;
    for (int i = 0; i < 3000; ++i) {
        std::string text = base;
        int mutations = 1 + static_cast<int>(rng.below(4));
        for (int j = 0; j < mutations; ++j) {
            auto pos = rng.below(text.size());
            switch (rng.below(3)) {
              case 0:
                text[pos] = static_cast<char>(rng.below(256));
                break;
              case 1:
                text.erase(pos, rng.below(8) + 1);
                break;
              default:
                text.insert(pos, 1,
                            static_cast<char>(rng.below(256)));
                break;
            }
            if (text.empty())
                text = "x";
        }
        auto r = parseMessage(text); // must not crash or hang
        (void)r;
    }
    SUCCEED();
}

// --- framer ----------------------------------------------------------------

std::vector<std::string>
frameAll(StreamFramer &framer)
{
    std::vector<std::string> out;
    while (auto raw = framer.next())
        out.push_back(std::move(*raw));
    return out;
}

TEST(FramerTest, SingleMessagePassesThrough)
{
    StreamFramer framer;
    framer.feed(kCanonicalInvite);
    auto msgs = frameAll(framer);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], kCanonicalInvite);
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(FramerTest, IncompleteMessageYieldsNothing)
{
    StreamFramer framer;
    std::string text = kCanonicalInvite;
    framer.feed(text.substr(0, text.size() - 1));
    EXPECT_FALSE(framer.next());
    framer.feed(text.substr(text.size() - 1));
    auto msgs = frameAll(framer);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], text);
}

TEST(FramerTest, SkipsKeepAliveNewlines)
{
    StreamFramer framer;
    framer.feed("\r\n\r\n");
    framer.feed(kCanonicalInvite);
    framer.feed("\r\n");
    auto msgs = frameAll(framer);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(FramerTest, PoisonedOnEndlessHeaders)
{
    StreamFramer framer;
    std::string junk(StreamFramer::kMaxHeaderBytes + 10, 'a');
    framer.feed(junk);
    EXPECT_FALSE(framer.next());
    EXPECT_TRUE(framer.poisoned());
}

/** Framing must be chunk-size independent: sweep split granularities. */
class FramerChunkTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FramerChunkTest, ReassemblesAcrossArbitrarySplits)
{
    // Three different messages back to back.
    RequestSpec spec;
    spec.requestUri = uriForAddr("bob", net::Addr{3, 5060});
    spec.from = uriForAddr("alice", net::Addr{1, 10000});
    spec.to = uriForAddr("bob", net::Addr{2, 10001});
    spec.fromTag = "t1";
    spec.callId = "cid@h1";
    spec.viaSentBy = uriForAddr("", net::Addr{1, 10000});
    spec.branch = "z9hG4bK-chunk";
    spec.contact = spec.from;

    spec.method = Method::Invite;
    SipMessage invite = buildRequest(spec);
    SipMessage ringing = buildResponse(invite, 180, "t2");
    spec.method = Method::Bye;
    spec.cseq = 2;
    SipMessage bye = buildRequest(spec);

    std::string stream = invite.serialize() + ringing.serialize()
        + bye.serialize();

    const int chunk = GetParam();
    StreamFramer framer;
    std::vector<std::string> got;
    for (std::size_t off = 0; off < stream.size();
         off += static_cast<std::size_t>(chunk)) {
        framer.feed(std::string_view(stream).substr(
            off, static_cast<std::size_t>(chunk)));
        for (auto &m : frameAll(framer))
            got.push_back(std::move(m));
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], invite.serialize());
    EXPECT_EQ(got[1], ringing.serialize());
    EXPECT_EQ(got[2], bye.serialize());

    // Each framed chunk must itself parse.
    for (const auto &raw : got)
        EXPECT_TRUE(parseMessage(raw).ok);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, FramerChunkTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 64, 128,
                                           333, 1024, 4096));

TEST(FramerTest, LongStreamCrossesCompactionThreshold)
{
    // Enough traffic that the consumed prefix passes kCompactAt many
    // times over: framing must stay correct across compactions and the
    // buffer must not grow with the total stream length.
    const std::string wire(kCanonicalInvite);
    const std::size_t count =
        (StreamFramer::kCompactAt / wire.size() + 2) * 8;
    std::string stream;
    for (std::size_t i = 0; i < count; ++i)
        stream += wire + "\r\n"; // keep-alives interleaved

    StreamFramer framer;
    std::size_t got = 0;
    for (std::size_t off = 0; off < stream.size(); off += 100) {
        framer.feed(std::string_view(stream).substr(off, 100));
        while (auto m = framer.next()) {
            EXPECT_EQ(*m, wire);
            ++got;
        }
        EXPECT_LE(framer.buffered(), wire.size() + 2);
    }
    EXPECT_EQ(got, count);
    EXPECT_EQ(framer.buffered(), 0u);
    EXPECT_FALSE(framer.poisoned());
}

TEST(FramerTest, MoveFeedAdoptsAfterFullConsumption)
{
    const std::string wire(kCanonicalInvite);
    StreamFramer framer;
    // First message consumed fully: the next move-feed may adopt.
    framer.feed(std::string(wire));
    ASSERT_EQ(frameAll(framer).size(), 1u);
    EXPECT_EQ(framer.buffered(), 0u);
    // Partial tail, then the rest by move: append path.
    framer.feed(std::string(wire.substr(0, 40)));
    EXPECT_FALSE(framer.next());
    EXPECT_EQ(framer.buffered(), 40u);
    framer.feed(std::string(wire.substr(40)));
    auto msgs = frameAll(framer);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], wire);
}

TEST(FramerTest, RepeatedNextOnIncompleteHeadersStaysLinear)
{
    // The header scan resumes where it stopped; calling next() after
    // every tiny feed must still find a terminator split across feeds.
    const std::string wire(kCanonicalInvite);
    StreamFramer framer;
    for (char c : wire) {
        framer.feed(std::string_view(&c, 1));
        if (auto m = framer.next()) {
            EXPECT_EQ(*m, wire);
            EXPECT_EQ(framer.buffered(), 0u);
            return;
        }
    }
    FAIL() << "message never framed";
}

} // namespace

/**
 * @file
 * Tests for hop-by-hop distributed overload control over a multi-hop
 * proxy chain: feedback header render/parse, the per-destination
 * throttle table (rate bucket, window slots, on/off restriction, grant
 * TTL fail-open), the controller's advertisement AIMD, chain topology
 * validation, and scenario-level chain runs (UDP and TCP, every
 * feedback scheme, digest determinism).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/hopctl.hh"
#include "core/overload.hh"
#include "core/shared.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using core::FeedbackScheme;
using core::HopControlConfig;
using core::HopFeedback;
using core::HopThrottleTable;
using core::ProxyCounters;
using Gate = core::HopThrottleTable::Gate;

// --- feedback header --------------------------------------------------------

TEST(HopFeedbackTest, SchemeNames)
{
    EXPECT_STREQ(core::feedbackSchemeName(FeedbackScheme::None),
                 "none");
    EXPECT_STREQ(core::feedbackSchemeName(FeedbackScheme::OnOff),
                 "onoff");
    EXPECT_STREQ(core::feedbackSchemeName(FeedbackScheme::Rate),
                 "rate");
    EXPECT_STREQ(core::feedbackSchemeName(FeedbackScheme::Window),
                 "window");
}

TEST(HopFeedbackTest, RenderParseRoundTrip)
{
    char buf[48];

    HopFeedback rate;
    rate.scheme = FeedbackScheme::Rate;
    rate.rate = 123.75;
    std::size_t n = core::renderHopFeedback(rate, buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    EXPECT_EQ(std::string_view(buf, n), "rate;r=123.75");
    HopFeedback out;
    ASSERT_TRUE(core::parseHopFeedback({buf, n}, &out));
    EXPECT_EQ(out.scheme, FeedbackScheme::Rate);
    EXPECT_DOUBLE_EQ(out.rate, 123.75);

    HopFeedback win;
    win.scheme = FeedbackScheme::Window;
    win.window = 17;
    n = core::renderHopFeedback(win, buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    EXPECT_EQ(std::string_view(buf, n), "win;w=17");
    ASSERT_TRUE(core::parseHopFeedback({buf, n}, &out));
    EXPECT_EQ(out.scheme, FeedbackScheme::Window);
    EXPECT_EQ(out.window, 17);

    HopFeedback onoff;
    onoff.scheme = FeedbackScheme::OnOff;
    onoff.on = false;
    n = core::renderHopFeedback(onoff, buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    EXPECT_EQ(std::string_view(buf, n), "onoff;on=0");
    ASSERT_TRUE(core::parseHopFeedback({buf, n}, &out));
    EXPECT_EQ(out.scheme, FeedbackScheme::OnOff);
    EXPECT_FALSE(out.on);
}

TEST(HopFeedbackTest, NoneRendersNothingAndMalformedRejected)
{
    char buf[48];
    HopFeedback none; // scheme None
    EXPECT_EQ(core::renderHopFeedback(none, buf, sizeof(buf)), 0u);

    HopFeedback out;
    EXPECT_FALSE(core::parseHopFeedback("garbage", &out));
    EXPECT_FALSE(core::parseHopFeedback("rate;r=", &out));
    EXPECT_FALSE(core::parseHopFeedback("rate;r=abc", &out));
    EXPECT_FALSE(core::parseHopFeedback("win;w=-3", &out));
    EXPECT_FALSE(core::parseHopFeedback("win;w=1x", &out));
    EXPECT_FALSE(core::parseHopFeedback("onoff;on=2", &out));
    EXPECT_FALSE(core::parseHopFeedback("", &out));
}

// --- the upstream throttle table --------------------------------------------

HopControlConfig
gateConfig(FeedbackScheme scheme)
{
    HopControlConfig cfg;
    cfg.scheme = scheme;
    cfg.burstTokens = 2;
    cfg.initialRate = 10;
    cfg.initialWindow = 2;
    cfg.grantTtl = sim::secs(2);
    return cfg;
}

TEST(HopThrottleTableTest, DisabledAlwaysAdmits)
{
    HopThrottleTable gate;
    ProxyCounters counters;
    gate.configure(gateConfig(FeedbackScheme::None), &counters);
    EXPECT_FALSE(gate.enabled());
    net::Addr dst{7, 5060};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
}

TEST(HopThrottleTableTest, WindowSlotsReserveAndRelease)
{
    HopThrottleTable gate;
    ProxyCounters counters;
    gate.configure(gateConfig(FeedbackScheme::Window), &counters);
    net::Addr dst{7, 5060};

    // The initial grant (window 2) carries the cold chain.
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.pendingToward(dst), 2);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);

    // A completion frees exactly one slot.
    gate.noteCompleted(dst);
    EXPECT_EQ(gate.pendingToward(dst), 1);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);

    // Feedback shrinking the window binds immediately.
    HopFeedback fb;
    fb.scheme = FeedbackScheme::Window;
    fb.window = 1;
    gate.applyFeedback(dst, fb, sim::secs(1));
    EXPECT_EQ(counters.hopFeedbackApplied, 1u);
    gate.noteCompleted(dst);
    gate.noteCompleted(dst);
    EXPECT_EQ(gate.pendingToward(dst), 0);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);

    // Releases never underflow.
    gate.noteCompleted(dst);
    gate.noteCompleted(dst);
    gate.noteAborted(dst);
    EXPECT_EQ(gate.pendingToward(dst), 0);
}

TEST(HopThrottleTableTest, RateBucketMetersAndRefills)
{
    HopThrottleTable gate;
    ProxyCounters counters;
    gate.configure(gateConfig(FeedbackScheme::Rate), &counters);
    net::Addr dst{7, 5060};

    HopFeedback fb;
    fb.scheme = FeedbackScheme::Rate;
    fb.rate = 10; // 10/s
    gate.applyFeedback(dst, fb, sim::secs(1));

    // Burst capacity 2: two admits, then Busy.
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);

    // 100ms at 10/s refills one token.
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1) + sim::msecs(100)),
              Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1) + sim::msecs(100)),
              Gate::Busy);
}

TEST(HopThrottleTableTest, StaleGrantFailsOpen)
{
    HopThrottleTable gate;
    ProxyCounters counters;
    auto cfg = gateConfig(FeedbackScheme::Rate);
    cfg.grantTtl = sim::secs(2);
    gate.configure(cfg, &counters);
    net::Addr dst{7, 5060};

    // A zero-rate grant throttles everything...
    HopFeedback fb;
    fb.scheme = FeedbackScheme::Rate;
    fb.rate = 0;
    gate.applyFeedback(dst, fb, sim::secs(1));
    // (drain the burst first: tokens were granted at creation)
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(2)), Gate::Busy);

    // ...until it outlives its TTL: then the gate must not keep
    // throttling on dead information (the response stream that would
    // refresh it has dried up).
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(4)), Gate::Admit);
    EXPECT_EQ(counters.hopGrantExpired, 1u);
}

TEST(HopThrottleTableTest, OnOffRestrictionNeedsFreshFeedback)
{
    HopThrottleTable gate;
    ProxyCounters counters;
    gate.configure(gateConfig(FeedbackScheme::OnOff), &counters);
    net::Addr dst{7, 5060};

    // No feedback yet: not restricted (fail open), admits.
    EXPECT_FALSE(gate.restricted(dst, sim::secs(1)));
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Admit);

    HopFeedback fb;
    fb.scheme = FeedbackScheme::OnOff;
    fb.on = false;
    gate.applyFeedback(dst, fb, sim::secs(1));
    EXPECT_TRUE(gate.restricted(dst, sim::secs(1)));
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(1)), Gate::Busy);

    // Stale stop: fail open again.
    EXPECT_FALSE(gate.restricted(dst, sim::secs(10)));
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(10)), Gate::Admit);

    fb.on = true;
    gate.applyFeedback(dst, fb, sim::secs(10));
    EXPECT_FALSE(gate.restricted(dst, sim::secs(10)));
    EXPECT_EQ(gate.tryAdmit(dst, sim::secs(10)), Gate::Admit);
}

// --- the downstream advertiser ----------------------------------------------

core::OverloadConfig
advertiserConfig(FeedbackScheme scheme)
{
    core::OverloadConfig cfg; // local policy stays None
    cfg.recvQueueCapacity = 100;
    cfg.hop.scheme = scheme;
    cfg.hop.adjustInterval = sim::msecs(50);
    cfg.hop.occHigh = 0.85;
    cfg.hop.occLow = 0.50;
    cfg.hop.latencyTarget = sim::msecs(60);
    cfg.hop.initialRate = 1000;
    cfg.hop.minRate = 50;
    cfg.hop.decreaseFactor = 0.5;
    cfg.hop.increasePerInterval = 100;
    cfg.hop.initialWindow = 8;
    cfg.hop.minWindow = 1;
    return cfg;
}

TEST(HopAdvertiserTest, RateAimdDecreasesUnderPressureRecoversIdle)
{
    core::OverloadController ctl;
    ProxyCounters counters;
    ctl.configure(advertiserConfig(FeedbackScheme::Rate), nullptr,
                  &counters);

    HopFeedback fb = ctl.advertiseFeedback(sim::msecs(10));
    EXPECT_EQ(fb.scheme, FeedbackScheme::Rate);
    EXPECT_DOUBLE_EQ(fb.rate, 1000.0); // initial grant, no tick yet

    // Full queue: every elapsed tick halves the grant.
    ctl.noteQueueDepth(100);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(100));
    EXPECT_DOUBLE_EQ(fb.rate, 250.0); // two ticks at 0.5x

    // Pressure gone (and no latency signal): additive recovery.
    ctl.noteQueueDepth(0);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(200));
    EXPECT_DOUBLE_EQ(fb.rate, 450.0); // two ticks at +100

    // The floor binds no matter how long the pressure lasts.
    ctl.noteQueueDepth(100);
    fb = ctl.advertiseFeedback(sim::secs(60));
    EXPECT_DOUBLE_EQ(fb.rate, 50.0);
}

TEST(HopAdvertiserTest, WindowShrinksMultiplicativelyGrowsByOne)
{
    core::OverloadController ctl;
    ProxyCounters counters;
    ctl.configure(advertiserConfig(FeedbackScheme::Window), nullptr,
                  &counters);

    // Prime the adjust clock (the first call only initializes it).
    HopFeedback fb0 = ctl.advertiseFeedback(sim::msecs(10));
    EXPECT_EQ(fb0.window, 8);

    ctl.noteQueueDepth(100);
    HopFeedback fb =
        ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(100));
    EXPECT_EQ(fb.window, 2); // 8 -> 4 -> 2

    ctl.noteQueueDepth(0);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(200));
    EXPECT_EQ(fb.window, 4); // +1, +1

    ctl.noteQueueDepth(100);
    fb = ctl.advertiseFeedback(sim::secs(60));
    EXPECT_EQ(fb.window, 1); // floor
}

TEST(HopAdvertiserTest, OnOffHysteresisDoesNotFlap)
{
    core::OverloadController ctl;
    ProxyCounters counters;
    ctl.configure(advertiserConfig(FeedbackScheme::OnOff), nullptr,
                  &counters);

    HopFeedback fb = ctl.advertiseFeedback(sim::msecs(10));
    EXPECT_TRUE(fb.on);

    // Past occHigh: stop.
    ctl.noteQueueDepth(90);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(50));
    EXPECT_FALSE(fb.on);

    // Between occLow and occHigh: still stopped (hysteresis).
    ctl.noteQueueDepth(70);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(100));
    EXPECT_FALSE(fb.on);

    // Below occLow: go again.
    ctl.noteQueueDepth(10);
    fb = ctl.advertiseFeedback(sim::msecs(10) + sim::msecs(150));
    EXPECT_TRUE(fb.on);
}

TEST(HopAdvertiserTest, QueuePanickedNeedsNoLocalPolicy)
{
    core::OverloadController ctl;
    ProxyCounters counters;
    core::OverloadConfig cfg; // policy None
    cfg.recvQueueCapacity = 100;
    cfg.panicWatermark = 0.97;
    ctl.configure(cfg, nullptr, &counters);

    EXPECT_FALSE(ctl.queuePanicked());
    ctl.noteQueueDepth(98);
    EXPECT_TRUE(ctl.queuePanicked());
    // Unlike panicDrop(), the peek neither requires an enabled local
    // policy nor counts a drop.
    EXPECT_EQ(counters.overloadPanicDrops, 0u);
    EXPECT_FALSE(ctl.panicDrop(sim::secs(1))); // policy None: no drops
}

// --- chain topology validation ----------------------------------------------

workload::Scenario
chainScenario(core::Transport transport, std::size_t hops)
{
    workload::Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 3;
    sc.clientMachines = 2;
    sc.serverCores = 2;
    sc.maxDuration = sim::secs(120);
    sc.chain.assign(hops, workload::ChainHop{});
    return sc;
}

TEST(ChainTopologyTest, ValidationNamesTheReason)
{
    workload::Scenario sc = chainScenario(core::Transport::Udp, 2);
    EXPECT_EQ(workload::chainSupportError(sc), nullptr);

    sc.chain.resize(1);
    EXPECT_NE(workload::chainSupportError(sc), nullptr);
    sc.chain.assign(5, workload::ChainHop{});
    EXPECT_NE(workload::chainSupportError(sc), nullptr);

    sc = chainScenario(core::Transport::Udp, 2);
    sc.chain[1].transport = core::Transport::Tcp;
    const char *err = workload::chainSupportError(sc);
    ASSERT_NE(err, nullptr);
    EXPECT_NE(std::string_view(err).find("mixed-transport"),
              std::string_view::npos);

    sc = chainScenario(core::Transport::Udp, 2);
    sc.chain[0].arch = core::ArchKind::SupervisorWorker; // UDP: invalid
    EXPECT_NE(workload::chainSupportError(sc), nullptr);

    sc = chainScenario(core::Transport::Udp, 2);
    sc.proxy.redirect = true;
    EXPECT_NE(workload::chainSupportError(sc), nullptr);

    sc = chainScenario(core::Transport::Udp, 2);
    sc.proxy.stateful = false;
    sc.proxy.overload.hop.scheme = FeedbackScheme::Window;
    EXPECT_NE(workload::chainSupportError(sc), nullptr);

    // An empty chain is always fine (single proxy).
    sc = chainScenario(core::Transport::Udp, 2);
    sc.chain.clear();
    EXPECT_EQ(workload::chainSupportError(sc), nullptr);

    // runScenario refuses invalid topologies loudly.
    sc = chainScenario(core::Transport::Udp, 2);
    sc.chain[1].transport = core::Transport::Sctp;
    EXPECT_THROW(workload::runScenario(sc), std::invalid_argument);
}

// --- scenario-level chain runs ----------------------------------------------

TEST(ChainScenarioTest, TwoHopUdpChainCompletesCalls)
{
    workload::Scenario sc = chainScenario(core::Transport::Udp, 2);
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, 4u * 3u);
    EXPECT_EQ(r.callsFailed, 0u);
    ASSERT_EQ(r.hopCounters.size(), 2u);
    // Both hops registered their local phones (callers at the edge,
    // callees at the destination).
    EXPECT_EQ(r.hopCounters[0].registrations, 4u);
    EXPECT_EQ(r.hopCounters[1].registrations, 4u);
    // Requests traversed both hops.
    EXPECT_GT(r.hopCounters[0].forwards, 0u);
    EXPECT_GT(r.hopCounters[1].forwards, 0u);
    // No feedback scheme: no Overload headers anywhere.
    EXPECT_EQ(r.counters.hopFeedbackSent, 0u);
    EXPECT_EQ(r.counters.hopFeedbackApplied, 0u);
    // The digest names the chain.
    EXPECT_NE(r.digest().find("chainHops=2"), std::string::npos);
    EXPECT_NE(r.digest().find("hop0.forwards="), std::string::npos);
}

TEST(ChainScenarioTest, ThreeHopChainCarriesFeedbackUpstream)
{
    workload::Scenario sc = chainScenario(core::Transport::Udp, 3);
    sc.proxy.overload.hop.scheme = FeedbackScheme::Rate;
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, 4u * 3u);
    ASSERT_EQ(r.hopCounters.size(), 3u);
    // Every hop advertises on the responses it sends upstream; the
    // two upstream hops consume their next hop's advertisements.
    EXPECT_GT(r.hopCounters[1].hopFeedbackSent, 0u);
    EXPECT_GT(r.hopCounters[2].hopFeedbackSent, 0u);
    EXPECT_GT(r.hopCounters[0].hopFeedbackApplied, 0u);
    EXPECT_GT(r.hopCounters[1].hopFeedbackApplied, 0u);
    // The destination has nothing downstream to consume from.
    EXPECT_EQ(r.hopCounters[2].hopFeedbackApplied, 0u);
    // Feedback is stripped hop by hop: phones never see it, and the
    // callers' calls all succeeded (an unthrottled chain is
    // transparent).
    EXPECT_EQ(r.callsFailed, 0u);
}

TEST(ChainScenarioTest, WindowSchemeReleasesEverySlot)
{
    workload::Scenario sc = chainScenario(core::Transport::Udp, 2);
    sc.proxy.overload.hop.scheme = FeedbackScheme::Window;
    sc.proxy.overload.hop.initialWindow = 2; // binds under 4 callers
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    // All calls resolve (completed or failed), so every reserved
    // window slot was released: a leak would wedge the run instead.
    EXPECT_EQ(r.callsCompleted + r.callsFailed, 4u * 3u);
    EXPECT_GT(r.callsCompleted, 0u);
    EXPECT_GT(r.counters.hopFeedbackSent, 0u);
}

TEST(ChainScenarioTest, TcpChainCompletesCalls)
{
    workload::Scenario sc = chainScenario(core::Transport::Tcp, 2);
    sc.proxy.overload.hop.scheme = FeedbackScheme::Rate;
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, 4u * 3u) << r.digest();
    ASSERT_EQ(r.hopCounters.size(), 2u);
    // The edge dialed the core proxy: proxy-to-proxy stream sends.
    EXPECT_GT(r.hopCounters[0].outboundConnects, 0u);
    EXPECT_GT(r.counters.hopFeedbackApplied, 0u);
}

TEST(ChainScenarioTest, PerHopArchitecturesCanDiffer)
{
    workload::Scenario sc = chainScenario(core::Transport::Udp, 2);
    sc.proxy.overload.hop.scheme = FeedbackScheme::Rate;
    sc.chain[0].arch = core::ArchKind::EventDriven;
    sc.chain[1].arch = core::ArchKind::SymmetricWorker;
    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, 4u * 3u);
}

TEST(ChainScenarioTest, SameSeedChainDigestsIdentical)
{
    for (FeedbackScheme scheme :
         {FeedbackScheme::OnOff, FeedbackScheme::Rate,
          FeedbackScheme::Window}) {
        workload::Scenario sc = chainScenario(core::Transport::Udp, 3);
        sc.proxy.overload.hop.scheme = scheme;
        sc.seed = 42;
        std::string a = workload::runScenario(sc).digest();
        std::string b = workload::runScenario(sc).digest();
        EXPECT_EQ(a, b) << core::feedbackSchemeName(scheme);
        // (A different seed is not asserted to differ: at this light
        // load no RNG draw — backoff jitter — ever happens, so the
        // run is legitimately seed-insensitive.)
    }
}

TEST(ChainScenarioTest, SingleProxyDigestUnchangedByChainCode)
{
    // The load-bearing compatibility property: a chain-free scenario
    // must not mention chains or hop control in its digest at all
    // (existing goldens pin the exact bytes).
    workload::Scenario sc = chainScenario(core::Transport::Udp, 2);
    sc.chain.clear();
    std::string d = workload::runScenario(sc).digest();
    EXPECT_EQ(d.find("chainHops"), std::string::npos);
    EXPECT_EQ(d.find("hopFeedbackSent"), std::string::npos);
    EXPECT_EQ(d.find("hop0."), std::string::npos);
}

} // namespace

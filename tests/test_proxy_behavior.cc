/**
 * @file
 * Behavioural tests for the paper's specific failure modes and claims:
 * the §6 blocking-IPC deadlock (and the event-driven fix), §4.3 port
 * pinning under long idle timeouts, stateful retransmission absorption
 * under loss, and thread-mode connection reclamation.
 */

#include <gtest/gtest.h>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::ConcurrencyModel;
using core::IdleStrategy;
using core::Transport;

Scenario
churnScenario(bool event_driven)
{
    Scenario sc;
    sc.proxy.transport = Transport::Tcp;
    sc.proxy.workers = 2;
    sc.proxy.dispatchChannelCapacity = 1;
    sc.proxy.eventDrivenIpc = event_driven;
    sc.clients = 12;
    sc.callsPerClient = 40;
    sc.opsPerConn = 2; // reconnect every call
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(30);
    return sc;
}

TEST(DeadlockBehaviorTest, BlockingIpcWedgesUnderConnectionChurn)
{
    // §6: tiny dispatch buffers + heavy accept traffic + workers that
    // block awaiting fd replies -> supervisor and workers deadlock.
    RunResult r = runScenario(churnScenario(false));
    EXPECT_TRUE(r.timedOut);
    EXPECT_LT(r.callsCompleted,
              static_cast<std::uint64_t>(12 * 40));
}

TEST(DeadlockBehaviorTest, EventDrivenIpcSurvivesSameWorkload)
{
    RunResult r = runScenario(churnScenario(true));
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, static_cast<std::uint64_t>(12 * 40));
    EXPECT_EQ(r.callsFailed, 0u);
}

Scenario
portScenario(double idle_timeout_sec)
{
    Scenario sc;
    sc.proxy.transport = Transport::Tcp;
    sc.proxy.workers = 4;
    sc.proxy.fdCache = true;
    sc.proxy.idleTimeout = sim::secs(idle_timeout_sec);
    sc.clients = 5;
    sc.callsPerClient = 20;
    sc.opsPerConn = 2;       // reconnect every call
    sc.answerDelay = sim::msecs(800); // paced calls: ~3 conns/s churn
    sc.clientMachines = 1;
    // A deliberately small ephemeral pool on the client host, standing
    // in for the paper's effective port budget (§4.3). An abandoned
    // connection pins its port until the server destroys it (~2x the
    // idle timeout), so the pool (160 ports vs ~10 active + ~40 pinned at a 3 s
    // timeout, but 200+ pinned at 120 s) survives only short timeouts.
    sc.net.ephemeralLo = 40000;
    sc.net.ephemeralHi = 40160;
    sc.maxDuration = sim::secs(300);
    return sc;
}

TEST(PortStarvationTest, LongIdleTimeoutPinsPortsAndFailsReconnects)
{
    RunResult r = runScenario(portScenario(120));
    // Abandoned connections stay open for minutes; the small pool
    // dries up and reconnects fail.
    EXPECT_GT(r.reconnectFailures, 0u);
}

TEST(PortStarvationTest, ShortIdleTimeoutRecyclesPorts)
{
    RunResult r = runScenario(portScenario(3));
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.reconnectFailures, 0u);
    EXPECT_EQ(r.callsFailed, 0u);
}

TEST(StatefulBehaviorTest, ProxyAbsorbsRetransmissionsUnderLoss)
{
    Scenario sc;
    sc.proxy.transport = Transport::Udp;
    sc.proxy.workers = 4;
    sc.proxy.timerTick = sim::msecs(50);
    sc.clients = 6;
    sc.callsPerClient = 25;
    sc.clientMachines = 2;
    sc.net.udpLossProb = 0.08;
    sc.phoneResponseTimeout = sim::secs(20);
    sc.maxDuration = sim::secs(120);
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    // Loss forces phone retransmissions; some duplicates reach the
    // proxy and are answered from transaction state, and the proxy's
    // own timer process retransmits forwarded requests.
    EXPECT_GT(r.phoneRetransmissions, 0u);
    EXPECT_GT(r.counters.retransAbsorbed + r.counters.retransSent, 0u);
}

TEST(ThreadModeBehaviorTest, ChurnedConnectionsReclaimedSafely)
{
    Scenario sc;
    sc.proxy.transport = Transport::Tcp;
    sc.proxy.concurrency = ConcurrencyModel::Thread;
    sc.proxy.workers = 4;
    sc.proxy.idleTimeout = sim::secs(1);
    sc.proxy.idleStrategy = IdleStrategy::PriorityQueue;
    sc.clients = 6;
    sc.callsPerClient = 12;
    sc.opsPerConn = 4;
    sc.clientMachines = 2;
    sc.settleTime = sim::secs(8);
    sc.maxDuration = sim::secs(60);
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_GT(r.counters.connsDestroyed, 0u);
    EXPECT_EQ(r.counters.fdRequests, 0u);
}

TEST(PriorityBehaviorTest, ElevatedSupervisorNeverSlower)
{
    for (int ops_per_conn : {0, 50}) {
        Scenario sc;
        sc.proxy.transport = Transport::Tcp;
        sc.proxy.workers = 8;
        sc.clients = 40;
        sc.callsPerClient = 25;
        sc.opsPerConn = ops_per_conn;
        sc.maxDuration = sim::secs(120);
        sc.proxy.supervisorNice = 0;
        double normal = runScenario(sc).opsPerSec;
        sc.proxy.supervisorNice = -20;
        double elevated = runScenario(sc).opsPerSec;
        EXPECT_GE(elevated, normal * 0.99)
            << "opsPerConn=" << ops_per_conn;
    }
}

TEST(IdleStrategyBehaviorTest, StrategiesCloseTheSameConnections)
{
    // Property: the priority queue is an optimization, not a policy
    // change — after settling, both strategies destroy every churned
    // connection and all calls succeed.
    std::uint64_t destroyed[2] = {0, 0};
    int idx = 0;
    for (auto strategy :
         {IdleStrategy::LinearScan, IdleStrategy::PriorityQueue}) {
        Scenario sc;
        sc.proxy.transport = Transport::Tcp;
        sc.proxy.workers = 4;
        sc.proxy.fdCache = true;
        sc.proxy.idleStrategy = strategy;
        sc.proxy.idleTimeout = sim::secs(1);
        sc.clients = 5;
        sc.callsPerClient = 8;
        sc.opsPerConn = 4;
        sc.clientMachines = 2;
        sc.settleTime = sim::secs(10);
        sc.maxDuration = sim::secs(60);
        RunResult r = runScenario(sc);
        EXPECT_FALSE(r.timedOut);
        EXPECT_EQ(r.callsFailed, 0u);
        destroyed[idx++] = r.counters.connsDestroyed;
    }
    EXPECT_EQ(destroyed[0], destroyed[1]);
    EXPECT_GT(destroyed[0], 0u);
}

} // namespace

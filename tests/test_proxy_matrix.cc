/**
 * @file
 * Parameterized correctness sweep over the proxy configuration space:
 * every transport x statefulness x (for TCP) fd cache, idle strategy,
 * concurrency model, and IPC style must complete the same call
 * workload with zero failures. Performance differs; correctness must
 * not.
 */

#include <gtest/gtest.h>

#include <ostream>
#include <string>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::ConcurrencyModel;
using core::IdleStrategy;
using core::Transport;

struct MatrixParam
{
    std::string name;
    Transport transport = Transport::Udp;
    bool stateful = true;
    bool fdCache = false;
    IdleStrategy idle = IdleStrategy::LinearScan;
    ConcurrencyModel concurrency = ConcurrencyModel::Process;
    bool eventDrivenIpc = false;
    int opsPerConn = 0;
};

void
PrintTo(const MatrixParam &p, std::ostream *os)
{
    *os << p.name;
}

class ProxyMatrixTest : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(ProxyMatrixTest, AllCallsComplete)
{
    const MatrixParam &param = GetParam();
    Scenario sc;
    sc.proxy.transport = param.transport;
    sc.proxy.stateful = param.stateful;
    sc.proxy.fdCache = param.fdCache;
    sc.proxy.idleStrategy = param.idle;
    sc.proxy.concurrency = param.concurrency;
    sc.proxy.eventDrivenIpc = param.eventDrivenIpc;
    sc.proxy.workers = 6;
    sc.clients = 5;
    sc.callsPerClient = 8;
    sc.opsPerConn = param.opsPerConn;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);

    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, 5u * 8u);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.counters.parseErrors, 0u);
    EXPECT_EQ(r.counters.routeFailures, 0u);
    // The proxy handled every transaction exactly once.
    EXPECT_EQ(r.ops, 2u * 5u * 8u);
}

std::vector<MatrixParam>
matrix()
{
    std::vector<MatrixParam> params;
    auto add = [&](MatrixParam p) { params.push_back(std::move(p)); };

    add({.name = "udp_stateful", .transport = Transport::Udp});
    add({.name = "udp_stateless",
         .transport = Transport::Udp,
         .stateful = false});
    add({.name = "sctp_stateful", .transport = Transport::Sctp});
    add({.name = "sctp_stateless",
         .transport = Transport::Sctp,
         .stateful = false});

    for (bool stateful : {true, false}) {
        for (bool cache : {false, true}) {
            for (auto idle : {IdleStrategy::LinearScan,
                              IdleStrategy::PriorityQueue}) {
                MatrixParam p;
                p.transport = Transport::Tcp;
                p.stateful = stateful;
                p.fdCache = cache;
                p.idle = idle;
                p.opsPerConn = 4; // exercise churn everywhere
                p.name = std::string("tcp_")
                    + (stateful ? "stateful" : "stateless")
                    + (cache ? "_cache" : "_nocache")
                    + (idle == IdleStrategy::PriorityQueue ? "_pq"
                                                           : "_scan");
                add(p);
            }
        }
    }
    add({.name = "tcp_thread_mode",
         .transport = Transport::Tcp,
         .concurrency = ConcurrencyModel::Thread,
         .opsPerConn = 4});
    add({.name = "tcp_thread_mode_pq",
         .transport = Transport::Tcp,
         .idle = IdleStrategy::PriorityQueue,
         .concurrency = ConcurrencyModel::Thread,
         .opsPerConn = 4});
    add({.name = "tcp_event_driven",
         .transport = Transport::Tcp,
         .eventDrivenIpc = true,
         .opsPerConn = 4});
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ProxyMatrixTest, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<MatrixParam> &info) {
        return info.param.name;
    });

} // namespace

/**
 * @file
 * Tests for the workload layer: the §4.2 two-phase methodology,
 * fixed-call vs time-based measurement, scenario presets, and result
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::Transport;

TEST(PaperScenarioTest, PresetsMatchPaperConfiguration)
{
    Scenario udp = paperScenario(Transport::Udp, 500, 0);
    EXPECT_EQ(udp.proxy.workers, 24);
    EXPECT_EQ(udp.clients, 500);
    EXPECT_TRUE(udp.proxy.stateful);
    EXPECT_EQ(udp.opsPerConn, 0);

    Scenario tcp = paperScenario(Transport::Tcp, 1000, 50);
    EXPECT_EQ(tcp.proxy.workers, 32);
    EXPECT_EQ(tcp.opsPerConn, 50);
    EXPECT_EQ(tcp.proxy.supervisorNice, -20); // elevated, as in §4.3
    EXPECT_EQ(tcp.proxy.idleTimeout, sim::secs(10));
}

TEST(PaperScenarioTest, NamesAreDescriptive)
{
    EXPECT_EQ(paperScenario(Transport::Udp, 100, 0).name,
              "UDP/persistent/100c");
    EXPECT_EQ(paperScenario(Transport::Tcp, 1000, 50).name,
              "TCP/50ops/1000c");
}

Scenario
smallScenario()
{
    Scenario sc;
    sc.proxy.transport = Transport::Udp;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 10;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);
    return sc;
}

TEST(RunnerTest, FixedCallModeCountsExactOps)
{
    RunResult r = runScenario(smallScenario());
    EXPECT_EQ(r.ops, 4u * 10u * 2u);
    EXPECT_EQ(r.callsCompleted, 40u);
    EXPECT_GT(r.duration, 0);
    EXPECT_GT(r.opsPerSec, 0.0);
}

TEST(RunnerTest, TimeBasedModeStopsNearWindow)
{
    Scenario sc = smallScenario();
    sc.measureWindow = sim::msecs(500);
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.callsCompleted, 40u); // far more than 10 calls each
    // Callers stop at the first call boundary past the window.
    EXPECT_GE(r.duration, sc.measureWindow);
    EXPECT_LT(r.duration, sc.measureWindow + sim::secs(5));
}

TEST(RunnerTest, RegistrationPhaseExcludedFromMeasurement)
{
    RunResult r = runScenario(smallScenario());
    // Registrations happened (both phone sets) but are not ops.
    EXPECT_EQ(r.counters.registrations, 8u);
    EXPECT_EQ(r.ops, 80u);
}

TEST(RunnerTest, LatencyPercentilesPopulated)
{
    RunResult r = runScenario(smallScenario());
    EXPECT_GT(r.inviteP50, 0);
    EXPECT_GE(r.inviteP99, r.inviteP50);
    // On an idle 100us-latency LAN, call setup is well under 50 ms.
    EXPECT_LT(r.inviteP50, sim::msecs(50));
}

TEST(RunnerTest, UtilizationsBounded)
{
    RunResult r = runScenario(smallScenario());
    EXPECT_GE(r.serverUtilization, 0.0);
    EXPECT_LE(r.serverUtilization, 1.0);
    EXPECT_GE(r.maxClientUtilization, 0.0);
    EXPECT_LE(r.maxClientUtilization, 1.0);
}

TEST(RunnerTest, ProfileCoversMeasuredPhaseOnly)
{
    RunResult r = runScenario(smallScenario());
    // The profiler was reset at measurement start; parse time must be
    // visible, and total busy time close to utilization*duration.
    EXPECT_GT(r.serverProfile.at("ser:parse_msg"), 0);
    EXPECT_GT(r.serverProfile.total(), 0);
}

TEST(RunnerTest, SeedChangesScheduleNotCorrectness)
{
    Scenario a = smallScenario();
    a.seed = 1;
    Scenario b = smallScenario();
    b.seed = 99;
    RunResult ra = runScenario(a);
    RunResult rb = runScenario(b);
    EXPECT_EQ(ra.callsCompleted, rb.callsCompleted);
    EXPECT_EQ(ra.callsFailed + rb.callsFailed, 0u);
}

TEST(RunnerTest, ScalesClientMachinesWithoutFailures)
{
    Scenario sc = smallScenario();
    sc.clients = 30;
    sc.callsPerClient = 5;
    sc.clientMachines = 3;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 150u);
}

} // namespace

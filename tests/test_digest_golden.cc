/**
 * @file
 * Golden determinism digests. These two scenarios were captured before
 * the zero-copy message / pooled event-queue rework and pin the
 * simulation's observable behaviour byte-for-byte: any change to event
 * ordering, wire bytes (tcpBytes/tcpSegments are byte-exact), timing,
 * or counter accounting shows up here as a diff. Performance work must
 * keep these digests identical; a deliberate semantic change must
 * re-record them in the same commit that explains why.
 */

#include <gtest/gtest.h>

#include <string>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;

const char kUdpSeed7Golden[] = "ops=400\n"
                               "callsCompleted=200\n"
                               "callsFailed=0\n"
                               "phoneRetransmissions=0\n"
                               "reconnects=0\n"
                               "reconnectFailures=0\n"
                               "duration=11098333\n"
                               "inviteP50=557055\n"
                               "inviteP99=884735\n"
                               "timedOut=0\n"
                               "messagesIn=1240\n"
                               "requestsIn=640\n"
                               "responsesIn=600\n"
                               "forwards=1200\n"
                               "localReplies=240\n"
                               "parseErrors=0\n"
                               "routeFailures=0\n"
                               "retransAbsorbed=0\n"
                               "retransSent=0\n"
                               "retransTimeouts=0\n"
                               "timerB408s=0\n"
                               "registrations=40\n"
                               "connsAccepted=0\n"
                               "connsDestroyed=0\n"
                               "outboundConnects=0\n"
                               "overloadRejected=0\n"
                               "overloadThrottled=0\n"
                               "overloadPanicDrops=0\n"
                               "overloadShedEnters=0\n"
                               "overloadShedExits=0\n"
                               "tcpReadPauses=0\n"
                               "tcpReadResumes=0\n"
                               "tcpAcceptPauses=0\n"
                               "phoneRejected503=0\n"
                               "phoneBackoffs=0\n"
                               "proxyRecvQueueDrops=0\n"
                               "proxyAcceptRefused=0\n"
                               "occupancySamples=0\n"
                               "udpSent=2680\n"
                               "udpDelivered=2680\n"
                               "udpLost=0\n"
                               "udpDropped=0\n"
                               "tcpConnects=0\n"
                               "tcpRefused=0\n"
                               "tcpSegments=0\n"
                               "tcpBytes=0\n"
                               "sctpMessages=0\n"
                               "sctpDropped=0\n"
                               "sctpAssocs=0\n"
                               "faultDropped=0\n"
                               "faultDuplicated=0\n"
                               "faultDelayed=0\n"
                               "tcpFaultRefused=0\n"
                               "tcpRstInjected=0\n"
                               "tcpBlackholed=0\n"
                               "tcpRecoveries=0\n"
                               "txnEntriesAtEnd=800\n"
                               "retransEntriesAtEnd=0\n"
                               "connEntriesAtEnd=0\n";

const char kTcpSeed11Golden[] = "ops=240\n"
                                "callsCompleted=120\n"
                                "callsFailed=0\n"
                                "phoneRetransmissions=0\n"
                                "reconnects=60\n"
                                "reconnectFailures=0\n"
                                "duration=17417815\n"
                                "inviteP50=1015807\n"
                                "inviteP99=1441791\n"
                                "timedOut=0\n"
                                "messagesIn=810\n"
                                "requestsIn=450\n"
                                "responsesIn=360\n"
                                "forwards=720\n"
                                "localReplies=210\n"
                                "parseErrors=0\n"
                                "routeFailures=0\n"
                                "retransAbsorbed=0\n"
                                "retransSent=0\n"
                                "retransTimeouts=0\n"
                                "timerB408s=0\n"
                                "registrations=90\n"
                                "connsAccepted=90\n"
                                "connsDestroyed=0\n"
                                "outboundConnects=0\n"
                                "overloadRejected=0\n"
                                "overloadThrottled=0\n"
                                "overloadPanicDrops=0\n"
                                "overloadShedEnters=0\n"
                                "overloadShedExits=0\n"
                                "tcpReadPauses=0\n"
                                "tcpReadResumes=0\n"
                                "tcpAcceptPauses=0\n"
                                "phoneRejected503=0\n"
                                "phoneBackoffs=0\n"
                                "proxyRecvQueueDrops=0\n"
                                "proxyAcceptRefused=0\n"
                                "occupancySamples=0\n"
                                "udpSent=0\n"
                                "udpDelivered=0\n"
                                "udpLost=0\n"
                                "udpDropped=0\n"
                                "tcpConnects=90\n"
                                "tcpRefused=0\n"
                                "tcpSegments=1740\n"
                                "tcpBytes=524714\n"
                                "sctpMessages=0\n"
                                "sctpDropped=0\n"
                                "sctpAssocs=0\n"
                                "faultDropped=0\n"
                                "faultDuplicated=0\n"
                                "faultDelayed=0\n"
                                "tcpFaultRefused=0\n"
                                "tcpRstInjected=0\n"
                                "tcpBlackholed=0\n"
                                "tcpRecoveries=0\n"
                                "txnEntriesAtEnd=480\n"
                                "retransEntriesAtEnd=0\n"
                                "connEntriesAtEnd=90\n";

const char kTlsSeed13Golden[] = "ops=144\n"
                                "callsCompleted=72\n"
                                "callsFailed=0\n"
                                "phoneRetransmissions=0\n"
                                "reconnects=72\n"
                                "reconnectFailures=0\n"
                                "duration=12865877\n"
                                "inviteP50=917503\n"
                                "inviteP99=1245183\n"
                                "timedOut=0\n"
                                "messagesIn=528\n"
                                "requestsIn=312\n"
                                "responsesIn=216\n"
                                "forwards=432\n"
                                "localReplies=168\n"
                                "parseErrors=0\n"
                                "routeFailures=0\n"
                                "retransAbsorbed=0\n"
                                "retransSent=0\n"
                                "retransTimeouts=0\n"
                                "timerB408s=0\n"
                                "registrations=96\n"
                                "connsAccepted=96\n"
                                "connsDestroyed=0\n"
                                "outboundConnects=0\n"
                                "overloadRejected=0\n"
                                "overloadThrottled=0\n"
                                "overloadPanicDrops=0\n"
                                "overloadShedEnters=0\n"
                                "overloadShedExits=0\n"
                                "tcpReadPauses=0\n"
                                "tcpReadResumes=0\n"
                                "tcpAcceptPauses=0\n"
                                "phoneRejected503=0\n"
                                "phoneBackoffs=0\n"
                                "proxyRecvQueueDrops=0\n"
                                "proxyAcceptRefused=0\n"
                                "occupancySamples=0\n"
                                "udpSent=0\n"
                                "udpDelivered=0\n"
                                "udpLost=0\n"
                                "udpDropped=0\n"
                                "tcpConnects=96\n"
                                "tcpRefused=0\n"
                                "tcpSegments=1128\n"
                                "tcpBytes=333738\n"
                                "sctpMessages=0\n"
                                "sctpDropped=0\n"
                                "sctpAssocs=0\n"
                                "faultDropped=0\n"
                                "faultDuplicated=0\n"
                                "faultDelayed=0\n"
                                "tcpFaultRefused=0\n"
                                "tcpRstInjected=0\n"
                                "tcpBlackholed=0\n"
                                "tcpRecoveries=0\n"
                                "txnEntriesAtEnd=288\n"
                                "retransEntriesAtEnd=0\n"
                                "connEntriesAtEnd=96\n"
                                "tlsConnects=96\n"
                                "tlsHandshakesFull=24\n"
                                "tlsHandshakesResumed=72\n"
                                "tlsZeroRttResumes=0\n"
                                "tlsSessionEvictions=0\n"
                                "tlsHandshakeAborts=0\n"
                                "tlsRecords=1128\n";

const char kSstSeed17Golden[] = "ops=144\n"
                                "callsCompleted=72\n"
                                "callsFailed=0\n"
                                "phoneRetransmissions=0\n"
                                "reconnects=0\n"
                                "reconnectFailures=0\n"
                                "duration=5022364\n"
                                "inviteP50=409599\n"
                                "inviteP99=589823\n"
                                "timedOut=0\n"
                                "messagesIn=456\n"
                                "requestsIn=240\n"
                                "responsesIn=216\n"
                                "forwards=432\n"
                                "localReplies=96\n"
                                "parseErrors=0\n"
                                "routeFailures=0\n"
                                "retransAbsorbed=0\n"
                                "retransSent=0\n"
                                "retransTimeouts=0\n"
                                "timerB408s=0\n"
                                "registrations=24\n"
                                "connsAccepted=0\n"
                                "connsDestroyed=0\n"
                                "outboundConnects=0\n"
                                "overloadRejected=0\n"
                                "overloadThrottled=0\n"
                                "overloadPanicDrops=0\n"
                                "overloadShedEnters=0\n"
                                "overloadShedExits=0\n"
                                "tcpReadPauses=0\n"
                                "tcpReadResumes=0\n"
                                "tcpAcceptPauses=0\n"
                                "phoneRejected503=0\n"
                                "phoneBackoffs=0\n"
                                "proxyRecvQueueDrops=0\n"
                                "proxyAcceptRefused=0\n"
                                "occupancySamples=0\n"
                                "udpSent=0\n"
                                "udpDelivered=0\n"
                                "udpLost=0\n"
                                "udpDropped=0\n"
                                "tcpConnects=0\n"
                                "tcpRefused=0\n"
                                "tcpSegments=0\n"
                                "tcpBytes=0\n"
                                "sctpMessages=0\n"
                                "sctpDropped=0\n"
                                "sctpAssocs=0\n"
                                "faultDropped=0\n"
                                "faultDuplicated=0\n"
                                "faultDelayed=0\n"
                                "tcpFaultRefused=0\n"
                                "tcpRstInjected=0\n"
                                "tcpBlackholed=0\n"
                                "tcpRecoveries=0\n"
                                "txnEntriesAtEnd=288\n"
                                "retransEntriesAtEnd=0\n"
                                "connEntriesAtEnd=0\n"
                                "sstMessages=984\n"
                                "sstStreams=984\n"
                                "sstFrames=984\n"
                                "sstChannels=24\n"
                                "sstDropped=0\n"
                                "sstLost=0\n";

TEST(DigestGolden, UdpPaperScenarioSeed7)
{
    Scenario sc = paperScenario(core::Transport::Udp, 20, 0);
    sc.callsPerClient = 10;
    sc.seed = 7;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.digest(), kUdpSeed7Golden);
}

TEST(DigestGolden, TcpPaperScenarioSeed11)
{
    Scenario sc = paperScenario(core::Transport::Tcp, 15, 5);
    sc.callsPerClient = 8;
    sc.seed = 11;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.digest(), kTcpSeed11Golden);
}

TEST(DigestGolden, TlsPaperScenarioSeed13)
{
    // Connection churn every 4 ops: the TLS group in the digest pins
    // the full-vs-resumed handshake split byte-for-byte.
    Scenario sc = paperScenario(core::Transport::Tls, 12, 4);
    sc.callsPerClient = 6;
    sc.seed = 13;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.digest(), kTlsSeed13Golden);
}

TEST(DigestGolden, SstPaperScenarioSeed17)
{
    Scenario sc = paperScenario(core::Transport::Sst, 12, 0);
    sc.callsPerClient = 6;
    sc.seed = 17;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.digest(), kSstSeed17Golden);
}

TEST(DigestGolden, RepeatRunsAreByteIdentical)
{
    Scenario sc = paperScenario(core::Transport::Tcp, 10, 3);
    sc.callsPerClient = 5;
    sc.seed = 42;
    RunResult a = runScenario(sc);
    RunResult b = runScenario(sc);
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace

/**
 * @file
 * Tests for the link-level fault-injection subsystem: per-link
 * impairment policies (loss, duplication, reordering, delay,
 * partitions), TCP-specific faults (connect refusal, mid-stream RST,
 * stalled peer, in-kernel loss recovery), the FaultStats counters, and
 * seed-reproducible determinism of impaired scenario runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net_fixture.hh"
#include "stats/fault_stats.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

// NetFixture attach order: server is host 1, client is host 2.
constexpr std::uint32_t kServer = 1;
constexpr std::uint32_t kClient = 2;

Task
sendN(Process &p, UdpSocket *sock, Addr dst, int n, std::string prefix)
{
    for (int i = 0; i < n; ++i)
        co_await sock->sendTo(p, dst, prefix + std::to_string(i));
}

Task
recvN(Process &p, UdpSocket *sock, int n, std::vector<Datagram> *out)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        out->push_back(std::move(d));
    }
}

// --- FaultStats ------------------------------------------------------------

TEST(FaultStatsTest, TotalsSumAcrossLinks)
{
    stats::FaultStats fs;
    fs.link(1, 2).lost = 3;
    fs.link(1, 2).duplicated = 1;
    fs.link(2, 1).lost = 2;
    EXPECT_EQ(fs.linkCount(), 2u);
    EXPECT_EQ(fs.total().lost, 5u);
    EXPECT_EQ(fs.total().duplicated, 1u);
    ASSERT_NE(fs.find(1, 2), nullptr);
    EXPECT_EQ(fs.find(1, 2)->lost, 3u);
    EXPECT_EQ(fs.find(3, 4), nullptr);
}

TEST(FaultStatsTest, DigestIsCanonicalAndOrdered)
{
    stats::FaultStats a, b;
    // Touch links in opposite order: the digest must not care.
    a.link(2, 1).lost = 7;
    a.link(1, 2).offered = 5;
    b.link(1, 2).offered = 5;
    b.link(2, 1).lost = 7;
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.digest().find("1>2"), std::string::npos);
    EXPECT_NE(a.digest().find("2>1"), std::string::npos);

    b.link(2, 1).lost = 8;
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FaultStatsTest, EmptyTableRendersAndDigests)
{
    stats::FaultStats fs;
    EXPECT_TRUE(fs.empty());
    EXPECT_EQ(fs.digest(), "");
    fs.link(1, 2).offered = 1;
    EXPECT_FALSE(fs.empty());
    EXPECT_FALSE(fs.table().render().empty());
}

// --- Impairment policy bookkeeping ----------------------------------------

TEST(ImpairmentTest, TrivialDetectionAndEnableFlag)
{
    EXPECT_TRUE(Impairment{}.trivial());
    Impairment lossy;
    lossy.lossProb = 0.1;
    EXPECT_FALSE(lossy.trivial());

    FaultInjector inj(1);
    EXPECT_FALSE(inj.enabled());
    inj.setLink(1, 2, Impairment{}); // trivial: stays disabled
    EXPECT_FALSE(inj.enabled());
    inj.setLink(1, 2, lossy);
    EXPECT_TRUE(inj.enabled());
}

TEST(ImpairmentTest, LookupPrefersLinkOverDefault)
{
    FaultInjector inj(1);
    Impairment def;
    def.extraDelay = msecs(1);
    inj.setDefault(def);
    Impairment special;
    special.lossProb = 0.5;
    inj.setLink(1, 2, special);
    EXPECT_EQ(inj.lookup(1, 2).lossProb, 0.5);
    EXPECT_EQ(inj.lookup(1, 2).extraDelay, 0);
    EXPECT_EQ(inj.lookup(2, 1).extraDelay, msecs(1));
    EXPECT_TRUE(inj.enabled());
}

TEST(ImpairmentTest, PartitionWindowsAreTwoWayAndTimed)
{
    FaultInjector inj(1);
    inj.addPartition(1, 2, msecs(10), msecs(20));
    EXPECT_FALSE(inj.partitioned(1, 2, msecs(5)));
    EXPECT_TRUE(inj.partitioned(1, 2, msecs(10)));
    EXPECT_TRUE(inj.partitioned(2, 1, msecs(15)));
    EXPECT_FALSE(inj.partitioned(1, 2, msecs(20)));
    // Other links are unaffected.
    EXPECT_FALSE(inj.partitioned(1, 3, msecs(15)));
}

TEST(ImpairmentTest, SameSeedSameVerdicts)
{
    Impairment imp;
    imp.lossProb = 0.3;
    imp.dupProb = 0.2;
    imp.jitter = msecs(5);
    auto roll = [&](std::uint64_t seed) {
        FaultInjector inj(seed);
        inj.setLink(1, 2, imp);
        std::string trace;
        for (int i = 0; i < 200; ++i) {
            auto v = inj.onDatagram(0, 1, 2);
            trace += v.drop ? 'd' : (v.copies > 1 ? '2' : '.');
            trace += std::to_string(v.extraDelay);
        }
        return trace;
    };
    EXPECT_EQ(roll(42), roll(42));
    EXPECT_NE(roll(42), roll(43));
}

// --- UDP datagram faults ---------------------------------------------------

TEST_F(NetFixture, UdpLossAppliesToOneDirectionOnly)
{
    Impairment imp;
    imp.lossProb = 0.5;
    net.faults().setLink(kClient, kServer, imp);

    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 1000, "x");
    });
    sim.run();
    const auto *up = net.faults().stats().find(kClient, kServer);
    ASSERT_NE(up, nullptr);
    EXPECT_NEAR(static_cast<double>(up->lost) / 1000.0, 0.5, 0.07);
    EXPECT_EQ(net.stats().udpDelivered + net.stats().udpLost, 1000u);

    // The reverse direction is clean.
    std::uint64_t delivered_before = net.stats().udpDelivered;
    serverMachine.spawn("tx2", 0, [&](Process &p) {
        return sendN(p, &ssock, client.addr(9000), 100, "y");
    });
    sim.run();
    EXPECT_EQ(net.stats().udpDelivered, delivered_before + 100);
    // The reverse link was consulted (offered counts) but untouched.
    const auto *down = net.faults().stats().find(kServer, kClient);
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->offered, 100u);
    EXPECT_EQ(down->lost, 0u);
}

TEST_F(NetFixture, UdpDuplicationDeliversTwice)
{
    Impairment imp;
    imp.dupProb = 1.0;
    net.faults().setLink(kClient, kServer, imp);

    server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 10, "x");
    });
    sim.run();
    EXPECT_EQ(net.stats().udpSent, 10u);
    EXPECT_EQ(net.stats().udpDelivered, 20u);
    EXPECT_EQ(net.faults().stats().find(kClient, kServer)->duplicated,
              10u);
}

TEST_F(NetFixture, UdpExtraDelayPostponesDelivery)
{
    Impairment imp;
    imp.extraDelay = msecs(50);
    net.faults().setLink(kClient, kServer, imp);

    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got;
    SimTime arrived = 0;
    serverMachine.spawn("rx", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, UdpSocket *sock, std::vector<Datagram> *out,
                SimTime *at)
            {
                co_await recvN(p, sock, 1, out);
                *at = p.sim().now();
            }
        };
        return Body::run(p, &ssock, &got, &arrived);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 1, "x");
    });
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_GE(arrived, msecs(50));
    EXPECT_EQ(net.stats().faultDelayed, 1u);
}

TEST_F(NetFixture, UdpReorderingScramblesButDeliversAll)
{
    Impairment imp;
    imp.reorderProb = 1.0;
    imp.reorderWindow = msecs(30);
    net.faults().setLink(kClient, kServer, imp);

    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return recvN(p, &ssock, 50, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 50, "m");
    });
    sim.run();
    ASSERT_EQ(got.size(), 50u);
    bool in_order = true;
    for (int i = 0; i < 50; ++i) {
        if (got[static_cast<std::size_t>(i)].payload
            != "m" + std::to_string(i))
            in_order = false;
    }
    EXPECT_FALSE(in_order);
    EXPECT_GT(net.faults().stats().find(kClient, kServer)->reordered,
              0u);
}

TEST_F(NetFixture, UdpPartitionDropsOnlyInsideWindow)
{
    net.faults().addPartition(kServer, kClient, msecs(10), msecs(20));
    server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    clientMachine.spawn("tx", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, UdpSocket *sock, Addr dst)
            {
                co_await sock->sendTo(p, dst, "before");
                co_await p.sleepFor(msecs(15));
                co_await sock->sendTo(p, dst, "inside");
                co_await p.sleepFor(msecs(10));
                co_await sock->sendTo(p, dst, "after");
            }
        };
        return Body::run(p, &csock, server.addr(5060));
    });
    sim.run();
    EXPECT_EQ(net.stats().udpDelivered, 2u);
    EXPECT_EQ(net.stats().udpLost, 1u);
    EXPECT_EQ(
        net.faults().stats().find(kClient, kServer)->partitionDrops,
        1u);
}

// --- TCP faults ------------------------------------------------------------

TEST_F(NetFixture, TcpConnectRefusalByProbability)
{
    Impairment imp;
    imp.connectRefuseProb = 1.0;
    net.faults().setLink(kClient, kServer, imp);

    server.tcpListen(5060);
    bool refused = false;
    clientMachine.spawn("c", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *client, Addr dst, bool *refused)
            {
                TcpConn conn;
                try {
                    co_await client->tcpConnect(p, dst, conn);
                } catch (const NetError &e) {
                    *refused = e.code() == NetErrc::ConnectionRefused;
                }
            }
        };
        return Body::run(p, &client, server.addr(5060), &refused);
    });
    sim.run();
    EXPECT_TRUE(refused);
    EXPECT_EQ(net.stats().tcpFaultRefused, 1u);
    EXPECT_EQ(net.stats().tcpRefused, 1u);
    EXPECT_EQ(
        net.faults().stats().find(kClient, kServer)->connectsRefused,
        1u);
}

TEST_F(NetFixture, TcpConnectRefusedDuringPartition)
{
    net.faults().addPartition(kServer, kClient, 0);
    server.tcpListen(5060);
    bool refused = false;
    clientMachine.spawn("c", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *client, Addr dst, bool *refused)
            {
                TcpConn conn;
                try {
                    co_await client->tcpConnect(p, dst, conn);
                } catch (const NetError &) {
                    *refused = true;
                }
            }
        };
        return Body::run(p, &client, server.addr(5060), &refused);
    });
    sim.run();
    EXPECT_TRUE(refused);
}

TEST_F(NetFixture, TcpMidStreamRstKillsBothEnds)
{
    auto &listener = server.tcpListen(5060);
    std::string first, second;
    bool client_dead = false;
    serverMachine.spawn("srv", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, TcpListener *l, std::string *first,
                std::string *second)
            {
                TcpConn conn;
                co_await l->accept(p, conn);
                co_await conn.recv(p, *first);
                // Second read observes the injected RST: empty.
                co_await conn.recv(p, *second);
                co_await conn.close(p);
            }
        };
        return Body::run(p, &listener, &first, &second);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *client, Network *net, Addr dst,
                bool *client_dead)
            {
                TcpConn conn;
                co_await client->tcpConnect(p, dst, conn);
                co_await conn.send(p, "hello");
                // Arm the RST only now, so the greeting goes through.
                Impairment imp;
                imp.rstProb = 1.0;
                net->faults().setLink(kClient, kServer, imp);
                co_await conn.send(p, "doomed");
                std::string out;
                co_await conn.recv(p, out);
                *client_dead = out.empty();
                co_await conn.close(p);
            }
        };
        return Body::run(p, &client, &net, server.addr(5060),
                         &client_dead);
    });
    sim.run();
    EXPECT_EQ(first, "hello");
    EXPECT_EQ(second, ""); // reset, not data
    EXPECT_TRUE(client_dead);
    EXPECT_EQ(net.stats().tcpRstInjected, 1u);
    EXPECT_EQ(net.faults().stats().find(kClient, kServer)->rstsInjected,
              1u);
}

TEST_F(NetFixture, TcpLossRecoversLateButInOrder)
{
    Impairment imp;
    imp.lossProb = 1.0;
    imp.recoveryDelay = msecs(100);
    net.faults().setLink(kClient, kServer, imp);

    auto &listener = server.tcpListen(5060);
    std::string got;
    SimTime arrived = 0;
    serverMachine.spawn("srv", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, TcpListener *l, std::string *got,
                SimTime *at)
            {
                TcpConn conn;
                co_await l->accept(p, conn);
                while (got->size() < 10) {
                    std::string chunk;
                    co_await conn.recv(p, chunk);
                    if (chunk.empty())
                        break;
                    *got += chunk;
                }
                *at = p.sim().now();
                co_await conn.close(p);
            }
        };
        return Body::run(p, &listener, &got, &arrived);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *client, Addr dst)
            {
                TcpConn conn;
                co_await client->tcpConnect(p, dst, conn);
                co_await conn.send(p, "01234");
                co_await conn.send(p, "56789");
                co_await conn.close(p);
            }
        };
        return Body::run(p, &client, server.addr(5060));
    });
    sim.run();
    EXPECT_EQ(got, "0123456789"); // delivered, ordered
    EXPECT_GE(arrived, msecs(100));
    EXPECT_GE(net.stats().tcpRecoveries, 2u);
    EXPECT_GE(net.faults().stats().find(kClient, kServer)->recoveries,
              2u);
}

TEST_F(NetFixture, TcpStalledPeerBlackholesSegments)
{
    Impairment imp;
    imp.stalled = true;
    net.faults().setLink(kClient, kServer, imp);

    auto &listener = server.tcpListen(5060);
    TcpConn server_conn;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return listener.accept(p, server_conn);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *client, Addr dst)
            {
                TcpConn conn;
                co_await client->tcpConnect(p, dst, conn);
                // The kernel accepts these sends without error...
                co_await conn.send(p, "into the void");
                co_await conn.send(p, "more bytes");
                co_await conn.close(p);
            }
        };
        return Body::run(p, &client, server.addr(5060));
    });
    sim.runFor(secs(1));
    // ...but nothing ever reaches the peer, not even the FIN.
    EXPECT_TRUE(server_conn.valid());
    EXPECT_EQ(server_conn.endpoint()->rxAvailable(), 0u);
    EXPECT_FALSE(server_conn.endpoint()->peerClosed());
    EXPECT_EQ(net.stats().tcpBlackholed, 3u); // two sends + the FIN
    EXPECT_EQ(net.faults().stats().find(kClient, kServer)->stalledDrops,
              3u);
}

// --- SCTP ------------------------------------------------------------------

TEST_F(NetFixture, SctpLossRecoveryPreservesOrder)
{
    Impairment imp;
    imp.lossProb = 0.5;
    imp.recoveryDelay = msecs(20);
    net.faults().setLink(kClient, kServer, imp);

    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, SctpSocket *sock,
                std::vector<Datagram> *out)
            {
                for (int i = 0; i < 30; ++i) {
                    Datagram d;
                    co_await sock->recvFrom(p, d);
                    out->push_back(std::move(d));
                }
            }
        };
        return Body::run(p, &ssock, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, SctpSocket *sock, Addr dst)
            {
                for (int i = 0; i < 30; ++i)
                    co_await sock->sendTo(p, dst,
                                          "m" + std::to_string(i));
            }
        };
        return Body::run(p, &csock, server.addr(5060));
    });
    sim.run();
    ASSERT_EQ(got.size(), 30u);
    for (int i = 0; i < 30; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)].payload,
                  "m" + std::to_string(i));
    }
    EXPECT_GT(net.faults().stats().find(kClient, kServer)->recoveries,
              0u);
}

// --- Determinism across full scenario runs ---------------------------------

workload::Scenario
impairedScenario(std::uint64_t seed)
{
    workload::Scenario sc;
    sc.proxy.transport = core::Transport::Udp;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 5;
    sc.clientMachines = 2;
    sc.seed = seed;
    sc.maxDuration = secs(120);
    sc.phoneResponseTimeout = secs(10);
    workload::LinkFault lf;
    lf.imp.lossProb = 0.1;
    lf.imp.dupProb = 0.05;
    lf.imp.jitter = msecs(2);
    sc.linkFaults.push_back(lf);
    return sc;
}

TEST(FaultDeterminismTest, SameSeedGivesByteIdenticalDigests)
{
    workload::RunResult a = runScenario(impairedScenario(7));
    workload::RunResult b = runScenario(impairedScenario(7));
    EXPECT_EQ(a.digest(), b.digest());
    // The impairments actually fired.
    EXPECT_GT(a.faults.total().lost + a.faults.total().duplicated, 0u);
}

TEST(FaultDeterminismTest, DifferentSeedsDiverge)
{
    workload::RunResult a = runScenario(impairedScenario(7));
    workload::RunResult b = runScenario(impairedScenario(8));
    EXPECT_NE(a.digest(), b.digest());
}

} // namespace

/**
 * @file
 * SCTP socket tests: message boundaries, kernel association setup and
 * reuse, idle association reaping, and bidirectional traffic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net_fixture.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

using SctpTest = NetFixture;

Task
sctpSendN(Process &p, SctpSocket *sock, Addr dst, int n,
          std::string prefix, std::vector<SimTime> *sent_at = nullptr)
{
    for (int i = 0; i < n; ++i) {
        co_await sock->sendTo(p, dst, prefix + std::to_string(i));
        if (sent_at)
            sent_at->push_back(p.sim().now());
    }
}

Task
sctpRecvN(Process &p, SctpSocket *sock, int n, std::vector<Datagram> *out,
          std::vector<SimTime> *recv_at = nullptr)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        out->push_back(std::move(d));
        if (recv_at)
            recv_at->push_back(p.sim().now());
    }
}

TEST_F(SctpTest, MessageBoundariesPreserved)
{
    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sctpRecvN(p, &ssock, 20, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sctpSendN(p, &csock, server.addr(5060), 20, "msg");
    });
    sim.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(got[i].payload, "msg" + std::to_string(i));
        EXPECT_EQ(got[i].src, client.addr(9000));
    }
}

TEST_F(SctpTest, FirstMessagePaysAssociationSetup)
{
    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> got;
    std::vector<SimTime> recv_at;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sctpRecvN(p, &ssock, 2, &got, &recv_at);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sctpSendN(p, &csock, server.addr(5060), 2, "m");
    });
    // Observe before the idle sweeper reaps the association.
    sim.runUntil(sim::secs(1));
    ASSERT_EQ(recv_at.size(), 2u);
    // First message: assoc CPU + ~3x latency; second: ~1x latency gap.
    EXPECT_GT(recv_at[0], 3 * net.config().latency);
    EXPECT_EQ(net.stats().sctpAssocs, 1u);
    EXPECT_EQ(csock.assocCount(), 1u);
    EXPECT_EQ(ssock.assocCount(), 1u);
}

TEST_F(SctpTest, AssociationReusedAcrossMessages)
{
    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sctpRecvN(p, &ssock, 100, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sctpSendN(p, &csock, server.addr(5060), 100, "m");
    });
    sim.run();
    EXPECT_EQ(net.stats().sctpAssocs, 1u);
    EXPECT_EQ(got.size(), 100u);
}

Task
sctpEcho(Process &p, SctpSocket *sock, int n)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        co_await sock->sendTo(p, d.src, "re:" + d.payload);
    }
}

TEST_F(SctpTest, BidirectionalEchoSharesAssociation)
{
    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> replies;
    serverMachine.spawn("echo", 0, [&](Process &p) {
        return sctpEcho(p, &ssock, 5);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sctpSendN(p, &csock, server.addr(5060), 5, "q");
    });
    clientMachine.spawn("rx", 0, [&](Process &p) {
        return sctpRecvN(p, &csock, 5, &replies);
    });
    sim.run();
    ASSERT_EQ(replies.size(), 5u);
    EXPECT_EQ(replies[0].payload, "re:q0");
    // The server's replies ride the existing association: one setup.
    EXPECT_EQ(net.stats().sctpAssocs, 1u);
}

TEST_F(SctpTest, IdleAssociationsReaped)
{
    auto &ssock = server.sctpBind(5060);
    auto &csock = client.sctpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sctpRecvN(p, &ssock, 1, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sctpSendN(p, &csock, server.addr(5060), 1, "m");
    });
    sim.runUntil(sim::secs(1));
    EXPECT_EQ(csock.assocCount(), 1u);
    // Run past the idle timeout plus a sweep interval.
    sim.run();
    EXPECT_EQ(csock.assocCount(), 0u);
    EXPECT_EQ(ssock.assocCount(), 0u);
}

} // namespace

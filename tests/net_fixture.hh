/**
 * @file
 * Shared fixture for network-layer tests: a simulation with two
 * machines attached to one network.
 */

#ifndef SIPROX_TESTS_NET_FIXTURE_HH
#define SIPROX_TESTS_NET_FIXTURE_HH

#include <gtest/gtest.h>

#include "net/network.hh"
#include "net/sctp.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/simulation.hh"

namespace siprox::tests {

class NetFixture : public ::testing::Test
{
  protected:
    NetFixture() : NetFixture(net::NetConfig{}) {}

    explicit NetFixture(net::NetConfig cfg)
        : sim(42), net(sim, cfg),
          serverMachine(sim.addMachine("server", 4)),
          clientMachine(sim.addMachine("client", 2)),
          server(net.attach(serverMachine)),
          client(net.attach(clientMachine))
    {
    }

    sim::Simulation sim;
    net::Network net;
    sim::Machine &serverMachine;
    sim::Machine &clientMachine;
    net::Host &server;
    net::Host &client;
};

} // namespace siprox::tests

#endif // SIPROX_TESTS_NET_FIXTURE_HH

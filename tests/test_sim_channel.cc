/**
 * @file
 * Channel and poll tests, including the §6 blocking-IPC deadlock: a
 * supervisor blocked sending to a worker whose channel is full while the
 * worker is blocked waiting for a reply from the supervisor.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hh"
#include "sim/pollable.hh"
#include "sim/simulation.hh"

namespace {

using namespace siprox::sim;

Task
producer(Process &p, Channel<int> *ch, int n, SimTime gap)
{
    for (int i = 0; i < n; ++i) {
        if (gap > 0)
            co_await p.sleepFor(gap);
        co_await ch->send(p, i);
    }
}

Task
consumer(Process &p, Channel<int> *ch, int n, std::vector<int> *out,
         SimTime gap)
{
    for (int i = 0; i < n; ++i) {
        if (gap > 0)
            co_await p.sleepFor(gap);
        int v = 0;
        co_await ch->recv(p, v);
        out->push_back(v);
    }
}

TEST(ChannelTest, DeliversInOrder)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> ch(8);
    std::vector<int> got;
    m.spawn("prod", 0,
            [&](Process &p) { return producer(p, &ch, 20, 0); });
    m.spawn("cons", 0,
            [&](Process &p) { return consumer(p, &ch, 20, &got, 0); });
    sim.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(ChannelTest, SendBlocksWhenFull)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> ch(2);
    std::vector<int> got;
    m.spawn("prod", 0,
            [&](Process &p) { return producer(p, &ch, 10, 0); });
    // Slow consumer paces the producer through the full buffer.
    m.spawn("cons", 0, [&](Process &p) {
        return consumer(p, &ch, 10, &got, usecs(10));
    });
    sim.run();
    EXPECT_EQ(got.size(), 10u);
    EXPECT_EQ(sim.now(), usecs(100));
}

TEST(ChannelTest, TrySendRespectsCapacity)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.trySend(1));
    EXPECT_TRUE(ch.trySend(2));
    EXPECT_FALSE(ch.trySend(3));
    int v = 0;
    EXPECT_TRUE(ch.tryRecv(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ch.trySend(3));
    EXPECT_TRUE(ch.tryRecv(v));
    EXPECT_TRUE(ch.tryRecv(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(ch.tryRecv(v));
}

TEST(ChannelTest, MultipleReceiversEachGetOneMessage)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 2);
    Channel<int> ch(16);
    std::vector<int> got_a, got_b;
    m.spawn("a", 0,
            [&](Process &p) { return consumer(p, &ch, 5, &got_a, 0); });
    m.spawn("b", 0,
            [&](Process &p) { return consumer(p, &ch, 5, &got_b, 0); });
    m.spawn("prod", 0,
            [&](Process &p) { return producer(p, &ch, 10, usecs(1)); });
    sim.run();
    EXPECT_EQ(got_a.size() + got_b.size(), 10u);
}

// --- poll ----------------------------------------------------------------

Task
pollTwo(Process &p, Channel<int> *a, Channel<int> *b,
        std::vector<int> *which, int rounds)
{
    std::vector<Pollable *> items{&a->readable(), &b->readable()};
    for (int i = 0; i < rounds; ++i) {
        int idx = -2;
        co_await poll(p, items, kTimeNever, idx);
        which->push_back(idx);
        int v = 0;
        if (idx == 0)
            a->tryRecv(v);
        else
            b->tryRecv(v);
    }
}

TEST(PollTest, WakesOnWhicheverChannelIsReady)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> a(4), b(4);
    std::vector<int> which;
    m.spawn("poller", 0, [&](Process &p) {
        return pollTwo(p, &a, &b, &which, 4);
    });
    m.spawn("sender", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Channel<int> *a, Channel<int> *b)
            {
                co_await p.sleepFor(usecs(10));
                co_await b->send(p, 1);
                co_await p.sleepFor(usecs(10));
                co_await a->send(p, 2);
                co_await p.sleepFor(usecs(10));
                co_await b->send(p, 3);
                co_await b->send(p, 4);
            }
        };
        return Body::run(p, &a, &b);
    });
    sim.run();
    EXPECT_EQ(which, (std::vector<int>{1, 0, 1, 1}));
}

Task
pollWithTimeout(Process &p, Channel<int> *ch, SimTime timeout, int *idx,
                SimTime *when)
{
    std::vector<Pollable *> items{&ch->readable()};
    co_await poll(p, items, timeout, *idx);
    *when = p.sim().now();
}

TEST(PollTest, TimesOutWhenNothingReady)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> ch(4);
    int idx = -2;
    SimTime when = -1;
    m.spawn("poller", 0, [&](Process &p) {
        return pollWithTimeout(p, &ch, msecs(3), &idx, &when);
    });
    sim.run();
    EXPECT_EQ(idx, -1);
    EXPECT_EQ(when, msecs(3));
}

TEST(PollTest, ImmediateReadinessSkipsBlocking)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> ch(4);
    ch.trySend(42);
    int idx = -2;
    SimTime when = -1;
    m.spawn("poller", 0, [&](Process &p) {
        return pollWithTimeout(p, &ch, msecs(3), &idx, &when);
    });
    sim.run();
    EXPECT_EQ(idx, 0);
    EXPECT_EQ(when, 0);
}

TEST(PollTest, ZeroTimeoutIsNonBlocking)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    Channel<int> ch(4);
    int idx = -2;
    SimTime when = -1;
    m.spawn("poller", 0, [&](Process &p) {
        return pollWithTimeout(p, &ch, 0, &idx, &when);
    });
    sim.run();
    EXPECT_EQ(idx, -1);
    EXPECT_EQ(when, 0);
}

// --- the §6 deadlock ------------------------------------------------------

/**
 * Worker: requests a file descriptor from the supervisor, then blocks
 * reading the reply channel (ignoring its new-connection channel, as
 * OpenSER's worker does while forwarding). Supervisor: pushes new
 * connections into the worker's tiny new-connection channel. When the
 * supervisor blocks on a full channel while the worker blocks awaiting
 * a reply, the pair deadlocks — the §6 scenario.
 */
Task
deadlockWorker(Process &p, Channel<int> *requests, Channel<int> *replies,
               int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await requests->send(p, i);
        int reply = 0;
        co_await replies->recv(p, reply);
    }
}

Task
deadlockSupervisor(Process &p, Channel<int> *requests,
                   Channel<int> *replies, Channel<int> *new_conns,
                   int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        // Unsolicited pushes (new connections in OpenSER terms).
        co_await new_conns->send(p, 1000 + i);
        co_await new_conns->send(p, 2000 + i);
        int req = 0;
        co_await requests->recv(p, req);
        co_await replies->send(p, req);
    }
}

TEST(DeadlockTest, BlockingIpcDeadlocksWithTinyBuffers)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 2);
    Channel<int> requests(1), replies(1), new_conns(1);
    m.spawn("worker", 0, [&](Process &p) {
        return deadlockWorker(p, &requests, &replies, 100);
    });
    m.spawn("sup", 0, [&](Process &p) {
        return deadlockSupervisor(p, &requests, &replies, &new_conns,
                                  100);
    });
    sim.run();
    // The simulation quiesces with both processes blocked: deadlock.
    EXPECT_TRUE(sim.hasLiveProcesses());
    auto blocked = sim.blockedReport();
    ASSERT_EQ(blocked.size(), 2u);
    EXPECT_NE(blocked[0].find("chan"), std::string::npos);
    EXPECT_NE(blocked[1].find("chan"), std::string::npos);
}

} // namespace

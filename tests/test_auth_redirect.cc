/**
 * @file
 * Tests for the extension features from the paper's context: digest
 * authentication (the dominant cost factor per Nahum et al., cited in
 * §7) and redirect-server operation (§2).
 */

#include <gtest/gtest.h>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::Transport;

Scenario
smallScenario(Transport transport)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 6;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);
    return sc;
}

TEST(AuthTest, ChallengedCallsStillComplete)
{
    Scenario sc = smallScenario(Transport::Udp);
    sc.proxy.authenticate = true;
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 4u * 6u);
    // Every phone was challenged at least once (first REGISTER) and
    // every subsequent request carried verified credentials.
    EXPECT_GE(r.counters.authChallenges, 8u);
    EXPECT_GT(r.counters.authAccepted, 0u);
}

TEST(AuthTest, AuthWorksOverTcp)
{
    Scenario sc = smallScenario(Transport::Tcp);
    sc.proxy.authenticate = true;
    sc.proxy.fdCache = true;
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_GT(r.counters.authAccepted, 0u);
}

TEST(AuthTest, AuthCostsReduceThroughput)
{
    Scenario base = smallScenario(Transport::Udp);
    base.clients = 20;
    base.callsPerClient = 40;
    RunResult plain = runScenario(base);
    base.proxy.authenticate = true;
    RunResult authed = runScenario(base);
    EXPECT_EQ(authed.callsFailed, 0u);
    // Nahum et al.: authentication is a large, first-order cost.
    EXPECT_LT(authed.opsPerSec, plain.opsPerSec * 0.95);
    EXPECT_GT(authed.serverProfile.at("ser:auth"), 0);
}

TEST(RedirectTest, CallsCompleteViaDirectSignaling)
{
    Scenario sc = smallScenario(Transport::Udp);
    sc.proxy.redirect = true;
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 4u * 6u);
    // One 302 per call; no INVITE forwarding through the server.
    EXPECT_EQ(r.counters.redirects, 4u * 6u);
    EXPECT_EQ(r.reconnects, 0u);
}

TEST(RedirectTest, ServerHandlesFarFewerMessages)
{
    Scenario proxy_sc = smallScenario(Transport::Udp);
    proxy_sc.clients = 10;
    proxy_sc.callsPerClient = 20;
    RunResult proxied = runScenario(proxy_sc);
    proxy_sc.proxy.redirect = true;
    RunResult redirected = runScenario(proxy_sc);
    EXPECT_EQ(redirected.callsFailed, 0u);
    // Proxied: ~8 messages per call at the server. Redirected: ~2
    // (INVITE in, 302 out); everything else goes phone-to-phone.
    EXPECT_LT(redirected.counters.messagesIn,
              proxied.counters.messagesIn / 2);
    EXPECT_EQ(redirected.counters.forwards, 0u);
}

TEST(RedirectTest, SctpRedirectAlsoWorks)
{
    Scenario sc = smallScenario(Transport::Sctp);
    sc.proxy.redirect = true;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_GT(r.counters.redirects, 0u);
}

TEST(RedirectTest, AuthAndRedirectCompose)
{
    Scenario sc = smallScenario(Transport::Udp);
    sc.proxy.redirect = true;
    sc.proxy.authenticate = true;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_GT(r.counters.redirects, 0u);
    EXPECT_GT(r.counters.authAccepted, 0u);
}

} // namespace

/**
 * @file
 * Retransmission and timeout behaviour under injected faults: RFC 3261
 * retransmission recovering UDP loss, stateful duplicate absorption,
 * reorder tolerance, Timer B expiry generating 408s and reclaiming
 * transaction-table entries, TCP mid-stream resets evicting
 * connection-table entries, and partition-heal recovery.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/proxy.hh"
#include "net/network.hh"
#include "sim/simulation.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"
#include "sip/timers.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::core;

// --- RetransList unit tests -----------------------------------------------

RetransList::Entry
entryFor(const std::string &branch, sim::SimTime now, bool invite)
{
    RetransList::Entry e;
    e.key = sip::TransactionKey{branch,
                                invite ? sip::Method::Invite
                                       : sip::Method::Bye};
    e.wire = "WIRE-" + branch;
    e.dst = net::Addr{2, 16000};
    e.interval = sip::timers::kT1;
    e.nextAt = now + sip::timers::kT1;
    e.deadline = now + sip::timers::kTimerB;
    e.invite = invite;
    return e;
}

TEST(RetransListTimeoutTest, CollectDueReturnsExpiredEntries)
{
    RetransList list;
    list.arm(entryFor("b1", 0, true));
    list.arm(entryFor("b2", 0, false));
    std::vector<RetransList::Due> due;
    std::vector<RetransList::TimedOut> timed_out;
    list.collectDue(sip::timers::kTimerB + 1, due, timed_out);
    EXPECT_TRUE(due.empty());
    ASSERT_EQ(timed_out.size(), 2u);
    EXPECT_EQ(timed_out[0].key.branch, "b1");
    EXPECT_EQ(timed_out[0].wire, "WIRE-b1");
    EXPECT_TRUE(timed_out[0].invite);
    EXPECT_FALSE(timed_out[1].invite);
    EXPECT_EQ(list.size(), 0u);
}

TEST(RetransListTimeoutTest, LegacyOverloadStillCountsTimeouts)
{
    RetransList list;
    list.arm(entryFor("b1", 0, true));
    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    list.collectDue(sip::timers::kTimerB + 1, due, timeouts);
    EXPECT_EQ(timeouts, 1u);
    EXPECT_EQ(list.size(), 0u);
}

TEST(RetransListTimeoutTest, CancelledEntriesDoNotTimeOut)
{
    RetransList list;
    list.arm(entryFor("b1", 0, true));
    list.cancel(sip::TransactionKey{"b1", sip::Method::Invite});
    std::vector<RetransList::Due> due;
    std::vector<RetransList::TimedOut> timed_out;
    list.collectDue(sip::timers::kTimerB + 1, due, timed_out);
    EXPECT_TRUE(timed_out.empty());
    EXPECT_EQ(list.size(), 0u);
}

// --- Timer B at the engine level ------------------------------------------

class TimerBTest : public ::testing::Test
{
  protected:
    TimerBTest() : machine(sim.addMachine("server", 4)), proxyAddr{1, 5060}
    {
        cfg.transport = Transport::Udp;
        cfg.stateful = true;
    }

    std::vector<SendAction>
    handle(const std::string &raw, net::Addr src)
    {
        Engine engine(shared, cfg, proxyAddr, 0);
        std::vector<SendAction> actions;
        machine.spawn("driver", 0, [&](sim::Process &p) -> sim::Task {
            struct Body
            {
                static sim::Task
                run(sim::Process &p, Engine *engine, std::string raw,
                    net::Addr src, std::vector<SendAction> *actions)
                {
                    co_await engine->handleMessage(
                        p, std::move(raw), MsgSource{src, 0}, *actions);
                }
            };
            return Body::run(p, &engine, raw, src, &actions);
        });
        sim.run();
        return actions;
    }

    std::vector<SendAction>
    timeout(const RetransList::TimedOut &to)
    {
        Engine engine(shared, cfg, proxyAddr, 0);
        std::vector<SendAction> actions;
        machine.spawn("timer", 0, [&](sim::Process &p) -> sim::Task {
            struct Body
            {
                static sim::Task
                run(sim::Process &p, Engine *engine,
                    const RetransList::TimedOut *to,
                    std::vector<SendAction> *actions)
                {
                    co_await engine->handleTimeout(p, *to, actions);
                }
            };
            return Body::run(p, &engine, &to, &actions);
        });
        sim.run();
        return actions;
    }

    void
    registerBob()
    {
        sip::RequestSpec spec;
        spec.method = sip::Method::Register;
        spec.requestUri = sip::uriForAddr("", proxyAddr);
        spec.from = sip::uriForAddr("bob", bobAddr);
        spec.to = sip::uriForAddr("bob", proxyAddr);
        spec.fromTag = "rt";
        spec.callId = "bob-reg";
        spec.cseq = 1;
        spec.viaSentBy = sip::uriForAddr("", bobAddr);
        spec.branch = "z9hG4bK-reg-bob";
        spec.contact = sip::uriForAddr("bob", bobAddr);
        auto actions = handle(sip::buildRequest(spec).serialize(),
                              bobAddr);
        ASSERT_EQ(actions.size(), 1u);
    }

    sip::SipMessage
    inviteMsg(const std::string &branch = "z9hG4bK-inv-1")
    {
        sip::RequestSpec spec;
        spec.method = sip::Method::Invite;
        spec.requestUri = sip::uriForAddr("bob", proxyAddr);
        spec.from = sip::uriForAddr("alice", aliceAddr);
        spec.to = sip::uriForAddr("bob", proxyAddr);
        spec.fromTag = "ft";
        spec.callId = "call-1";
        spec.cseq = 1;
        spec.viaSentBy = sip::uriForAddr("", aliceAddr);
        spec.branch = branch;
        spec.contact = sip::uriForAddr("alice", aliceAddr);
        return sip::buildRequest(spec);
    }

    /** INVITE through the engine; returns the armed timeout entry. */
    RetransList::TimedOut
    armInvite()
    {
        registerBob();
        auto actions = handle(inviteMsg().serialize(), aliceAddr);
        // TRYING to alice + forwarded INVITE to bob.
        EXPECT_EQ(actions.size(), 2u);
        EXPECT_EQ(shared.retrans.size(), 1u);
        std::vector<RetransList::Due> due;
        std::vector<RetransList::TimedOut> timed_out;
        shared.retrans.collectDue(sim.now() + sip::timers::kTimerB + 1,
                                  due, timed_out);
        EXPECT_EQ(timed_out.size(), 1u);
        return timed_out.empty() ? RetransList::TimedOut{}
                                 : timed_out[0];
    }

    sim::Simulation sim;
    sim::Machine &machine;
    SharedState shared;
    ProxyConfig cfg;
    net::Addr proxyAddr;
    net::Addr aliceAddr{2, 6000};
    net::Addr bobAddr{2, 16000};
};

TEST_F(TimerBTest, TimeoutGenerates408ToCaller)
{
    auto to = armInvite();
    ASSERT_TRUE(to.invite);
    auto actions = timeout(to);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].dstAddr, aliceAddr);
    EXPECT_TRUE(actions[0].toUpstream);
    auto rsp = sip::parseMessage(actions[0].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), sip::status::kRequestTimeout);
    // The proxy's own Via was popped: the top Via is alice's.
    auto via = rsp.message.topVia();
    ASSERT_TRUE(via.has_value());
    EXPECT_NE(via->host, "h1");
    EXPECT_EQ(shared.counters.timerB408s, 1u);
}

TEST_F(TimerBTest, TimeoutCompletesAndReclaimsRecord)
{
    auto to = armInvite();
    EXPECT_GT(shared.txns.size(), 0u);
    timeout(to);
    auto rec = shared.txns.find(to.key);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->state, TxnRecord::State::Completed);
    EXPECT_NE(rec->lastResponse.find("408"), std::string::npos);
    // The record is on the expiry queue: a timer sweep past the linger
    // interval reclaims it.
    std::size_t removed =
        shared.txns.cleanupExpired(sim.now() + cfg.txnLinger + 1);
    EXPECT_EQ(removed, 1u);
    EXPECT_EQ(shared.txns.size(), 0u);
}

TEST_F(TimerBTest, TimeoutAfterFinalResponseIsNoOp)
{
    registerBob();
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 2u);
    // Bob answers before Timer B fires.
    auto fwd = sip::parseMessage(actions[1].wire);
    ASSERT_TRUE(fwd.ok);
    auto ok200 = sip::buildResponse(fwd.message, sip::status::kOk, "bt");
    handle(ok200.serialize(), bobAddr);
    // A straggling timeout for the same branch must not 408 a
    // transaction that already completed.
    RetransList::TimedOut to;
    to.key = *sip::transactionKey(fwd.message);
    to.wire = actions[1].wire;
    to.invite = true;
    auto late = timeout(to);
    EXPECT_TRUE(late.empty());
    EXPECT_EQ(shared.counters.timerB408s, 0u);
}

// --- Scenario-level retransmission behaviour -------------------------------

workload::Scenario
lossyScenario(double loss)
{
    workload::Scenario sc;
    sc.proxy.transport = Transport::Udp;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 5;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(120);
    sc.phoneResponseTimeout = sim::secs(10);
    workload::LinkFault lf;
    lf.imp.lossProb = loss;
    sc.linkFaults.push_back(lf);
    return sc;
}

TEST(RetransScenarioTest, TenPercentLossCallsStillComplete)
{
    workload::RunResult r = runScenario(lossyScenario(0.10));
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 20u);
    EXPECT_GT(r.phoneRetransmissions, 0u);
    EXPECT_GT(r.faults.total().lost, 0u);
    // Some recovery was driven by the endpoints or the proxy timer.
    EXPECT_GT(r.counters.retransSent + r.counters.retransAbsorbed, 0u);
}

TEST(RetransScenarioTest, HeavyLossRecoversViaRetransmission)
{
    workload::RunResult r = runScenario(lossyScenario(0.35));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.callsCompleted, 0u);
    // The proxy both retransmitted downstream and absorbed duplicates
    // from upstream retransmitters.
    EXPECT_GT(r.counters.retransSent, 0u);
    EXPECT_GT(r.counters.retransAbsorbed, 0u);
    EXPECT_GT(r.phoneRetransmissions, 0u);
}

TEST(RetransScenarioTest, DuplicatesAreAbsorbedStatefully)
{
    workload::Scenario sc = lossyScenario(0.0);
    sc.linkFaults.clear();
    workload::LinkFault lf;
    lf.toProxy = true;
    lf.fromProxy = false;
    lf.imp.dupProb = 1.0;
    sc.linkFaults.push_back(lf);
    workload::RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 20u);
    EXPECT_GT(r.net.faultDuplicated, 0u);
    // Duplicate INVITEs/BYEs hit the transaction table and were
    // answered from state instead of being re-forwarded.
    EXPECT_GT(r.counters.retransAbsorbed, 0u);
}

TEST(RetransScenarioTest, ReorderingIsTolerated)
{
    workload::Scenario sc = lossyScenario(0.0);
    sc.linkFaults.clear();
    workload::LinkFault lf;
    lf.imp.reorderProb = 0.5;
    lf.imp.reorderWindow = sim::msecs(5);
    sc.linkFaults.push_back(lf);
    workload::RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 20u);
    EXPECT_GT(r.faults.total().reordered, 0u);
}

TEST(RetransScenarioTest, SustainedLossReclaimsTxnTableViaTimerB)
{
    workload::Scenario sc;
    sc.proxy.transport = Transport::Udp;
    sc.proxy.workers = 4;
    sc.clients = 2;
    sc.callsPerClient = 3;
    sc.clientMachines = 1;
    sc.answerDelay = sim::msecs(300);
    sc.phoneResponseTimeout = sim::secs(2);
    sc.maxDuration = sim::secs(120);
    // After t=500ms nothing the proxy sends reaches any client, so
    // late transactions can only terminate through Timer B.
    workload::LinkFault lf;
    lf.toProxy = false;
    lf.fromProxy = true;
    lf.imp.partitions.push_back(
        net::PartitionWindow{sim::msecs(500), sim::kTimeNever});
    sc.linkFaults.push_back(lf);
    // Long settle so Timer B (32s) fires and the linger expires.
    sc.settleTime = sim::secs(40);
    workload::RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.callsFailed, 0u);
    EXPECT_GT(r.counters.timerB408s, 0u);
    EXPECT_GT(r.counters.retransSent, 0u); // proxy kept retransmitting
    // The whole point: sustained loss must not leak proxy state.
    EXPECT_EQ(r.txnEntriesAtEnd, 0u);
    EXPECT_EQ(r.retransEntriesAtEnd, 0u);
    EXPECT_GT(r.faults.total().partitionDrops, 0u);
}

TEST(RetransScenarioTest, PartitionHealCallsCompleteLate)
{
    workload::Scenario sc;
    sc.proxy.transport = Transport::Udp;
    sc.proxy.workers = 4;
    sc.clients = 2;
    sc.callsPerClient = 1;
    sc.clientMachines = 1;
    sc.answerDelay = sim::msecs(600);
    sc.phoneResponseTimeout = sim::secs(10);
    sc.maxDuration = sim::secs(120);
    workload::Partition pt;
    pt.start = sim::msecs(400);
    pt.stop = sim::secs(2);
    sc.partitions.push_back(pt);
    workload::RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    // Calls complete — late, after the partition heals.
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted, 2u);
    EXPECT_GT(r.phoneRetransmissions, 0u);
    EXPECT_GT(r.faults.total().partitionDrops, 0u);
    EXPECT_GT(r.inviteP50, sim::secs(1)); // answered across the outage
}

// --- TCP reset eviction -----------------------------------------------------

TEST(TcpRstEvictionTest, MidStreamRstEvictsProxyConnEntry)
{
    sim::Simulation simulation(5);
    auto &server_machine = simulation.addMachine("server", 4);
    auto &client_machine = simulation.addMachine("client", 2);
    net::Network network(simulation);
    auto &server_host = network.attach(server_machine);
    auto &client_host = network.attach(client_machine);

    ProxyConfig cfg;
    cfg.transport = Transport::Tcp;
    cfg.workers = 2;
    Proxy proxy(server_machine, server_host, cfg);
    proxy.start();

    bool registered = false;
    bool saw_reset = false;
    client_machine.spawn("cli", 0, [&](sim::Process &p) -> sim::Task {
        struct Body
        {
            static sip::SipMessage
            registerMsg(net::Addr self, net::Addr proxy_addr, int cseq)
            {
                sip::RequestSpec spec;
                spec.method = sip::Method::Register;
                spec.requestUri = sip::uriForAddr("", proxy_addr);
                spec.from = sip::uriForAddr("carol", self);
                spec.to = sip::uriForAddr("carol", proxy_addr);
                spec.fromTag = "rt";
                spec.callId = "carol-reg";
                spec.cseq = static_cast<unsigned>(cseq);
                spec.viaTransport = "TCP";
                spec.viaSentBy = sip::uriForAddr("", self);
                spec.branch = "z9hG4bK-creg-" + std::to_string(cseq);
                spec.contact = sip::uriForAddr("carol", self);
                return sip::buildRequest(spec);
            }

            static sim::Task
            run(sim::Process &p, net::Host *client, net::Network *net,
                net::Addr proxy_addr, bool *registered, bool *saw_reset)
            {
                net::TcpConn conn;
                co_await client->tcpConnect(p, proxy_addr, conn);
                net::Addr self = conn.local();
                co_await conn.send(
                    p, registerMsg(self, proxy_addr, 1).serialize());
                sip::StreamFramer framer;
                while (!*registered) {
                    std::string bytes;
                    co_await conn.recv(p, bytes);
                    if (bytes.empty())
                        co_return; // premature EOF: test will fail
                    framer.feed(bytes);
                    while (auto raw = framer.next()) {
                        auto rsp = sip::parseMessage(*raw);
                        if (rsp.ok && rsp.message.isSuccess())
                            *registered = true;
                    }
                }
                // From now on every segment we send is reset.
                net::Impairment imp;
                imp.rstProb = 1.0;
                net->faults().setLink(client->id(),
                                      proxy_addr.host, imp);
                co_await conn.send(
                    p, registerMsg(self, proxy_addr, 2).serialize());
                std::string bytes;
                co_await conn.recv(p, bytes);
                *saw_reset = bytes.empty();
                co_await conn.close(p);
            }
        };
        return Body::run(p, &client_host, &network, proxy.addr(),
                         &registered, &saw_reset);
    });

    simulation.runUntil(sim::secs(5));
    proxy.requestStop();

    EXPECT_TRUE(registered);
    EXPECT_TRUE(saw_reset);
    EXPECT_EQ(network.stats().tcpRstInjected, 1u);
    const auto &c = proxy.shared().counters;
    EXPECT_GE(c.connsAccepted, 1u);
    // The reset connection was detected dead and its conn-table entry
    // evicted well before any idle timeout.
    EXPECT_GE(c.connsDestroyed, 1u);
    EXPECT_EQ(proxy.shared().conns.size(), 0u);
}

} // namespace

/**
 * @file
 * Remaining SIP-stack edges: message summaries, contact parsing
 * variants, SDP bodies, compact-name expansion table, and framer
 * recovery behaviour.
 */

#include <gtest/gtest.h>

#include "sip/builders.hh"
#include "sip/parser.hh"

namespace {

using namespace siprox;
using namespace siprox::sip;

TEST(SummaryTest, RequestAndResponseForms)
{
    SipMessage req =
        SipMessage::request(Method::Invite, *SipUri::parse("sip:b@h1"));
    req.addHeader("CSeq", "3 INVITE");
    std::string s = req.summary();
    EXPECT_NE(s.find("INVITE"), std::string::npos);
    EXPECT_NE(s.find("CSeq 3"), std::string::npos);

    SipMessage rsp = SipMessage::response(180);
    EXPECT_NE(rsp.summary().find("180 Ringing"), std::string::npos);
}

TEST(ContactTest, ParsesBareAndBracketedAndDisplayName)
{
    SipMessage m = SipMessage::response(200);
    m.setHeader("Contact", "sip:a@h1:5060");
    ASSERT_TRUE(m.contactUri());
    EXPECT_EQ(m.contactUri()->user, "a");

    m.setHeader("Contact", "<sip:b@h2:6000>;expires=3600");
    ASSERT_TRUE(m.contactUri());
    EXPECT_EQ(m.contactUri()->user, "b");
    EXPECT_EQ(m.contactUri()->port, 6000);

    m.setHeader("Contact", "\"Bob X\" <sip:c@h3>");
    ASSERT_TRUE(m.contactUri());
    EXPECT_EQ(m.contactUri()->user, "c");

    m.setHeader("Contact", "<sip:broken");
    EXPECT_FALSE(m.contactUri());
}

TEST(SdpTest, BodyCarriesOriginHost)
{
    std::string sdp = defaultSdp(*SipUri::parse("sip:alice@h7:6000"));
    EXPECT_NE(sdp.find("o=alice"), std::string::npos);
    EXPECT_NE(sdp.find("IN IP4 h7"), std::string::npos);
    EXPECT_NE(sdp.find("m=audio"), std::string::npos);
    // Empty origin still produces a valid body.
    EXPECT_NE(defaultSdp(SipUri{}).find("v=0"), std::string::npos);
}

TEST(CompactNameTest, FullTable)
{
    EXPECT_EQ(expandHeaderName("i"), "Call-ID");
    EXPECT_EQ(expandHeaderName("I"), "Call-ID");
    EXPECT_EQ(expandHeaderName("m"), "Contact");
    EXPECT_EQ(expandHeaderName("f"), "From");
    EXPECT_EQ(expandHeaderName("t"), "To");
    EXPECT_EQ(expandHeaderName("v"), "Via");
    EXPECT_EQ(expandHeaderName("l"), "Content-Length");
    EXPECT_EQ(expandHeaderName("c"), "Content-Type");
    EXPECT_EQ(expandHeaderName("s"), "Subject");
    EXPECT_EQ(expandHeaderName("k"), "Supported");
    EXPECT_EQ(expandHeaderName("x"), "x");       // unknown compact
    EXPECT_EQ(expandHeaderName("Via"), "Via");   // already full
}

TEST(FramerTest, RecoversAcrossManyMessagesAfterBigBody)
{
    StreamFramer framer;
    SipMessage big =
        SipMessage::request(Method::Invite, *SipUri::parse("sip:b@h1"));
    big.setBody(std::string(8000, 'x'), "application/octet-stream");
    SipMessage small = SipMessage::response(200);
    std::string stream = big.serialize() + small.serialize();
    framer.feed(stream);
    auto first = framer.next();
    ASSERT_TRUE(first);
    EXPECT_EQ(first->size(), big.serialize().size());
    auto second = framer.next();
    ASSERT_TRUE(second);
    EXPECT_TRUE(parseMessage(*second).ok);
    EXPECT_FALSE(framer.next());
    EXPECT_FALSE(framer.poisoned());
}

TEST(FramerTest, ZeroContentLengthBackToBack)
{
    StreamFramer framer;
    std::string msg = "OPTIONS sip:h1 SIP/2.0\r\n"
                      "Content-Length: 0\r\n\r\n";
    framer.feed(msg + msg + msg);
    int count = 0;
    while (framer.next())
        ++count;
    EXPECT_EQ(count, 3);
}

TEST(BuildersTest, RegisterCarriesNoBody)
{
    RequestSpec spec;
    spec.method = Method::Register;
    spec.requestUri = *SipUri::parse("sip:h1");
    spec.from = *SipUri::parse("sip:a@h2");
    spec.to = *SipUri::parse("sip:a@h1");
    spec.callId = "r1";
    spec.viaSentBy = *SipUri::parse("sip:h2:6000");
    spec.branch = "z9hG4bK-r";
    SipMessage msg = buildRequest(spec);
    EXPECT_TRUE(msg.body().empty());
    EXPECT_NE(msg.serialize().find("Content-Length: 0"),
              std::string::npos);
}

TEST(ResponseTest, PreservesExistingToTag)
{
    RequestSpec spec;
    spec.method = Method::Bye;
    spec.requestUri = *SipUri::parse("sip:b@h1");
    spec.from = *SipUri::parse("sip:a@h2");
    spec.to = *SipUri::parse("sip:b@h1");
    spec.toTag = "already-there";
    spec.callId = "c1";
    spec.viaSentBy = *SipUri::parse("sip:h2:6000");
    spec.branch = "z9hG4bK-b";
    SipMessage req = buildRequest(spec);
    SipMessage rsp = buildResponse(req, 200, "new-tag");
    // §8.2.6.2: do not double-tag a To that already carries one.
    EXPECT_EQ(std::string(rsp.to()).find("new-tag"), std::string::npos);
    EXPECT_NE(std::string(rsp.to()).find("already-there"),
              std::string::npos);
}

} // namespace

/**
 * @file
 * SIP message model tests: header operations, typed accessors, Via and
 * CSeq parsing, builders, and serialization invariants.
 */

#include <gtest/gtest.h>

#include "sip/builders.hh"
#include "sip/message.hh"
#include "sip/transaction.hh"

namespace {

using namespace siprox;
using namespace siprox::sip;

RequestSpec
inviteSpec()
{
    RequestSpec spec;
    spec.method = Method::Invite;
    spec.requestUri = *SipUri::parse("sip:bob@h1:5060");
    spec.from = *SipUri::parse("sip:alice@h2:10001");
    spec.to = *SipUri::parse("sip:bob@h3:10002");
    spec.fromTag = "ft1";
    spec.callId = "call-1@h2";
    spec.cseq = 1;
    spec.viaSentBy = *SipUri::parse("sip:h2:10001");
    spec.branch = "z9hG4bK-test-1";
    spec.contact = *SipUri::parse("sip:alice@h2:10001");
    return spec;
}

TEST(MethodTest, NamesRoundTrip)
{
    for (Method m : {Method::Invite, Method::Ack, Method::Bye,
                     Method::Cancel, Method::Register, Method::Options}) {
        EXPECT_EQ(methodFromName(methodName(m)), m);
    }
    EXPECT_EQ(methodFromName("SUBSCRIBE"), Method::Unknown);
}

TEST(ViaTest, ParsesHostPortBranch)
{
    auto via = Via::parse("SIP/2.0/TCP h2:10001;branch=z9hG4bK77;rport");
    ASSERT_TRUE(via);
    EXPECT_EQ(via->transport, "TCP");
    EXPECT_EQ(via->host, "h2");
    EXPECT_EQ(via->port, 10001);
    EXPECT_EQ(via->branch, "z9hG4bK77");
}

TEST(ViaTest, DefaultPortWhenOmitted)
{
    auto via = Via::parse("SIP/2.0/UDP proxy");
    ASSERT_TRUE(via);
    EXPECT_EQ(via->port, 0);
    EXPECT_EQ(via->effectivePort(), 5060);
    EXPECT_TRUE(via->branch.empty());
}

TEST(ViaTest, RejectsMalformed)
{
    EXPECT_FALSE(Via::parse(""));
    EXPECT_FALSE(Via::parse("SIP/2.0/UDP"));
    EXPECT_FALSE(Via::parse("HTTP/1.1 host"));
    EXPECT_FALSE(Via::parse("SIP/2.0/UDP host:badport"));
}

TEST(ViaTest, RoundTrips)
{
    Via via;
    via.transport = "TCP";
    via.host = "h5";
    via.port = 5060;
    via.branch = "z9hG4bKabc";
    auto parsed = Via::parse(via.toString());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->transport, via.transport);
    EXPECT_EQ(parsed->host, via.host);
    EXPECT_EQ(parsed->port, via.port);
    EXPECT_EQ(parsed->branch, via.branch);
}

TEST(CSeqTest, ParsesAndRoundTrips)
{
    auto cseq = CSeq::parse("42 INVITE");
    ASSERT_TRUE(cseq);
    EXPECT_EQ(cseq->number, 42u);
    EXPECT_EQ(cseq->method, Method::Invite);
    EXPECT_EQ(cseq->toString(), "42 INVITE");
    EXPECT_FALSE(CSeq::parse("INVITE"));
    EXPECT_FALSE(CSeq::parse("x INVITE"));
}

TEST(SipMessageTest, HeaderAccessIsCaseInsensitive)
{
    SipMessage msg = SipMessage::request(
        Method::Options, *SipUri::parse("sip:h1"));
    msg.addHeader("Call-ID", "abc");
    EXPECT_EQ(msg.header("call-id").value_or(""), "abc");
    EXPECT_EQ(msg.header("CALL-ID").value_or(""), "abc");
    EXPECT_FALSE(msg.header("Call"));
}

TEST(SipMessageTest, HeaderAllPreservesOrder)
{
    SipMessage msg = SipMessage::response(200);
    msg.addHeader("Via", "SIP/2.0/UDP a");
    msg.addHeader("Route", "r1");
    msg.addHeader("Via", "SIP/2.0/UDP b");
    auto vias = msg.headerAll("Via");
    ASSERT_EQ(vias.size(), 2u);
    EXPECT_EQ(vias[0], "SIP/2.0/UDP a");
    EXPECT_EQ(vias[1], "SIP/2.0/UDP b");
}

TEST(SipMessageTest, PrependAndRemoveFirstHeader)
{
    SipMessage msg = SipMessage::response(200);
    msg.addHeader("Via", "second");
    msg.prependHeader("Via", "first");
    EXPECT_EQ(*msg.header("Via"), "first");
    EXPECT_TRUE(msg.removeFirstHeader("Via"));
    EXPECT_EQ(*msg.header("Via"), "second");
    EXPECT_TRUE(msg.removeFirstHeader("via"));
    EXPECT_FALSE(msg.removeFirstHeader("Via"));
}

TEST(SipMessageTest, SetHeaderReplacesFirst)
{
    SipMessage msg = SipMessage::response(200);
    msg.setHeader("Max-Forwards", "70");
    msg.setHeader("Max-Forwards", "69");
    EXPECT_EQ(msg.headerAll("Max-Forwards").size(), 1u);
    EXPECT_EQ(*msg.maxForwards(), 69);
}

TEST(SipMessageTest, SerializeComputesContentLength)
{
    SipMessage msg = SipMessage::request(
        Method::Invite, *SipUri::parse("sip:bob@h1"));
    msg.addHeader("Content-Length", "999"); // stale value is ignored
    msg.setBody("hello", "text/plain");
    std::string wire = msg.serialize();
    EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_EQ(wire.find("999"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(BuildersTest, RequestCarriesAllRoutingHeaders)
{
    SipMessage msg = buildRequest(inviteSpec());
    EXPECT_TRUE(msg.isRequest());
    EXPECT_EQ(msg.method(), Method::Invite);
    auto via = msg.topVia();
    ASSERT_TRUE(via);
    EXPECT_EQ(via->branch, "z9hG4bK-test-1");
    EXPECT_EQ(via->host, "h2");
    EXPECT_EQ(msg.callId(), "call-1@h2");
    ASSERT_TRUE(msg.cseq());
    EXPECT_EQ(msg.cseq()->method, Method::Invite);
    EXPECT_EQ(*msg.maxForwards(), 70);
    ASSERT_TRUE(msg.contactUri());
    EXPECT_EQ(msg.contactUri()->user, "alice");
    EXPECT_FALSE(msg.body().empty()); // SDP attached to INVITE
}

TEST(BuildersTest, ResponseMirrorsRequest)
{
    SipMessage req = buildRequest(inviteSpec());
    SipMessage rsp = buildResponse(req, 180, "bt1");
    EXPECT_TRUE(rsp.isResponse());
    EXPECT_EQ(rsp.statusCode(), 180);
    EXPECT_EQ(rsp.reason(), "Ringing");
    EXPECT_EQ(rsp.callId(), req.callId());
    EXPECT_EQ(rsp.header("CSeq"), req.header("CSeq"));
    EXPECT_EQ(rsp.headerAll("Via").size(), req.headerAll("Via").size());
    EXPECT_NE(rsp.to().find("tag=bt1"), std::string_view::npos);
    EXPECT_EQ(rsp.from(), req.from());
}

TEST(BuildersTest, OkToInviteCarriesSdp)
{
    SipMessage req = buildRequest(inviteSpec());
    SipMessage ok = buildResponse(req, 200, "bt1");
    EXPECT_FALSE(ok.body().empty());
    SipMessage ringing = buildResponse(req, 180, "bt1");
    EXPECT_TRUE(ringing.body().empty());
}

TEST(BuildersTest, AckReferencesInviteAndFinal)
{
    SipMessage req = buildRequest(inviteSpec());
    SipMessage ok = buildResponse(req, 200, "bt1");
    SipMessage ack = buildAck(req, ok, "z9hG4bK-ack-1");
    EXPECT_EQ(ack.method(), Method::Ack);
    EXPECT_EQ(ack.callId(), req.callId());
    ASSERT_TRUE(ack.cseq());
    EXPECT_EQ(ack.cseq()->number, req.cseq()->number);
    EXPECT_EQ(ack.cseq()->method, Method::Ack);
    EXPECT_NE(ack.to().find("tag=bt1"), std::string_view::npos);
    EXPECT_EQ(ack.topVia()->branch, "z9hG4bK-ack-1");
}

TEST(TransactionKeyTest, RequestAndResponseShareKey)
{
    SipMessage req = buildRequest(inviteSpec());
    SipMessage rsp = buildResponse(req, 180, "bt1");
    auto k1 = transactionKey(req);
    auto k2 = transactionKey(rsp);
    ASSERT_TRUE(k1);
    ASSERT_TRUE(k2);
    EXPECT_EQ(*k1, *k2);
}

TEST(TransactionKeyTest, AckMatchesInviteTransaction)
{
    SipMessage req = buildRequest(inviteSpec());
    SipMessage rsp = buildResponse(req, 404);
    // Non-2xx ACK reuses the INVITE branch.
    SipMessage ack = buildAck(req, rsp, req.topVia()->branch);
    auto k_inv = transactionKey(req);
    auto k_ack = transactionKey(ack);
    ASSERT_TRUE(k_ack);
    EXPECT_EQ(*k_ack, *k_inv);
}

TEST(TransactionKeyTest, DifferentBranchesDiffer)
{
    auto spec = inviteSpec();
    SipMessage a = buildRequest(spec);
    spec.branch = "z9hG4bK-test-2";
    SipMessage b = buildRequest(spec);
    EXPECT_NE(*transactionKey(a), *transactionKey(b));
    TransactionKeyHash h;
    EXPECT_NE(h(*transactionKey(a)), h(*transactionKey(b)));
}

TEST(TransactionKeyTest, MissingViaOrCseqYieldsNothing)
{
    SipMessage msg = SipMessage::request(
        Method::Invite, *SipUri::parse("sip:h1"));
    EXPECT_FALSE(transactionKey(msg));
    msg.addHeader("Via", "SIP/2.0/UDP h2;branch=z9hG4bKx");
    EXPECT_FALSE(transactionKey(msg)); // still no CSeq
    msg.addHeader("CSeq", "1 INVITE");
    EXPECT_TRUE(transactionKey(msg));
}

TEST(BranchGeneratorTest, GeneratesUniqueCookiePrefixedBranches)
{
    BranchGenerator gen(7);
    auto b1 = gen.next();
    auto b2 = gen.next();
    EXPECT_NE(b1, b2);
    EXPECT_EQ(b1.substr(0, 7), std::string(kBranchCookie));
    BranchGenerator other(8);
    EXPECT_NE(other.next(), b1);
}

} // namespace

/**
 * @file
 * Architecture-layer matrix: every supported archKind x transport x
 * {fdCache, idleStrategy} cell completes the same small workload with
 * zero failures, resolves to the expected architecture, and produces a
 * byte-identical digest when rerun (determinism). Unsupported pairings
 * must be rejected loudly, not silently fall back.
 */

#include <gtest/gtest.h>

#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/arch.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::ArchKind;
using core::IdleStrategy;
using core::Transport;

struct ArchParam
{
    std::string name;
    ArchKind arch = ArchKind::Auto;
    Transport transport = Transport::Udp;
    bool fdCache = false;
    IdleStrategy idle = IdleStrategy::LinearScan;
};

void
PrintTo(const ArchParam &p, std::ostream *os)
{
    *os << p.name;
}

Scenario
smallScenario(const ArchParam &param)
{
    Scenario sc;
    sc.proxy.transport = param.transport;
    sc.proxy.arch = param.arch;
    sc.proxy.fdCache = param.fdCache;
    sc.proxy.idleStrategy = param.idle;
    sc.proxy.workers = 6;
    sc.clients = 4;
    sc.callsPerClient = 6;
    // Byte-stream cells (TCP, TLS) cycle connections to exercise
    // accept/destroy churn — and for TLS, handshake churn — in every
    // architecture.
    sc.opsPerConn = core::isStreamTransport(param.transport) ? 4 : 0;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);
    // A tiny delivery jitter on every client link makes the message
    // schedule depend on the seed (the fault RNG is the only consumer
    // of it) without impairing a single delivery, so the
    // different-seed digest check below is meaningful for every cell.
    LinkFault lf;
    lf.imp.jitter = sim::msecs(2);
    sc.linkFaults.push_back(lf);
    return sc;
}

class ArchMatrixTest : public ::testing::TestWithParam<ArchParam>
{
};

TEST_P(ArchMatrixTest, CompletesAndRerunsByteIdentical)
{
    const ArchParam &param = GetParam();
    Scenario sc = smallScenario(param);

    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    // Invariant: no impairment, so every placed call completes.
    EXPECT_EQ(r.callsCompleted, 4u * 6u);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.counters.parseErrors, 0u);
    EXPECT_EQ(r.counters.routeFailures, 0u);
    EXPECT_EQ(r.ops, 2u * 4u * 6u);
    // Shared-table invariant: every completed transaction is still
    // resident (two keys per record) and none has leaked or been
    // reclaimed early — identical across all three architectures.
    EXPECT_EQ(r.txnEntriesAtEnd, 2u * r.ops);

    // The resolved architecture is what the config asked for (Auto
    // resolves to the transport-implied OpenSER architecture).
    EXPECT_EQ(r.archKind,
              core::resolveArchKind(param.arch, param.transport));
    EXPECT_GT(r.archLoops, 0);
    if (r.archKind == ArchKind::EventDriven) {
        // No supervisor: nothing to request descriptors from, nothing
        // to hand connections back to.
        EXPECT_EQ(r.counters.fdRequests, 0u);
        EXPECT_EQ(r.counters.connsReturnedByWorkers, 0u);
    }

    if (param.transport == Transport::Tls) {
        // Every TLS connection did a handshake of exactly one kind,
        // and full handshakes cover whatever resumption didn't.
        EXPECT_GT(r.net.tlsConnects, 0u);
        EXPECT_EQ(r.net.tlsHandshakesFull + r.net.tlsHandshakesResumed
                      + r.net.tlsZeroRttResumes,
                  r.net.tlsConnects);
        EXPECT_GE(r.net.tlsHandshakesFull,
                  r.net.tlsConnects - r.net.tlsHandshakesResumed
                      - r.net.tlsZeroRttResumes);
        EXPECT_EQ(r.net.tlsHandshakeAborts, 0u);
        // Application traffic rode the record layer.
        EXPECT_GT(r.net.tlsRecords, 0u);
    }
    if (param.transport == Transport::Sst) {
        // Channels were set up and reused; messages rode per-call
        // streams, not accepted connections — so the fd-passing
        // machinery is structurally idle in every architecture.
        EXPECT_GT(r.net.sstMessages, 0u);
        EXPECT_GT(r.net.sstChannels, 0u);
        EXPECT_GE(r.net.sstStreams, r.net.sstMessages);
        EXPECT_EQ(r.counters.connsAccepted, 0u);
        EXPECT_EQ(r.counters.fdRequests, 0u);
    }

    // Determinism: a rerun of the identical scenario must match byte
    // for byte, for every architecture (the work-stealing event loops
    // included).
    RunResult again = runScenario(sc);
    EXPECT_EQ(r.digest(), again.digest());

    // A different seed must not reproduce the digest (the digest
    // actually encodes run content, not just configuration).
    Scenario reseeded = sc;
    reseeded.seed = sc.seed + 1;
    RunResult other = runScenario(reseeded);
    EXPECT_NE(r.digest(), other.digest());
}

std::vector<ArchParam>
matrix()
{
    std::vector<ArchParam> params;
    const struct
    {
        ArchKind arch;
        const char *name;
    } kinds[] = {
        {ArchKind::Auto, "auto"},
        {ArchKind::SupervisorWorker, "supervisor"},
        {ArchKind::SymmetricWorker, "symmetric"},
        {ArchKind::EventDriven, "event"},
    };
    const struct
    {
        Transport transport;
        const char *name;
    } transports[] = {
        {Transport::Udp, "udp"},
        {Transport::Tcp, "tcp"},
        {Transport::Tls, "tls"},
        {Transport::Sctp, "sctp"},
        {Transport::Sst, "sst"},
    };
    for (const auto &k : kinds) {
        for (const auto &t : transports) {
            if (core::archSupportError(k.arch, t.transport))
                continue; // rejected pairings get their own test
            for (bool cache : {false, true}) {
                for (auto idle : {IdleStrategy::LinearScan,
                                  IdleStrategy::PriorityQueue}) {
                    ArchParam p;
                    p.arch = k.arch;
                    p.transport = t.transport;
                    p.fdCache = cache;
                    p.idle = idle;
                    p.name = std::string(k.name) + "_" + t.name
                        + (cache ? "_cache" : "_nocache")
                        + (idle == IdleStrategy::PriorityQueue
                               ? "_pq"
                               : "_scan");
                    params.push_back(std::move(p));
                }
            }
        }
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArchMatrixTest, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<ArchParam> &info) {
        return info.param.name;
    });

TEST(ArchSupport, UnsupportedPairingsThrow)
{
    // Supervisor/worker needs a byte-stream listener.
    for (Transport t :
         {Transport::Udp, Transport::Sctp, Transport::Sst}) {
        Scenario sc;
        sc.proxy.transport = t;
        sc.proxy.arch = ArchKind::SupervisorWorker;
        sc.clients = 2;
        sc.callsPerClient = 1;
        EXPECT_THROW(runScenario(sc), std::invalid_argument);
    }
    // Symmetric workers share one message-based socket; byte streams
    // (TCP, TLS) need per-connection ownership.
    for (Transport t : {Transport::Tcp, Transport::Tls}) {
        Scenario sc;
        sc.proxy.transport = t;
        sc.proxy.arch = ArchKind::SymmetricWorker;
        sc.clients = 2;
        sc.callsPerClient = 1;
        EXPECT_THROW(runScenario(sc), std::invalid_argument);
    }
}

TEST(ArchSupport, ReasonStringsNameTheArchitecture)
{
    for (Transport t : {Transport::Udp, Transport::Tcp, Transport::Tls,
                        Transport::Sctp, Transport::Sst})
        EXPECT_EQ(core::archSupportError(ArchKind::EventDriven, t),
                  nullptr);
    EXPECT_NE(core::archSupportError(ArchKind::SupervisorWorker,
                                     Transport::Udp),
              nullptr);
    EXPECT_NE(core::archSupportError(ArchKind::SymmetricWorker,
                                     Transport::Tcp),
              nullptr);
    // The rejections name the transports they do serve, so a bad
    // config points straight at the fix.
    std::string sup = core::archSupportError(ArchKind::SupervisorWorker,
                                             Transport::Sst);
    EXPECT_NE(sup.find("TCP and TLS"), std::string::npos) << sup;
    std::string sym = core::archSupportError(ArchKind::SymmetricWorker,
                                             Transport::Tls);
    EXPECT_NE(sym.find("TCP/TLS"), std::string::npos) << sym;
}

TEST(ArchSupport, AutoResolvesByTransportFamily)
{
    EXPECT_EQ(core::resolveArchKind(ArchKind::Auto, Transport::Tls),
              ArchKind::SupervisorWorker);
    EXPECT_EQ(core::resolveArchKind(ArchKind::Auto, Transport::Sst),
              ArchKind::SymmetricWorker);
}

} // namespace

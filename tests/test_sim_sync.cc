/**
 * @file
 * Tests for spinlocks, mutexes, semaphores, and latches, including the
 * spin-then-yield contention behaviour (scheduler churn) that drives
 * the paper's §5.2 profile observations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace {

using namespace siprox::sim;

MachineConfig
noCtxConfig()
{
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    return cfg;
}

Task
lockAndHold(Process &p, SpinLock *lock, SimTime hold, int *counter)
{
    co_await lock->acquire(p);
    int v = *counter;
    co_await p.cpu(hold, "test:critical");
    *counter = v + 1; // lost update unless mutual exclusion holds
    lock->release();
}

TEST(SpinLockTest, MutualExclusionUnderContention)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 4, noCtxConfig());
    SpinLock lock("l");
    int counter = 0;
    for (int i = 0; i < 16; ++i) {
        m.spawn("p" + std::to_string(i), 0, [&](Process &p) {
            return lockAndHold(p, &lock, usecs(5), &counter);
        });
    }
    sim.run();
    EXPECT_EQ(counter, 16);
    EXPECT_FALSE(lock.held());
}

TEST(SpinLockTest, UncontendedAcquireIsFree)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    SpinLock lock("l");
    int counter = 0;
    m.spawn("p", 0, [&](Process &p) {
        return lockAndHold(p, &lock, usecs(5), &counter);
    });
    sim.run();
    EXPECT_EQ(lock.contentions(), 0u);
    EXPECT_EQ(sim.now(), usecs(5));
}

TEST(SpinLockTest, ContentionBurnsCpuInSpinAndSchedule)
{
    Simulation sim;
    MachineConfig cfg; // keep context-switch cost: yields must show up
    auto &m = sim.addMachine("m", 2, cfg);
    SpinLock lock("l");
    int counter = 0;
    for (int i = 0; i < 2; ++i) {
        m.spawn("p" + std::to_string(i), 0, [&](Process &p) {
            return lockAndHold(p, &lock, msecs(1), &counter);
        });
    }
    sim.run();
    EXPECT_EQ(counter, 2);
    EXPECT_GT(lock.contentions(), 100u);
    // The loser spun for ~1ms: spin time is charged to user:spinlock.
    EXPECT_GT(m.profiler().at("user:spinlock"), usecs(500));
}

Task
mutexWorker(Process &p, SimMutex *mu, SimTime hold, int *active,
            int *max_active, int *count)
{
    co_await mu->acquire(p);
    ++*active;
    *max_active = std::max(*max_active, *active);
    co_await p.cpu(hold, "test:critical");
    --*active;
    ++*count;
    mu->release();
}

TEST(SimMutexTest, SerializesCriticalSections)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 4, noCtxConfig());
    SimMutex mu;
    int active = 0, max_active = 0, count = 0;
    for (int i = 0; i < 10; ++i) {
        m.spawn("p" + std::to_string(i), 0, [&](Process &p) {
            return mutexWorker(p, &mu, usecs(10), &active, &max_active,
                               &count);
        });
    }
    sim.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(max_active, 1);
    // Blocked waiters consume no CPU: total time ~= serialized holds.
    EXPECT_EQ(sim.now(), usecs(100));
}

Task
semWorker(Process &p, Semaphore *sem, int *got)
{
    co_await sem->acquire(p);
    ++*got;
    co_return;
}

Task
semReleaser(Process &p, Semaphore *sem, int n)
{
    for (int i = 0; i < n; ++i) {
        co_await p.sleepFor(usecs(10));
        sem->release();
    }
}

TEST(SemaphoreTest, AcquireWaitsForRelease)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    Semaphore sem(0);
    int got = 0;
    for (int i = 0; i < 3; ++i) {
        m.spawn("w" + std::to_string(i), 0, [&](Process &p) {
            return semWorker(p, &sem, &got);
        });
    }
    m.spawn("r", 0,
            [&](Process &p) { return semReleaser(p, &sem, 3); });
    sim.runUntil(usecs(15));
    EXPECT_EQ(got, 1);
    sim.run();
    EXPECT_EQ(got, 3);
    EXPECT_EQ(sem.count(), 0);
}

TEST(SemaphoreTest, InitialCountAdmitsImmediately)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    Semaphore sem(2);
    int got = 0;
    for (int i = 0; i < 2; ++i) {
        m.spawn("w" + std::to_string(i), 0, [&](Process &p) {
            return semWorker(p, &sem, &got);
        });
    }
    sim.run();
    EXPECT_EQ(got, 2);
}

Task
latchWaiter(Process &p, Latch *latch, SimTime *done_at)
{
    co_await latch->wait(p);
    *done_at = p.sim().now();
}

Task
latchArriver(Process &p, Latch *latch, SimTime delay)
{
    co_await p.sleepFor(delay);
    latch->arrive();
}

TEST(LatchTest, ReleasesAllWaitersAtZero)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    Latch latch(3);
    std::vector<SimTime> done(4, -1);
    for (int i = 0; i < 4; ++i) {
        m.spawn("w" + std::to_string(i), 0, [&, i](Process &p) {
            return latchWaiter(p, &latch, &done[i]);
        });
    }
    for (int i = 0; i < 3; ++i) {
        m.spawn("a" + std::to_string(i), 0, [&, i](Process &p) {
            return latchArriver(p, &latch, usecs(10 * (i + 1)));
        });
    }
    sim.run();
    for (auto t : done)
        EXPECT_EQ(t, usecs(30));
}

TEST(LatchTest, WaitAfterZeroReturnsImmediately)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    Latch latch(1);
    latch.arrive();
    SimTime done = -1;
    m.spawn("w", 0, [&](Process &p) {
        return latchWaiter(p, &latch, &done);
    });
    sim.run();
    EXPECT_EQ(done, 0);
}

} // namespace

/**
 * @file
 * Tests for the Linux-2.6-style dynamic priority machinery: sleep
 * credit, run-time drain, interactivity bonus in scheduling decisions,
 * sched_yield demotion, and runqueue-wait credit — the mechanisms
 * behind the paper's §4.3 supervisor-priority observation.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace {

using namespace siprox::sim;

MachineConfig
noCtxConfig()
{
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    return cfg;
}

Task
sleepyLoop(Process &p, int reps, SimTime sleep_time, SimTime work)
{
    for (int i = 0; i < reps; ++i) {
        co_await p.sleepFor(sleep_time);
        co_await p.cpu(work, "test:work");
    }
}

Task
burnLoop(Process &p, SimTime total, SimTime chunk)
{
    for (SimTime done = 0; done < total; done += chunk)
        co_await p.cpu(chunk, "test:burn");
}

TEST(DynPrioTest, FreshProcessHasNoBonus)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    auto &p = m.spawn("p", 0, [&](Process &self) {
        return burnLoop(self, usecs(10), usecs(10));
    });
    EXPECT_EQ(p.dynNice(), 0);
    sim.run();
}

TEST(DynPrioTest, SleeperEarnsBonusAndRunnerDrainsIt)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 2, noCtxConfig());
    auto &sleeper = m.spawn("sleeper", 0, [&](Process &self) {
        return sleepyLoop(self, 3, msecs(400), 0);
    });
    sim.run();
    // ~1.2s of sleep capped at 1s with no run time to drain it:
    // the full +5 bonus.
    EXPECT_EQ(sleeper.dynNice(), -5);
    EXPECT_GE(sleeper.sleepAvg(), msecs(900));
}

TEST(DynPrioTest, CpuBoundProcessStaysAtStaticPriority)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    auto &hog = m.spawn("hog", 0, [&](Process &self) {
        return burnLoop(self, msecs(500), msecs(10));
    });
    sim.run();
    EXPECT_EQ(hog.dynNice(), 0);
    EXPECT_EQ(hog.sleepAvg(), 0);
}

TEST(DynPrioTest, BonusIsClampedAtFiveLevels)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    auto &p = m.spawn("p", 10, [&](Process &self) {
        return sleepyLoop(self, 2, secs(2), 0);
    });
    sim.run();
    EXPECT_EQ(p.dynNice(), 5); // 10 - 5, not 10 - 20
}

TEST(DynPrioTest, StaticFloorIsMinusTwenty)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    auto &p = m.spawn("p", -18, [&](Process &self) {
        return sleepyLoop(self, 2, secs(2), usecs(1));
    });
    sim.run();
    EXPECT_EQ(p.dynNice(), -20); // clamped
}

Task
interactiveVsHog(Process &p, SimTime *latency_sum, int reps)
{
    // Sleep long enough to earn the bonus, then measure how quickly a
    // tiny burst gets scheduled while a hog occupies the core.
    co_await p.sleepFor(secs(2));
    for (int i = 0; i < reps; ++i) {
        co_await p.sleepFor(msecs(50));
        SimTime before = p.sim().now();
        co_await p.cpu(usecs(10), "test:probe");
        *latency_sum += p.sim().now() - before - usecs(10);
    }
}

TEST(DynPrioTest, InteractiveWakeupPreemptsCpuHog)
{
    Simulation sim;
    MachineConfig cfg = noCtxConfig();
    cfg.sched.quantum = msecs(100);
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("hog", 0, [&](Process &self) {
        return burnLoop(self, secs(5), msecs(50));
    });
    SimTime latency_sum = 0;
    m.spawn("inter", 0, [&](Process &self) {
        return interactiveVsHog(self, &latency_sum, 10);
    });
    sim.run();
    // With the +bonus the sleeper preempts the equal-nice hog: near
    // zero scheduling latency instead of waiting out 100ms quanta.
    EXPECT_LT(latency_sum / 10, usecs(50));
}

Task
spinYieldLoop(Process &p, int reps)
{
    for (int i = 0; i < reps; ++i) {
        co_await p.sleepFor(msecs(300)); // keep earning bonus
        co_await p.yieldCpu();
    }
}

TEST(DynPrioTest, YieldForfeitsBonus)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    // Competitors must be *queued* (not just running) for sched_yield
    // to deschedule; with two hogs on one core, one always waits.
    for (int i = 0; i < 2; ++i) {
        m.spawn("bg" + std::to_string(i), 0, [&](Process &self) {
            return burnLoop(self, secs(30), msecs(1));
        });
    }
    auto &y = m.spawn("yielder", 0, [&](Process &self) {
        return spinYieldLoop(self, 10);
    });
    sim.run();
    // Each sleep earned 300ms of credit but the following sched_yield
    // forfeited it (2.6 expired-array semantics); only the small
    // runqueue-wait credit from the final re-dispatch remains.
    EXPECT_LT(y.sleepAvg(), msecs(150));
    EXPECT_EQ(y.dynNice(), 0);
}

TEST(DynPrioTest, RunqueueWaitCountsTowardCredit)
{
    Simulation sim;
    MachineConfig cfg = noCtxConfig();
    cfg.sched.quantum = msecs(200);
    auto &m = sim.addMachine("m", 1, cfg);
    // Two hogs; each spends ~half its time waiting on the runqueue.
    auto &a = m.spawn("a", 0, [&](Process &self) {
        return burnLoop(self, msecs(400), msecs(400));
    });
    m.spawn("b", 0, [&](Process &self) {
        return burnLoop(self, msecs(400), msecs(400));
    });
    sim.run();
    // The second-dispatched hog waited ~400ms in the queue and then
    // ran 400ms: wait credit was earned and then fully drained, while
    // the first-dispatched one never waited. Either way no residual
    // bonus survives a full drain.
    EXPECT_EQ(a.sleepAvg(), 0);
}

} // namespace

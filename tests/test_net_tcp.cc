/**
 * @file
 * TCP tests: handshake, byte-stream semantics, EOF/close protocol,
 * descriptor duplication (fd passing), refusal, port lifecycle
 * including TIME_WAIT, and resource limits.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/error.hh"
#include "net_fixture.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

using TcpTest = NetFixture;

Task
acceptOne(Process &p, TcpListener *l, TcpConn *out)
{
    co_await l->accept(p, *out);
}

Task
connectTo(Process &p, Host *host, Addr remote, TcpConn *out,
          NetErrc *err = nullptr)
{
    try {
        co_await host->tcpConnect(p, remote, *out);
    } catch (const NetError &e) {
        if (err)
            *err = e.code();
    }
}

TEST_F(TcpTest, ConnectAndAcceptEstablish)
{
    auto &listener = server.tcpListen(5060);
    TcpConn sconn, cconn;
    serverMachine.spawn("acc", 0, [&](Process &p) {
        return acceptOne(p, &listener, &sconn);
    });
    clientMachine.spawn("conn", 0, [&](Process &p) {
        return connectTo(p, &client, server.addr(5060), &cconn);
    });
    sim.run();
    ASSERT_TRUE(cconn.valid());
    ASSERT_TRUE(sconn.valid());
    EXPECT_EQ(cconn.id(), sconn.id());
    EXPECT_EQ(cconn.remote(), server.addr(5060));
    EXPECT_EQ(sconn.remote(), cconn.local());
    EXPECT_EQ(net.stats().tcpConnects, 1u);
    // Handshake took at least one round trip.
    EXPECT_GE(sim.now(), 2 * net.config().latency);
}

Task
echoServer(Process &p, TcpListener *l, int bursts)
{
    TcpConn c;
    co_await l->accept(p, c);
    for (int i = 0; i < bursts; ++i) {
        std::string data;
        co_await c.recv(p, data);
        if (data.empty())
            break; // EOF
        co_await c.send(p, data);
    }
    co_await c.close(p);
}

Task
pingClient(Process &p, Host *host, Addr remote, int bursts,
           std::vector<std::string> *echoes)
{
    TcpConn c;
    co_await host->tcpConnect(p, remote, c);
    for (int i = 0; i < bursts; ++i) {
        co_await c.send(p, "ping" + std::to_string(i));
        std::string data;
        co_await c.recv(p, data);
        echoes->push_back(data);
    }
    co_await c.close(p);
}

TEST_F(TcpTest, EchoRoundTrips)
{
    auto &listener = server.tcpListen(5060);
    std::vector<std::string> echoes;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return echoServer(p, &listener, 10);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return pingClient(p, &client, server.addr(5060), 10, &echoes);
    });
    sim.run();
    ASSERT_EQ(echoes.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(echoes[i], "ping" + std::to_string(i));
}

Task
sendChunks(Process &p, Host *host, Addr remote,
           std::vector<std::string> chunks, TcpConn *keep)
{
    co_await host->tcpConnect(p, remote, *keep);
    for (auto &chunk : chunks)
        co_await keep->send(p, chunk);
}

Task
recvAll(Process &p, TcpListener *l, std::size_t total, std::size_t max,
        std::string *out, int *reads)
{
    TcpConn c;
    co_await l->accept(p, c);
    while (out->size() < total) {
        std::string data;
        co_await c.recv(p, data, max);
        if (data.empty())
            break;
        *out += data;
        ++*reads;
    }
}

TEST_F(TcpTest, StreamHasNoMessageBoundaries)
{
    auto &listener = server.tcpListen(5060);
    std::string got;
    int reads = 0;
    TcpConn cconn;
    // Sends arrive as a byte stream; a 5-byte read cap forces
    // reassembly across reads regardless of send sizes.
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return recvAll(p, &listener, 26, 5, &got, &reads);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return sendChunks(p, &client, server.addr(5060),
                          {"abcdefghij", "klm", "nopqrstuvwxyz"}, &cconn);
    });
    sim.run();
    EXPECT_EQ(got, "abcdefghijklmnopqrstuvwxyz");
    EXPECT_GE(reads, 6);
}

Task
closeAfterConnect(Process &p, Host *host, Addr remote)
{
    TcpConn c;
    co_await host->tcpConnect(p, remote, c);
    co_await c.close(p);
}

Task
readUntilEof(Process &p, TcpListener *l, bool *eof_seen)
{
    TcpConn c;
    co_await l->accept(p, c);
    std::string data;
    co_await c.recv(p, data);
    *eof_seen = data.empty();
    co_await c.close(p);
}

TEST_F(TcpTest, CloseDeliversEof)
{
    auto &listener = server.tcpListen(5060);
    bool eof = false;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return readUntilEof(p, &listener, &eof);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return closeAfterConnect(p, &client, server.addr(5060));
    });
    sim.run();
    EXPECT_TRUE(eof);
}

Task
sendBigThenClose(Process &p, Host *host, Addr remote)
{
    TcpConn c;
    co_await host->tcpConnect(p, remote, c);
    // Large payload (big wire delay) followed by an immediate close:
    // the FIN must still arrive after the data.
    co_await c.send(p, std::string(60000, 'z'));
    co_await c.close(p);
}

Task
recvAllThenEof(Process &p, TcpListener *l, std::size_t *got,
               bool *clean_eof)
{
    TcpConn c;
    co_await l->accept(p, c);
    for (;;) {
        std::string data;
        co_await c.recv(p, data);
        if (data.empty()) {
            *clean_eof = true;
            co_return;
        }
        *got += data.size();
    }
}

TEST_F(TcpTest, FinNeverOvertakesData)
{
    auto &listener = server.tcpListen(5060);
    std::size_t got = 0;
    bool clean_eof = false;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return recvAllThenEof(p, &listener, &got, &clean_eof);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return sendBigThenClose(p, &client, server.addr(5060));
    });
    sim.run();
    EXPECT_EQ(got, 60000u);
    EXPECT_TRUE(clean_eof);
}

TEST_F(TcpTest, SegmentsNeverReorder)
{
    // A large segment followed immediately by a tiny one: the tiny
    // one's smaller wire delay must not let it overtake.
    auto &listener = server.tcpListen(5060);
    std::string gotd;
    int reads = 0;
    TcpConn cconn;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return recvAll(p, &listener, 50003, 65536, &gotd, &reads);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return sendChunks(p, &client, server.addr(5060),
                          {std::string(50000, 'A'), "end"}, &cconn);
    });
    sim.run();
    ASSERT_EQ(gotd.size(), 50003u);
    EXPECT_EQ(gotd.substr(50000), "end");
    EXPECT_EQ(gotd.find("end"), 50000u);
}

TEST_F(TcpTest, ConnectWithoutListenerRefused)
{
    TcpConn c;
    NetErrc err{};
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return connectTo(p, &client, server.addr(5060), &c, &err);
    });
    sim.run();
    EXPECT_FALSE(c.valid());
    EXPECT_EQ(err, NetErrc::ConnectionRefused);
    EXPECT_EQ(net.stats().tcpRefused, 1u);
    // Failed connect releases the ephemeral port immediately.
    EXPECT_EQ(client.ports().inUse(), 0u);
}

TEST_F(TcpTest, DupKeepsConnectionOpenAfterOriginalCloses)
{
    auto &listener = server.tcpListen(5060);
    TcpConn sconn, cconn;
    serverMachine.spawn("acc", 0, [&](Process &p) {
        return acceptOne(p, &listener, &sconn);
    });
    clientMachine.spawn("conn", 0, [&](Process &p) {
        return connectTo(p, &client, server.addr(5060), &cconn);
    });
    sim.run();
    ASSERT_TRUE(sconn.valid());

    TcpConn dup = sconn.dup();
    EXPECT_EQ(sconn.endpoint()->openHandles(), 2);
    sconn.closeQuiet();
    // One handle remains: no FIN was sent.
    EXPECT_EQ(dup.endpoint()->openHandles(), 1);
    EXPECT_FALSE(dup.endpoint()->closed());
    dup.closeQuiet();
    EXPECT_TRUE(cconn.endpoint() != nullptr);
}

TEST_F(TcpTest, ActiveCloserPortEntersTimeWait)
{
    auto &listener = server.tcpListen(5060);
    TcpConn sconn;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return acceptOne(p, &listener, &sconn);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return closeAfterConnect(p, &client, server.addr(5060));
    });
    // Client actively closed: its ephemeral port sits in TIME_WAIT
    // (observe before the release event fires, then after).
    sim.runUntil(sim::secs(5));
    EXPECT_EQ(client.ports().inUse(), 1u);
    sim.run();
    EXPECT_EQ(client.ports().inUse(), 0u);
}

Task
closeAfterEof(Process &p, Host *host, Addr remote, TcpConn *conn)
{
    co_await host->tcpConnect(p, remote, *conn);
    std::string data;
    co_await conn->recv(p, data); // blocks until server FIN
    EXPECT_TRUE(data.empty());
    co_await conn->close(p);
}

Task
acceptAndClose(Process &p, TcpListener *l)
{
    TcpConn c;
    co_await l->accept(p, c);
    co_await c.close(p);
}

TEST_F(TcpTest, PassiveCloserPortFreesImmediately)
{
    auto &listener = server.tcpListen(5060);
    TcpConn cconn;
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return acceptAndClose(p, &listener);
    });
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return closeAfterEof(p, &client, server.addr(5060), &cconn);
    });
    sim.run();
    // Client closed after seeing the server's FIN: passive close, no
    // TIME_WAIT on its port.
    EXPECT_EQ(client.ports().inUse(), 0u);
}

TEST_F(TcpTest, SpecificLocalPortIsUsed)
{
    auto &listener = server.tcpListen(5060);
    TcpConn sconn, cconn;
    serverMachine.spawn("acc", 0, [&](Process &p) {
        return acceptOne(p, &listener, &sconn);
    });
    clientMachine.spawn("conn", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, Host *h, Addr remote, TcpConn *out)
            {
                co_await h->tcpConnect(p, remote, *out, 12345);
            }
        };
        return Body::run(p, &client, server.addr(5060), &cconn);
    });
    sim.run();
    EXPECT_EQ(cconn.local().port, 12345);
    EXPECT_EQ(sconn.remote().port, 12345);
}

TEST_F(TcpTest, SendAfterPeerFullCloseIsDropped)
{
    auto &listener = server.tcpListen(5060);
    TcpConn sconn, cconn;
    serverMachine.spawn("acc", 0, [&](Process &p) {
        return acceptOne(p, &listener, &sconn);
    });
    clientMachine.spawn("conn", 0, [&](Process &p) {
        return connectTo(p, &client, server.addr(5060), &cconn);
    });
    sim.run();
    ASSERT_TRUE(sconn.valid());
    sconn.closeQuiet();
    auto bytes_before = net.stats().tcpBytes;
    clientMachine.spawn("tx", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, TcpConn *c)
            {
                co_await c->send(p, "into the void");
            }
        };
        return Body::run(p, &cconn);
    });
    sim.run();
    // Kernel accepted the bytes but nothing was delivered anywhere.
    EXPECT_GT(net.stats().tcpBytes, bytes_before);
    EXPECT_EQ(cconn.endpoint()->rxAvailable(), 0u);
}

class TcpTinyPoolTest : public NetFixture
{
  protected:
    TcpTinyPoolTest()
        : NetFixture([] {
              NetConfig cfg;
              cfg.ephemeralLo = 40000;
              cfg.ephemeralHi = 40004; // 4 ports
              return cfg;
          }())
    {
    }
};

Task
connectMany(Process &p, Host *host, Addr remote, int n,
            std::vector<TcpConn> *keep, int *failures)
{
    for (int i = 0; i < n; ++i) {
        TcpConn c;
        try {
            co_await host->tcpConnect(p, remote, c);
            keep->push_back(std::move(c));
        } catch (const NetError &e) {
            if (e.code() == NetErrc::PortExhausted)
                ++*failures;
        }
    }
}

TEST_F(TcpTinyPoolTest, EphemeralPortExhaustionFailsConnect)
{
    auto &listener = server.tcpListen(5060);
    std::vector<TcpConn> server_conns;
    serverMachine.spawn("acc", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, TcpListener *l, std::vector<TcpConn> *keep)
            {
                for (int i = 0; i < 4; ++i) {
                    TcpConn c;
                    co_await l->accept(p, c);
                    keep->push_back(std::move(c));
                }
            }
        };
        return Body::run(p, &listener, &server_conns);
    });
    std::vector<TcpConn> conns;
    int failures = 0;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return connectMany(p, &client, server.addr(5060), 6, &conns,
                           &failures);
    });
    sim.run();
    EXPECT_EQ(conns.size(), 4u);
    EXPECT_EQ(failures, 2);
}

class TcpSocketCapTest : public NetFixture
{
  protected:
    TcpSocketCapTest()
        : NetFixture([] {
              NetConfig cfg;
              cfg.maxSocketsPerHost = 3;
              return cfg;
          }())
    {
    }
};

TEST_F(TcpSocketCapTest, ServerSocketLimitRefusesSyn)
{
    // Listener consumes one socket slot; two accepted endpoints fill
    // the table; further connects are refused.
    auto &listener = server.tcpListen(5060);
    std::vector<TcpConn> server_conns;
    serverMachine.spawn("acc", 0, [&](Process &p) -> Task {
        struct Body
        {
            static Task
            run(Process &p, TcpListener *l, std::vector<TcpConn> *keep)
            {
                for (int i = 0; i < 2; ++i) {
                    TcpConn c;
                    co_await l->accept(p, c);
                    keep->push_back(std::move(c));
                }
            }
        };
        return Body::run(p, &listener, &server_conns);
    });
    std::vector<TcpConn> conns;
    int failures = 0;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return connectMany(p, &client, server.addr(5060), 4, &conns,
                           &failures);
    });
    sim.run();
    EXPECT_EQ(conns.size(), 2u);
    EXPECT_EQ(net.stats().tcpRefused, 2u);
}

} // namespace

/**
 * @file
 * Property battery for the zero-copy parser (see docs/performance.md):
 * a generator renders a known logical message to wire text with random
 * header order and random-but-legal syntax (compact names, folding,
 * extra whitespace, LF endings), and every observation the proxy makes
 * — header list, typed accessors, body, serialization — must match the
 * intended message exactly, as it did with the old copying parser.
 * A torn-framing sweep splits a two-message TCP stream at every byte
 * offset, and copy-on-write tests pin the arena-sharing semantics.
 * The SST per-stream framer is held to the same bar: any chunking must
 * reassemble byte-identically, and its whole-message fast path must
 * allocate no more than the TCP byte-stream framer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/sst.hh"
#include "sim/rng.hh"
#include "sip/message.hh"
#include "sip/parser.hh"

// --- counting allocator (same interposition as bench/perf_harness) --

static std::atomic<std::uint64_t> g_allocs{0};

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *operator new[](std::size_t n) { return operator new(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace siprox;
using namespace siprox::sip;

/** The logical message a generator intends; the oracle for parsing. */
struct Intended
{
    std::string startLine; // e.g. "INVITE sip:bob@h3:10002 SIP/2.0"
    /** Canonical-name headers in order (pre-folding values). */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/** Compact form for a canonical name, or empty if none exists. */
std::string
compactFor(const std::string &name)
{
    if (name == "Call-ID")
        return "i";
    if (name == "Contact")
        return "m";
    if (name == "From")
        return "f";
    if (name == "To")
        return "t";
    if (name == "Via")
        return "v";
    if (name == "Content-Type")
        return "c";
    return {};
}

/**
 * Render @p msg to wire text with random legal syntax. Every variation
 * here is one the RFC allows and the parser must normalize away.
 */
std::string
renderVariant(const Intended &msg, sim::Rng &rng)
{
    auto eol = [&]() -> std::string {
        return rng.below(4) == 0 ? "\n" : "\r\n";
    };
    std::string out = msg.startLine + eol();
    for (const auto &[name, value] : msg.headers) {
        std::string rendered_name = name;
        std::string compact = compactFor(name);
        if (!compact.empty() && rng.below(3) == 0)
            rendered_name = compact;
        out += rendered_name;
        out += ':';
        // Optional whitespace after the colon.
        for (std::uint64_t i = rng.below(3); i > 0; --i)
            out += rng.below(2) ? ' ' : '\t';
        // Fold at a space boundary 1 time in 4 (joined with one SP on
        // parse, so only values whose spaces survive the join qualify).
        auto space = value.find(' ');
        if (space != std::string::npos && rng.below(4) == 0) {
            out += value.substr(0, space);
            out += eol();
            out += rng.below(2) ? "  " : "\t";
            out += value.substr(space + 1);
        } else {
            out += value;
        }
        // Trailing whitespace is trimmed by the parser.
        if (rng.below(4) == 0)
            out += ' ';
        out += eol();
    }
    out += "Content-Length: " + std::to_string(msg.body.size()) + eol();
    out += eol();
    out += msg.body;
    return out;
}

/** A fixed INVITE-shaped header pool (Via chain, routing set, extras). */
Intended
inviteIntent()
{
    Intended m;
    m.startLine = "INVITE sip:bob@h3:10002 SIP/2.0";
    m.headers = {
        {"Via", "SIP/2.0/UDP h5:5060;branch=z9hG4bKtop"},
        {"Via", "SIP/2.0/TCP h2:10001;branch=z9hG4bKmid"},
        {"Max-Forwards", "69"},
        {"Route", "<sip:proxy1@h4>"},
        {"Route", "<sip:proxy2@h6>"},
        {"Record-Route", "<sip:proxy1@h4;lr>"},
        {"From", "<sip:alice@h2:10001>;tag=1928301774"},
        {"To", "<sip:bob@h3:10002>"},
        {"Call-ID", "a84b4c76e66710@h2"},
        {"CSeq", "314159 INVITE"},
        {"Contact", "<sip:alice@h2:10001>"},
        {"Content-Type", "application/sdp"},
        {"X-Custom", "some opaque value"},
    };
    m.body = "v=0\no=alice 123 456 IN IP4 h2\n";
    return m;
}

/** Assert every observation of @p parsed matches @p intent. */
void
expectObservations(const SipMessage &parsed, const Intended &intent)
{
    ASSERT_TRUE(parsed.isRequest());
    EXPECT_EQ(parsed.method(), Method::Invite);
    EXPECT_EQ(parsed.requestUri().toString(), "sip:bob@h3:10002");

    // Header list: same count and order, canonical names, exact
    // values. Content-Length is recomputed on serialize but must
    // still be observable after parse.
    std::size_t i = 0;
    for (const auto &h : parsed.headers()) {
        if (iequals(h.name, "Content-Length"))
            continue;
        ASSERT_LT(i, intent.headers.size())
            << "extra header " << h.name;
        EXPECT_TRUE(iequals(h.name, intent.headers[i].first))
            << h.name << " vs " << intent.headers[i].first;
        EXPECT_EQ(h.value, intent.headers[i].second);
        ++i;
    }
    EXPECT_EQ(i, intent.headers.size());

    // Typed accessors.
    EXPECT_EQ(parsed.callId(), "a84b4c76e66710@h2");
    ASSERT_TRUE(parsed.cseq());
    EXPECT_EQ(parsed.cseq()->number, 314159u);
    EXPECT_EQ(parsed.cseq()->method, Method::Invite);
    ASSERT_TRUE(parsed.topVia());
    const auto &headers = intent.headers;
    auto top = std::find_if(headers.begin(), headers.end(),
                            [](const auto &h) { return h.first == "Via"; });
    ASSERT_NE(top, headers.end());
    EXPECT_EQ(parsed.topVia()->toString(), top->second);
    ASSERT_TRUE(parsed.maxForwards());
    EXPECT_EQ(*parsed.maxForwards(), 69);
    EXPECT_EQ(parsed.header(HeaderId::Route),
              std::optional<std::string_view>("<sip:proxy1@h4>"));
    EXPECT_EQ(parsed.headerAll(HeaderId::Via).size(), 2u);
    EXPECT_EQ(parsed.body(), intent.body);
}

TEST(RoundTripProperty, RandomSyntaxVariants)
{
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        sim::Rng rng(seed);
        Intended intent = inviteIntent();
        std::string wire = renderVariant(intent, rng);
        auto r = parseMessage(wire);
        ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error
                          << "\n--- wire ---\n" << wire;
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectObservations(r.message, intent);
    }
}

TEST(RoundTripProperty, RandomHeaderOrder)
{
    // Shuffle everything below the Via chain (Via order is load-
    // bearing in SIP; the parser must preserve whatever order it
    // sees, which the in-order check verifies for each shuffle).
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        sim::Rng rng(seed ^ 0x0facade);
        Intended intent = inviteIntent();
        for (std::size_t i = intent.headers.size() - 1; i > 2; --i) {
            std::size_t j =
                2 + static_cast<std::size_t>(rng.below(i - 2)) + 1;
            std::swap(intent.headers[i], intent.headers[j]);
        }
        std::string wire = renderVariant(intent, rng);
        auto r = parseMessage(wire);
        ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error;

        std::size_t i = 0;
        for (const auto &h : r.message.headers()) {
            if (iequals(h.name, "Content-Length"))
                continue;
            ASSERT_LT(i, intent.headers.size());
            EXPECT_TRUE(iequals(h.name, intent.headers[i].first));
            EXPECT_EQ(h.value, intent.headers[i].second);
            ++i;
        }
        EXPECT_EQ(i, intent.headers.size());
        EXPECT_EQ(r.message.body(), intent.body);
    }
}

TEST(RoundTripProperty, SerializeReparseIsStable)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        sim::Rng rng(seed ^ 0xbeef);
        Intended intent = inviteIntent();
        std::string wire = renderVariant(intent, rng);
        auto first = parseMessage(wire);
        ASSERT_TRUE(first.ok) << first.error;

        // Canonical serialization must itself parse, observe the same
        // message, and re-serialize byte-identically (idempotence).
        std::string canonical = first.message.serialize();
        auto second = parseMessage(canonical);
        ASSERT_TRUE(second.ok) << second.error;
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectObservations(second.message, intent);
        EXPECT_EQ(second.message.serialize(), canonical);
        EXPECT_EQ(second.message.serializedSize(), canonical.size());
    }
}

TEST(RoundTripProperty, TornFramesAtEveryByteOffset)
{
    // Two back-to-back messages over a stream transport, torn at every
    // possible byte boundary: the framer must reassemble both exactly,
    // regardless of where the segmentation falls.
    std::string msg1 =
        "INVITE sip:bob@h3 SIP/2.0\r\n"
        "Via: SIP/2.0/TCP h2;branch=z9hG4bKaa\r\n"
        "Call-ID: torn-1\r\n"
        "CSeq: 1 INVITE\r\n"
        "Content-Length: 5\r\n"
        "\r\n"
        "hello";
    std::string msg2 =
        "SIP/2.0 200 OK\r\n"
        "Via: SIP/2.0/TCP h2;branch=z9hG4bKaa\r\n"
        "Call-ID: torn-2\r\n"
        "CSeq: 1 INVITE\r\n"
        "Content-Length: 0\r\n"
        "\r\n";
    std::string stream = msg1 + msg2;
    for (std::size_t split = 0; split <= stream.size(); ++split) {
        StreamFramer framer;
        framer.feed(std::string(stream.substr(0, split)));
        std::vector<std::string> got;
        while (auto m = framer.next())
            got.push_back(std::move(*m));
        framer.feed(std::string(stream.substr(split)));
        while (auto m = framer.next())
            got.push_back(std::move(*m));
        ASSERT_EQ(got.size(), 2u) << "split at " << split;
        EXPECT_EQ(got[0], msg1) << "split at " << split;
        EXPECT_EQ(got[1], msg2) << "split at " << split;
        EXPECT_EQ(framer.buffered(), 0u);
    }
}

TEST(SstFramerProperty, AnyChunkingYieldsByteIdenticalParses)
{
    // The SST receive path reassembles per-stream frames; whatever the
    // substrate's MTU or coalescing does to chunk boundaries, the
    // parser must observe the same message the sender serialized.
    const std::size_t chunks[] = {1, 2, 512, 1500};
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        sim::Rng rng(seed ^ 0x55f);
        Intended intent = inviteIntent();
        std::string wire = renderVariant(intent, rng);
        auto ref = parseMessage(wire);
        ASSERT_TRUE(ref.ok) << ref.error;
        std::string canonical = ref.message.serialize();
        for (std::size_t chunk : chunks) {
            net::SstFramer framer;
            for (std::size_t off = 0; off < wire.size(); off += chunk) {
                std::size_t len = std::min(chunk, wire.size() - off);
                framer.feed(wire.substr(off, len),
                            off + len == wire.size());
            }
            SCOPED_TRACE("seed " + std::to_string(seed) + " chunk "
                         + std::to_string(chunk));
            auto m = framer.next();
            ASSERT_TRUE(m.has_value());
            EXPECT_EQ(framer.buffered(), 0u);
            EXPECT_EQ(*m, wire);
            auto r = parseMessage(*m);
            ASSERT_TRUE(r.ok) << r.error;
            expectObservations(r.message, intent);
            EXPECT_EQ(r.message.serialize(), canonical);
        }
    }
}

TEST(SstFramerProperty, WholeMessageFeedAllocsNoWorseThanStreamFramer)
{
    // The single-frame fast path adopts the chunk instead of copying
    // it — per op it must allocate no more than the TCP byte-stream
    // framer does for the same message.
    sim::Rng rng(11);
    std::string wire = renderVariant(inviteIntent(), rng);
    constexpr int kIters = 64;
    auto measure = [&](auto &&op) {
        op(); // warm-up settles one-time container growth
        std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        for (int i = 0; i < kIters; ++i)
            op();
        return g_allocs.load(std::memory_order_relaxed) - a0;
    };
    StreamFramer tcp;
    std::uint64_t tcp_allocs = measure([&] {
        tcp.feed(std::string(wire));
        auto m = tcp.next();
        EXPECT_TRUE(m.has_value());
        EXPECT_EQ(tcp.buffered(), 0u);
    });
    net::SstFramer sst;
    std::uint64_t sst_allocs = measure([&] {
        sst.feed(std::string(wire), true);
        auto m = sst.next();
        EXPECT_TRUE(m.has_value());
        EXPECT_EQ(sst.buffered(), 0u);
    });
    EXPECT_GT(tcp_allocs, 0u);
    EXPECT_LE(sst_allocs, tcp_allocs)
        << "sst " << sst_allocs << " vs tcp " << tcp_allocs << " over "
        << kIters << " ops";
}

TEST(CopyOnWrite, MutatingACopyLeavesTheOriginalIntact)
{
    sim::Rng rng(7);
    std::string wire = renderVariant(inviteIntent(), rng);
    auto r = parseMessage(wire);
    ASSERT_TRUE(r.ok) << r.error;
    std::string original = r.message.serialize();

    // The copy shares the arena; mutations must not leak back.
    SipMessage fwd = r.message;
    Via via;
    via.transport = "UDP";
    via.host = "h9";
    via.port = 5060;
    via.branch = "z9hG4bKnew";
    fwd.prependVia(via);
    fwd.setMaxForwards(*fwd.maxForwards() - 1);

    EXPECT_EQ(r.message.serialize(), original);
    EXPECT_EQ(r.message.headerAll(HeaderId::Via).size(), 2u);
    EXPECT_EQ(fwd.headerAll(HeaderId::Via).size(), 3u);
    EXPECT_EQ(fwd.topVia()->branch, "z9hG4bKnew");
    EXPECT_EQ(*fwd.maxForwards(), 68);
    EXPECT_EQ(*r.message.maxForwards(), 69);

    // And the copy serializes the mutation exactly once at the top.
    auto reparse = parseMessage(fwd.serialize());
    ASSERT_TRUE(reparse.ok);
    EXPECT_EQ(reparse.message.topVia()->branch, "z9hG4bKnew");
    EXPECT_EQ(reparse.message.headerAll(HeaderId::Via).size(), 3u);
}

TEST(CopyOnWrite, OriginalDestructionKeepsCopyAlive)
{
    // Views in a copy point into the shared arena; destroying the
    // source message must not invalidate them.
    SipMessage copy;
    {
        sim::Rng rng(3);
        auto r = parseMessage(renderVariant(inviteIntent(), rng));
        ASSERT_TRUE(r.ok);
        copy = r.message;
    }
    EXPECT_EQ(copy.callId(), "a84b4c76e66710@h2");
    EXPECT_EQ(copy.cseq()->number, 314159u);
    auto reparsed = parseMessage(copy.serialize());
    ASSERT_TRUE(reparsed.ok);
}

} // namespace

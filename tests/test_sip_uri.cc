/**
 * @file
 * SIP URI parsing/serialization tests and the h<id> address mapping.
 */

#include <gtest/gtest.h>

#include "sip/uri.hh"

namespace {

using namespace siprox;
using namespace siprox::sip;

TEST(SipUriTest, ParsesFullForm)
{
    auto uri = SipUri::parse("sip:alice@example.com:5070;transport=tcp");
    ASSERT_TRUE(uri);
    EXPECT_EQ(uri->user, "alice");
    EXPECT_EQ(uri->host, "example.com");
    EXPECT_EQ(uri->port, 5070);
    ASSERT_TRUE(uri->param("transport"));
    EXPECT_EQ(*uri->param("transport"), "tcp");
}

TEST(SipUriTest, ParsesWithoutUser)
{
    auto uri = SipUri::parse("sip:proxy.example.com");
    ASSERT_TRUE(uri);
    EXPECT_TRUE(uri->user.empty());
    EXPECT_EQ(uri->host, "proxy.example.com");
    EXPECT_EQ(uri->port, 0);
    EXPECT_EQ(uri->effectivePort(), 5060);
}

TEST(SipUriTest, ParsesFlagParams)
{
    auto uri = SipUri::parse("sip:bob@h2;lr;maddr=h3");
    ASSERT_TRUE(uri);
    ASSERT_EQ(uri->params.size(), 2u);
    EXPECT_EQ(uri->params[0].first, "lr");
    EXPECT_TRUE(uri->params[0].second.empty());
    EXPECT_EQ(*uri->param("maddr"), "h3");
    EXPECT_FALSE(uri->param("absent"));
}

TEST(SipUriTest, RejectsGarbage)
{
    EXPECT_FALSE(SipUri::parse(""));
    EXPECT_FALSE(SipUri::parse("http://x"));
    EXPECT_FALSE(SipUri::parse("sip:"));
    EXPECT_FALSE(SipUri::parse("sip:user@"));
    EXPECT_FALSE(SipUri::parse("sip:host:notaport"));
    EXPECT_FALSE(SipUri::parse("sip:host:0"));
    EXPECT_FALSE(SipUri::parse("sip:host:70000"));
}

TEST(SipUriTest, RoundTripsCanonicalForm)
{
    const char *cases[] = {
        "sip:alice@h1:5060",
        "sip:h9",
        "sip:bob@h2:10042;transport=tcp;lr",
        "sip:carol@example.org",
    };
    for (const char *text : cases) {
        auto uri = SipUri::parse(text);
        ASSERT_TRUE(uri) << text;
        EXPECT_EQ(uri->toString(), text);
        auto again = SipUri::parse(uri->toString());
        ASSERT_TRUE(again);
        EXPECT_EQ(*again, *uri) << text;
    }
}

TEST(SipUriTest, AddrMappingRoundTrips)
{
    net::Addr addr{7, 10042};
    SipUri uri = uriForAddr("phone42", addr);
    EXPECT_EQ(uri.toString(), "sip:phone42@h7:10042");
    auto back = addrFromUri(uri);
    ASSERT_TRUE(back);
    EXPECT_EQ(*back, addr);
}

TEST(SipUriTest, AddrMappingRejectsForeignHosts)
{
    auto uri = SipUri::parse("sip:alice@example.com:5060");
    ASSERT_TRUE(uri);
    EXPECT_FALSE(addrFromUri(*uri));
    auto uri2 = SipUri::parse("sip:alice@hx:5060");
    ASSERT_TRUE(uri2);
    EXPECT_FALSE(addrFromUri(*uri2));
}

TEST(SipUriTest, DefaultPortAppliedInAddrMapping)
{
    auto uri = SipUri::parse("sip:alice@h3");
    ASSERT_TRUE(uri);
    auto addr = addrFromUri(*uri);
    ASSERT_TRUE(addr);
    EXPECT_EQ(addr->port, 5060);
}

} // namespace

/**
 * @file
 * Tests for the stats utilities: latency histogram percentiles and
 * merging (parameterized over distributions), and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace {

using namespace siprox;
using namespace siprox::stats;
using siprox::sim::SimTime;

TEST(HistogramTest, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0);
    EXPECT_EQ(h.mean(), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue)
{
    LatencyHistogram h;
    h.record(sim::usecs(100));
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.mean(), sim::usecs(100));
    // Bucketed: within ~7% of the true value.
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)),
                static_cast<double>(sim::usecs(100)),
                0.07 * sim::usecs(100));
}

TEST(HistogramTest, MinMaxMeanTracked)
{
    LatencyHistogram h;
    h.record(10);
    h.record(30);
    h.record(20);
    EXPECT_EQ(h.min(), 10);
    EXPECT_EQ(h.max(), 30);
    EXPECT_EQ(h.mean(), 20);
}

TEST(HistogramTest, NegativeClampedToZero)
{
    LatencyHistogram h;
    h.record(-5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, PercentilesMonotonic)
{
    LatencyHistogram h;
    sim::Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        h.record(static_cast<SimTime>(rng.below(sim::secs(1))));
    SimTime last = 0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        SimTime v = h.percentile(q);
        EXPECT_GE(v, last) << "q=" << q;
        last = v;
    }
}

class HistogramAccuracyTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(HistogramAccuracyTest, PercentileWithinBucketResolution)
{
    auto [qlow, qhigh] = GetParam();
    LatencyHistogram h;
    std::vector<SimTime> values;
    sim::Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform over [1us, 1s): stresses every bucket scale.
        double u = rng.uniform();
        auto v = static_cast<SimTime>(
            sim::usecs(1)
            * std::pow(10.0, u * 6.0));
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {qlow, qhigh}) {
        SimTime expect = values[static_cast<std::size_t>(
            q * (values.size() - 1))];
        SimTime got = h.percentile(q);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expect),
                    0.10 * static_cast<double>(expect))
            << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramAccuracyTest,
                         ::testing::Values(std::pair{0.10, 0.50},
                                           std::pair{0.25, 0.75},
                                           std::pair{0.90, 0.99}));

TEST(HistogramTest, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, combined;
    sim::Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        auto v = static_cast<SimTime>(rng.below(sim::msecs(100)));
        if (i % 2) {
            a.record(v);
        } else {
            b.record(v);
        }
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_EQ(a.mean(), combined.mean());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.percentile(q), combined.percentile(q));
}

TEST(HistogramTest, ResetClears)
{
    LatencyHistogram h;
    h.record(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0);
}

// --- Table --------------------------------------------------------------------

TEST(TableTest, AlignsColumnsAndRightAlignsNumbers)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string out = t.render();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Numbers right-aligned under the wider number.
    EXPECT_NE(out.find("alpha      1"), std::string::npos);
    EXPECT_NE(out.find("b      22222"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, CsvEscapesSpecials)
{
    Table t({"name", "note"});
    t.addRow({"plain", "simple"});
    t.addRow({"with,comma", "say \"hi\""});
    std::string csv = t.csv();
    EXPECT_EQ(csv, "name,note\n"
                   "plain,simple\n"
                   "\"with,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, NumAndPctFormat)
{
    EXPECT_EQ(Table::num(1234.56), "1235");
    EXPECT_EQ(Table::num(1234.56, 1), "1234.6");
    EXPECT_EQ(Table::pct(0.5), "50.0%");
    EXPECT_EQ(Table::pct(0.123, 0), "12%");
}

} // namespace

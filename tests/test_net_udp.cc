/**
 * @file
 * UDP socket tests: delivery, ordering, loss, queue overflow, shared
 * receivers, kernel cost accounting, and poll readiness.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net_fixture.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

using UdpTest = NetFixture;

Task
sendN(Process &p, UdpSocket *sock, Addr dst, int n, std::string prefix)
{
    for (int i = 0; i < n; ++i)
        co_await sock->sendTo(p, dst, prefix + std::to_string(i));
}

Task
recvN(Process &p, UdpSocket *sock, int n, std::vector<Datagram> *out)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        out->push_back(std::move(d));
    }
}

TEST_F(UdpTest, DeliversPayloadAndAddresses)
{
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return recvN(p, &ssock, 1, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 1, "hello-");
    });
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload, "hello-0");
    EXPECT_EQ(got[0].src, client.addr(9000));
    EXPECT_EQ(got[0].dst, server.addr(5060));
}

TEST_F(UdpTest, PreservesOrderFromOneSender)
{
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return recvN(p, &ssock, 50, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 50, "m");
    });
    sim.run();
    ASSERT_EQ(got.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(got[i].payload, "m" + std::to_string(i));
}

TEST_F(UdpTest, KernelCostsCharged)
{
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return recvN(p, &ssock, 1, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 1, "x");
    });
    sim.run();
    EXPECT_GT(clientMachine.profiler().at("kernel:udp_send"), 0);
    EXPECT_GT(serverMachine.profiler().at("kernel:udp_recv"), 0);
}

TEST_F(UdpTest, SendToUnboundPortIsDropped)
{
    auto &csock = client.udpBind(9000);
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(1234), 3, "x");
    });
    sim.run();
    EXPECT_EQ(net.stats().udpSent, 3u);
    EXPECT_EQ(net.stats().udpDelivered, 0u);
}

TEST_F(UdpTest, SharedSocketFansOutToMultipleReceivers)
{
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    std::vector<Datagram> got_a, got_b;
    serverMachine.spawn("rx_a", 0, [&](Process &p) {
        return recvN(p, &ssock, 5, &got_a);
    });
    serverMachine.spawn("rx_b", 0, [&](Process &p) {
        return recvN(p, &ssock, 5, &got_b);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 10, "m");
    });
    sim.run();
    EXPECT_EQ(got_a.size(), 5u);
    EXPECT_EQ(got_b.size(), 5u);
}

TEST_F(UdpTest, PollReadinessTracksQueue)
{
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);
    EXPECT_FALSE(ssock.pollReady());
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 1, "x");
    });
    sim.run();
    EXPECT_TRUE(ssock.pollReady());
    Datagram d;
    EXPECT_TRUE(ssock.tryRecvFrom(d));
    EXPECT_FALSE(ssock.pollReady());
}

TEST_F(UdpTest, BindingTakenPortThrows)
{
    server.udpBind(5060);
    EXPECT_THROW(server.udpBind(5060), NetError);
}

class UdpLossTest : public NetFixture
{
  protected:
    UdpLossTest()
        : NetFixture([] {
              NetConfig cfg;
              cfg.udpLossProb = 0.3;
              return cfg;
          }())
    {
    }
};

TEST_F(UdpLossTest, LossDropsConfiguredFraction)
{
    auto &csock = client.udpBind(9000);
    server.udpBind(5060);
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 2000, "x");
    });
    sim.run();
    EXPECT_EQ(net.stats().udpSent, 2000u);
    EXPECT_EQ(net.stats().udpLost + net.stats().udpDelivered, 2000u);
    double loss = static_cast<double>(net.stats().udpLost) / 2000.0;
    EXPECT_NEAR(loss, 0.3, 0.05);
}

class UdpTinyQueueTest : public NetFixture
{
  protected:
    UdpTinyQueueTest()
        : NetFixture([] {
              NetConfig cfg;
              cfg.udpRecvQueue = 4;
              return cfg;
          }())
    {
    }
};

TEST_F(UdpTinyQueueTest, ReceiveQueueOverflowDrops)
{
    auto &csock = client.udpBind(9000);
    server.udpBind(5060); // nobody reads
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sendN(p, &csock, server.addr(5060), 20, "x");
    });
    sim.run();
    EXPECT_EQ(net.stats().udpDelivered, 4u);
    EXPECT_EQ(net.stats().udpDropped, 16u);
}

} // namespace

/**
 * @file
 * Cluster topology tests: the tentpole golden pin
 * (SingleProxyAndChainDigestsUnchangedByTopology) proving the
 * Topology extraction left every pre-existing scenario byte-identical,
 * plus unit and integration coverage for the consistent-hash ring,
 * clusterSupportError named reasons, the dispatcher, sharded-registrar
 * miss-forwarding vs replication, and cluster determinism.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/dispatcher.hh"
#include "core/location.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;

// --- goldens captured from the pre-Topology runner (commit 44afd5e) ---

const char kSingleUdpSeed7[] =
    "ops=24\n"
    "callsCompleted=12\n"
    "callsFailed=0\n"
    "phoneRetransmissions=0\n"
    "reconnects=0\n"
    "reconnectFailures=0\n"
    "duration=2227622\n"
    "inviteP50=376831\n"
    "inviteP99=425983\n"
    "timedOut=0\n"
    "messagesIn=80\n"
    "requestsIn=44\n"
    "responsesIn=36\n"
    "forwards=72\n"
    "localReplies=20\n"
    "parseErrors=0\n"
    "routeFailures=0\n"
    "retransAbsorbed=0\n"
    "retransSent=0\n"
    "retransTimeouts=0\n"
    "timerB408s=0\n"
    "registrations=8\n"
    "connsAccepted=0\n"
    "connsDestroyed=0\n"
    "outboundConnects=0\n"
    "overloadRejected=0\n"
    "overloadThrottled=0\n"
    "overloadPanicDrops=0\n"
    "overloadShedEnters=0\n"
    "overloadShedExits=0\n"
    "tcpReadPauses=0\n"
    "tcpReadResumes=0\n"
    "tcpAcceptPauses=0\n"
    "phoneRejected503=0\n"
    "phoneBackoffs=0\n"
    "proxyRecvQueueDrops=0\n"
    "proxyAcceptRefused=0\n"
    "occupancySamples=0\n"
    "udpSent=172\n"
    "udpDelivered=172\n"
    "udpLost=0\n"
    "udpDropped=0\n"
    "tcpConnects=0\n"
    "tcpRefused=0\n"
    "tcpSegments=0\n"
    "tcpBytes=0\n"
    "sctpMessages=0\n"
    "sctpDropped=0\n"
    "sctpAssocs=0\n"
    "faultDropped=0\n"
    "faultDuplicated=0\n"
    "faultDelayed=0\n"
    "tcpFaultRefused=0\n"
    "tcpRstInjected=0\n"
    "tcpBlackholed=0\n"
    "tcpRecoveries=0\n"
    "txnEntriesAtEnd=48\n"
    "retransEntriesAtEnd=0\n"
    "connEntriesAtEnd=0\n";

const char kChain3UdpRateSeed42[] =
    "ops=24\n"
    "callsCompleted=12\n"
    "callsFailed=0\n"
    "phoneRetransmissions=0\n"
    "reconnects=0\n"
    "reconnectFailures=0\n"
    "duration=4533502\n"
    "inviteP50=786431\n"
    "inviteP99=851967\n"
    "timedOut=0\n"
    "messagesIn=248\n"
    "requestsIn=116\n"
    "responsesIn=132\n"
    "forwards=216\n"
    "localReplies=44\n"
    "parseErrors=0\n"
    "routeFailures=0\n"
    "retransAbsorbed=0\n"
    "retransSent=0\n"
    "retransTimeouts=0\n"
    "timerB408s=0\n"
    "registrations=8\n"
    "connsAccepted=0\n"
    "connsDestroyed=0\n"
    "outboundConnects=0\n"
    "overloadRejected=0\n"
    "overloadThrottled=0\n"
    "overloadPanicDrops=0\n"
    "overloadShedEnters=0\n"
    "overloadShedExits=0\n"
    "tcpReadPauses=0\n"
    "tcpReadResumes=0\n"
    "tcpAcceptPauses=0\n"
    "phoneRejected503=0\n"
    "phoneBackoffs=0\n"
    "proxyRecvQueueDrops=0\n"
    "proxyAcceptRefused=0\n"
    "occupancySamples=0\n"
    "udpSent=340\n"
    "udpDelivered=340\n"
    "udpLost=0\n"
    "udpDropped=0\n"
    "tcpConnects=0\n"
    "tcpRefused=0\n"
    "tcpSegments=0\n"
    "tcpBytes=0\n"
    "sctpMessages=0\n"
    "sctpDropped=0\n"
    "sctpAssocs=0\n"
    "faultDropped=0\n"
    "faultDuplicated=0\n"
    "faultDelayed=0\n"
    "tcpFaultRefused=0\n"
    "tcpRstInjected=0\n"
    "tcpBlackholed=0\n"
    "tcpRecoveries=0\n"
    "txnEntriesAtEnd=144\n"
    "retransEntriesAtEnd=0\n"
    "connEntriesAtEnd=0\n"
    "hopFeedbackSent=152\n"
    "hopFeedbackApplied=96\n"
    "hopThrottleHolds=0\n"
    "hopThrottleRejects=0\n"
    "hopThrottleDrops=0\n"
    "hopGrantExpired=0\n"
    "chainHops=3\n"
    "hop0.messagesIn=88\n"
    "hop0.forwards=72\n"
    "hop0.localReplies=16\n"
    "hop0.retransAbsorbed=0\n"
    "hop0.timerB408s=0\n"
    "hop0.overloadRejected=0\n"
    "hop0.overloadThrottled=0\n"
    "hop0.overloadPanicDrops=0\n"
    "hop0.hopFeedbackSent=52\n"
    "hop0.hopFeedbackApplied=48\n"
    "hop0.hopThrottleHolds=0\n"
    "hop0.hopThrottleRejects=0\n"
    "hop0.hopThrottleDrops=0\n"
    "hop0.hopGrantExpired=0\n"
    "hop1.messagesIn=84\n"
    "hop1.forwards=72\n"
    "hop1.localReplies=12\n"
    "hop1.retransAbsorbed=0\n"
    "hop1.timerB408s=0\n"
    "hop1.overloadRejected=0\n"
    "hop1.overloadThrottled=0\n"
    "hop1.overloadPanicDrops=0\n"
    "hop1.hopFeedbackSent=48\n"
    "hop1.hopFeedbackApplied=48\n"
    "hop1.hopThrottleHolds=0\n"
    "hop1.hopThrottleRejects=0\n"
    "hop1.hopThrottleDrops=0\n"
    "hop1.hopGrantExpired=0\n"
    "hop2.messagesIn=76\n"
    "hop2.forwards=72\n"
    "hop2.localReplies=16\n"
    "hop2.retransAbsorbed=0\n"
    "hop2.timerB408s=0\n"
    "hop2.overloadRejected=0\n"
    "hop2.overloadThrottled=0\n"
    "hop2.overloadPanicDrops=0\n"
    "hop2.hopFeedbackSent=52\n"
    "hop2.hopFeedbackApplied=0\n"
    "hop2.hopThrottleHolds=0\n"
    "hop2.hopThrottleRejects=0\n"
    "hop2.hopThrottleDrops=0\n"
    "hop2.hopGrantExpired=0\n";

const char kChain2TcpSeed5[] =
    "ops=24\n"
    "callsCompleted=12\n"
    "callsFailed=0\n"
    "phoneRetransmissions=0\n"
    "reconnects=0\n"
    "reconnectFailures=0\n"
    "duration=5969729\n"
    "inviteP50=950271\n"
    "inviteP99=1179647\n"
    "timedOut=0\n"
    "messagesIn=164\n"
    "requestsIn=80\n"
    "responsesIn=84\n"
    "forwards=144\n"
    "localReplies=32\n"
    "parseErrors=0\n"
    "routeFailures=0\n"
    "retransAbsorbed=0\n"
    "retransSent=0\n"
    "retransTimeouts=0\n"
    "timerB408s=0\n"
    "registrations=8\n"
    "connsAccepted=12\n"
    "connsDestroyed=0\n"
    "outboundConnects=4\n"
    "overloadRejected=0\n"
    "overloadThrottled=0\n"
    "overloadPanicDrops=0\n"
    "overloadShedEnters=0\n"
    "overloadShedExits=0\n"
    "tcpReadPauses=0\n"
    "tcpReadResumes=0\n"
    "tcpAcceptPauses=0\n"
    "phoneRejected503=0\n"
    "phoneBackoffs=0\n"
    "proxyRecvQueueDrops=0\n"
    "proxyAcceptRefused=0\n"
    "occupancySamples=0\n"
    "udpSent=0\n"
    "udpDelivered=0\n"
    "udpLost=0\n"
    "udpDropped=0\n"
    "tcpConnects=12\n"
    "tcpRefused=0\n"
    "tcpSegments=256\n"
    "tcpBytes=82476\n"
    "sctpMessages=0\n"
    "sctpDropped=0\n"
    "sctpAssocs=0\n"
    "faultDropped=0\n"
    "faultDuplicated=0\n"
    "faultDelayed=0\n"
    "tcpFaultRefused=0\n"
    "tcpRstInjected=0\n"
    "tcpBlackholed=0\n"
    "tcpRecoveries=0\n"
    "txnEntriesAtEnd=96\n"
    "retransEntriesAtEnd=0\n"
    "connEntriesAtEnd=16\n"
    "chainHops=2\n"
    "hop0.messagesIn=88\n"
    "hop0.forwards=72\n"
    "hop0.localReplies=16\n"
    "hop0.retransAbsorbed=0\n"
    "hop0.timerB408s=0\n"
    "hop0.overloadRejected=0\n"
    "hop0.overloadThrottled=0\n"
    "hop0.overloadPanicDrops=0\n"
    "hop0.hopFeedbackSent=0\n"
    "hop0.hopFeedbackApplied=0\n"
    "hop0.hopThrottleHolds=0\n"
    "hop0.hopThrottleRejects=0\n"
    "hop0.hopThrottleDrops=0\n"
    "hop0.hopGrantExpired=0\n"
    "hop1.messagesIn=76\n"
    "hop1.forwards=72\n"
    "hop1.localReplies=16\n"
    "hop1.retransAbsorbed=0\n"
    "hop1.timerB408s=0\n"
    "hop1.overloadRejected=0\n"
    "hop1.overloadThrottled=0\n"
    "hop1.overloadPanicDrops=0\n"
    "hop1.hopFeedbackSent=0\n"
    "hop1.hopFeedbackApplied=0\n"
    "hop1.hopThrottleHolds=0\n"
    "hop1.hopThrottleRejects=0\n"
    "hop1.hopThrottleDrops=0\n"
    "hop1.hopGrantExpired=0\n";

/** The exact scenario recipe the goldens were captured with. */
Scenario
goldenScenario(core::Transport transport, std::size_t hops)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 3;
    sc.clientMachines = 2;
    sc.serverCores = 2;
    sc.maxDuration = sim::secs(120);
    sc.chain.assign(hops, ChainHop{});
    return sc;
}

/** A small clustered scenario that still exercises every data path. */
Scenario
clusterScenario(core::Transport transport, int instances,
                core::DispatchPolicy policy)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.stateful = true;
    sc.clients = 16;
    sc.callsPerClient = 4;
    sc.clientMachines = 2;
    sc.serverCores = 2;
    sc.seed = 11;
    sc.maxDuration = sim::secs(120);
    sc.cluster.instances = instances;
    sc.cluster.policy = policy;
    return sc;
}

// ---------------------------------------------------------------------
// Tentpole pin: with Scenario::cluster unset, the Topology layer must
// reproduce the pre-refactor runner byte-for-byte -- single proxy and
// chains alike. A diff here means the extraction changed observable
// behaviour and must be explained in the same commit.
// ---------------------------------------------------------------------

TEST(Topology, SingleProxyAndChainDigestsUnchangedByTopology)
{
    {
        Scenario sc = goldenScenario(core::Transport::Udp, 0);
        sc.seed = 7;
        EXPECT_EQ(runScenario(sc).digest(), kSingleUdpSeed7);
    }
    {
        Scenario sc = goldenScenario(core::Transport::Udp, 3);
        sc.seed = 42;
        sc.proxy.overload.hop.scheme = core::FeedbackScheme::Rate;
        EXPECT_EQ(runScenario(sc).digest(), kChain3UdpRateSeed42);
    }
    {
        Scenario sc = goldenScenario(core::Transport::Tcp, 2);
        sc.seed = 5;
        EXPECT_EQ(runScenario(sc).digest(), kChain2TcpSeed5);
    }
}

TEST(Topology, DigestHasNoClusterGroupWhenClusterUnset)
{
    Scenario sc = goldenScenario(core::Transport::Udp, 0);
    sc.seed = 7;
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.clusterInstances, 0);
    EXPECT_EQ(r.digest().find("clusterInstances"), std::string::npos);
}

// --- consistent-hash ring ---------------------------------------------

TEST(HashRing, OwnerIsDeterministicAndInRange)
{
    core::HashRing a, b;
    a.build(4, 64);
    b.build(4, 64);
    for (int k = 0; k < 200; ++k) {
        std::string key = "c" + std::to_string(k);
        int owner = a.owner(key);
        EXPECT_GE(owner, 0);
        EXPECT_LT(owner, 4);
        EXPECT_EQ(owner, b.owner(key)); // same build, same answers
    }
}

TEST(HashRing, EveryInstanceOwnsASliceOfTheKeyspace)
{
    for (int n : {2, 4, 8, 16}) {
        core::HashRing ring;
        ring.build(n, 64);
        std::vector<int> hits(n, 0);
        for (int k = 0; k < 2000; ++k)
            ++hits[ring.owner("c" + std::to_string(k))];
        for (int i = 0; i < n; ++i)
            EXPECT_GT(hits[i], 0)
                << "instance " << i << " of " << n
                << " owns no keys (hash not avalanching?)";
    }
}

TEST(HashRing, EmptyRingReportsNoOwner)
{
    core::HashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner("anything"), -1);
    ring.build(0, 64);
    EXPECT_EQ(ring.owner("anything"), -1);
}

TEST(HashRing, MostKeysKeepTheirOwnerWhenARingGrows)
{
    // Consistent hashing's point: adding an instance remaps only the
    // slice the new instance takes over, not the whole keyspace.
    core::HashRing four, five;
    four.build(4, 64);
    five.build(5, 64);
    int moved = 0;
    const int kKeys = 2000;
    for (int k = 0; k < kKeys; ++k) {
        std::string key = "c" + std::to_string(k);
        if (four.owner(key) != five.owner(key))
            ++moved;
    }
    // Ideal is 1/5 of keys; allow generous slack but far below the
    // ~4/5 a mod-N scheme would remap.
    EXPECT_LT(moved, kKeys / 2);
}

// --- scenario validation ---------------------------------------------

TEST(ClusterValidation, NamedReasonsForUnsupportedCombos)
{
    Scenario ok = clusterScenario(core::Transport::Udp, 2,
                                  core::DispatchPolicy::HashAor);
    EXPECT_EQ(clusterSupportError(ok), nullptr);
    ok.proxy.transport = core::Transport::Tcp;
    EXPECT_EQ(clusterSupportError(ok), nullptr);

    {
        Scenario sc = ok;
        sc.proxy.transport = core::Transport::Tls;
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
    {
        Scenario sc = ok;
        sc.proxy.transport = core::Transport::Sctp;
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
    {
        Scenario sc = ok;
        sc.chain.assign(2, ChainHop{});
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
    {
        Scenario sc = ok;
        sc.cluster.instances = 17;
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
    {
        Scenario sc = ok;
        sc.cluster.dispatcherCores = 0;
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
    {
        Scenario sc = ok;
        sc.cluster.vnodes = 0;
        EXPECT_NE(clusterSupportError(sc), nullptr);
    }
}

TEST(ClusterValidation, RunScenarioThrowsTheNamedReason)
{
    Scenario sc = clusterScenario(core::Transport::Tls, 2,
                                  core::DispatchPolicy::HashAor);
    EXPECT_THROW(runScenario(sc), std::invalid_argument);
}

// --- cluster integration ---------------------------------------------

TEST(Cluster, HashAorServesEveryLookupLocally)
{
    Scenario sc = clusterScenario(core::Transport::Udp, 2,
                                  core::DispatchPolicy::HashAor);
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted,
              static_cast<std::uint64_t>(sc.clients)
                  * sc.callsPerClient);
    EXPECT_EQ(r.clusterInstances, 2);
    // AOR-affine dispatch lands every INVITE on its shard owner.
    EXPECT_EQ(r.counters.locMissForwards, 0u);
    EXPECT_GT(r.counters.locLocalHits, 0u);
    // REGISTERs are pinned to the AOR owner under every policy.
    EXPECT_EQ(r.dispatcherStats.registersRouted,
              r.counters.registrations);
    EXPECT_GT(r.dispatcherStats.requestsRouted, 0u);
    EXPECT_GT(r.dispatcherStats.responsesRouted, 0u);
    EXPECT_EQ(r.dispatcherStats.dropsNoRoute, 0u);
    EXPECT_EQ(r.dispatcherStats.peekFailures, 0u);
}

TEST(Cluster, RoundRobinForwardsMissesToTheShardOwner)
{
    Scenario hash = clusterScenario(core::Transport::Udp, 4,
                                    core::DispatchPolicy::HashAor);
    Scenario rr = clusterScenario(core::Transport::Udp, 4,
                                  core::DispatchPolicy::RoundRobin);
    RunResult rh = runScenario(hash);
    RunResult rb = runScenario(rr);
    EXPECT_EQ(rb.callsFailed, 0u);
    EXPECT_EQ(rb.callsCompleted, rh.callsCompleted);
    // RR lands most requests on a non-owner, which must charge a real
    // inter-proxy forward; hash-AOR avoids nearly all of them.
    EXPECT_GT(rb.counters.locMissForwards, 0u);
    EXPECT_LT(rh.counters.locMissForwards,
              rb.counters.locMissForwards);
    // Forwarded-then-served lookups still resolve at the owner.
    EXPECT_GT(rb.counters.locLocalHits, 0u);
}

TEST(Cluster, OwnersReplicateToEveryPeer)
{
    Scenario sc = clusterScenario(core::Transport::Udp, 4,
                                  core::DispatchPolicy::HashAor);
    RunResult r = runScenario(sc);
    EXPECT_GT(r.counters.locReplPushes, 0u);
    // Each owner push fans out to the other instances-1 replicas.
    EXPECT_EQ(r.counters.locReplInstalls,
              r.counters.locReplPushes
                  * static_cast<std::uint64_t>(sc.cluster.instances
                                               - 1));
}

TEST(Cluster, StaleReadsServeFromLocalReplicas)
{
    Scenario sc = clusterScenario(core::Transport::Udp, 4,
                                  core::DispatchPolicy::RoundRobin);
    sc.cluster.staleReads = true;
    sc.cluster.replicationLag = sim::msecs(1);
    RunResult r = runScenario(sc);
    EXPECT_EQ(r.callsFailed, 0u);
    // With a 1ms lag the replicas are installed before the calls, so
    // non-owner lookups hit locally instead of miss-forwarding.
    EXPECT_GT(r.counters.locReplicaHits, 0u);
    Scenario fwd = clusterScenario(core::Transport::Udp, 4,
                                   core::DispatchPolicy::RoundRobin);
    RunResult rf = runScenario(fwd);
    EXPECT_LT(r.counters.locMissForwards,
              rf.counters.locMissForwards);
}

TEST(Cluster, TcpClusterCompletesAllCalls)
{
    Scenario sc = clusterScenario(core::Transport::Tcp, 2,
                                  core::DispatchPolicy::HashAor);
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.callsCompleted,
              static_cast<std::uint64_t>(sc.clients)
                  * sc.callsPerClient);
    EXPECT_GT(r.dispatcherStats.clientConnsAccepted, 0u);
}

TEST(Cluster, AorPreseedPopulatesShards)
{
    Scenario sc = clusterScenario(core::Transport::Udp, 2,
                                  core::DispatchPolicy::HashAor);
    sc.cluster.aorPopulation = 5000;
    RunResult r = runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsFailed, 0u);
    // The per-instance counters and dispatcher balance survive into
    // the result and the digest's cluster group.
    ASSERT_EQ(static_cast<int>(r.instanceCounters.size()),
              r.clusterInstances);
    std::string d = r.digest();
    EXPECT_NE(d.find("clusterInstances=2"), std::string::npos);
    EXPECT_NE(d.find("inst0.messagesIn="), std::string::npos);
    EXPECT_NE(d.find("inst1.messagesIn="), std::string::npos);
}

TEST(Cluster, SameSeedSameDigest)
{
    Scenario sc = clusterScenario(core::Transport::Udp, 2,
                                  core::DispatchPolicy::HashAor);
    RunResult a = runScenario(sc);
    RunResult b = runScenario(sc);
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace

/**
 * @file
 * End-to-end integration tests: real SIP calls from simulated phones
 * through each proxy architecture (UDP, TCP process-mode with and
 * without the paper's fixes, TCP thread-mode, SCTP), including loss
 * recovery, non-persistent connections, and stateless operation.
 */

#include <gtest/gtest.h>

#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::ConcurrencyModel;
using core::IdleStrategy;
using core::Transport;

Scenario
tinyScenario(Transport transport)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.workers = 4;
    sc.clients = 3;
    sc.callsPerClient = 4;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);
    return sc;
}

void
expectAllCallsSucceeded(const Scenario &sc, const RunResult &r)
{
    const std::uint64_t calls = static_cast<std::uint64_t>(sc.clients)
        * static_cast<std::uint64_t>(sc.callsPerClient);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted, calls);
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_EQ(r.ops, 2 * calls); // one invite + one bye per call
    EXPECT_GT(r.opsPerSec, 0.0);
    EXPECT_EQ(r.counters.parseErrors, 0u);
    EXPECT_EQ(r.counters.routeFailures, 0u);
}

TEST(ProxyIntegrationTest, UdpCallsComplete)
{
    Scenario sc = tinyScenario(Transport::Udp);
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    // Stateful proxy sent 100 Trying for every INVITE plus REGISTER
    // 200s.
    EXPECT_GT(r.counters.localReplies, 0u);
    EXPECT_GE(r.counters.registrations, 2u * 3u);
}

TEST(ProxyIntegrationTest, UdpStatelessCallsComplete)
{
    Scenario sc = tinyScenario(Transport::Udp);
    sc.proxy.stateful = false;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    EXPECT_EQ(r.counters.retransAbsorbed, 0u);
}

TEST(ProxyIntegrationTest, UdpRecoversFromLoss)
{
    Scenario sc = tinyScenario(Transport::Udp);
    sc.clients = 4;
    sc.callsPerClient = 10;
    sc.net.udpLossProb = 0.05;
    sc.proxy.timerTick = sim::msecs(50);
    sc.phoneResponseTimeout = sim::secs(20); // ~RFC Timer B headroom
    RunResult r = runScenario(sc);
    // All calls must eventually succeed thanks to retransmissions.
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted + r.callsFailed,
              static_cast<std::uint64_t>(sc.clients)
                  * static_cast<std::uint64_t>(sc.callsPerClient));
    EXPECT_EQ(r.callsFailed, 0u);
    EXPECT_GT(r.phoneRetransmissions + r.counters.retransSent, 0u);
}

TEST(ProxyIntegrationTest, TcpPersistentCallsComplete)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    // One connection per phone, accepted by the supervisor.
    EXPECT_EQ(r.counters.connsAccepted, 2u * 3u);
    // Forwarding between differently-owned connections used IPC.
    EXPECT_GT(r.counters.fdRequests, 0u);
    EXPECT_EQ(r.counters.fdCacheHits, 0u); // cache off by default
}

TEST(ProxyIntegrationTest, TcpNonPersistentReconnects)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.opsPerConn = 4; // reconnect every 2 calls
    sc.callsPerClient = 6;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    EXPECT_GT(r.reconnects, 0u);
    EXPECT_GT(r.counters.connsAccepted, 2u * 3u);
    EXPECT_EQ(r.reconnectFailures, 0u);
}

TEST(ProxyIntegrationTest, TcpFdCacheHitsAndCompletes)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.proxy.fdCache = true;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    EXPECT_GT(r.counters.fdCacheHits, 0u);
    // With caching, far fewer supervisor round trips than forwards.
    EXPECT_LT(r.counters.fdRequests, r.counters.forwards);
}

TEST(ProxyIntegrationTest, TcpPriorityQueueCompletes)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.proxy.fdCache = true;
    sc.proxy.idleStrategy = IdleStrategy::PriorityQueue;
    sc.opsPerConn = 4;
    sc.callsPerClient = 6;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
}

TEST(ProxyIntegrationTest, TcpIdleConnectionsEventuallyDestroyed)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.opsPerConn = 4;
    sc.callsPerClient = 6;
    sc.proxy.idleTimeout = sim::secs(2);
    sc.settleTime = sim::secs(10); // let the idle machinery drain
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    // Abandoned connections were reclaimed by the idle machinery.
    EXPECT_GT(r.counters.connsReturnedByWorkers, 0u);
    EXPECT_GT(r.counters.connsDestroyed, 0u);
}

TEST(ProxyIntegrationTest, TcpThreadModeCompletesWithoutIpc)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.proxy.concurrency = ConcurrencyModel::Thread;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    // §6: threads share the descriptor table; no fd-request IPC at all.
    EXPECT_EQ(r.counters.fdRequests, 0u);
}

TEST(ProxyIntegrationTest, TcpEventDrivenIpcCompletes)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.proxy.eventDrivenIpc = true;
    sc.proxy.dispatchChannelCapacity = 1;
    sc.opsPerConn = 4;
    sc.callsPerClient = 6;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
}

TEST(ProxyIntegrationTest, SctpCallsComplete)
{
    Scenario sc = tinyScenario(Transport::Sctp);
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
}

TEST(ProxyIntegrationTest, DeterministicAcrossRuns)
{
    Scenario sc = tinyScenario(Transport::Tcp);
    sc.proxy.fdCache = true;
    RunResult a = runScenario(sc);
    RunResult b = runScenario(sc);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_DOUBLE_EQ(a.opsPerSec, b.opsPerSec);
    EXPECT_EQ(a.counters.fdRequests, b.counters.fdRequests);
    EXPECT_EQ(a.duration, b.duration);
}

TEST(ProxyIntegrationTest, ClientMachinesNeverBottleneck)
{
    Scenario sc = tinyScenario(Transport::Udp);
    sc.clients = 8;
    sc.callsPerClient = 20;
    RunResult r = runScenario(sc);
    expectAllCallsSucceeded(sc, r);
    EXPECT_LT(r.maxClientUtilization, 0.9);
}

} // namespace

/**
 * @file
 * Unit tests for the proxy's shared-memory structures: the transaction
 * table, the global retransmission list, the connection table with
 * aliases, the idle priority queue, and the registrar — including a
 * randomized ConnTable run against a reference model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/conn_table.hh"
#include "core/registrar.hh"
#include "core/txn_table.hh"
#include "sim/rng.hh"
#include "sip/timers.hh"

namespace {

using namespace siprox;
using namespace siprox::core;

sip::TransactionKey
key(const std::string &branch, sip::Method m = sip::Method::Invite)
{
    return sip::TransactionKey{branch, m};
}

TxnRecord
record(const std::string &server_branch,
       const std::string &client_branch)
{
    TxnRecord rec;
    rec.serverKey = key(server_branch);
    rec.clientKey = key(client_branch);
    rec.method = sip::Method::Invite;
    rec.upstreamAddr = net::Addr{1, 5062};
    return rec;
}

TEST(TxnTableTest, FindByEitherKey)
{
    TxnTable table;
    auto rec = table.insert(record("s1", "c1"));
    EXPECT_EQ(table.find(key("s1")), rec);
    EXPECT_EQ(table.find(key("c1")), rec);
    EXPECT_EQ(table.find(key("nope")), nullptr);
    EXPECT_EQ(table.size(), 2u); // two keys, one record
}

TEST(TxnTableTest, MethodDistinguishesKeys)
{
    TxnTable table;
    table.insert(record("b", "c1"));
    EXPECT_TRUE(table.find(key("b", sip::Method::Invite)));
    EXPECT_FALSE(table.find(key("b", sip::Method::Bye)));
}

TEST(TxnTableTest, CleanupRemovesExpiredInOrder)
{
    TxnTable table;
    auto r1 = table.insert(record("s1", "c1"));
    auto r2 = table.insert(record("s2", "c2"));
    auto r3 = table.insert(record("s3", "c3"));
    table.scheduleExpiry(r1, 100);
    table.scheduleExpiry(r2, 200);
    table.scheduleExpiry(r3, 300);
    EXPECT_EQ(table.cleanupExpired(50), 0u);
    EXPECT_EQ(table.cleanupExpired(250), 2u);
    EXPECT_FALSE(table.find(key("s1")));
    EXPECT_FALSE(table.find(key("c2")));
    EXPECT_TRUE(table.find(key("s3")));
    EXPECT_EQ(table.cleanupExpired(1000), 1u);
    EXPECT_EQ(table.size(), 0u);
}

TEST(RetransListTest, ArmAndCollectDue)
{
    RetransList list;
    RetransList::Entry entry;
    entry.key = key("b1");
    entry.wire = "INVITE";
    entry.dst = net::Addr{2, 5060};
    entry.nextAt = 100;
    entry.interval = 100;
    entry.deadline = 10000;
    entry.invite = true;
    list.arm(entry);

    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    EXPECT_EQ(list.collectDue(50, due, timeouts), 1u); // visited all
    EXPECT_TRUE(due.empty());
    list.collectDue(150, due, timeouts);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].wire, "INVITE");
    EXPECT_EQ(timeouts, 0u);
}

TEST(RetransListTest, InviteBackoffDoublesUnbounded)
{
    RetransList list;
    RetransList::Entry entry;
    entry.key = key("b1");
    entry.nextAt = 0;
    entry.interval = sip::timers::kT1;
    entry.deadline = sim::secs(600);
    entry.invite = true;
    list.arm(entry);

    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    sim::SimTime t = 0;
    std::vector<sim::SimTime> gaps;
    sim::SimTime last = 0;
    for (int i = 0; i < 5; ++i) {
        // Advance exactly to the next due time.
        t += sim::secs(64); // far enough that it is always due
        due.clear();
        list.collectDue(t, due, timeouts);
        if (!due.empty()) {
            gaps.push_back(t - last);
            last = t;
        }
    }
    EXPECT_GE(gaps.size(), 3u);
}

TEST(RetransListTest, NonInviteBackoffCapsAtT2)
{
    RetransList list;
    RetransList::Entry entry;
    entry.key = key("b1", sip::Method::Bye);
    entry.nextAt = 0;
    entry.interval = sip::timers::kT2; // already at cap
    entry.deadline = sim::secs(600);
    entry.invite = false;
    list.arm(entry);
    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    list.collectDue(1, due, timeouts);
    ASSERT_EQ(due.size(), 1u);
    due.clear();
    // Next retransmission must come after exactly T2, not 2*T2.
    list.collectDue(1 + sip::timers::kT2, due, timeouts);
    EXPECT_EQ(due.size(), 1u);
}

TEST(RetransListTest, CancelSuppressesAndErases)
{
    RetransList list;
    RetransList::Entry entry;
    entry.key = key("b1");
    entry.nextAt = 100;
    entry.interval = 100;
    entry.deadline = 10000;
    list.arm(entry);
    EXPECT_TRUE(list.cancel(key("b1")));
    EXPECT_FALSE(list.cancel(key("b1"))); // already gone from index
    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    list.collectDue(500, due, timeouts);
    EXPECT_TRUE(due.empty());
    EXPECT_EQ(list.size(), 0u); // erased during the walk
}

TEST(RetransListTest, DeadlineExpiryCountsTimeout)
{
    RetransList list;
    RetransList::Entry entry;
    entry.key = key("b1");
    entry.nextAt = 100;
    entry.interval = 100;
    entry.deadline = 1000;
    list.arm(entry);
    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    list.collectDue(2000, due, timeouts);
    EXPECT_EQ(timeouts, 1u);
    EXPECT_TRUE(due.empty());
    EXPECT_EQ(list.size(), 0u);
}

// --- ConnTable -------------------------------------------------------------

std::unique_ptr<TcpConnObj>
conn(std::uint64_t id, net::Addr peer = {})
{
    auto obj = std::make_unique<TcpConnObj>();
    obj->id = id;
    obj->peer = peer;
    return obj;
}

TEST(ConnTableTest, InsertLookupErase)
{
    ConnTable table;
    table.insert(conn(7));
    ASSERT_TRUE(table.byId(7));
    EXPECT_EQ(table.byId(7)->id, 7u);
    EXPECT_FALSE(table.byId(8));
    table.erase(7);
    EXPECT_FALSE(table.byId(7));
    EXPECT_EQ(table.size(), 0u);
}

TEST(ConnTableTest, AliasResolvesAndRetargets)
{
    ConnTable table;
    table.insert(conn(1));
    table.insert(conn(2));
    net::Addr addr{5, 16000};
    table.setAlias(addr, 1);
    ASSERT_TRUE(table.byAddr(addr));
    EXPECT_EQ(table.byAddr(addr)->id, 1u);
    // Reconnect: the alias moves to the new connection.
    table.setAlias(addr, 2);
    EXPECT_EQ(table.byAddr(addr)->id, 2u);
}

TEST(ConnTableTest, EraseCleansOwnAliasesOnly)
{
    ConnTable table;
    table.insert(conn(1));
    table.insert(conn(2));
    net::Addr a{5, 16000}, b{5, 16001};
    table.setAlias(a, 1);
    table.setAlias(b, 2);
    table.setAlias(a, 2); // alias a moved from 1 to 2
    table.erase(1);       // must not remove alias a (points at 2 now)
    ASSERT_TRUE(table.byAddr(a));
    EXPECT_EQ(table.byAddr(a)->id, 2u);
    table.erase(2);
    EXPECT_FALSE(table.byAddr(a));
    EXPECT_FALSE(table.byAddr(b));
}

TEST(ConnTableTest, SetAliasForUnknownConnIsNoop)
{
    ConnTable table;
    table.setAlias(net::Addr{1, 2}, 99);
    EXPECT_FALSE(table.byAddr(net::Addr{1, 2}));
}

TEST(ConnTableTest, RandomizedAgainstReferenceModel)
{
    ConnTable table;
    std::map<std::uint64_t, bool> live;
    std::map<net::Addr, std::uint64_t> aliases;
    sim::Rng rng(99);
    std::uint64_t next_id = 1;
    for (int step = 0; step < 5000; ++step) {
        switch (rng.below(4)) {
          case 0: { // insert
            table.insert(conn(next_id));
            live[next_id] = true;
            ++next_id;
            break;
          }
          case 1: { // erase random id
            if (live.empty())
                break;
            auto it = live.begin();
            std::advance(it, static_cast<long>(
                                 rng.below(live.size())));
            table.erase(it->first);
            for (auto ait = aliases.begin(); ait != aliases.end();) {
                if (ait->second == it->first)
                    ait = aliases.erase(ait);
                else
                    ++ait;
            }
            live.erase(it);
            break;
          }
          case 2: { // set alias
            if (live.empty())
                break;
            auto it = live.begin();
            std::advance(it, static_cast<long>(
                                 rng.below(live.size())));
            net::Addr addr{1, static_cast<std::uint16_t>(
                                  rng.below(32))};
            table.setAlias(addr, it->first);
            aliases[addr] = it->first;
            break;
          }
          default: { // verify a random alias + size
            net::Addr addr{1, static_cast<std::uint16_t>(
                                  rng.below(32))};
            TcpConnObj *obj = table.byAddr(addr);
            auto it = aliases.find(addr);
            if (it == aliases.end()) {
                EXPECT_EQ(obj, nullptr);
            } else {
                ASSERT_NE(obj, nullptr);
                EXPECT_EQ(obj->id, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(table.size(), live.size());
    }
}

// --- IdlePq ------------------------------------------------------------------

TEST(IdlePqTest, PopsInExpiryOrder)
{
    IdlePq pq;
    pq.push(300, 3);
    pq.push(100, 1);
    pq.push(200, 2);
    ASSERT_FALSE(pq.empty());
    EXPECT_EQ(pq.top().id, 1u);
    pq.pop();
    EXPECT_EQ(pq.top().id, 2u);
    pq.pop();
    EXPECT_EQ(pq.top().id, 3u);
    pq.pop();
    EXPECT_TRUE(pq.empty());
}

TEST(IdlePqTest, HeapInvariantUnderRandomOps)
{
    IdlePq pq;
    sim::Rng rng(7);
    for (int i = 0; i < 2000; ++i)
        pq.push(static_cast<sim::SimTime>(rng.below(1000000)),
                static_cast<std::uint64_t>(i));
    sim::SimTime last = -1;
    while (!pq.empty()) {
        EXPECT_GE(pq.top().expireAt, last);
        last = pq.top().expireAt;
        pq.pop();
    }
}

// --- Registrar ---------------------------------------------------------------

TEST(RegistrarTest, UpdateAndLookup)
{
    Registrar reg;
    Binding binding;
    binding.contact = *sip::SipUri::parse("sip:alice@h2:6000");
    binding.connId = 42;
    reg.update("alice", binding);
    auto found = reg.lookup("alice");
    ASSERT_TRUE(found);
    EXPECT_EQ(found->contact.host, "h2");
    EXPECT_EQ(found->connId, 42u);
    EXPECT_FALSE(reg.lookup("bob"));
}

TEST(RegistrarTest, ReRegistrationReplacesBinding)
{
    Registrar reg;
    Binding b1;
    b1.contact = *sip::SipUri::parse("sip:alice@h2:6000");
    b1.connId = 1;
    reg.update("alice", b1);
    Binding b2;
    b2.contact = *sip::SipUri::parse("sip:alice@h3:7000");
    b2.connId = 2;
    reg.update("alice", b2);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.lookup("alice")->connId, 2u);
    EXPECT_EQ(reg.lookup("alice")->contact.host, "h3");
}

} // namespace

/**
 * @file
 * Direct unit tests for the core::Registrar location database:
 * bind/refresh semantics, expiry-aware lookup with lazy reclamation,
 * bulk expiry sweeps, and the replication wire format used by the
 * sharded cluster location service.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/location.hh"
#include "core/registrar.hh"
#include "sip/uri.hh"

namespace {

using namespace siprox;
using namespace siprox::core;

Binding
bindingTo(const std::string &host, int port,
          sim::SimTime expiresAt = 0)
{
    Binding b;
    b.contact.user = "alice";
    b.contact.host = host;
    b.contact.port = port;
    b.expiresAt = expiresAt;
    return b;
}

TEST(Registrar, BindThenLookupReturnsContact)
{
    Registrar reg;
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_FALSE(reg.lookup("alice").has_value());

    reg.update("alice", bindingTo("10.0.0.5", 5060));
    ASSERT_EQ(reg.size(), 1u);
    auto hit = reg.lookup("alice");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->contact.host, "10.0.0.5");
    EXPECT_EQ(hit->contact.port, 5060);
    EXPECT_FALSE(reg.lookup("bob").has_value());
}

TEST(Registrar, RefreshReplacesBindingInPlace)
{
    Registrar reg;
    reg.update("alice", bindingTo("10.0.0.5", 5060));
    reg.update("alice", bindingTo("10.0.0.9", 5062));
    EXPECT_EQ(reg.size(), 1u); // refresh, not a second row
    auto hit = reg.lookup("alice");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->contact.host, "10.0.0.9");
    EXPECT_EQ(hit->contact.port, 5062);
}

TEST(Registrar, ExpiryAwareLookupReclaimsLazily)
{
    Registrar reg;
    reg.update("alice", bindingTo("10.0.0.5", 5060, sim::secs(30)));

    // Before expiry the binding is served.
    auto hit = reg.lookup("alice", sim::secs(10));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->contact.host, "10.0.0.5");
    EXPECT_EQ(reg.size(), 1u);

    // At/after the expiry instant it is erased and reported absent.
    EXPECT_FALSE(reg.lookup("alice", sim::secs(30)).has_value());
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_FALSE(reg.lookup("alice", sim::secs(31)).has_value());
}

TEST(Registrar, ZeroExpiresAtNeverExpires)
{
    Registrar reg;
    reg.update("alice", bindingTo("10.0.0.5", 5060, 0));
    EXPECT_TRUE(reg.lookup("alice", sim::secs(100000)).has_value());
    EXPECT_EQ(reg.expireOlderThan(sim::secs(100000)), 0u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registrar, ExpireOlderThanSweepsOnlyExpired)
{
    Registrar reg;
    reg.update("a", bindingTo("10.0.0.1", 5060, sim::secs(10)));
    reg.update("b", bindingTo("10.0.0.2", 5060, sim::secs(20)));
    reg.update("c", bindingTo("10.0.0.3", 5060, sim::secs(30)));
    reg.update("d", bindingTo("10.0.0.4", 5060, 0));

    EXPECT_EQ(reg.expireOlderThan(sim::secs(20)), 2u); // a and b
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_FALSE(reg.lookup("a").has_value());
    EXPECT_FALSE(reg.lookup("b").has_value());
    EXPECT_TRUE(reg.lookup("c").has_value());
    EXPECT_TRUE(reg.lookup("d").has_value());
}

TEST(Registrar, RefreshExtendsExpiry)
{
    Registrar reg;
    reg.update("alice", bindingTo("10.0.0.5", 5060, sim::secs(10)));
    reg.update("alice", bindingTo("10.0.0.5", 5060, sim::secs(60)));
    EXPECT_TRUE(reg.lookup("alice", sim::secs(30)).has_value());
    EXPECT_FALSE(reg.lookup("alice", sim::secs(60)).has_value());
}

TEST(ReplicationWire, RoundTrips)
{
    std::string wire =
        renderReplication("alice", "sip:alice@10.0.0.5:5060");
    std::string user, contact;
    ASSERT_TRUE(parseReplication(wire, user, contact));
    EXPECT_EQ(user, "alice");
    EXPECT_EQ(contact, "sip:alice@10.0.0.5:5060");
}

TEST(ReplicationWire, RejectsMalformed)
{
    std::string user, contact;
    EXPECT_FALSE(parseReplication("", user, contact));
    EXPECT_FALSE(parseReplication("NOPE a b", user, contact));
    EXPECT_FALSE(parseReplication("REPL ", user, contact));
    EXPECT_FALSE(parseReplication("REPL alice", user, contact));
    EXPECT_FALSE(parseReplication("REPL alice ", user, contact));
    EXPECT_FALSE(parseReplication("REPL  sip:a@b", user, contact));
}

} // namespace

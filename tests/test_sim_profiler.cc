/**
 * @file
 * Unit tests for the simulated-CPU profiler: cost-center interning,
 * charge/at/share accounting, deterministic top() ordering (including
 * the tie-break), and report() formatting.
 */

#include <gtest/gtest.h>

#include "sim/profiler.hh"

namespace {

using namespace siprox::sim;

TEST(CostCentersTest, InterningIsStable)
{
    CostCenterId a = CostCenters::id("test:prof:alpha");
    CostCenterId b = CostCenters::id("test:prof:beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(CostCenters::id("test:prof:alpha"), a);
    EXPECT_EQ(CostCenters::name(a), "test:prof:alpha");
    EXPECT_GE(CostCenters::count(), 2u);
}

TEST(CostCentersTest, UnknownIdThrows)
{
    EXPECT_THROW(CostCenters::name(0xffffffffu), std::out_of_range);
}

TEST(ProfilerTest, EmptyProfilerIsAllZero)
{
    Profiler p;
    EXPECT_EQ(p.total(), 0);
    EXPECT_EQ(p.at("test:prof:alpha"), 0);
    EXPECT_EQ(p.at("no such center, ever"), 0);
    // share() on an empty profiler must not divide by zero.
    EXPECT_DOUBLE_EQ(p.share("test:prof:alpha"), 0.0);
    EXPECT_TRUE(p.top(10).empty());
}

TEST(ProfilerTest, ChargeAndShare)
{
    Profiler p;
    CostCenterId a = CostCenters::id("test:prof:alpha");
    CostCenterId b = CostCenters::id("test:prof:beta");
    p.charge(a, usecs(30));
    p.charge(b, usecs(10));
    p.charge(a, usecs(10));
    EXPECT_EQ(p.total(), usecs(50));
    EXPECT_EQ(p.at(a), usecs(40));
    EXPECT_EQ(p.at("test:prof:beta"), usecs(10));
    EXPECT_DOUBLE_EQ(p.share("test:prof:alpha"), 0.8);
    EXPECT_DOUBLE_EQ(p.share("test:prof:beta"), 0.2);
    EXPECT_DOUBLE_EQ(p.share("no such center, ever"), 0.0);
}

TEST(ProfilerTest, TopSortsByTimeThenName)
{
    Profiler p;
    // Intentionally interned out of alphabetical order, with a tie:
    // top() must sort ties by name, not by interning order.
    CostCenterId z = CostCenters::id("test:prof:tie-z");
    CostCenterId m = CostCenters::id("test:prof:tie-m");
    CostCenterId a = CostCenters::id("test:prof:tie-a");
    CostCenterId big = CostCenters::id("test:prof:large");
    p.charge(z, usecs(5));
    p.charge(m, usecs(5));
    p.charge(a, usecs(5));
    p.charge(big, usecs(100));

    auto lines = p.top(10);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0].name, "test:prof:large");
    EXPECT_EQ(lines[1].name, "test:prof:tie-a");
    EXPECT_EQ(lines[2].name, "test:prof:tie-m");
    EXPECT_EQ(lines[3].name, "test:prof:tie-z");
    EXPECT_DOUBLE_EQ(lines[0].pct, 100.0 * 100 / 115);

    // top(n) truncates after sorting.
    auto top2 = p.top(2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].name, "test:prof:large");
    EXPECT_EQ(top2[1].name, "test:prof:tie-a");
}

TEST(ProfilerTest, ZeroCentersAreOmitted)
{
    Profiler p;
    CostCenterId a = CostCenters::id("test:prof:alpha");
    CostCenterId b = CostCenters::id("test:prof:beta");
    p.charge(a, usecs(1));
    p.charge(b, 0);
    auto lines = p.top(10);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].name, "test:prof:alpha");
}

TEST(ProfilerTest, ReportFormatting)
{
    Profiler p;
    p.charge(CostCenters::id("test:prof:alpha"), msecs(3));
    p.charge(CostCenters::id("test:prof:beta"), msecs(1));
    std::string rep = p.report(10);

    // Header plus one line per nonzero center.
    EXPECT_NE(rep.find("cost center"), std::string::npos);
    EXPECT_NE(rep.find("cpu (ms)"), std::string::npos);
    EXPECT_NE(rep.find("test:prof:alpha"), std::string::npos);
    EXPECT_NE(rep.find("3.000"), std::string::npos);
    EXPECT_NE(rep.find("75.00%"), std::string::npos);
    EXPECT_NE(rep.find("25.00%"), std::string::npos);
    ASSERT_FALSE(rep.empty());
    EXPECT_EQ(rep.back(), '\n');
    // report(n) honors the cap: only the header plus one line.
    std::string one = p.report(1);
    EXPECT_NE(one.find("test:prof:alpha"), std::string::npos);
    EXPECT_EQ(one.find("test:prof:beta"), std::string::npos);
}

TEST(ProfilerTest, ResetClearsTotalsButKeepsCenters)
{
    Profiler p;
    CostCenterId a = CostCenters::id("test:prof:alpha");
    p.charge(a, usecs(7));
    EXPECT_GT(p.total(), 0);
    p.reset();
    EXPECT_EQ(p.total(), 0);
    EXPECT_EQ(p.at(a), 0);
    EXPECT_TRUE(p.top(5).empty());
}

} // namespace

/**
 * @file
 * Minimal JSON parser for validating exported artifacts in tests (the
 * trace-event timeline and metrics snapshots). Supports the full JSON
 * grammar the exporters emit: objects, arrays, strings with backslash
 * escapes, numbers, booleans, null. Throws std::runtime_error with a
 * byte offset on malformed input — a test failure, not a crash.
 */

#ifndef SIPROX_TESTS_JSON_CHECK_HH
#define SIPROX_TESTS_JSON_CHECK_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace siprox::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<ValuePtr> items;
    std::map<std::string, ValuePtr> fields;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    bool
    has(const std::string &key) const
    {
        return fields.find(key) != fields.end();
    }

    /** Object member access; throws on missing key or non-object. */
    const Value &
    at(const std::string &key) const
    {
        if (type != Type::Object)
            throw std::runtime_error("json: not an object");
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("json: missing key '" + key + "'");
        return *it->second;
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at byte "
                                 + std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    ValuePtr
    parseValue()
    {
        char c = peek();
        switch (c) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return parseString();
        case 't':
        case 'f':
            return parseBool();
        case 'n':
            parseLiteral("null");
            return std::make_shared<Value>();
        default:
            return parseNumber();
        }
    }

    void
    parseLiteral(std::string_view lit)
    {
        skipWs();
        if (text_.substr(pos_, lit.size()) != lit)
            fail("bad literal");
        pos_ += lit.size();
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v->boolean = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    ValuePtr
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Number;
        try {
            v->number = std::stod(
                std::string(text_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("unparsable number");
        }
        return v;
    }

    ValuePtr
    parseString()
    {
        expect('"');
        auto v = std::make_shared<Value>();
        v->type = Value::Type::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    v->str += e;
                    break;
                case 'n':
                    v->str += '\n';
                    break;
                case 't':
                    v->str += '\t';
                    break;
                case 'r':
                    v->str += '\r';
                    break;
                case 'b':
                case 'f':
                    break;
                case 'u':
                    // Exporters never emit \u escapes; accept and
                    // keep the raw digits.
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    v->str += text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                default:
                    fail("bad escape");
                }
            } else {
                v->str += c;
            }
        }
        return v;
    }

    ValuePtr
    parseArray()
    {
        expect('[');
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v->items.push_back(parseValue());
            char c = peek();
            ++pos_;
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']'");
        }
        return v;
    }

    ValuePtr
    parseObject()
    {
        expect('{');
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            ValuePtr key = parseString();
            expect(':');
            v->fields[key->str] = parseValue();
            char c = peek();
            ++pos_;
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}'");
        }
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

inline ValuePtr
parse(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace siprox::testjson

#endif // SIPROX_TESTS_JSON_CHECK_HH

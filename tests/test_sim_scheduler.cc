/**
 * @file
 * CPU scheduler tests: core sharing, priority preemption, round-robin
 * quantum expiry, sched_yield semantics, context-switch accounting, and
 * utilization bookkeeping — the behaviours the paper's §4.3 supervisor
 * priority result depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"

namespace {

using namespace siprox::sim;

MachineConfig
noCtxConfig()
{
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    return cfg;
}

Task
burn(Process &p, SimTime cost, SimTime *finished)
{
    co_await p.cpu(cost, "test:burn");
    *finished = p.sim().now();
}

TEST(SchedulerTest, TwoProcessesShareOneCore)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    SimTime f1 = 0, f2 = 0;
    m.spawn("a", 0,
            [&](Process &p) { return burn(p, usecs(100), &f1); });
    m.spawn("b", 0,
            [&](Process &p) { return burn(p, usecs(100), &f2); });
    sim.run();
    // Serialized on one core: total 200us, one finishes before the other.
    EXPECT_EQ(sim.now(), usecs(200));
    EXPECT_EQ(std::max(f1, f2), usecs(200));
    EXPECT_EQ(std::min(f1, f2), usecs(100));
}

TEST(SchedulerTest, TwoCoresRunInParallel)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 2, noCtxConfig());
    SimTime f1 = 0, f2 = 0;
    m.spawn("a", 0,
            [&](Process &p) { return burn(p, usecs(100), &f1); });
    m.spawn("b", 0,
            [&](Process &p) { return burn(p, usecs(100), &f2); });
    sim.run();
    EXPECT_EQ(sim.now(), usecs(100));
    EXPECT_EQ(f1, usecs(100));
    EXPECT_EQ(f2, usecs(100));
}

TEST(SchedulerTest, QuantumRoundRobinInterleaves)
{
    Simulation sim;
    MachineConfig cfg = noCtxConfig();
    cfg.sched.quantum = usecs(10);
    auto &m = sim.addMachine("m", 1, cfg);
    SimTime f1 = 0, f2 = 0;
    m.spawn("a", 0,
            [&](Process &p) { return burn(p, usecs(30), &f1); });
    m.spawn("b", 0,
            [&](Process &p) { return burn(p, usecs(30), &f2); });
    sim.run();
    // With RR at 10us quantum both finish near the end, not 30/60.
    EXPECT_EQ(sim.now(), usecs(60));
    EXPECT_GE(std::min(f1, f2), usecs(50));
}

TEST(SchedulerTest, HigherPriorityRunsFirst)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    SimTime f_lo = 0, f_hi = 0;
    // Spawn the low-priority process first; high priority must still
    // complete first because dispatch picks the best priority.
    m.spawn("lo", 5,
            [&](Process &p) { return burn(p, usecs(100), &f_lo); });
    m.spawn("hi", -5,
            [&](Process &p) { return burn(p, usecs(100), &f_hi); });
    sim.run();
    EXPECT_LT(f_hi, f_lo);
}

Task
wakeAndBurn(Process &p, SimTime sleep_first, SimTime cost,
            SimTime *finished)
{
    co_await p.sleepFor(sleep_first);
    co_await p.cpu(cost, "test:burn");
    *finished = p.sim().now();
}

TEST(SchedulerTest, PriorityWakeupPreemptsRunningProcess)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    SimTime f_bg = 0, f_hi = 0;
    m.spawn("bg", 0,
            [&](Process &p) { return burn(p, msecs(10), &f_bg); });
    // Wakes at 1ms; with preemption it finishes at ~1.1ms, well before
    // the background burst completes.
    m.spawn("hi", -20, [&](Process &p) {
        return wakeAndBurn(p, msecs(1), usecs(100), &f_hi);
    });
    sim.run();
    EXPECT_EQ(f_hi, msecs(1) + usecs(100));
    EXPECT_EQ(f_bg, msecs(10) + usecs(100));
}

TEST(SchedulerTest, NoPreemptionWhenDisabled)
{
    Simulation sim;
    MachineConfig cfg = noCtxConfig();
    cfg.sched.preemption = false;
    cfg.sched.quantum = msecs(100);
    auto &m = sim.addMachine("m", 1, cfg);
    SimTime f_bg = 0, f_hi = 0;
    m.spawn("bg", 0,
            [&](Process &p) { return burn(p, msecs(10), &f_bg); });
    m.spawn("hi", -20, [&](Process &p) {
        return wakeAndBurn(p, msecs(1), usecs(100), &f_hi);
    });
    sim.run();
    // High-priority process must wait for the burst to finish.
    EXPECT_EQ(f_hi, msecs(10) + usecs(100));
}

TEST(SchedulerTest, SamePriorityWakeupDoesNotPreempt)
{
    Simulation sim;
    MachineConfig cfg = noCtxConfig();
    cfg.sched.quantum = msecs(100);
    auto &m = sim.addMachine("m", 1, cfg);
    SimTime f_bg = 0, f_eq = 0;
    m.spawn("bg", 0,
            [&](Process &p) { return burn(p, msecs(10), &f_bg); });
    m.spawn("eq", 0, [&](Process &p) {
        return wakeAndBurn(p, msecs(1), usecs(100), &f_eq);
    });
    sim.run();
    EXPECT_EQ(f_eq, msecs(10) + usecs(100));
}

TEST(SchedulerTest, ContextSwitchChargedToKernelSchedule)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = usecs(2);
    cfg.sched.quantum = usecs(10);
    auto &m = sim.addMachine("m", 1, cfg);
    SimTime f1 = 0, f2 = 0;
    m.spawn("a", 0,
            [&](Process &p) { return burn(p, usecs(20), &f1); });
    m.spawn("b", 0,
            [&](Process &p) { return burn(p, usecs(20), &f2); });
    sim.run();
    // Four dispatch alternations of different processes => 4 switches.
    EXPECT_EQ(m.profiler().at("kernel:schedule"), usecs(8));
    EXPECT_EQ(m.profiler().at("test:burn"), usecs(40));
    EXPECT_EQ(sim.now(), usecs(48));
}

Task
yieldLoop(Process &p, int reps, std::vector<int> *order, int id)
{
    for (int i = 0; i < reps; ++i) {
        co_await p.cpu(usecs(1), "test:burn");
        order->push_back(id);
        co_await p.yieldCpu();
    }
}

TEST(SchedulerTest, YieldAlternatesEqualPriorityProcesses)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1, noCtxConfig());
    std::vector<int> order;
    m.spawn("a", 0,
            [&](Process &p) { return yieldLoop(p, 3, &order, 1); });
    m.spawn("b", 0,
            [&](Process &p) { return yieldLoop(p, 3, &order, 2); });
    sim.run();
    ASSERT_EQ(order.size(), 6u);
    // Yield forces strict alternation.
    for (std::size_t i = 2; i < order.size(); ++i)
        EXPECT_NE(order[i], order[i - 1]);
}

TEST(SchedulerTest, YieldIsNoOpWhenAlone)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = usecs(2);
    auto &m = sim.addMachine("m", 1, cfg);
    std::vector<int> order;
    m.spawn("a", 0,
            [&](Process &p) { return yieldLoop(p, 5, &order, 1); });
    sim.run();
    // One initial dispatch switch only; yields with empty queue are free.
    EXPECT_EQ(m.profiler().at("kernel:schedule"), usecs(2));
}

TEST(SchedulerTest, BusyTimeTracksUtilization)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 2, noCtxConfig());
    SimTime f = 0;
    m.spawn("a", 0,
            [&](Process &p) { return burn(p, msecs(1), &f); });
    sim.run();
    EXPECT_EQ(m.scheduler().busyTime(), msecs(1));
    // One of two cores busy for the whole run: 50%.
    EXPECT_NEAR(m.utilization(sim.now()), 0.5, 1e-9);
}

Task
manyBursts(Process &p, int reps)
{
    for (int i = 0; i < reps; ++i)
        co_await p.cpu(usecs(3), "test:burn");
}

TEST(SchedulerTest, ManyProcessesAllComplete)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 4, noCtxConfig());
    for (int i = 0; i < 40; ++i) {
        m.spawn("p" + std::to_string(i), 0,
                [&](Process &p) { return manyBursts(p, 25); });
    }
    sim.run();
    // 40 procs * 25 bursts * 3us over 4 cores = 750us.
    EXPECT_EQ(sim.now(), usecs(750));
    for (const auto &p : m.processes())
        EXPECT_TRUE(p->terminated());
}

TEST(SchedulerTest, ElevatedProcessGetsLowLatencyUnderLoad)
{
    // The §4.3 experiment in miniature: a "supervisor" that wakes for
    // short work competes with CPU-hog "workers". At nice 0 its
    // completion lags; at nice -20 each wake runs immediately.
    auto run_case = [](int nice) {
        Simulation sim;
        MachineConfig cfg;
        cfg.sched.ctxSwitchCost = 0;
        cfg.sched.quantum = msecs(5);
        auto &m = sim.addMachine("m", 1, cfg);
        static SimTime sink;
        for (int i = 0; i < 4; ++i) {
            m.spawn("w" + std::to_string(i), 0, [&](Process &p) {
                return burn(p, msecs(40), &sink);
            });
        }
        SimTime done = 0;
        m.spawn("sup", nice, [&](Process &p) {
            return wakeAndBurn(p, msecs(1), usecs(50), &done);
        });
        sim.run();
        return done;
    };

    SimTime done_normal = run_case(0);
    SimTime done_elevated = run_case(-20);
    EXPECT_EQ(done_elevated, msecs(1) + usecs(50));
    EXPECT_GT(done_normal, done_elevated * 4);
}

} // namespace

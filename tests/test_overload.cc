/**
 * @file
 * Tests for overload control: the admission controller's hysteresis,
 * token bucket, AIMD feedback, and panic accounting at the unit level;
 * then scenario-level behaviour — 503 + Retry-After with phone
 * backoff, TCP read pause/resume, bounded receive queues, occupancy
 * sampling, and same-seed digest determinism with overload enabled.
 */

#include <gtest/gtest.h>

#include "core/overload.hh"
#include "core/shared.hh"
#include "phone/phone.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using core::OverloadController;
using core::OverloadPolicy;
using core::ProxyCounters;
using Admission = core::OverloadController::Admission;

// --- controller unit tests --------------------------------------------------

core::OverloadConfig
thresholdConfig()
{
    core::OverloadConfig cfg;
    cfg.policy = OverloadPolicy::ThresholdReject;
    cfg.recvQueueCapacity = 100;
    cfg.highWatermark = 0.85;
    cfg.lowWatermark = 0.50;
    return cfg;
}

TEST(OverloadControllerTest, PolicyNames)
{
    EXPECT_STREQ(core::overloadPolicyName(OverloadPolicy::None),
                 "none");
    EXPECT_STREQ(
        core::overloadPolicyName(OverloadPolicy::ThresholdReject),
        "threshold-reject");
    EXPECT_STREQ(
        core::overloadPolicyName(OverloadPolicy::RateThrottle),
        "rate-throttle");
}

TEST(OverloadControllerTest, PolicyNoneAlwaysAdmits)
{
    OverloadController ctl;
    core::OverloadConfig cfg; // policy None
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);
    EXPECT_FALSE(ctl.enabled());
    ctl.noteQueueDepth(100000);
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Admit);
    EXPECT_FALSE(ctl.panicDrop(sim::secs(1)));
    EXPECT_FALSE(ctl.tcpReadsPaused(sim::secs(1)));
    EXPECT_FALSE(ctl.acceptsPaused(sim::secs(1)));
}

TEST(OverloadControllerTest, WatermarkHysteresisDoesNotFlap)
{
    OverloadController ctl;
    ProxyCounters counters;
    ctl.configure(thresholdConfig(), nullptr, &counters);

    // Below the high watermark: admit.
    ctl.noteQueueDepth(80);
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Admit);
    EXPECT_FALSE(ctl.shedding());

    // Cross it: shed.
    ctl.noteQueueDepth(90);
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Reject);
    EXPECT_TRUE(ctl.shedding());
    EXPECT_EQ(counters.overloadShedEnters, 1u);

    // Back between the watermarks: still shedding (hysteresis).
    ctl.noteQueueDepth(70);
    EXPECT_EQ(ctl.admitRequest(sim::secs(2)), Admission::Reject);
    EXPECT_TRUE(ctl.shedding());
    EXPECT_EQ(counters.overloadShedEnters, 1u);
    EXPECT_EQ(counters.overloadShedExits, 0u);

    // Below the low watermark: re-admit.
    ctl.noteQueueDepth(40);
    EXPECT_EQ(ctl.admitRequest(sim::secs(3)), Admission::Admit);
    EXPECT_EQ(counters.overloadShedExits, 1u);

    // Between the watermarks again: no re-entry (no flapping).
    ctl.noteQueueDepth(70);
    EXPECT_EQ(ctl.admitRequest(sim::secs(4)), Admission::Admit);
    EXPECT_EQ(counters.overloadShedEnters, 1u);
    EXPECT_EQ(counters.overloadRejected, 2u);
}

TEST(OverloadControllerTest, LatencySignalShedsAndIdleDecayRecovers)
{
    OverloadController ctl;
    core::OverloadConfig cfg = thresholdConfig();
    cfg.latencyHigh = sim::msecs(60);
    cfg.latencyLow = sim::msecs(15);
    cfg.ewmaAlpha = 0.2;
    cfg.ewmaIdleDecay = sim::msecs(100);
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);

    // Two 200ms samples push the EWMA past 60ms (40, then 72).
    ctl.recordServed(sim::secs(1), sim::msecs(200));
    ctl.recordServed(sim::secs(1), sim::msecs(200));
    EXPECT_GT(ctl.latencyEwma(), sim::msecs(60));
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Reject);

    // Nothing served for a long gap: the EWMA decays as if zero-latency
    // samples arrived, so shedding exits instead of wedging forever.
    EXPECT_EQ(ctl.admitRequest(sim::secs(30)), Admission::Admit);
    EXPECT_LE(ctl.latencyEwma(), sim::msecs(15));
    EXPECT_FALSE(ctl.shedding());
}

TEST(OverloadControllerTest, TokenBucketDepletesAndRefills)
{
    OverloadController ctl;
    core::OverloadConfig cfg;
    cfg.policy = OverloadPolicy::RateThrottle;
    cfg.initialRate = 10; // 10 admitted INVITEs per second
    cfg.burstTokens = 2;
    cfg.increasePerInterval = 0; // isolate the bucket from AIMD
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);

    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Admit);
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Admit);
    EXPECT_EQ(ctl.admitRequest(sim::secs(1)), Admission::Reject);
    EXPECT_EQ(counters.overloadThrottled, 1u);

    // 200ms at 10/s refills two tokens (capped at the burst size).
    sim::SimTime later = sim::secs(1) + sim::msecs(200);
    EXPECT_EQ(ctl.admitRequest(later), Admission::Admit);
    EXPECT_EQ(ctl.admitRequest(later), Admission::Admit);
    EXPECT_EQ(ctl.admitRequest(later), Admission::Reject);
    EXPECT_EQ(counters.overloadThrottled, 2u);
}

TEST(OverloadControllerTest, AimdTracksServingLatency)
{
    OverloadController ctl;
    core::OverloadConfig cfg;
    cfg.policy = OverloadPolicy::RateThrottle;
    cfg.initialRate = 1000;
    cfg.minRate = 10;
    cfg.maxRate = 2000;
    cfg.adjustInterval = sim::msecs(50);
    cfg.latencyTarget = sim::msecs(10);
    cfg.decreaseFactor = 0.5;
    cfg.increasePerInterval = 100;
    cfg.ewmaIdleDecay = 0; // EWMA moves only on samples here
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);

    // High-latency service: multiplicative decrease.
    ctl.recordServed(sim::secs(1), sim::msecs(100)); // seeds the clock
    ctl.recordServed(sim::secs(1) + sim::msecs(60), sim::msecs(100));
    double after_decrease = ctl.currentRate();
    EXPECT_LT(after_decrease, 1000.0);

    // Latency back under target: additive increase. Drain the EWMA
    // with same-timestamp samples *before* the next adjust boundary
    // passes, so the catch-up loop sees a low EWMA and increases.
    for (int i = 0; i < 20; ++i)
        ctl.recordServed(sim::secs(1) + sim::msecs(60), 0);
    ctl.recordServed(sim::secs(1) + sim::msecs(120), 0);
    EXPECT_GT(ctl.currentRate(), after_decrease);
}

TEST(OverloadControllerTest, PanicDropAccounting)
{
    OverloadController ctl;
    core::OverloadConfig cfg = thresholdConfig();
    cfg.panicWatermark = 0.9;
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);

    ctl.noteQueueDepth(95);
    EXPECT_TRUE(ctl.panicDrop(sim::secs(1)));
    EXPECT_TRUE(ctl.panicDrop(sim::secs(1)));
    EXPECT_EQ(counters.overloadPanicDrops, 2u);

    ctl.noteQueueDepth(10);
    EXPECT_FALSE(ctl.panicDrop(sim::secs(1)));
    EXPECT_EQ(counters.overloadPanicDrops, 2u);
}

TEST(OverloadControllerTest, TcpPauseSlicesGuaranteeResume)
{
    OverloadController ctl;
    core::OverloadConfig cfg = thresholdConfig();
    cfg.pauseSlice = sim::msecs(20);
    ProxyCounters counters;
    ctl.configure(cfg, nullptr, &counters);

    ctl.noteQueueDepth(90); // above the high watermark
    sim::SimTime t = sim::secs(1);
    EXPECT_TRUE(ctl.tcpReadsPaused(t));
    EXPECT_EQ(counters.tcpReadPauses, 1u);
    EXPECT_TRUE(ctl.tcpReadsPaused(t + sim::msecs(10)));

    // Slice over: one read pass is guaranteed before re-pausing.
    EXPECT_FALSE(ctl.tcpReadsPaused(t + sim::msecs(25)));
    EXPECT_EQ(counters.tcpReadResumes, 1u);
    EXPECT_TRUE(ctl.tcpReadsPaused(t + sim::msecs(25)));
    EXPECT_EQ(counters.tcpReadPauses, 2u);

    // Signal cleared: resume at the slice end and stay resumed.
    ctl.noteQueueDepth(10);
    EXPECT_FALSE(ctl.tcpReadsPaused(t + sim::msecs(50)));
    EXPECT_FALSE(ctl.tcpReadsPaused(t + sim::msecs(51)));
    EXPECT_EQ(counters.tcpReadResumes, 2u);
}

TEST(OverloadControllerTest, AcceptPauseTransitionsCounted)
{
    OverloadController ctl;
    ProxyCounters counters;
    ctl.configure(thresholdConfig(), nullptr, &counters);

    ctl.noteQueueDepth(90);
    EXPECT_TRUE(ctl.acceptsPaused(sim::secs(1)));
    EXPECT_TRUE(ctl.acceptsPaused(sim::secs(1) + sim::msecs(5)));
    EXPECT_EQ(counters.tcpAcceptPauses, 1u); // transition, not polls

    ctl.noteQueueDepth(10);
    EXPECT_FALSE(ctl.acceptsPaused(sim::secs(2)));
    ctl.noteQueueDepth(90);
    EXPECT_TRUE(ctl.acceptsPaused(sim::secs(3)));
    EXPECT_EQ(counters.tcpAcceptPauses, 2u);
}

// --- scenario-level tests ---------------------------------------------------

workload::Scenario
smallScenario(core::Transport transport)
{
    workload::Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.workers = 4;
    sc.clients = 4;
    sc.callsPerClient = 3;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(120);
    return sc;
}

TEST(OverloadScenarioTest, Udp503RejectionAndPhoneBackoff)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    // Force permanent shedding: enter immediately, never exit.
    sc.proxy.overload.policy = OverloadPolicy::ThresholdReject;
    sc.proxy.overload.highWatermark = 0.0;
    sc.proxy.overload.lowWatermark = -1.0;
    sc.phoneRetryBackoffCap = sim::msecs(200);

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    // Every INVITE was refused with a 503...
    EXPECT_EQ(r.callsCompleted, 0u);
    EXPECT_GT(r.counters.overloadRejected, 0u);
    EXPECT_EQ(r.phoneRejected503, r.callsFailed);
    // ...which the callers honored with Retry-After backoff.
    EXPECT_GT(r.phoneBackoffs, 0u);
    // REGISTERs are not new work: never rejected.
    EXPECT_EQ(r.counters.registrations, 8u);
}

TEST(OverloadScenarioTest, TcpReadPauseRoundTrip)
{
    workload::Scenario sc = smallScenario(core::Transport::Tcp);
    sc.proxy.overload.policy = OverloadPolicy::ThresholdReject;
    // A tiny table capacity makes any in-flight INVITE (two map
    // entries, lingering 1s) look like queue pressure, so workers
    // pause reads; the slice bound must always resume them.
    // Registration is unaffected: REGISTERs create no txn records.
    sc.proxy.overload.txnTableCapacity = 4;
    sc.proxy.overload.highWatermark = 0.5;
    sc.proxy.overload.lowWatermark = 0.25;
    sc.phoneRetryBackoffCap = sim::msecs(200);

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.counters.tcpReadPauses, 0u);
    EXPECT_GT(r.counters.tcpReadResumes, 0u);
    // Every pause is matched by a resume (one may be in flight).
    EXPECT_LE(r.counters.tcpReadPauses - r.counters.tcpReadResumes,
              1u);
    // Despite pausing, the run drains: all calls resolved one way or
    // the other.
    EXPECT_EQ(r.callsCompleted + r.callsFailed, 4u * 3u);
}

TEST(OverloadScenarioTest, RateThrottleLimitsAdmission)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.proxy.overload.policy = OverloadPolicy::RateThrottle;
    sc.proxy.overload.initialRate = 2;
    sc.proxy.overload.maxRate = 2;
    sc.proxy.overload.minRate = 2;
    sc.proxy.overload.burstTokens = 1;
    sc.phoneRetryBackoffCap = sim::msecs(500);

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.counters.overloadThrottled, 0u);
    // The bucket admits steadily, so some calls do complete.
    EXPECT_GT(r.callsCompleted, 0u);
    EXPECT_EQ(r.callsCompleted + r.callsFailed, 4u * 3u);
}

TEST(OverloadScenarioTest, BoundedRecvQueueCountsOverflowDrops)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.clients = 12;
    sc.net.udpRecvQueue = 2; // tiny kernel buffer
    sc.phoneResponseTimeout = sim::secs(8); // headroom for retransmits

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.proxyRecvQueueDrops, 0u);
    // The drops surface in the digest for determinism checks.
    EXPECT_NE(r.digest().find("proxyRecvQueueDrops="),
              std::string::npos);
}

TEST(OverloadScenarioTest, OccupancySamplingProducesTimeSeries)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    // The whole small scenario runs in a few ms of sim time, so the
    // sampler needs a sub-ms period to produce a series.
    sc.sampleInterval = sim::usecs(100);

    workload::RunResult r = workload::runScenario(sc);
    ASSERT_GT(r.occupancy.size(), 1u);
    for (std::size_t i = 1; i < r.occupancy.size(); ++i)
        EXPECT_GT(r.occupancy[i].at, r.occupancy[i - 1].at);
    EXPECT_NE(r.digest().find("occupancySamples="),
              std::string::npos);
}

TEST(OverloadScenarioTest, SameSeedDigestsIdenticalWithOverload)
{
    for (OverloadPolicy policy : {OverloadPolicy::ThresholdReject,
                                  OverloadPolicy::RateThrottle}) {
        workload::Scenario sc = smallScenario(core::Transport::Udp);
        sc.proxy.overload.policy = policy;
        // Make the controller actually act during the run. The burst
        // must be smaller than the request count or the bucket never
        // binds and no 503 (and no backoff-jitter RNG draw) happens.
        sc.proxy.overload.latencyHigh = sim::usecs(1);
        sc.proxy.overload.initialRate = 50;
        sc.proxy.overload.burstTokens = 1;
        sc.sampleInterval = sim::msecs(10);
        sc.phoneRetryBackoffCap = sim::msecs(200);
        sc.seed = 42;

        std::string a = workload::runScenario(sc).digest();
        std::string b = workload::runScenario(sc).digest();
        EXPECT_EQ(a, b) << core::overloadPolicyName(policy);

        sc.seed = 43;
        EXPECT_NE(workload::runScenario(sc).digest(), a)
            << core::overloadPolicyName(policy);
    }
}

// --- overload control under the event-driven architecture -------------------

TEST(OverloadEventArchTest, Udp503RejectionUnderEventDriven)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.proxy.arch = core::ArchKind::EventDriven;
    sc.proxy.overload.policy = OverloadPolicy::ThresholdReject;
    sc.proxy.overload.highWatermark = 0.0;
    sc.proxy.overload.lowWatermark = -1.0;
    sc.phoneRetryBackoffCap = sim::msecs(200);

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.archKind, core::ArchKind::EventDriven);
    EXPECT_EQ(r.callsCompleted, 0u);
    EXPECT_GT(r.counters.overloadRejected, 0u);
    EXPECT_GT(r.phoneBackoffs, 0u);
    EXPECT_EQ(r.counters.registrations, 8u);
}

TEST(OverloadEventArchTest, RateThrottleUnderEventDriven)
{
    for (core::Transport t :
         {core::Transport::Udp, core::Transport::Tcp}) {
        workload::Scenario sc = smallScenario(t);
        sc.proxy.arch = core::ArchKind::EventDriven;
        sc.proxy.overload.policy = OverloadPolicy::RateThrottle;
        sc.proxy.overload.initialRate = 2;
        sc.proxy.overload.maxRate = 2;
        sc.proxy.overload.minRate = 2;
        sc.proxy.overload.burstTokens = 1;
        sc.phoneRetryBackoffCap = sim::msecs(500);

        workload::RunResult r = workload::runScenario(sc);
        EXPECT_FALSE(r.timedOut) << core::transportName(t);
        EXPECT_EQ(r.archKind, core::ArchKind::EventDriven);
        EXPECT_GT(r.counters.overloadThrottled, 0u)
            << core::transportName(t);
        // The event loops throttle without ever blocking: the run
        // drains and the admitted slice completes.
        EXPECT_GT(r.callsCompleted, 0u) << core::transportName(t);
        EXPECT_EQ(r.callsCompleted + r.callsFailed, 4u * 3u)
            << core::transportName(t);
    }
}

TEST(OverloadEventArchTest, SameSeedDigestsIdenticalEventDriven)
{
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.proxy.arch = core::ArchKind::EventDriven;
    sc.proxy.overload.policy = OverloadPolicy::RateThrottle;
    sc.proxy.overload.initialRate = 50;
    sc.proxy.overload.burstTokens = 1;
    sc.proxy.overload.latencyHigh = sim::usecs(1);
    sc.phoneRetryBackoffCap = sim::msecs(200);
    sc.seed = 42;

    std::string a = workload::runScenario(sc).digest();
    std::string b = workload::runScenario(sc).digest();
    EXPECT_EQ(a, b);
}

TEST(OverloadEventArchTest, HopHoldsForcedOffUnderEventDriven)
{
    // A chained event-driven edge with a Window grant of 1 and a hold
    // budget configured: the event arch must force holds off (its
    // loops never block), fall back to immediate 503s, and still
    // drain every call.
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.chain = {workload::ChainHop{}, workload::ChainHop{}};
    sc.chain[0].arch = core::ArchKind::EventDriven;
    sc.proxy.overload.hop.scheme = core::FeedbackScheme::Window;
    sc.proxy.overload.hop.initialWindow = 1;
    sc.proxy.overload.hop.holdMax = sim::msecs(50);
    sc.phoneRetryBackoffCap = sim::msecs(200);

    workload::RunResult r = workload::runScenario(sc);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.callsCompleted + r.callsFailed, 4u * 3u);
    // No INVITE was ever parked: holds require a blocking wait.
    EXPECT_EQ(r.counters.hopThrottleHolds, 0u);
}

// --- phone backoff ----------------------------------------------------------

TEST(PhoneBackoffTest, NeverWaitsLessThanAdvertisedRetryAfter)
{
    const sim::SimTime advertised = sim::secs(4);
    const sim::SimTime cap = sim::secs(1); // cap below the advertisement
    for (int streak = 0; streak < 4; ++streak) {
        for (double u : {0.0, 0.25, 0.5, 0.999}) {
            sim::SimTime wait =
                phone::backoffWait(advertised, streak, cap, u);
            // The historical bugs: the cap cut the wait to 1 s, and
            // the +/-50% jitter could halve it again. Both undercut
            // the downstream's explicit request.
            EXPECT_GE(wait, advertised)
                << "streak=" << streak << " u=" << u;
        }
    }
}

TEST(PhoneBackoffTest, ConsecutiveRejectionsDoubleUpToCap)
{
    const sim::SimTime advertised = sim::secs(1);
    const sim::SimTime cap = sim::secs(8);
    // No jitter (u=0): the deterministic schedule is 1, 2, 4, 8, 8...
    EXPECT_EQ(phone::backoffWait(advertised, 0, cap, 0.0), sim::secs(1));
    EXPECT_EQ(phone::backoffWait(advertised, 1, cap, 0.0), sim::secs(2));
    EXPECT_EQ(phone::backoffWait(advertised, 2, cap, 0.0), sim::secs(4));
    EXPECT_EQ(phone::backoffWait(advertised, 3, cap, 0.0), sim::secs(8));
    EXPECT_EQ(phone::backoffWait(advertised, 9, cap, 0.0), sim::secs(8));
    // A pathological streak must not overflow the shift.
    EXPECT_EQ(phone::backoffWait(advertised, 1000, cap, 0.0),
              sim::secs(8));
}

TEST(PhoneBackoffTest, JitterOnlyStretchesUpToHalf)
{
    const sim::SimTime advertised = sim::secs(2);
    const sim::SimTime cap = sim::secs(8);
    sim::SimTime lo = phone::backoffWait(advertised, 0, cap, 0.0);
    sim::SimTime hi = phone::backoffWait(advertised, 0, cap, 0.999);
    EXPECT_EQ(lo, advertised);
    EXPECT_GT(hi, lo);
    EXPECT_LE(hi, advertised + advertised / 2);
}

TEST(PhoneBackoffTest, ScenarioHonorsAdvertisedFloor)
{
    // Overloaded proxy advertising Retry-After=1 with a phone cap far
    // below it: callers must still be away >= 1 s per backoff, which
    // bounds how many backoffs fit in the run.
    workload::Scenario sc = smallScenario(core::Transport::Udp);
    sc.proxy.overload.policy = OverloadPolicy::RateThrottle;
    sc.proxy.overload.latencyHigh = sim::usecs(1);
    sc.proxy.overload.initialRate = 50;
    sc.proxy.overload.burstTokens = 1;
    sc.proxy.overload.retryAfterSecs = 1;
    sc.phoneRetryBackoffCap = sim::msecs(10); // far below Retry-After
    sc.maxDuration = sim::secs(30);

    workload::RunResult r = workload::runScenario(sc);
    ASSERT_GT(r.phoneBackoffs, 0u);
    // Each backoff sleeps at least the advertised 1 s, so the run must
    // have lasted at least one full floor-length sleep.
    EXPECT_GE(r.duration, sim::secs(1));
}

} // namespace

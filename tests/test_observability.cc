/**
 * @file
 * End-to-end observability tests over real scenario runs: recording
 * must not perturb the simulation (byte-identical digests), per-call
 * span decompositions must sum exactly to the end-to-end duration,
 * the fd cache must visibly remove fd-passing IPC wait time, and the
 * exported artifacts (timeline JSON, metrics JSON) must be well
 * formed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "json_check.hh"
#include "sim/trace.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
namespace tr = sim::trace;

struct RecorderGuard
{
    ~RecorderGuard() { tr::setRecorder(nullptr); }
};

Scenario
tcpScenario(bool fd_cache)
{
    Scenario sc = paperScenario(core::Transport::Tcp, 8, 0);
    sc.callsPerClient = 12;
    sc.proxy.fdCache = fd_cache;
    sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
    return sc;
}

TEST(ObservabilityTest, RecordingDoesNotPerturbTheRun)
{
    RecorderGuard guard;
    RunResult plain = runScenario(tcpScenario(false));

    tr::Recorder rec;
    tr::setRecorder(&rec);
    RunResult recorded = runScenario(tcpScenario(false));
    tr::setRecorder(nullptr);

    // The recorder observes; it must never change scheduling, counters
    // or timing. Byte-identical digests prove it.
    EXPECT_EQ(plain.digest(), recorded.digest());
    EXPECT_GT(rec.eventCount(), 0u);
}

TEST(ObservabilityTest, EverySpanDecompositionSumsExactly)
{
    RecorderGuard guard;
    tr::Recorder rec;
    tr::setRecorder(&rec);
    RunResult r = runScenario(tcpScenario(false));
    tr::setRecorder(nullptr);

    ASSERT_GT(r.callsCompleted, 0u);
    ASSERT_FALSE(rec.calls().empty());
    for (const auto &[id, cs] : rec.calls()) {
        sim::SimTime sum = 0;
        for (sim::SimTime w : cs.wait)
            sum += w;
        // Exact in integer nanoseconds: every nanosecond between span
        // begin and end is attributed to exactly one wait state.
        EXPECT_EQ(sum, cs.total) << "trace id " << id;
        EXPECT_GT(cs.spans, 0) << "trace id " << id;
    }

    // The server machine recorded spans with real CPU time.
    ASSERT_EQ(rec.machineTotals().count("server"), 1u);
    const auto &server = rec.machineTotals().at("server");
    EXPECT_GT(server.spans, 0);
    EXPECT_GT(server.at(tr::Wait::Cpu), 0);
}

TEST(ObservabilityTest, FdCacheRemovesIpcWait)
{
    RecorderGuard guard;
    tr::Recorder base_rec;
    tr::setRecorder(&base_rec);
    runScenario(tcpScenario(false));
    tr::setRecorder(nullptr);

    tr::Recorder cached_rec;
    tr::setRecorder(&cached_rec);
    runScenario(tcpScenario(true));
    tr::setRecorder(nullptr);

    ASSERT_EQ(base_rec.machineTotals().count("server"), 1u);
    ASSERT_EQ(cached_rec.machineTotals().count("server"), 1u);
    sim::SimTime base_ipc =
        base_rec.machineTotals().at("server").at(tr::Wait::Ipc);
    sim::SimTime cached_ipc =
        cached_rec.machineTotals().at("server").at(tr::Wait::Ipc);
    // Baseline workers block on the supervisor fd round trip for every
    // outbound send; the cache removes most of that wait outright.
    EXPECT_GT(base_ipc, 0);
    EXPECT_LT(cached_ipc, base_ipc);
}

TEST(ObservabilityTest, TimelineJsonHasTheExpectedTracks)
{
    RecorderGuard guard;
    tr::Recorder rec;
    tr::setRecorder(&rec);
    runScenario(tcpScenario(false));
    tr::setRecorder(nullptr);

    std::ostringstream os;
    rec.writeJson(os);
    auto doc = siprox::testjson::parse(os.str());
    ASSERT_TRUE(doc->at("traceEvents").isArray());

    bool saw_server_pid = false, saw_core_track = false;
    bool saw_sched = false, saw_lock = false, saw_wait = false;
    bool saw_span = false, saw_call_async = false;
    for (const auto &evp : doc->at("traceEvents").items) {
        const auto &e = *evp;
        std::string ph = e.at("ph").str;
        if (ph == "M") {
            if (e.at("name").str == "process_name"
                && e.at("args").at("name").str == "server")
                saw_server_pid = true;
            if (e.at("name").str == "thread_name"
                && e.at("args").at("name").str.rfind("core", 0) == 0)
                saw_core_track = true;
            continue;
        }
        if (!e.has("cat"))
            continue;
        std::string cat = e.at("cat").str;
        if (cat == "sched")
            saw_sched = true;
        else if (cat == "lock")
            saw_lock = true;
        else if (cat == "wait")
            saw_wait = true;
        else if (cat == "span")
            saw_span = true;
        else if (cat == "call" && (ph == "b" || ph == "e"))
            saw_call_async = true;
    }
    EXPECT_TRUE(saw_server_pid);
    EXPECT_TRUE(saw_core_track);
    EXPECT_TRUE(saw_sched);
    EXPECT_TRUE(saw_lock);
    EXPECT_TRUE(saw_wait);
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_call_async);
}

TEST(ObservabilityTest, CollectMetricsMatchesRunResult)
{
    RunResult r = runScenario(tcpScenario(false));
    stats::MetricsSnapshot m = collectMetrics(r).snapshot();

    EXPECT_EQ(m.counterOr("phone.ops"), r.ops);
    EXPECT_EQ(m.counterOr("phone.callsCompleted"), r.callsCompleted);
    EXPECT_EQ(m.counterOr("proxy.forwards"), r.counters.forwards);
    EXPECT_EQ(m.counterOr("proxy.fdRequests"), r.counters.fdRequests);
    EXPECT_EQ(m.counterOr("net.tcpSegments"), r.net.tcpSegments);
    EXPECT_DOUBLE_EQ(m.gaugeOr("run.opsPerSec"), r.opsPerSec);
    // Unknown names fall back to the caller's default.
    EXPECT_EQ(m.counterOr("no.such.counter", 42u), 42u);
    EXPECT_DOUBLE_EQ(m.gaugeOr("no.such.gauge", 1.5), 1.5);

    // Profiler shares surface as gauges under profile.share.*.
    double cpu_share = m.gaugeOr("profile.share.ser:parse_msg", -1);
    EXPECT_GE(cpu_share, 0.0);
    EXPECT_LE(cpu_share, 1.0);

    // JSON export round-trips through a strict parser.
    auto doc = siprox::testjson::parse(m.toJson());
    EXPECT_EQ(doc->at("counters")
                  .at("phone.callsCompleted")
                  .number,
              static_cast<double>(r.callsCompleted));
    EXPECT_TRUE(doc->at("gauges").has("run.opsPerSec"));
}

TEST(ObservabilityTest, MetricsDigestAndDiff)
{
    RunResult a = runScenario(tcpScenario(false));
    RunResult b = runScenario(tcpScenario(false));
    stats::MetricsSnapshot ma = collectMetrics(a).snapshot();
    stats::MetricsSnapshot mb = collectMetrics(b).snapshot();

    // Same scenario, same seed: the counter digest is deterministic.
    EXPECT_EQ(ma.digest(), mb.digest());

    // diff() subtracts counters pairwise, clamping at zero.
    stats::MetricsSnapshot d = mb.diff(ma);
    EXPECT_EQ(d.counterOr("phone.callsCompleted"), 0u);
    stats::MetricsRegistry reg;
    reg.setCounter("x", 10);
    stats::MetricsSnapshot base = reg.snapshot();
    reg.setCounter("x", 25);
    EXPECT_EQ(reg.snapshot().diff(base).counterOr("x"), 15u);
}

} // namespace

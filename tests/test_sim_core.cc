/**
 * @file
 * Unit tests for the simulation substrate: time helpers, the event
 * queue, RNG determinism, task lifetime, and basic process execution.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace {

using namespace siprox::sim;

TEST(SimTimeTest, UnitConversions)
{
    EXPECT_EQ(usecs(1), 1000);
    EXPECT_EQ(msecs(1), 1000000);
    EXPECT_EQ(secs(1), 1000000000);
    EXPECT_EQ(usecs(1.5), 1500);
    EXPECT_DOUBLE_EQ(toUsecs(usecs(250)), 250.0);
    EXPECT_DOUBLE_EQ(toMsecs(secs(2)), 2000.0);
    EXPECT_DOUBLE_EQ(toSecs(msecs(1500)), 1.5);
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    SimTime now = 0;
    while (q.runNext(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(now, 30);
}

TEST(EventQueueTest, SameTimeFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    SimTime now = 0;
    while (q.runNext(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelledEventsAreSkipped)
{
    EventQueue q;
    int fired = 0;
    auto h1 = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    h1.cancel();
    EXPECT_FALSE(h1.pending());
    SimTime now = 0;
    while (q.runNext(now)) {
    }
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventsScheduledDuringRunFire)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        q.schedule(15, [&] { ++fired; });
    });
    SimTime now = 0;
    while (q.runNext(now)) {
    }
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(now, 15);
}

TEST(EventQueueTest, NextTimeReflectsHead)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), kTimeNever);
    q.schedule(99, [] {});
    EXPECT_EQ(q.nextTime(), 99);
}

TEST(RngTest, DeterministicForSeed)
{
    Rng a(7), b(7), c(8);
    bool all_equal = true;
    bool any_diff_c = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_c = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, RangeIsInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --- Task / process basics ----------------------------------------------

Task
setFlag(Process &p, bool *flag)
{
    (void)p;
    *flag = true;
    co_return;
}

TEST(ProcessTest, RootTaskRunsAtSpawnTime)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    bool ran = false;
    auto &p = m.spawn("p", 0,
                      [&](Process &self) { return setFlag(self, &ran); });
    EXPECT_FALSE(ran); // runs via event, not inline
    sim.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(p.terminated());
}

Task
burnCpu(Process &p, SimTime cost, int reps)
{
    for (int i = 0; i < reps; ++i)
        co_await p.cpu(cost, "test:burn");
}

TEST(ProcessTest, CpuAdvancesSimTime)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("p", 0,
            [&](Process &self) { return burnCpu(self, usecs(10), 5); });
    sim.run();
    EXPECT_EQ(sim.now(), usecs(50));
    EXPECT_EQ(m.profiler().at("test:burn"), usecs(50));
}

TEST(ProcessTest, CpuTimeAccounted)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    auto &p = m.spawn("p", 0, [&](Process &self) {
        return burnCpu(self, usecs(7), 3);
    });
    sim.run();
    EXPECT_EQ(p.cpuTime(), usecs(21));
}

Task
sleeper(Process &p, SimTime d)
{
    co_await p.sleepFor(d);
}

TEST(ProcessTest, SleepAdvancesTimeWithoutCpu)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    auto &p = m.spawn("p", 0, [&](Process &self) {
        return sleeper(self, msecs(5));
    });
    sim.run();
    EXPECT_EQ(sim.now(), msecs(5));
    EXPECT_EQ(p.cpuTime(), 0);
    EXPECT_TRUE(p.terminated());
}

Task
failer(Process &p)
{
    co_await p.cpu(usecs(1), "test:fail");
    throw std::runtime_error("boom");
}

TEST(ProcessTest, RootExceptionPropagatesToRun)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    m.spawn("p", 0, [&](Process &self) { return failer(self); });
    EXPECT_THROW(sim.run(), std::runtime_error);
}

Task
childTask(Process &p, int *order, int idx)
{
    co_await p.cpu(usecs(1), "test:child");
    order[idx] = idx + 1;
}

Task
parentTask(Process &p, int *order)
{
    co_await childTask(p, order, 0);
    co_await childTask(p, order, 1);
    order[2] = 3;
}

TEST(ProcessTest, NestedTasksRunInSequence)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    int order[3] = {0, 0, 0};
    m.spawn("p", 0, [&](Process &self) {
        return parentTask(self, order);
    });
    sim.run();
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

Task
nestedFailer(Process &p)
{
    co_await p.cpu(usecs(1), "test:x");
    throw std::logic_error("inner");
}

Task
catcher(Process &p, bool *caught)
{
    try {
        co_await nestedFailer(p);
    } catch (const std::logic_error &) {
        *caught = true;
    }
}

TEST(ProcessTest, NestedExceptionsCatchable)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    bool caught = false;
    m.spawn("p", 0, [&](Process &self) {
        return catcher(self, &caught);
    });
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(SimulationTest, RunUntilAdvancesClockWithoutEvents)
{
    Simulation sim;
    sim.runUntil(secs(3));
    EXPECT_EQ(sim.now(), secs(3));
}

TEST(SimulationTest, RunUntilStopsAtDeadline)
{
    Simulation sim;
    int fired = 0;
    sim.at(secs(1), [&] { ++fired; });
    sim.at(secs(5), [&] { ++fired; });
    sim.runUntil(secs(2));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), secs(2));
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, BlockedReportListsBlockedProcesses)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    m.spawn("stuck", 0, [&](Process &self) -> Task {
        struct Body
        {
            static Task
            run(Process &p)
            {
                co_await p.block("waiting forever");
            }
        };
        return Body::run(self);
    });
    sim.run();
    auto report = sim.blockedReport();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_NE(report[0].find("stuck"), std::string::npos);
    EXPECT_NE(report[0].find("waiting forever"), std::string::npos);
    EXPECT_TRUE(sim.hasLiveProcesses());
}

} // namespace

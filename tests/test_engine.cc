/**
 * @file
 * Unit tests for the proxy Engine: the transport-independent SIP
 * handling — registration, TRYING generation, routing, Via handling,
 * retransmission absorption, and error paths — driven directly with
 * hand-built messages on a one-process simulation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hh"
#include "sim/simulation.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"

namespace {

using namespace siprox;
using namespace siprox::core;

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : machine(sim.addMachine("server", 4)),
          proxyAddr{1, 5060}
    {
        cfg.transport = Transport::Udp;
        cfg.stateful = true;
    }

    /** Run engine.handleMessage for @p raw inside a process. */
    std::vector<SendAction>
    handle(const std::string &raw, net::Addr src)
    {
        Engine engine(shared, cfg, proxyAddr, 0);
        std::vector<SendAction> actions;
        bool done = false;
        machine.spawn("driver", 0, [&](sim::Process &p) -> sim::Task {
            struct Body
            {
                static sim::Task
                run(sim::Process &p, Engine *engine, std::string raw,
                    net::Addr src, std::vector<SendAction> *actions,
                    bool *done)
                {
                    co_await engine->handleMessage(
                        p, std::move(raw), MsgSource{src, 0},
                        *actions);
                    *done = true;
                }
            };
            return Body::run(p, &engine, raw, src, &actions, &done);
        });
        sim.run();
        EXPECT_TRUE(done);
        return actions;
    }

    /** Register "bob" at client address {2, 16000}. */
    void
    registerBob()
    {
        auto actions = handle(registerMsg("bob", bobAddr).serialize(),
                              bobAddr);
        ASSERT_EQ(actions.size(), 1u);
    }

    sip::SipMessage
    registerMsg(const std::string &user, net::Addr addr)
    {
        sip::RequestSpec spec;
        spec.method = sip::Method::Register;
        spec.requestUri = sip::uriForAddr("", proxyAddr);
        spec.from = sip::uriForAddr(user, addr);
        spec.to = sip::uriForAddr(user, proxyAddr);
        spec.fromTag = "rt";
        spec.callId = user + "-reg";
        spec.cseq = 1;
        spec.viaSentBy = sip::uriForAddr("", addr);
        spec.branch = "z9hG4bK-reg-" + user;
        spec.contact = sip::uriForAddr(user, addr);
        return sip::buildRequest(spec);
    }

    sip::SipMessage
    inviteMsg(const std::string &branch = "z9hG4bK-inv-1")
    {
        sip::RequestSpec spec;
        spec.method = sip::Method::Invite;
        spec.requestUri = sip::uriForAddr("bob", proxyAddr);
        spec.from = sip::uriForAddr("alice", aliceAddr);
        spec.to = sip::uriForAddr("bob", proxyAddr);
        spec.fromTag = "ft";
        spec.callId = "call-1";
        spec.cseq = 1;
        spec.viaSentBy = sip::uriForAddr("", aliceAddr);
        spec.branch = branch;
        spec.contact = sip::uriForAddr("alice", aliceAddr);
        return sip::buildRequest(spec);
    }

    sim::Simulation sim;
    sim::Machine &machine;
    SharedState shared;
    ProxyConfig cfg;
    net::Addr proxyAddr;
    net::Addr aliceAddr{2, 6000};
    net::Addr bobAddr{2, 16000};
};

TEST_F(EngineTest, RegisterCreatesBindingAndReplies200)
{
    auto actions = handle(registerMsg("bob", bobAddr).serialize(),
                          bobAddr);
    ASSERT_EQ(actions.size(), 1u);
    auto rsp = sip::parseMessage(actions[0].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), 200);
    EXPECT_EQ(actions[0].dstAddr, bobAddr);
    auto binding = shared.registrar.lookup("bob");
    ASSERT_TRUE(binding);
    EXPECT_EQ(binding->contact.user, "bob");
    EXPECT_EQ(shared.counters.registrations, 1u);
}

TEST_F(EngineTest, InviteGetsTryingAndForward)
{
    registerBob();
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 2u);
    auto trying = sip::parseMessage(actions[0].wire);
    ASSERT_TRUE(trying.ok);
    EXPECT_EQ(trying.message.statusCode(), 100);
    EXPECT_EQ(actions[0].dstAddr, aliceAddr);

    auto fwd = sip::parseMessage(actions[1].wire);
    ASSERT_TRUE(fwd.ok);
    EXPECT_TRUE(fwd.message.isRequest());
    EXPECT_EQ(actions[1].dstAddr, bobAddr);
    // Proxy pushed its own Via on top; the original is second.
    auto vias = fwd.message.headerAll("Via");
    ASSERT_EQ(vias.size(), 2u);
    EXPECT_NE(vias[0].find("h1:5060"), std::string_view::npos);
    // Request-URI retargeted to the registered contact.
    EXPECT_EQ(fwd.message.requestUri().host, "h2");
    EXPECT_EQ(*fwd.message.maxForwards(), 69);
    // Stateful: transaction record created, retransmission armed.
    EXPECT_EQ(shared.txns.size(), 2u);
    EXPECT_EQ(shared.retrans.size(), 1u);
}

TEST_F(EngineTest, StatelessInviteSkipsTryingAndState)
{
    cfg.stateful = false;
    registerBob();
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 1u); // forward only
    EXPECT_EQ(shared.txns.size(), 0u);
    EXPECT_EQ(shared.retrans.size(), 0u);
}

TEST_F(EngineTest, RetransmittedInviteAbsorbed)
{
    registerBob();
    handle(inviteMsg().serialize(), aliceAddr);
    auto again = handle(inviteMsg().serialize(), aliceAddr);
    // Absorbed: no new forward; the stored TRYING is replayed.
    ASSERT_EQ(again.size(), 1u);
    auto rsp = sip::parseMessage(again[0].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), 100);
    EXPECT_EQ(shared.counters.retransAbsorbed, 1u);
    EXPECT_EQ(shared.retrans.size(), 1u); // still just one timer
}

TEST_F(EngineTest, UnknownUserGets404)
{
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    // TRYING plus 404 (no binding for bob).
    ASSERT_EQ(actions.size(), 2u);
    auto rsp = sip::parseMessage(actions[1].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), 404);
    EXPECT_EQ(shared.counters.routeFailures, 1u);
}

TEST_F(EngineTest, DirectAddressableUriBypassesRegistrar)
{
    // In-dialog style request aimed straight at a contact address.
    auto msg = inviteMsg();
    msg.setRequestUri(sip::uriForAddr("bob", bobAddr));
    auto actions = handle(msg.serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[1].dstAddr, bobAddr);
}

TEST_F(EngineTest, ExhaustedMaxForwardsIsDropped)
{
    registerBob();
    auto msg = inviteMsg();
    msg.setMaxForwards(0);
    auto actions = handle(msg.serialize(), aliceAddr);
    // TRYING still sent, but no forward.
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(shared.counters.routeFailures, 1u);
    EXPECT_EQ(shared.counters.forwards, 0u);
}

TEST_F(EngineTest, ResponseRoutedUpstreamViaRecord)
{
    registerBob();
    auto fwd_actions = handle(inviteMsg().serialize(), aliceAddr);
    auto fwd = sip::parseMessage(fwd_actions[1].wire).message;

    // Bob answers 200; the top Via is the proxy's.
    sip::SipMessage ok = sip::buildResponse(fwd, 200, "bt");
    auto actions = handle(ok.serialize(), bobAddr);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].dstAddr, aliceAddr);
    EXPECT_TRUE(actions[0].toUpstream);
    auto out = sip::parseMessage(actions[0].wire);
    ASSERT_TRUE(out.ok);
    // Proxy's Via was popped: one Via remains (alice's).
    EXPECT_EQ(out.message.headerAll("Via").size(), 1u);
    // Final response cancels the proxy's retransmission timer.
    std::vector<RetransList::Due> due;
    std::size_t timeouts = 0;
    shared.retrans.collectDue(sim::secs(100), due, timeouts);
    EXPECT_TRUE(due.empty());
}

TEST_F(EngineTest, ResponseWithForeignViaDropped)
{
    sip::SipMessage rsp = sip::SipMessage::response(200);
    rsp.addHeader("Via", "SIP/2.0/UDP h9:5060;branch=z9hG4bK-x");
    rsp.addHeader("Call-ID", "c");
    rsp.addHeader("CSeq", "1 INVITE");
    auto actions = handle(rsp.serialize(), bobAddr);
    EXPECT_TRUE(actions.empty());
}

TEST_F(EngineTest, GarbageCountsParseErrorAndIsIgnored)
{
    auto actions = handle("NOT SIP AT ALL\r\n\r\n", aliceAddr);
    EXPECT_TRUE(actions.empty());
    EXPECT_EQ(shared.counters.parseErrors, 1u);
}

TEST_F(EngineTest, AckForUnknownTransactionRoutedByUri)
{
    registerBob();
    sip::SipMessage invite = inviteMsg();
    sip::SipMessage ok = sip::buildResponse(invite, 200, "bt");
    sip::SipMessage ack =
        sip::buildAck(invite, ok, "z9hG4bK-ack-1");
    ack.setRequestUri(sip::uriForAddr("bob", bobAddr));
    auto actions = handle(ack.serialize(), aliceAddr);
    // 2xx ACK: forwarded end-to-end, no local reply.
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].dstAddr, bobAddr);
}

TEST_F(EngineTest, ByeForwardArmsNonInviteTimer)
{
    registerBob();
    auto bye = inviteMsg("z9hG4bK-bye-1");
    // Rebuild as a BYE.
    sip::RequestSpec spec;
    spec.method = sip::Method::Bye;
    spec.requestUri = sip::uriForAddr("bob", bobAddr);
    spec.from = sip::uriForAddr("alice", aliceAddr);
    spec.to = sip::uriForAddr("bob", proxyAddr);
    spec.fromTag = "ft";
    spec.callId = "call-1";
    spec.cseq = 2;
    spec.viaSentBy = sip::uriForAddr("", aliceAddr);
    spec.branch = "z9hG4bK-bye-1";
    auto actions = handle(sip::buildRequest(spec).serialize(),
                          aliceAddr);
    // No TRYING for non-INVITE; forward only.
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(shared.retrans.size(), 1u);
}

TEST_F(EngineTest, TcpTransportSkipsRetransmissionTimers)
{
    cfg.transport = Transport::Tcp;
    registerBob();
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 2u);
    // Reliable transport: the kernel retransmits, not the proxy.
    EXPECT_EQ(shared.retrans.size(), 0u);
    EXPECT_EQ(shared.txns.size(), 2u); // still stateful
}

TEST_F(EngineTest, AuthChallengesUncredentialedInvite)
{
    cfg.authenticate = true;
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 1u);
    auto rsp = sip::parseMessage(actions[0].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), 401);
    auto www = rsp.message.header("WWW-Authenticate");
    ASSERT_TRUE(www);
    EXPECT_NE(www->find("nonce="), std::string_view::npos);
    EXPECT_EQ(shared.counters.authChallenges, 1u);
    EXPECT_EQ(shared.txns.size(), 0u); // no state for rejected requests
}

TEST_F(EngineTest, AuthAcceptsCredentialedInvite)
{
    cfg.authenticate = true;
    // Seed bob without auth interference.
    cfg.authenticate = false;
    registerBob();
    cfg.authenticate = true;
    auto msg = inviteMsg();
    msg.addHeader("Authorization",
                  "Digest username=\"alice\", nonce=\"n1\", "
                  "response=\"0badcafe\"");
    auto actions = handle(msg.serialize(), aliceAddr);
    ASSERT_EQ(actions.size(), 2u); // TRYING + forward
    EXPECT_EQ(shared.counters.authAccepted, 1u);
    EXPECT_EQ(shared.counters.authChallenges, 0u);
}

TEST_F(EngineTest, AuthNeverChallengesAck)
{
    cfg.authenticate = true;
    registerBob(); // challenged REGISTER is fine for this test
    sip::SipMessage invite = inviteMsg();
    sip::SipMessage ok = sip::buildResponse(invite, 200, "bt");
    sip::SipMessage ack = sip::buildAck(invite, ok, "z9hG4bK-a1");
    ack.setRequestUri(sip::uriForAddr("bob", bobAddr));
    auto actions = handle(ack.serialize(), aliceAddr);
    // Forwarded (or dropped on routing), but never 401'd.
    for (const auto &action : actions) {
        auto rsp = sip::parseMessage(action.wire);
        if (rsp.ok && rsp.message.isResponse())
            EXPECT_NE(rsp.message.statusCode(), 401);
    }
}

TEST_F(EngineTest, RedirectAnswers302WithContact)
{
    cfg.redirect = true;
    registerBob();
    auto actions = handle(inviteMsg().serialize(), aliceAddr);
    // TRYING then 302; no forward.
    ASSERT_EQ(actions.size(), 2u);
    auto rsp = sip::parseMessage(actions[1].wire);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.message.statusCode(), 302);
    auto contact = rsp.message.contactUri();
    ASSERT_TRUE(contact);
    EXPECT_EQ(*sip::addrFromUri(*contact), bobAddr);
    EXPECT_EQ(shared.counters.redirects, 1u);
    EXPECT_EQ(shared.counters.forwards, 0u);
}

TEST_F(EngineTest, RedirectLeavesByeProxying)
{
    cfg.redirect = true;
    registerBob();
    sip::RequestSpec spec;
    spec.method = sip::Method::Bye;
    spec.requestUri = sip::uriForAddr("bob", bobAddr);
    spec.from = sip::uriForAddr("alice", aliceAddr);
    spec.to = sip::uriForAddr("bob", proxyAddr);
    spec.fromTag = "ft";
    spec.callId = "call-1";
    spec.cseq = 2;
    spec.viaSentBy = sip::uriForAddr("", aliceAddr);
    spec.branch = "z9hG4bK-bye-redir";
    auto actions = handle(sip::buildRequest(spec).serialize(),
                          aliceAddr);
    // A stray BYE reaching a redirect server is still forwarded.
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(shared.counters.forwards, 1u);
}

} // namespace

/**
 * @file
 * Unit tests for the observability layer: the legacy line-oriented
 * trace sink, trace-id hashing, span wait accounting, and the typed
 * event recorder with its Chrome trace-event JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace {

using namespace siprox::sim;
namespace tr = siprox::sim::trace;

/** Uninstalls sink and recorder even when an assertion fails. */
struct TraceGuard
{
    ~TraceGuard()
    {
        tr::setSink(nullptr);
        tr::setRecorder(nullptr);
    }
};

TEST(TraceSinkTest, InstallDeliverUninstall)
{
    TraceGuard guard;
    EXPECT_FALSE(tr::enabled());

    struct Line
    {
        SimTime t;
        std::string cat, msg;
    };
    std::vector<Line> got;
    tr::setSink([&](SimTime t, std::string_view cat,
                    std::string_view msg) {
        got.push_back({t, std::string(cat), std::string(msg)});
    });
    EXPECT_TRUE(tr::enabled());

    tr::log(usecs(5), "cat", "hello");
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].t, usecs(5));
    EXPECT_EQ(got[0].cat, "cat");
    EXPECT_EQ(got[0].msg, "hello");

    tr::setSink(nullptr);
    EXPECT_FALSE(tr::enabled());
    tr::log(usecs(6), "cat", "dropped"); // must be a safe no-op
    EXPECT_EQ(got.size(), 1u);
}

TEST(TraceIdTest, StableAndCollisionResistant)
{
    std::uint64_t a = tr::traceIdFor("alice-call-1");
    EXPECT_EQ(tr::traceIdFor("alice-call-1"), a);
    EXPECT_NE(tr::traceIdFor("alice-call-2"), a);
    EXPECT_NE(tr::traceIdFor("bob-call-1"), a);
    // 0 is reserved for "no trace id"; even the empty string hashes
    // to something nonzero.
    EXPECT_NE(tr::traceIdFor(""), 0u);
}

TEST(WaitTest, NamesCoverEveryCategory)
{
    EXPECT_EQ(tr::waitName(tr::Wait::Cpu), "cpu");
    EXPECT_EQ(tr::waitName(tr::Wait::RunQueue), "runqueue");
    EXPECT_EQ(tr::waitName(tr::Wait::LockSpin), "lockspin");
    EXPECT_EQ(tr::waitName(tr::Wait::LockBlock), "lockblock");
    EXPECT_EQ(tr::waitName(tr::Wait::Ipc), "ipc");
    EXPECT_EQ(tr::waitName(tr::Wait::Socket), "socket");
    EXPECT_EQ(tr::waitName(tr::Wait::Sleep), "sleep");
    EXPECT_EQ(tr::waitName(tr::Wait::Throttled), "throttled");
}

TEST(SpanCtxTest, WaitAccounting)
{
    tr::SpanCtx s;
    EXPECT_EQ(s.waitSum(), 0);
    s.add(tr::Wait::Cpu, usecs(3));
    s.add(tr::Wait::Ipc, usecs(2));
    s.add(tr::Wait::Cpu, usecs(1));
    EXPECT_EQ(s.at(tr::Wait::Cpu), usecs(4));
    EXPECT_EQ(s.at(tr::Wait::Ipc), usecs(2));
    EXPECT_EQ(s.at(tr::Wait::Socket), 0);
    EXPECT_EQ(s.waitSum(), usecs(6));
}

Task
spannedWork(Process &p)
{
    SpanScope span(p);
    if (auto *s = span.ctx()) {
        s->traceId = tr::traceIdFor("test-call-1");
        s->callId = "test-call-1";
        s->label = "test";
    }
    co_await p.cpu(usecs(100), "test:trace:work");
    co_await p.sleepFor(usecs(50));
    co_await p.cpu(usecs(25), "test:trace:work");
}

TEST(RecorderTest, SpanDecompositionSumsExactly)
{
    TraceGuard guard;
    tr::Recorder rec;
    tr::setRecorder(&rec);
    EXPECT_TRUE(tr::recording());

    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("worker", 0, [](Process &p) { return spannedWork(p); });
    sim.run();
    tr::setRecorder(nullptr);

    auto it = rec.calls().find(tr::traceIdFor("test-call-1"));
    ASSERT_NE(it, rec.calls().end());
    const auto &cs = it->second;
    EXPECT_EQ(cs.spans, 1);
    EXPECT_EQ(cs.wait[static_cast<std::size_t>(tr::Wait::Cpu)],
              usecs(125));
    EXPECT_EQ(cs.wait[static_cast<std::size_t>(tr::Wait::Sleep)],
              usecs(50));
    // The invariant: every nanosecond of the span's wall-clock window
    // lands in exactly one wait bucket.
    SimTime sum = 0;
    for (SimTime w : cs.wait)
        sum += w;
    EXPECT_EQ(sum, cs.total);
    EXPECT_EQ(cs.total, usecs(175));

    ASSERT_EQ(rec.machineTotals().count("m"), 1u);
    EXPECT_EQ(rec.machineTotals().at("m").total, usecs(175));
    EXPECT_GT(rec.eventCount(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(RecorderTest, JsonExportIsWellFormed)
{
    TraceGuard guard;
    tr::Recorder rec;
    tr::setRecorder(&rec);

    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("worker", 0, [](Process &p) { return spannedWork(p); });
    sim.run();
    rec.instant("marker", usecs(1));
    tr::setRecorder(nullptr);

    std::ostringstream os;
    rec.writeJson(os);
    auto doc = siprox::testjson::parse(os.str());
    ASSERT_TRUE(doc->isObject());
    ASSERT_TRUE(doc->at("traceEvents").isArray());
    const auto &events = doc->at("traceEvents").items;
    ASSERT_FALSE(events.empty());

    bool saw_machine_meta = false, saw_span = false, saw_async = false;
    bool saw_instant = false;
    for (const auto &ev : events) {
        const auto &e = *ev;
        ASSERT_TRUE(e.at("ph").isString());
        std::string ph = e.at("ph").str;
        if (ph == "M" && e.at("name").str == "process_name"
            && e.at("args").at("name").str == "m")
            saw_machine_meta = true;
        if (ph == "X" && e.has("cat") && e.at("cat").str == "span") {
            saw_span = true;
            EXPECT_TRUE(e.at("args").has("callId"));
        }
        if (ph == "b" && e.at("cat").str == "call")
            saw_async = true;
        if (ph == "i" && e.at("name").str == "marker")
            saw_instant = true;
        if (ph == "X")
            EXPECT_TRUE(e.at("dur").isNumber());
    }
    EXPECT_TRUE(saw_machine_meta);
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_async);
    EXPECT_TRUE(saw_instant);
}

TEST(RecorderTest, EventCapCountsDropsButKeepsAggregatesExact)
{
    TraceGuard guard;
    tr::Recorder rec(tr::Recorder::Options{4});
    tr::setRecorder(&rec);

    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("worker", 0, [](Process &p) { return spannedWork(p); });
    sim.run();
    tr::setRecorder(nullptr);

    EXPECT_LE(rec.eventCount(), 4u);
    EXPECT_GT(rec.dropped(), 0u);
    // Aggregates bypass the event buffer and stay exact.
    auto it = rec.calls().find(tr::traceIdFor("test-call-1"));
    ASSERT_NE(it, rec.calls().end());
    EXPECT_EQ(it->second.total, usecs(175));
    // The export must still be valid JSON.
    std::ostringstream os;
    rec.writeJson(os);
    EXPECT_NO_THROW(siprox::testjson::parse(os.str()));
}

TEST(RecorderTest, SpansWithoutRecorderAreFree)
{
    TraceGuard guard;
    ASSERT_FALSE(tr::recording());
    Simulation sim;
    MachineConfig cfg;
    cfg.sched.ctxSwitchCost = 0;
    auto &m = sim.addMachine("m", 1, cfg);
    m.spawn("worker", 0, [](Process &p) { return spannedWork(p); });
    sim.run();
    // Nothing to observe: the point is simply that SpanScope without a
    // recorder neither records nor crashes.
    EXPECT_EQ(sim.now(), usecs(175));
}

TEST(RecorderTest, WriteJsonFileFailsCleanlyOnBadPath)
{
    tr::Recorder rec;
    EXPECT_FALSE(
        rec.writeJsonFile("/nonexistent-dir-xyz/trace.json"));
}

} // namespace

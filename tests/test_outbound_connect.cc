/**
 * @file
 * Exercises the proxy's outbound-connect path: when a request targets
 * a contact the proxy has no connection to, the worker opens a TCP
 * connection itself (OpenSER's tcpconn_connect), registers the new
 * descriptor with the supervisor, and owns the connection thereafter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/proxy.hh"
#include "net/network.hh"
#include "phone/phone.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/trace.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"

namespace {

using namespace siprox;

/**
 * A bare-bones listening UAS: accepts proxy-initiated connections and
 * answers one INVITE (180 + 200), the ACK, and one BYE (200). It never
 * contacts the proxy first, so the proxy cannot have a connection.
 */
sim::Task
listeningCallee(sim::Process &p, net::TcpListener *listener,
                bool *answered)
{
    net::TcpConn conn;
    co_await listener->accept(p, conn);
    sip::StreamFramer framer;
    bool done = false;
    while (!done) {
        std::string bytes;
        co_await conn.recv(p, bytes);
        if (bytes.empty())
            co_return; // EOF
        framer.feed(bytes);
        while (auto raw = framer.next()) {
            auto parsed = sip::parseMessage(*raw);
            if (getenv("OBC_TRACE"))
                std::printf("callee got: %s\n",
                            parsed.ok
                                ? parsed.message.summary().c_str()
                                : "UNPARSEABLE");
            if (!parsed.ok)
                co_return; // fails the test via answered == false
            sip::SipMessage &msg = parsed.message;
            if (!msg.isRequest())
                continue;
            switch (msg.method()) {
              case sip::Method::Invite: {
                auto ringing = sip::buildResponse(
                    msg, sip::status::kRinging, "ct");
                co_await conn.send(p, ringing.serialize());
                auto contact = sip::uriForAddr(
                    "standalone",
                    net::Addr{listener->localAddr().host,
                              listener->localAddr().port});
                auto ok = sip::buildResponse(msg, sip::status::kOk,
                                             "ct", contact);
                co_await conn.send(p, ok.serialize());
                *answered = true;
                break;
              }
              case sip::Method::Bye: {
                auto ok = sip::buildResponse(msg, sip::status::kOk,
                                             "ct");
                co_await conn.send(p, ok.serialize());
                done = true;
                break;
              }
              default:
                break; // ACK: nothing to send
            }
        }
    }
}

TEST(OutboundConnectTest, ProxyDialsUnconnectedContact)
{
    if (getenv("OBC_TRACE"))
        sim::trace::setSink(sim::trace::stdoutSink());
    sim::Simulation simulation;
    auto &server_machine = simulation.addMachine("server", 4);
    auto &client_machine = simulation.addMachine("client", 2);
    net::Network network(simulation);
    auto &server_host = network.attach(server_machine);
    auto &client_host = network.attach(client_machine);

    core::ProxyConfig cfg;
    cfg.transport = core::Transport::Tcp;
    cfg.workers = 2;
    core::Proxy proxy(server_machine, server_host, cfg);
    proxy.start();

    // The callee only *listens*; its location binding is provisioned
    // directly (as an administratively configured route would be).
    auto &listener = client_host.tcpListen(17000);
    bool answered = false;
    client_machine.spawn("standalone", 0, [&](sim::Process &p) {
        return listeningCallee(p, &listener, &answered);
    });
    proxy.shared().registrar.update(
        "standalone",
        core::Binding{sip::uriForAddr("standalone",
                                      client_host.addr(17000)),
                      0});

    sim::Latch registered(1), start(1), done(1);
    phone::PhoneConfig caller_cfg;
    caller_cfg.user = "alice";
    caller_cfg.port = 6000;
    caller_cfg.transport = core::Transport::Tcp;
    caller_cfg.proxyAddr = proxy.addr();
    phone::Phone alice(client_machine, client_host, caller_cfg);
    alice.startCaller(1, "standalone", &registered, &start, &done);
    start.arrive();

    simulation.runUntil(sim::secs(30));
    proxy.requestStop();

    if (getenv("OBC_TRACE")) {
        const auto &c = proxy.shared().counters;
        std::printf("msgsIn=%llu fwd=%llu local=%llu parseErr=%llu "
                    "routeFail=%llu fdReq=%llu dead=%llu outb=%llu\n",
                    (unsigned long long)c.messagesIn,
                    (unsigned long long)c.forwards,
                    (unsigned long long)c.localReplies,
                    (unsigned long long)c.parseErrors,
                    (unsigned long long)c.routeFailures,
                    (unsigned long long)c.fdRequests,
                    (unsigned long long)c.sendsToDeadConns,
                    (unsigned long long)c.outboundConnects);
        for (auto &line : simulation.blockedReport())
            std::printf("blocked: %s\n", line.c_str());
    }
    EXPECT_TRUE(answered);
    EXPECT_EQ(alice.stats().callsCompleted, 1u);
    EXPECT_EQ(alice.stats().callsFailed, 0u);
    // The INVITE had no inbound connection to ride: the worker dialed
    // out exactly once and reused that connection for ACK and BYE.
    EXPECT_EQ(proxy.shared().counters.outboundConnects, 1u);
    EXPECT_EQ(proxy.shared().counters.sendsToDeadConns, 0u);
}

} // namespace

/**
 * @file
 * Edge-case tests for simulation-kernel pieces not covered elsewhere:
 * Task ownership/moves, event handles, spawn ordering, machine
 * bookkeeping, and the trace facility.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace {

using namespace siprox::sim;

Task
noop(Process &p)
{
    (void)p;
    co_return;
}

Task
burn(Process &p, SimTime cost)
{
    co_await p.cpu(cost, "test:burn");
}

TEST(TaskTest, DefaultIsInvalidAndDone)
{
    Task t;
    EXPECT_FALSE(t.valid());
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.exceptionPtr(), nullptr);
}

TEST(TaskTest, MoveTransfersOwnership)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    m.spawn("p", 0, [&](Process &self) {
        Task a = noop(self);
        EXPECT_TRUE(a.valid());
        Task b = std::move(a);
        EXPECT_FALSE(a.valid());
        EXPECT_TRUE(b.valid());
        Task c;
        c = std::move(b);
        EXPECT_FALSE(b.valid());
        EXPECT_TRUE(c.valid());
        // c destroyed un-started: frame cleanup must be safe.
        return noop(self);
    });
    sim.run();
}

TEST(TaskTest, DestroyingUnstartedTaskIsSafe)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    m.spawn("p", 0, [&](Process &self) {
        {
            Task t = burn(self, usecs(5));
            EXPECT_FALSE(t.done());
        } // dropped without ever running
        return noop(self);
    });
    sim.run();
    EXPECT_EQ(sim.now(), 0); // the dropped burn never consumed time
}

TEST(SpawnTest, ProcessesStartInSpawnOrder)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 1);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        m.spawn("p" + std::to_string(i), 0,
                [&order, i](Process &self) -> Task {
                    struct Body
                    {
                        static Task
                        run(Process &p, std::vector<int> *order, int i)
                        {
                            (void)p;
                            order->push_back(i);
                            co_return;
                        }
                    };
                    return Body::run(self, &order, i);
                });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MachineTest, TracksProcessesAndPids)
{
    Simulation sim;
    auto &m = sim.addMachine("box", 2);
    auto &a = m.spawn("a", 0, [&](Process &p) { return noop(p); });
    auto &b = m.spawn("b", 5, [&](Process &p) { return noop(p); });
    EXPECT_EQ(m.processes().size(), 2u);
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_EQ(a.name(), "a");
    EXPECT_EQ(b.nice(), 5);
    EXPECT_EQ(&a.machine(), &m);
    sim.run();
    EXPECT_TRUE(a.terminated());
    EXPECT_TRUE(b.terminated());
}

TEST(MachineTest, UtilizationZeroBeforeWork)
{
    Simulation sim;
    auto &m = sim.addMachine("m", 4);
    EXPECT_DOUBLE_EQ(m.utilization(secs(1)), 0.0);
    EXPECT_DOUBLE_EQ(m.utilization(0), 0.0);
}

TEST(EventHandleTest, PendingLifecycle)
{
    Simulation sim;
    EventHandle h = sim.after(usecs(10), [] {});
    EXPECT_TRUE(h.pending());
    sim.run();
    EXPECT_FALSE(h.pending());
    EventHandle empty;
    EXPECT_FALSE(empty.pending());
    empty.cancel(); // no-op, must not crash
}

TEST(EventHandleTest, CancelAfterFireIsHarmless)
{
    Simulation sim;
    int fired = 0;
    EventHandle h = sim.after(usecs(10), [&] { ++fired; });
    sim.run();
    h.cancel();
    EXPECT_EQ(fired, 1);
}

TEST(TraceTest, SinkReceivesAndDisables)
{
    std::vector<std::string> lines;
    trace::setSink([&](SimTime, std::string_view cat,
                       std::string_view msg) {
        lines.push_back(std::string(cat) + "|" + std::string(msg));
    });
    EXPECT_TRUE(trace::enabled());
    trace::log(5, "cat", "hello");
    trace::setSink(nullptr);
    EXPECT_FALSE(trace::enabled());
    trace::log(6, "cat", "dropped");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "cat|hello");
}

TEST(ProfilerTest, CostCenterInterningIsStable)
{
    auto a = CostCenters::id("test:interned");
    auto b = CostCenters::id("test:interned");
    EXPECT_EQ(a, b);
    EXPECT_EQ(CostCenters::name(a), "test:interned");
}

TEST(ProfilerTest, ReportAndSharesConsistent)
{
    Profiler prof;
    auto a = CostCenters::id("test:rep_a");
    auto b = CostCenters::id("test:rep_b");
    prof.charge(a, usecs(30));
    prof.charge(b, usecs(10));
    EXPECT_EQ(prof.total(), usecs(40));
    EXPECT_DOUBLE_EQ(prof.share("test:rep_a"), 0.75);
    EXPECT_DOUBLE_EQ(prof.share("test:missing"), 0.0);
    auto top = prof.top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].name, "test:rep_a");
    EXPECT_NE(prof.report().find("test:rep_a"), std::string::npos);
    prof.reset();
    EXPECT_EQ(prof.total(), 0);
}

} // namespace

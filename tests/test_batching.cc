/**
 * @file
 * Batched datagram I/O (recvmmsg/sendmmsg model): digest pinning at
 * batchMax=1, determinism at batchMax>1, batch-depth histogram
 * integrity, the event-driven architecture accepting batching on every
 * transport, socket-level recvBatch semantics (including wake
 * suppression), and the overload controller counting a drained batch
 * as its packet count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/arch.hh"
#include "core/overload.hh"
#include "core/shared.hh"
#include "net_fixture.hh"
#include "workload/scenario.hh"

namespace {

using namespace siprox;
using namespace siprox::workload;
using core::ArchKind;
using core::Transport;

Scenario
smallScenario(Transport transport, ArchKind arch, int batch_max,
              std::uint64_t seed)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.proxy.arch = arch;
    sc.proxy.workers = 6;
    sc.clients = 4;
    sc.callsPerClient = 6;
    sc.opsPerConn = core::isStreamTransport(transport) ? 4 : 0;
    sc.clientMachines = 2;
    sc.maxDuration = sim::secs(60);
    sc.seed = seed;
    sc.net.batchMax = batch_max;
    // Seed-dependent jitter (fault RNG) so different-seed digests can
    // actually differ — same trick as the arch matrix.
    LinkFault lf;
    lf.imp.jitter = sim::msecs(2);
    sc.linkFaults.push_back(lf);
    return sc;
}

// batchMax=1 must be the legacy simulation bit for bit: same digest as
// an untouched scenario (the pre-batching goldens are pinned separately
// in test_digest_golden.cc) and no batch counter group in the digest.
TEST(Batching, BatchMaxOneIsByteIdenticalAndGroupless)
{
    Scenario legacy =
        smallScenario(Transport::Udp, ArchKind::Auto, 1, 7);
    Scenario untouched = legacy;
    untouched.net = net::NetConfig{};
    untouched.net.batchMax = 1; // the default; spelled out for clarity

    RunResult a = runScenario(legacy);
    RunResult b = runScenario(untouched);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.digest().find("batchRecvCalls"), std::string::npos);
    EXPECT_EQ(a.net.batchRecv.calls, 0u);
    EXPECT_EQ(a.net.batchSend.calls, 0u);
}

// batchMax>1 changes the simulation (fewer, cheaper syscalls) but must
// stay deterministic: reruns byte-identical, different seeds different.
TEST(Batching, BatchedRunsDeterministicPerSeed)
{
    RunResult a = runScenario(
        smallScenario(Transport::Udp, ArchKind::Auto, 8, 7));
    RunResult a2 = runScenario(
        smallScenario(Transport::Udp, ArchKind::Auto, 8, 7));
    RunResult other_seed = runScenario(
        smallScenario(Transport::Udp, ArchKind::Auto, 8, 8));
    RunResult unbatched = runScenario(
        smallScenario(Transport::Udp, ArchKind::Auto, 1, 7));

    EXPECT_EQ(a.digest(), a2.digest());
    EXPECT_NE(a.digest(), other_seed.digest());
    EXPECT_NE(a.digest(), unbatched.digest());

    // The batched run still completes the full workload.
    EXPECT_EQ(a.callsCompleted, 4u * 6u);
    EXPECT_EQ(a.callsFailed, 0u);
    EXPECT_GT(a.net.batchRecv.calls, 0u);
    // Depth >1 needs a backlog; at this scale the workers usually keep
    // up, so only the cap is load-independent (the event-driven grid
    // test below does assert real multi-message batches).
    EXPECT_GE(a.net.batchRecv.maxDepth, 1u);
    EXPECT_LE(a.net.batchRecv.maxDepth, 8u);
}

// The depth histogram must account for every batch and every packet:
// bucket counts sum to the syscall count, weighted counts sum to the
// message count, and the proxy's batched receive path carried exactly
// the messages the engine processed.
TEST(Batching, DepthHistogramSumsMatchPacketCounts)
{
    RunResult r = runScenario(
        smallScenario(Transport::Udp, ArchKind::SymmetricWorker, 8, 7));

    for (const net::BatchIoStats *s :
         {&r.net.batchRecv, &r.net.batchSend}) {
        std::uint64_t calls = 0;
        std::uint64_t messages = 0;
        for (std::size_t i = 0; i < net::BatchIoStats::kDepthBuckets;
             ++i) {
            calls += s->depth[i];
            messages += s->depth[i] * (i + 1);
        }
        EXPECT_EQ(calls, s->calls);
        EXPECT_EQ(messages, s->messages);
    }
    EXPECT_GT(r.net.batchRecv.messages, 0u);
    EXPECT_EQ(r.net.batchRecv.messages, r.counters.messagesIn);
}

// Grid cell: the event-driven architecture accepts batchMax=8 on all
// five transports. Datagram transports take the batched drain; stream
// transports (no datagram socket) must simply be unaffected —
// byte-identical to their batchMax=1 run.
TEST(Batching, EventArchAcceptsBatchingOnAllTransports)
{
    for (Transport t : {Transport::Udp, Transport::Tcp, Transport::Tls,
                        Transport::Sctp, Transport::Sst}) {
        SCOPED_TRACE(core::transportName(t));
        RunResult batched = runScenario(
            smallScenario(t, ArchKind::EventDriven, 8, 7));
        EXPECT_FALSE(batched.timedOut);
        EXPECT_EQ(batched.callsCompleted, 4u * 6u);
        EXPECT_EQ(batched.callsFailed, 0u);
        if (core::isStreamTransport(t)) {
            RunResult plain = runScenario(
                smallScenario(t, ArchKind::EventDriven, 1, 7));
            EXPECT_EQ(batched.digest(), plain.digest());
            EXPECT_EQ(batched.net.batchRecv.calls, 0u);
        } else {
            EXPECT_GT(batched.net.batchRecv.calls, 0u);
            EXPECT_GT(batched.net.batchRecv.maxDepth, 1u);
        }
    }
}

// Overload regression: a drained batch must register as its packet
// count, not one event — otherwise a worker holding 50 undispatched
// messages reads as an almost-empty queue and panic/shed thresholds
// fire far too late under batching.
TEST(Batching, OverloadCountsDrainedBatchAsPackets)
{
    core::OverloadConfig cfg;
    cfg.policy = core::OverloadPolicy::ThresholdReject;
    cfg.recvQueueCapacity = 100;
    cfg.panicWatermark = 0.5;

    core::ProxyCounters counters;
    core::OverloadController ctl;
    ctl.configure(cfg, nullptr, &counters);

    ctl.noteQueueDepth(30);
    EXPECT_FALSE(ctl.queuePanicked());

    // 30 still queued behind + 25 drained into the worker's batch:
    // occupancy is 55%, past the 50% watermark.
    ctl.noteDrainedBatch(30, 25);
    EXPECT_TRUE(ctl.queuePanicked());

    // The in-hand share alone decides here: same backlog, batch fully
    // processed, back under the watermark.
    ctl.noteDrainedBatch(30, 0);
    EXPECT_FALSE(ctl.queuePanicked());
}

// Socket-level semantics: recvBatch drains at most batchMax, preserves
// order, records one batch-stat entry per syscall, and wake suppression
// loses no messages when many receivers block on one socket.
using BatchSocketTest = siprox::tests::NetFixture;

sim::Task
sendMany(sim::Process &p, net::UdpSocket *sock, net::Addr dst, int n)
{
    for (int i = 0; i < n; ++i)
        co_await sock->sendTo(p, dst, "m" + std::to_string(i));
}

sim::Task
drainInto(sim::Process &p, net::UdpSocket *sock, int total, int bmax,
          std::vector<std::string> *out, std::size_t *max_depth)
{
    std::vector<net::Datagram> batch;
    while (static_cast<int>(out->size()) < total) {
        co_await sock->recvBatch(p, batch, bmax);
        if (batch.size() > *max_depth)
            *max_depth = batch.size();
        for (auto &d : batch)
            out->push_back(std::move(d.payload));
    }
}

TEST_F(BatchSocketTest, RecvBatchDrainsUpToCapInOrder)
{
    net.config().batchMax = 4;
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);

    std::vector<std::string> got;
    std::size_t max_depth = 0;
    serverMachine.spawn("rx", 0, [&](sim::Process &p) {
        return drainInto(p, &ssock, 10, 4, &got, &max_depth);
    });
    clientMachine.spawn("tx", 0, [&](sim::Process &p) {
        return sendMany(p, &csock, server.addr(5060), 10);
    });
    sim.run();

    ASSERT_EQ(got.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)],
                  "m" + std::to_string(i));
    EXPECT_LE(max_depth, 4u);
    EXPECT_EQ(net.stats().batchRecv.messages, 10u);
    std::uint64_t bucket_calls = 0;
    for (std::size_t i = 0; i < net::BatchIoStats::kDepthBuckets; ++i)
        bucket_calls += net.stats().batchRecv.depth[i];
    EXPECT_EQ(bucket_calls, net.stats().batchRecv.calls);
}

TEST_F(BatchSocketTest, WakeSuppressionLosesNoMessages)
{
    net.config().batchMax = 8;
    auto &ssock = server.udpBind(5060);
    auto &csock = client.udpBind(9000);

    // Three receivers share the socket; wake suppression should leave
    // most of them asleep while one drains, but every message must
    // still come out exactly once.
    std::vector<std::string> got;
    std::size_t max_depth = 0;
    for (int w = 0; w < 3; ++w) {
        serverMachine.spawn("rx" + std::to_string(w), 0,
                            [&](sim::Process &p) {
                                return drainInto(p, &ssock, 24, 8, &got,
                                                 &max_depth);
                            });
    }
    clientMachine.spawn("tx", 0, [&](sim::Process &p) {
        return sendMany(p, &csock, server.addr(5060), 24);
    });
    sim.run();

    ASSERT_EQ(got.size(), 24u);
    std::vector<std::string> sorted = got;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "a message was delivered twice";
    EXPECT_EQ(net.stats().batchRecv.messages, 24u);
}

} // namespace

/**
 * @file
 * TLS-over-TCP tests: the handshake state machine (full vs resumed vs
 * 0-RTT), session-ticket plumbing, resumption-cache LRU eviction,
 * handshake abort under link impairment, and per-record cost wiring.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/error.hh"
#include "net_fixture.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

using TlsTest = NetFixture;

Task
tlsConnectSeq(Process &p, Host *host, Addr remote, int times,
              std::vector<SimTime> *durations,
              std::vector<TcpConn> *conns, NetErrc *err = nullptr)
{
    for (int i = 0; i < times; ++i) {
        TcpConn c;
        SimTime t0 = p.sim().now();
        try {
            co_await host->tlsConnect(p, remote, c);
        } catch (const NetError &e) {
            if (err)
                *err = e.code();
            co_return;
        }
        durations->push_back(p.sim().now() - t0);
        conns->push_back(std::move(c));
    }
}

TEST_F(TlsTest, FullHandshakeThenTicketResumption)
{
    server.tcpListen(5061);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return tlsConnectSeq(p, &client, server.addr(5061), 2,
                             &durations, &conns);
    });
    sim.run();

    ASSERT_EQ(conns.size(), 2u);
    EXPECT_EQ(net.stats().tlsConnects, 2u);
    EXPECT_EQ(net.stats().tlsHandshakesFull, 1u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 1u);
    EXPECT_EQ(net.stats().tlsZeroRttResumes, 0u);
    EXPECT_EQ(server.tlsSessionCount(), 1u);
    // Both ends of each connection are TLS.
    for (auto &c : conns) {
        ASSERT_TRUE(c.valid());
        EXPECT_TRUE(c.endpoint()->tls());
    }
    // The resumed handshake skips one full-handshake flight and the
    // asymmetric crypto: at least 2*latency faster.
    ASSERT_EQ(durations.size(), 2u);
    EXPECT_GE(durations[0] - durations[1], 2 * net.config().latency);
    // Full handshake: TCP (1 RTT) + tlsFullHandshakeRtts extra RTTs.
    EXPECT_GE(durations[0],
              (1 + net.config().tlsFullHandshakeRtts) * 2
                  * net.config().latency);
}

Task
connectForgetConnect(Process &p, Host *host, Addr remote,
                     std::vector<SimTime> *durations,
                     std::vector<TcpConn> *conns)
{
    co_await tlsConnectSeq(p, host, remote, 1, durations, conns);
    host->tlsForgetTickets();
    co_await tlsConnectSeq(p, host, remote, 1, durations, conns);
}

TEST_F(TlsTest, ForgettingTicketsForcesFullHandshake)
{
    server.tcpListen(5061);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return connectForgetConnect(p, &client, server.addr(5061),
                                    &durations, &conns);
    });
    sim.run();

    // No ticket offered: the server cache entry alone is not enough.
    EXPECT_EQ(net.stats().tlsHandshakesFull, 2u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 0u);
}

class TlsZeroRttTest : public NetFixture
{
  protected:
    static NetConfig
    cfg()
    {
        NetConfig c;
        c.tlsZeroRtt = true;
        return c;
    }
    TlsZeroRttTest() : NetFixture(cfg()) {}
};

TEST_F(TlsZeroRttTest, ZeroRttResumeSkipsTheFlight)
{
    server.tcpListen(5061);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return tlsConnectSeq(p, &client, server.addr(5061), 2,
                             &durations, &conns);
    });
    sim.run();

    EXPECT_EQ(net.stats().tlsHandshakesFull, 1u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 0u);
    EXPECT_EQ(net.stats().tlsZeroRttResumes, 1u);
    // 0-RTT pays no handshake flight at all: the reconnect is within
    // kernel-CPU distance of a bare TCP connect's one round trip.
    ASSERT_EQ(durations.size(), 2u);
    EXPECT_LT(durations[1], 2 * net.config().latency
                  + net.config().tcpConnectCost
                  + net.config().tlsZeroRttHandshakeCost
                  + net.config().latency);
}

class TlsNoResumptionTest : public NetFixture
{
  protected:
    static NetConfig
    cfg()
    {
        NetConfig c;
        c.tlsResumption = false;
        return c;
    }
    TlsNoResumptionTest() : NetFixture(cfg()) {}
};

TEST_F(TlsNoResumptionTest, EveryHandshakeIsFull)
{
    server.tcpListen(5061);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return tlsConnectSeq(p, &client, server.addr(5061), 3,
                             &durations, &conns);
    });
    sim.run();

    EXPECT_EQ(net.stats().tlsConnects, 3u);
    EXPECT_EQ(net.stats().tlsHandshakesFull, 3u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 0u);
    EXPECT_EQ(server.tlsSessionCount(), 0u);
}

class TlsTinyCacheTest : public NetFixture
{
  protected:
    static NetConfig
    cfg()
    {
        NetConfig c;
        c.tlsSessionCacheCapacity = 1;
        return c;
    }
    TlsTinyCacheTest() : NetFixture(cfg()) {}
};

Task
competeForCache(Process &p, Host *a, Host *b, Addr remote,
                std::vector<SimTime> *durations,
                std::vector<TcpConn> *conns)
{
    // a fills the cache, b evicts a's session, then a — ticket in
    // hand — still falls back to a full handshake.
    co_await tlsConnectSeq(p, a, remote, 1, durations, conns);
    co_await tlsConnectSeq(p, b, remote, 1, durations, conns);
    co_await tlsConnectSeq(p, a, remote, 1, durations, conns);
}

TEST_F(TlsTinyCacheTest, EvictionDegradesToFullHandshake)
{
    server.tcpListen(5061);
    // A second client host competing for the one-entry server cache.
    Host &client2 = net.attach(clientMachine);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return competeForCache(p, &client, &client2,
                               server.addr(5061), &durations, &conns);
    });
    sim.run();

    EXPECT_EQ(net.stats().tlsHandshakesFull, 3u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 0u);
    EXPECT_EQ(net.stats().tlsSessionEvictions, 2u);
    EXPECT_EQ(server.tlsSessionCount(), 1u);
}

TEST_F(TlsTinyCacheTest, LruKeepsTheRecentlyTouchedSession)
{
    server.tcpListen(5061);
    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        // Same client twice: the second connect touches the existing
        // entry instead of evicting it.
        return tlsConnectSeq(p, &client, server.addr(5061), 2,
                             &durations, &conns);
    });
    sim.run();

    EXPECT_EQ(net.stats().tlsHandshakesResumed, 1u);
    EXPECT_EQ(net.stats().tlsSessionEvictions, 0u);
}

TEST_F(TlsTest, HandshakeAbortsOnStalledLink)
{
    server.tcpListen(5061);
    // The TCP handshake itself survives (SYNs only roll connect
    // faults), but every handshake flight is swallowed.
    Impairment imp;
    imp.stalled = true;
    net.faults().setLinkSymmetric(client.id(), server.id(), imp);

    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    NetErrc err{};
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return tlsConnectSeq(p, &client, server.addr(5061), 1,
                             &durations, &conns, &err);
    });
    sim.run();

    EXPECT_EQ(conns.size(), 0u);
    EXPECT_EQ(err, NetErrc::ConnectionRefused);
    EXPECT_EQ(net.stats().tlsHandshakeAborts, 1u);
    EXPECT_EQ(net.stats().tlsConnects, 0u);
    // The underlying TCP connection did establish, then was closed.
    EXPECT_EQ(net.stats().tcpConnects, 1u);
}

Task
abortThenRetry(Process &p, Network *network, Host *host, Addr remote,
               std::vector<SimTime> *durations,
               std::vector<TcpConn> *conns)
{
    NetErrc err{};
    co_await tlsConnectSeq(p, host, remote, 1, durations, conns, &err);
    EXPECT_EQ(err, NetErrc::ConnectionRefused);
    // Link heals; the retry completes as a full handshake (the
    // aborted attempt must not have minted a ticket).
    network->faults().setLinkSymmetric(host->id(), remote.host,
                                       Impairment{});
    co_await tlsConnectSeq(p, host, remote, 1, durations, conns);
}

TEST_F(TlsTest, AbortedHandshakeRetriesCleanly)
{
    server.tcpListen(5061);
    Impairment imp;
    imp.stalled = true;
    net.faults().setLinkSymmetric(client.id(), server.id(), imp);

    std::vector<SimTime> durations;
    std::vector<TcpConn> conns;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return abortThenRetry(p, &net, &client, server.addr(5061),
                              &durations, &conns);
    });
    sim.run();

    ASSERT_EQ(conns.size(), 1u);
    EXPECT_EQ(net.stats().tlsHandshakeAborts, 1u);
    EXPECT_EQ(net.stats().tlsConnects, 1u);
    EXPECT_EQ(net.stats().tlsHandshakesFull, 1u);
    EXPECT_EQ(net.stats().tlsHandshakesResumed, 0u);
}

Task
tlsPingClient(Process &p, Host *host, Addr remote, int bursts,
              std::vector<std::string> *echoes)
{
    TcpConn c;
    co_await host->tlsConnect(p, remote, c);
    for (int i = 0; i < bursts; ++i) {
        co_await c.send(p, "sips" + std::to_string(i));
        std::string data;
        co_await c.recv(p, data);
        echoes->push_back(data);
    }
    co_await c.close(p);
}

Task
tlsEchoServer(Process &p, TcpListener *l, int bursts)
{
    TcpConn c;
    co_await l->accept(p, c);
    for (int i = 0; i < bursts; ++i) {
        std::string data;
        co_await c.recv(p, data);
        if (data.empty())
            break;
        co_await c.send(p, data);
    }
    co_await c.close(p);
}

TEST_F(TlsTest, RecordCostsAccrueOnEstablishedSessions)
{
    auto &listener = server.tcpListen(5061);
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return tlsEchoServer(p, &listener, 3);
    });
    std::vector<std::string> echoes;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return tlsPingClient(p, &client, server.addr(5061), 3,
                             &echoes);
    });
    sim.run();

    ASSERT_EQ(echoes.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(echoes[i], "sips" + std::to_string(i));
    // One record per send, both directions.
    EXPECT_EQ(net.stats().tlsRecords, 6u);
    // The accepting side's handshake surfaced as a one-off pending
    // charge, consumed on its first read.
    EXPECT_EQ(net.stats().tlsHandshakesFull, 1u);
}

} // namespace

/**
 * @file
 * Unit tests for network-layer pieces not exercised by the socket
 * tests: addresses, the port allocator (TIME_WAIT bookkeeping is
 * covered in test_net_tcp), error taxonomy, and fabric arithmetic.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/error.hh"
#include "net/network.hh"
#include "net/port_alloc.hh"
#include "sim/simulation.hh"

namespace {

using namespace siprox;
using namespace siprox::net;

TEST(AddrTest, OrderingAndValidity)
{
    Addr a{1, 5060}, b{1, 5061}, c{2, 5060};
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, (Addr{1, 5060}));
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(Addr{}.valid());
    EXPECT_EQ(a.toString(), "h1:5060");
}

TEST(AddrTest, HashDistinguishesHostAndPort)
{
    AddrHash h;
    EXPECT_NE(h(Addr{1, 5060}), h(Addr{1, 5061}));
    EXPECT_NE(h(Addr{1, 5060}), h(Addr{2, 5060}));
    EXPECT_EQ(h(Addr{3, 9}), h(Addr{3, 9}));
}

TEST(PortAllocatorTest, ReserveAndConflict)
{
    PortAllocator ports(40000, 40010);
    ports.reserve(5060);
    EXPECT_TRUE(ports.taken(5060));
    EXPECT_THROW(ports.reserve(5060), NetError);
    ports.release(5060);
    EXPECT_FALSE(ports.taken(5060));
    ports.reserve(5060); // reusable after release
}

TEST(PortAllocatorTest, EphemeralPoolExhaustsAndRecovers)
{
    PortAllocator ports(40000, 40004);
    std::set<std::uint16_t> got;
    for (int i = 0; i < 4; ++i) {
        auto p = ports.allocEphemeral();
        EXPECT_GE(p, 40000);
        EXPECT_LT(p, 40004);
        got.insert(p);
    }
    EXPECT_EQ(got.size(), 4u);
    EXPECT_THROW(ports.allocEphemeral(), NetError);
    ports.release(*got.begin());
    EXPECT_NO_THROW(ports.allocEphemeral());
}

TEST(PortAllocatorTest, SkipsReservedWellKnownPortsOutsidePool)
{
    PortAllocator ports(40000, 40002);
    ports.reserve(40000);
    EXPECT_EQ(ports.allocEphemeral(), 40001);
    EXPECT_EQ(ports.inUse(), 2u);
    EXPECT_EQ(ports.poolSize(), 2u);
}

TEST(NetErrorTest, CodesAndMessages)
{
    NetError e(NetErrc::ConnectionRefused, "h2:5060");
    EXPECT_EQ(e.code(), NetErrc::ConnectionRefused);
    EXPECT_NE(std::string(e.what()).find("ConnectionRefused"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("h2:5060"),
              std::string::npos);
    for (auto c : {NetErrc::PortExhausted, NetErrc::AddressInUse,
                   NetErrc::SocketLimit, NetErrc::NotConnected}) {
        EXPECT_NE(std::string(netErrcName(c)), "NetError");
    }
}

TEST(NetworkTest, WireDelayScalesWithPayload)
{
    sim::Simulation simulation;
    NetConfig cfg;
    cfg.latency = sim::usecs(100);
    cfg.perByteWire = sim::nsecs(8);
    Network network(simulation, cfg);
    EXPECT_EQ(network.wireDelay(0), sim::usecs(100));
    EXPECT_EQ(network.wireDelay(1000),
              sim::usecs(100) + sim::nsecs(8000));
}

TEST(NetworkTest, HostIdsAreStableAndResolvable)
{
    sim::Simulation simulation;
    Network network(simulation);
    auto &m1 = simulation.addMachine("a", 1);
    auto &m2 = simulation.addMachine("b", 1);
    Host &h1 = network.attach(m1);
    Host &h2 = network.attach(m2);
    EXPECT_NE(h1.id(), h2.id());
    EXPECT_EQ(network.hostById(h1.id()), &h1);
    EXPECT_EQ(network.hostById(h2.id()), &h2);
    EXPECT_EQ(network.hostById(0), nullptr);
    EXPECT_EQ(network.hostById(99), nullptr);
    EXPECT_EQ(h1.addr(5060), (Addr{h1.id(), 5060}));
    EXPECT_EQ(&h1.machine(), &m1);
}

TEST(NetworkTest, ConnIdsMonotonic)
{
    sim::Simulation simulation;
    Network network(simulation);
    auto a = network.nextConnId();
    auto b = network.nextConnId();
    EXPECT_LT(a, b);
}

TEST(NetworkTest, SocketAccountingOnBind)
{
    sim::Simulation simulation;
    Network network(simulation);
    auto &m = simulation.addMachine("a", 1);
    Host &h = network.attach(m);
    EXPECT_EQ(h.openSockets(), 0);
    h.udpBind(5060);
    h.tcpListen(5061);
    h.sctpBind(5062);
    EXPECT_EQ(h.openSockets(), 3);
    EXPECT_EQ(h.ports().inUse(), 3u);
}

} // namespace

/**
 * @file
 * SST structured-stream tests: ephemeral per-message streams over the
 * datagram API, channel setup/reuse, MTU fragmentation + reassembly,
 * the explicit stream lifecycle (open / half-close / teardown), and
 * per-stream ordering when streams interleave over a lossy substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/error.hh"
#include "net/sst.hh"
#include "net_fixture.hh"

namespace {

using namespace siprox;
using namespace siprox::sim;
using namespace siprox::net;
using siprox::tests::NetFixture;

using SstTest = NetFixture;

Task
sstSendN(Process &p, SstSocket *sock, Addr dst, int n,
         std::string prefix)
{
    for (int i = 0; i < n; ++i)
        co_await sock->sendTo(p, dst, prefix + std::to_string(i));
}

Task
sstRecvN(Process &p, SstSocket *sock, int n,
         std::vector<Datagram> *out)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        out->push_back(std::move(d));
    }
}

TEST_F(SstTest, DeliversWholeMessagesAndTearsDownEphemeralStreams)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 5, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sstSendN(p, &csock, server.addr(5060), 5, "msg");
    });
    // Stop before the idle sweep so channel state is still visible.
    sim.runUntil(secs(1));

    ASSERT_EQ(got.size(), 5u);
    // Each message rode its own ephemeral stream, so there is no
    // cross-message ordering guarantee (the first one absorbed the
    // channel setup and lands last) — but nothing is lost or torn.
    std::vector<std::string> payloads;
    for (const auto &d : got) {
        payloads.push_back(d.payload);
        EXPECT_EQ(d.src, client.addr(5062));
    }
    std::sort(payloads.begin(), payloads.end());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(payloads[i], "msg" + std::to_string(i));
    EXPECT_EQ(net.stats().sstMessages, 5u);
    EXPECT_EQ(net.stats().sstStreams, 5u); // one ephemeral per message
    EXPECT_EQ(net.stats().sstChannels, 1u);
    // Every ephemeral stream tore itself down on delivery.
    EXPECT_EQ(ssock.streamCount(), 0u);
    EXPECT_EQ(csock.streamCount(), 0u);
    // Both ends hold the (single) channel's state.
    EXPECT_EQ(csock.channelCount(), 1u);
    EXPECT_EQ(ssock.channelCount(), 1u);
}

Task
sstEchoServer(Process &p, SstSocket *sock, int n)
{
    for (int i = 0; i < n; ++i) {
        Datagram d;
        co_await sock->recvFrom(p, d);
        co_await sock->sendTo(p, d.src, std::move(d.payload));
    }
}

Task
sstPingClient(Process &p, SstSocket *sock, Addr dst, int n,
              std::vector<SimTime> *rtts)
{
    for (int i = 0; i < n; ++i) {
        SimTime t0 = p.sim().now();
        co_await sock->sendTo(p, dst, "ping" + std::to_string(i));
        Datagram d;
        co_await sock->recvFrom(p, d);
        rtts->push_back(p.sim().now() - t0);
        EXPECT_EQ(d.payload, "ping" + std::to_string(i));
    }
}

TEST_F(SstTest, ChannelSetupPaysOneRoundTripOnceAndOnlyForward)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    serverMachine.spawn("srv", 0, [&](Process &p) {
        return sstEchoServer(p, &ssock, 3);
    });
    std::vector<SimTime> rtts;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return sstPingClient(p, &csock, server.addr(5060), 3, &rtts);
    });
    sim.run();

    ASSERT_EQ(rtts.size(), 3u);
    // First exchange absorbs the channel's extra round trip.
    EXPECT_GE(rtts[0] - rtts[1], 2 * net.config().latency);
    // The reverse direction rides the same channel: exactly one
    // channel setup was ever paid.
    EXPECT_EQ(net.stats().sstChannels, 1u);
}

TEST_F(SstTest, FragmentsLargeMessagesAndReassembles)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    std::string big;
    for (int i = 0; i < 5000; ++i)
        big += static_cast<char>('a' + i % 26);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 1, &got);
    });
    std::string copy = big;
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sstSendN(p, &csock, server.addr(5060), 1, copy);
    });
    sim.run();

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload, big + "0");
    // 5001 bytes over a 1200-byte MTU: 5 frames.
    EXPECT_EQ(net.stats().sstFrames, 5u);
    EXPECT_EQ(net.stats().sstMessages, 1u);
}

Task
streamLifecycle(Process &p, SstSocket *cli, SstSocket *srv, Addr dst,
                std::uint32_t *id)
{
    co_await cli->openStream(p, dst, *id);
    EXPECT_EQ(cli->streamState(*id), SstStreamState::Open);
    co_await cli->streamSend(p, *id, "hello stream");
    co_await p.sleepFor(msecs(1));
    // The receiver's half of the stream exists and is open.
    EXPECT_EQ(srv->streamState(*id), SstStreamState::Open);

    co_await cli->streamHalfClose(p, *id);
    EXPECT_EQ(cli->streamState(*id), SstStreamState::HalfClosedLocal);
    co_await p.sleepFor(msecs(1));
    // FIN seen remotely; teardown round trip completed locally.
    EXPECT_EQ(srv->streamState(*id), SstStreamState::HalfClosedRemote);
    EXPECT_EQ(cli->streamState(*id), SstStreamState::Closed);

    // Sending on a torn-down stream is a loud error.
    bool threw = false;
    try {
        co_await cli->streamSend(p, *id, "late");
    } catch (const NetError &e) {
        threw = true;
        EXPECT_EQ(e.code(), NetErrc::NotConnected);
    }
    EXPECT_TRUE(threw);
}

TEST_F(SstTest, ExplicitStreamLifecycle)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 1, &got);
    });
    std::uint32_t id = 0;
    clientMachine.spawn("cli", 0, [&](Process &p) {
        return streamLifecycle(p, &csock, &ssock, server.addr(5060),
                               &id);
    });
    // Stop before the idle sweep so the lingering remote half-closed
    // record is still visible.
    sim.runUntil(secs(1));

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload, "hello stream");
    EXPECT_NE(id, 0u);
    // The client record is gone; only the server's half-closed remote
    // record lingers (until the idle sweep).
    EXPECT_EQ(csock.streamCount(), 0u);
    EXPECT_EQ(ssock.streamCount(), 1u);

    // ... and the idle sweep eventually reclaims even that.
    sim.run();
    EXPECT_EQ(ssock.streamCount(), 0u);
}

Task
interleavedSender(Process &p, SstSocket *sock, Addr dst, int rounds)
{
    std::uint32_t a = 0, b = 0;
    co_await sock->openStream(p, dst, a);
    co_await sock->openStream(p, dst, b);
    const std::string pad(3000, 'x'); // 3 frames per message
    for (int i = 0; i < rounds; ++i) {
        co_await sock->streamSend(p, a,
                                  "A" + std::to_string(i) + pad);
        co_await sock->streamSend(p, b,
                                  "B" + std::to_string(i) + pad);
    }
}

TEST_F(SstTest, InterleavedStreamsStayOrderedPerStreamOverLossyLink)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    // Lossy, jittery substrate: frames are delayed (in-kernel
    // recovery) and arrival order across streams is scrambled, but
    // per-stream floors must keep each stream's messages in order.
    Impairment imp;
    imp.lossProb = 0.3;
    imp.jitter = msecs(2);
    imp.recoveryDelay = msecs(5);
    net.faults().setLinkSymmetric(client.id(), server.id(), imp);

    const int rounds = 8;
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 2 * rounds, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return interleavedSender(p, &csock, server.addr(5060), rounds);
    });
    sim.run();

    ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * rounds));
    int next_a = 0, next_b = 0;
    for (const auto &d : got) {
        ASSERT_GE(d.payload.size(), 2u);
        int idx = d.payload[1] - '0';
        if (d.payload[0] == 'A')
            EXPECT_EQ(idx, next_a++);
        else
            EXPECT_EQ(idx, next_b++);
    }
    EXPECT_EQ(next_a, rounds);
    EXPECT_EQ(next_b, rounds);
    EXPECT_EQ(net.stats().sstLost, 0u); // lossy, not dead: recovered
}

Task
loseThenHeal(Process &p, Network *network, SstSocket *sock, Addr dst)
{
    // Dead link: three whole messages vanish.
    co_await sstSendN(p, sock, dst, 3, "lost");
    network->faults().setLinkSymmetric(sock->localAddr().host, dst.host,
                                       Impairment{});
    co_await sock->sendTo(p, dst, "through");
}

TEST_F(SstTest, DeadLinkLosesWholeMessages)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    Impairment imp;
    imp.stalled = true;
    net.faults().setLinkSymmetric(client.id(), server.id(), imp);

    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 1, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return loseThenHeal(p, &net, &csock, server.addr(5060));
    });
    sim.run();

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload, "through");
    EXPECT_EQ(net.stats().sstLost, 3u);
}

TEST_F(SstTest, IdleChannelsAndStaleStreamsAreReaped)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    std::vector<Datagram> got;
    serverMachine.spawn("rx", 0, [&](Process &p) {
        return sstRecvN(p, &ssock, 1, &got);
    });
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sstSendN(p, &csock, server.addr(5060), 1, "only");
    });
    sim.run(); // drains traffic, then the sweeps run dry

    ASSERT_EQ(got.size(), 1u);
    EXPECT_GE(sim.now(), net.config().sstIdleTimeout);
    EXPECT_EQ(csock.channelCount(), 0u);
    EXPECT_EQ(ssock.channelCount(), 0u);
    EXPECT_EQ(ssock.streamCount(), 0u);
}

class SstTinyQueueTest : public NetFixture
{
  protected:
    static NetConfig
    cfg()
    {
        NetConfig c;
        c.udpRecvQueue = 2;
        return c;
    }
    SstTinyQueueTest() : NetFixture(cfg()) {}
};

TEST_F(SstTinyQueueTest, ReceiveOverflowDropsAndCounts)
{
    auto &ssock = server.sstBind(5060);
    auto &csock = client.sstBind(5062);
    // No receiver process: the bounded queue fills and drops.
    clientMachine.spawn("tx", 0, [&](Process &p) {
        return sstSendN(p, &csock, server.addr(5060), 5, "burst");
    });
    sim.run();

    EXPECT_EQ(ssock.queueDepth(), 2u);
    EXPECT_EQ(ssock.overflowDrops(), 3u);
    EXPECT_EQ(net.stats().sstDropped, 3u);
}

} // namespace

#include "fig_common.hh"

#include <cstdio>
#include <map>

namespace siprox::bench {

std::vector<Cell>
paperGrid(const double udp[3], const double tcp50[3],
          const double tcp500[3], const double tcpPersistent[3])
{
    const int clients[3] = {100, 500, 1000};
    std::vector<Cell> grid;
    for (int i = 0; i < 3; ++i) {
        grid.push_back(Cell{"TCP 50 ops/conn", core::Transport::Tcp, 50,
                            clients[i], tcp50[i]});
    }
    for (int i = 0; i < 3; ++i) {
        grid.push_back(Cell{"TCP 500 ops/conn", core::Transport::Tcp,
                            500, clients[i], tcp500[i]});
    }
    for (int i = 0; i < 3; ++i) {
        grid.push_back(Cell{"TCP persistent", core::Transport::Tcp, 0,
                            clients[i], tcpPersistent[i]});
    }
    for (int i = 0; i < 3; ++i) {
        grid.push_back(Cell{"UDP", core::Transport::Udp, 0, clients[i],
                            udp[i]});
    }
    return grid;
}

void
runFigure(const std::string &title, const std::vector<Cell> &grid,
          const std::function<void(workload::Scenario &)> &tweak)
{
    std::printf("=== %s ===\n", title.c_str());
    if (quickMode())
        std::printf("(quick mode: shortened measurement windows)\n");

    stats::Table table({"series", "clients", "ops/s", "paper ops/s",
                        "% of UDP", "paper %", "failed calls",
                        "srv util"});
    // Measured UDP baselines, for the ratio columns.
    std::map<int, double> udp_measured;
    std::map<int, double> udp_paper;
    for (const auto &cell : grid) {
        if (cell.transport == core::Transport::Udp)
            udp_paper[cell.clients] = cell.paperOpsPerSec;
    }

    struct Row
    {
        const Cell *cell;
        workload::RunResult result;
    };
    std::vector<Row> rows;
    // UDP cells first so ratios are available.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &cell : grid) {
            bool is_udp = cell.transport == core::Transport::Udp;
            if ((pass == 0) != is_udp)
                continue;
            workload::Scenario sc = sweepScenario(
                cell.transport, cell.clients, cell.opsPerConn);
            tweak(sc);
            workload::RunResult r = workload::runScenario(sc);
            if (is_udp)
                udp_measured[cell.clients] = r.opsPerSec;
            logPoint(sc, r);
            rows.push_back(Row{&cell, std::move(r)});
        }
    }

    // Emit in the grid's order.
    for (const auto &cell : grid) {
        for (const auto &row : rows) {
            if (row.cell != &cell)
                continue;
            double udp_m = udp_measured[cell.clients];
            double ratio = udp_m > 0 ? row.result.opsPerSec / udp_m : 0;
            double paper_ratio = udp_paper[cell.clients] > 0
                ? cell.paperOpsPerSec / udp_paper[cell.clients]
                : 0;
            table.addRow({cell.series, std::to_string(cell.clients),
                          stats::Table::num(row.result.opsPerSec),
                          stats::Table::num(cell.paperOpsPerSec),
                          stats::Table::pct(ratio),
                          stats::Table::pct(paper_ratio),
                          std::to_string(row.result.callsFailed),
                          stats::Table::pct(
                              row.result.serverUtilization)});
        }
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace siprox::bench

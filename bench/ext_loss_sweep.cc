/**
 * @file
 * Extension: UDP throughput under link loss. The paper measures clean
 * links; RFC 3261's application-level retransmission (T1 doubling,
 * Timer B) is what makes UDP viable on lossy paths, at the cost of
 * extra proxy work per lost datagram. This sweep injects symmetric
 * client<->proxy loss at 0/1/5/10% and reports throughput alongside
 * the retransmission counters that explain it.
 */

#include <cstdio>

#include "sweep_common.hh"

int
main()
{
    using namespace siprox;

    const double rates[] = {0.0, 0.01, 0.05, 0.10};

    stats::Table table({"loss", "ops/s", "% of clean", "phone rtx",
                        "proxy rtx sent", "rtx absorbed",
                        "timer B 408s", "calls failed"});
    double clean_ops = 0;
    for (double loss : rates) {
        workload::Scenario sc =
            bench::sweepScenario(core::Transport::Udp, 100, 0);
        sc.name = "udp-loss-" + stats::Table::pct(loss, 0);
        // Retransmission needs headroom: the default 4s give-up is
        // tight at 10% loss once T1 doubling kicks in.
        sc.phoneResponseTimeout = sim::secs(10);
        if (loss > 0) {
            workload::LinkFault lf;
            lf.imp.lossProb = loss;
            sc.linkFaults.push_back(lf);
        }
        auto r = workload::runScenario(sc);
        if (loss == 0.0)
            clean_ops = r.opsPerSec;
        bench::logPoint(sc, r);
        table.addRow({stats::Table::pct(loss, 0),
                      stats::Table::num(r.opsPerSec),
                      clean_ops > 0
                          ? stats::Table::pct(r.opsPerSec / clean_ops)
                          : "-",
                      stats::Table::num(
                          static_cast<double>(r.phoneRetransmissions)),
                      stats::Table::num(static_cast<double>(
                          r.counters.retransSent)),
                      stats::Table::num(static_cast<double>(
                          r.counters.retransAbsorbed)),
                      stats::Table::num(static_cast<double>(
                          r.counters.timerB408s)),
                      stats::Table::num(
                          static_cast<double>(r.callsFailed))});
    }

    std::printf("UDP throughput under injected link loss "
                "(100 clients, stateful proxy)\n\n%s\n",
                table.render().c_str());
    return 0;
}

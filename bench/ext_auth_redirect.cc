/**
 * @file
 * Extension bench tied to the paper's related work (§7): Nahum et al.
 * report that digest authentication has the single largest impact on
 * SIP server performance (attributed to aggressive database lookups),
 * ahead of the transport choice, and that redirection is the cheapest
 * server role. This bench regenerates that comparison on our server:
 * proxy vs redirect, authentication on/off, per transport.
 */

#include <cstdio>

#include "fig_common.hh"

int
main()
{
    using namespace siprox;

    stats::Table table({"configuration", "transport", "ops/s",
                        "relative", "server msgs/op"});
    struct Case
    {
        const char *name;
        bool auth;
        bool redirect;
    };
    const Case cases[] = {
        {"proxy", false, false},
        {"proxy + auth", true, false},
        {"redirect", false, true},
        {"redirect + auth", true, true},
    };
    for (auto transport : {core::Transport::Udp, core::Transport::Tcp}) {
        double baseline = 0;
        for (const auto &c : cases) {
            if (c.redirect && transport == core::Transport::Tcp)
                continue; // phones do not accept TCP connections
            workload::Scenario sc =
                workload::paperScenario(transport, 500, 0);
            sc.measureWindow = bench::windowFor(transport, 0) / 2;
            sc.proxy.authenticate = c.auth;
            sc.proxy.redirect = c.redirect;
            if (transport == core::Transport::Tcp)
                sc.proxy.fdCache = true;
            auto r = workload::runScenario(sc);
            if (baseline == 0)
                baseline = r.opsPerSec;
            std::fprintf(stderr, "  [%s/%s] %.0f ops/s\n",
                         core::transportName(transport), c.name,
                         r.opsPerSec);
            double msgs_per_op = r.ops
                ? static_cast<double>(r.counters.messagesIn)
                    / static_cast<double>(r.ops)
                : 0;
            table.addRow({c.name, core::transportName(transport),
                          stats::Table::num(r.opsPerSec),
                          stats::Table::pct(r.opsPerSec / baseline),
                          stats::Table::num(msgs_per_op, 2)});
        }
    }
    std::printf("=== Server role & authentication (related work, "
                "Nahum et al.) ===\n%s\n",
                table.render().c_str());
    std::printf("Expected shape: authentication costs dominate; "
                "redirection offloads the\nserver by an integer "
                "factor (fewer messages per operation).\n");
    return 0;
}

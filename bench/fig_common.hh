/**
 * @file
 * Shared harness for the figure-regeneration benches: runs the paper's
 * workload grid and prints measured ops/s next to the paper's reported
 * bar values, plus the TCP/UDP ratios the paper's claims are framed in.
 *
 * Set SIPROX_BENCH_QUICK=1 to shrink measurement windows ~4x for smoke
 * runs (shapes hold, absolute steady-state values shift slightly).
 */

#ifndef SIPROX_BENCH_FIG_COMMON_HH
#define SIPROX_BENCH_FIG_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "stats/table.hh"
#include "workload/scenario.hh"

namespace siprox::bench {

inline bool
quickMode()
{
    const char *env = std::getenv("SIPROX_BENCH_QUICK");
    return env && env[0] == '1';
}

/** Measurement window per workload, sized so the idle-connection
 *  machinery reaches steady state where it matters. */
inline sim::SimTime
windowFor(core::Transport transport, int ops_per_conn)
{
    double seconds;
    if (transport != core::Transport::Tcp)
        seconds = 6;
    else if (ops_per_conn == 0)
        seconds = 8;
    else
        seconds = 15;
    if (quickMode())
        seconds /= 4;
    return sim::secs(seconds);
}

/** One cell of a figure grid. */
struct Cell
{
    const char *series; ///< "UDP", "TCP 50 ops/conn", ...
    core::Transport transport;
    int opsPerConn;
    int clients;
    double paperOpsPerSec; ///< bar label from the paper's figure
};

/** The paper's 3x4 grid (Figures 3-5 share it). */
std::vector<Cell> paperGrid(const double udp[3], const double tcp50[3],
                            const double tcp500[3],
                            const double tcpPersistent[3]);

/** Run every cell, applying @p tweak to each scenario first. */
void runFigure(const std::string &title, const std::vector<Cell> &grid,
               const std::function<void(workload::Scenario &)> &tweak);

} // namespace siprox::bench

#endif // SIPROX_BENCH_FIG_COMMON_HH

/**
 * @file
 * Shared harness for the figure-regeneration benches: runs the paper's
 * workload grid and prints measured ops/s next to the paper's reported
 * bar values, plus the TCP/UDP ratios the paper's claims are framed in.
 * Run modes and window sizing live in sweep_common.hh.
 */

#ifndef SIPROX_BENCH_FIG_COMMON_HH
#define SIPROX_BENCH_FIG_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "sweep_common.hh"

namespace siprox::bench {

/** One cell of a figure grid. */
struct Cell
{
    const char *series; ///< "UDP", "TCP 50 ops/conn", ...
    core::Transport transport;
    int opsPerConn;
    int clients;
    double paperOpsPerSec; ///< bar label from the paper's figure
};

/** The paper's 3x4 grid (Figures 3-5 share it). */
std::vector<Cell> paperGrid(const double udp[3], const double tcp50[3],
                            const double tcp500[3],
                            const double tcpPersistent[3]);

/** Run every cell, applying @p tweak to each scenario first. */
void runFigure(const std::string &title, const std::vector<Cell> &grid,
               const std::function<void(workload::Scenario &)> &tweak);

} // namespace siprox::bench

#endif // SIPROX_BENCH_FIG_COMMON_HH

/**
 * @file
 * §6 extensions: the architectures the paper argues for but does not
 * build — a multithreaded TCP proxy (one address space, no fd-passing
 * IPC, per-connection write locks) and an SCTP proxy (UDP-like
 * symmetric workers, kernel connection management).
 *
 * Expected shape: both close most of the remaining TCP/UDP gap, since
 * descriptor transfer and user-level idle management disappear.
 */

#include <cstdio>

#include "fig_common.hh"

int
main()
{
    using namespace siprox;

    struct Case
    {
        const char *name;
        core::Transport transport;
        core::ConcurrencyModel concurrency;
        bool fdCache;
        core::IdleStrategy idle;
    };
    const Case cases[] = {
        {"UDP (reference)", core::Transport::Udp,
         core::ConcurrencyModel::Process, false,
         core::IdleStrategy::LinearScan},
        {"TCP process, baseline", core::Transport::Tcp,
         core::ConcurrencyModel::Process, false,
         core::IdleStrategy::LinearScan},
        {"TCP process, both fixes", core::Transport::Tcp,
         core::ConcurrencyModel::Process, true,
         core::IdleStrategy::PriorityQueue},
        {"TCP multithreaded (par. 6)", core::Transport::Tcp,
         core::ConcurrencyModel::Thread, false,
         core::IdleStrategy::PriorityQueue},
        {"SCTP (par. 6)", core::Transport::Sctp,
         core::ConcurrencyModel::Process, false,
         core::IdleStrategy::LinearScan},
    };

    stats::Table table({"architecture", "workload", "ops/s",
                        "% of UDP", "fd IPC requests"});
    double udp_ops = 0;
    for (int ops_per_conn : {0, 50}) {
        for (const auto &c : cases) {
            // SCTP and UDP have no application-level connections to
            // cycle; run them once under the persistent label only.
            if (c.transport != core::Transport::Tcp
                && ops_per_conn != 0) {
                continue;
            }
            workload::Scenario sc = workload::paperScenario(
                c.transport, 500,
                c.transport == core::Transport::Tcp ? ops_per_conn
                                                    : 0);
            sc.measureWindow =
                bench::windowFor(c.transport, ops_per_conn);
            sc.proxy.concurrency = c.concurrency;
            sc.proxy.fdCache = c.fdCache;
            sc.proxy.idleStrategy = c.idle;
            auto r = workload::runScenario(sc);
            if (c.transport == core::Transport::Udp)
                udp_ops = r.opsPerSec;
            std::fprintf(stderr, "  [%s / %d ops/conn] %.0f ops/s\n",
                         c.name, ops_per_conn, r.opsPerSec);
            table.addRow(
                {c.name,
                 ops_per_conn == 0 ? "persistent" : "50 ops/conn",
                 stats::Table::num(r.opsPerSec),
                 stats::Table::pct(
                     udp_ops > 0 ? r.opsPerSec / udp_ops : 0),
                 std::to_string(r.counters.fdRequests)});
        }
    }
    std::printf("=== Section 6 extensions: multithreaded TCP and SCTP "
                "===\n%s\n",
                table.render().c_str());
    return 0;
}

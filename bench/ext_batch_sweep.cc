/**
 * @file
 * Extension: batched datagram I/O (recvmmsg/sendmmsg model) sweep —
 * batchMax x transport x architecture, with a memory-footprint rung at
 * 100k phones.
 *
 * What batching buys: one batched kernel charge replaces up to
 * batchMax per-message charges, so a drained burst costs one p.cpu()
 * event (plus the cheaper marginal per packet) instead of a
 * charge/block/wake cycle per datagram, and wake suppression retires
 * the sibling receivers that would otherwise bounce off an emptied
 * queue. Simulated results shift too (a batch of n is cheaper than n
 * singles by (n-1) x fixed share — the recvmmsg story the knob
 * models); digests stay deterministic per (seed, batchMax).
 *
 * Acceptance is pinned to the *deterministic* simulator metrics, not
 * raw wall-clock: on shared CI boxes wall time swings +-20% run to
 * run, while sim events per call attempt and calls completed per
 * fixed measurement window are exactly reproducible. The denominator
 * is attempts (completed + failed), not completions: the 100k-phone
 * rung runs beyond saturation, where a batched proxy admits and
 * attempts more calls — dividing by completions alone would charge
 * all the work spent on shed/failed attempts to the few completions
 * and hide the syscall cut. At the non-saturated rungs (zero or few
 * failures) the two denominators coincide. On udp_100c, batchMax=8
 * removes ~5% of the sim events behind each call (the whole
 * kernel-syscall share of the event budget — Amdahl caps the wall
 * speedup there too, ~1.05x measured) and lifts simulated throughput
 * ~5%. Wall-clock events/wall-sec is still printed per rung for
 * eyeballing.
 *
 * Rungs:
 *  - udp_100c A/B: the perf-harness sweep scenario at batchMax 1 vs 8.
 *  - transport x arch grid at 10k phones (5k clients): every datagram
 *    transport under both the symmetric-worker and event-driven
 *    architectures, batched vs not.
 *  - 100k phones (50k clients, event-driven UDP): the memory rung; the
 *    table records peak RSS so CI can watch the footprint.
 *
 * Self-checking: exits nonzero if at any rung batching fails to reduce
 * sim events per call, loses simulated throughput (calls per window),
 * or records no batches.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sweep_common.hh"

namespace {

using namespace siprox;
using Clock = std::chrono::steady_clock;

long
peakRssKb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

struct Rung
{
    std::string name;
    core::Transport transport;
    core::ArchKind arch;
    int clients;
    double window_secs;
    /** Floor on batched/unbatched simulated calls per window (1.0 =
     *  "no worse"; the headline rung demands a real gain). */
    double min_call_ratio;
};

struct Row
{
    std::string rung;
    int batch;
    double wall_secs = 0;
    std::uint64_t sim_events = 0;
    double events_per_wall_sec = 0;
    double avg_batch_depth = 0;
    std::uint64_t calls_completed = 0;
    /** Completed + failed: the events/attempt denominator (see file
     *  header — completions alone mislead past saturation). */
    std::uint64_t calls_attempted = 0;
    long rss_kb = 0;
};

Row
runRung(const Rung &rung, int batch_max)
{
    workload::Scenario sc =
        bench::sweepScenario(rung.transport, rung.clients, 0);
    sc.name = rung.name + "/b" + std::to_string(batch_max);
    sc.measureWindow = sim::secs(rung.window_secs);
    sc.maxDuration = sim::secs(600);
    sc.proxy.arch = rung.arch;
    sc.net.batchMax = batch_max;

    auto t0 = Clock::now();
    workload::RunResult r = workload::runScenario(sc);
    double wall = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    bench::logPoint(sc, r);

    Row row;
    row.rung = rung.name;
    row.batch = batch_max;
    row.wall_secs = wall;
    row.sim_events = r.simEvents;
    row.events_per_wall_sec = wall > 0
        ? static_cast<double>(r.simEvents) / wall
        : 0;
    row.avg_batch_depth = r.net.batchRecv.calls > 0
        ? static_cast<double>(r.net.batchRecv.messages)
            / static_cast<double>(r.net.batchRecv.calls)
        : 0;
    row.calls_completed = r.callsCompleted;
    row.calls_attempted = r.callsCompleted + r.callsFailed;
    // ru_maxrss is a process-lifetime high-water mark: rungs only
    // ratchet it up, so order big rungs last and read the final row.
    row.rss_kb = peakRssKb();
    return row;
}

} // namespace

int
main()
{
    using namespace siprox;

    const bool smoke = bench::smokeMode();
    const int kBatch = 8;

    std::vector<Rung> rungs;
    // The perf-harness headline scenario: symmetric UDP workers, 100
    // closed-loop clients. The full-mode window is long enough that
    // the deterministic ~5% simulated-throughput gain must show.
    rungs.push_back({"udp_100c", core::Transport::Udp,
                     core::ArchKind::SymmetricWorker, 100,
                     smoke ? 2.0 : 40.0, smoke ? 1.0 : 1.03});
    if (smoke) {
        // CI smoke: prove the grid runs end to end on both arches and
        // one scaled-down big rung fits the wall/RSS budget.
        rungs.push_back({"event_udp_100c", core::Transport::Udp,
                         core::ArchKind::EventDriven, 100, 2, 1.0});
        rungs.push_back({"event_udp_10kphone", core::Transport::Udp,
                         core::ArchKind::EventDriven, 5000, 1, 1.0});
    } else {
        // Transport x arch grid at 10k phones (5k clients).
        struct G
        {
            const char *name;
            core::Transport t;
        };
        for (const auto &g :
             {G{"udp", core::Transport::Udp},
              G{"sctp", core::Transport::Sctp},
              G{"sst", core::Transport::Sst}}) {
            rungs.push_back({std::string("worker_") + g.name
                                 + "_10kphone",
                             g.t, core::ArchKind::SymmetricWorker,
                             5000, 2, 1.0});
            rungs.push_back({std::string("event_") + g.name
                                 + "_10kphone",
                             g.t, core::ArchKind::EventDriven, 5000, 2,
                             1.0});
        }
        // The memory rung: 100k phones through the event-driven UDP
        // proxy. Short window — the point is footprint and that the
        // batched path holds up at scale, not steady-state shape.
        rungs.push_back({"event_udp_100kphone", core::Transport::Udp,
                         core::ArchKind::EventDriven, 50000, 1, 1.0});
    }

    // Development escape hatch: SIPROX_BATCH_ONLY=<substring> keeps
    // only matching rungs (e.g. SIPROX_BATCH_ONLY=udp_100c).
    if (const char *only = std::getenv("SIPROX_BATCH_ONLY")) {
        std::vector<Rung> kept;
        for (const Rung &rung : rungs)
            if (rung.name.find(only) != std::string::npos)
                kept.push_back(rung);
        if (!kept.empty())
            rungs = std::move(kept);
    }

    std::vector<Row> rows;
    for (const Rung &rung : rungs) {
        rows.push_back(runRung(rung, 1));
        rows.push_back(runRung(rung, kBatch));
    }

    stats::Table table({"rung", "batchMax", "wall s", "sim events",
                        "events/wall-s", "avg batch", "calls",
                        "peak RSS kB"});
    for (const Row &row : rows) {
        table.addRow({row.rung, std::to_string(row.batch),
                      stats::Table::num(row.wall_secs),
                      std::to_string(row.sim_events),
                      stats::Table::num(row.events_per_wall_sec),
                      stats::Table::num(row.avg_batch_depth),
                      std::to_string(row.calls_completed),
                      std::to_string(row.rss_kb)});
    }
    std::printf("batched datagram I/O sweep (batchMax %d vs 1):\n\n%s\n",
                kBatch, table.render().c_str());

    // Acceptance on the deterministic sim metrics (see file header):
    // batching must cut sim events per call attempt (it merges the
    // syscall events) and must not lose simulated throughput.
    bool ok = true;
    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
        const Row &base = rows[i];
        const Row &batched = rows[i + 1];
        double call_floor = 1.0;
        for (const Rung &rung : rungs) {
            if (rung.name == base.rung && rung.min_call_ratio > 0)
                call_floor = rung.min_call_ratio;
        }
        double ev_per_call_base = base.calls_attempted > 0
            ? static_cast<double>(base.sim_events)
                / static_cast<double>(base.calls_attempted)
            : 0;
        double ev_per_call_batched = batched.calls_attempted > 0
            ? static_cast<double>(batched.sim_events)
                / static_cast<double>(batched.calls_attempted)
            : 0;
        double ev_ratio = ev_per_call_base > 0
            ? ev_per_call_batched / ev_per_call_base
            : 0;
        double call_ratio = base.calls_completed > 0
            ? static_cast<double>(batched.calls_completed)
                / static_cast<double>(base.calls_completed)
            : 0;
        double wall_ratio = base.events_per_wall_sec > 0
            ? batched.events_per_wall_sec / base.events_per_wall_sec
            : 0;
        std::printf("%-22s events/attempt %.1f -> %.1f (%.3fx, ceiling "
                    "0.995x)  calls %.3fx (floor %.2fx)  "
                    "events/wall-s %.2fx\n",
                    base.rung.c_str(), ev_per_call_base,
                    ev_per_call_batched, ev_ratio, call_ratio,
                    call_floor, wall_ratio);
        if (ev_ratio <= 0 || ev_ratio > 0.995) {
            std::printf("FAIL %s: batching did not reduce sim "
                        "events per call attempt (%.3fx)\n",
                        base.rung.c_str(), ev_ratio);
            ok = false;
        }
        if (call_ratio < call_floor) {
            std::printf("FAIL %s: simulated throughput %.3fx < "
                        "%.2fx\n",
                        base.rung.c_str(), call_ratio, call_floor);
            ok = false;
        }
        if (batched.avg_batch_depth < 1.0) {
            std::printf("FAIL %s: batched run recorded no batches\n",
                        base.rung.c_str());
            ok = false;
        }
    }
    std::printf("final peak RSS %ld kB\n", peakRssKb());
    std::printf("%s\n", ok ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL");
    return ok ? 0 : 1;
}

/**
 * @file
 * §4.3 ablation: number of worker processes. The paper selected 24
 * workers for UDP and 32 for TCP because those "perform well over a
 * wide range of experiments". This sweep regenerates the comparison.
 */

#include <cstdio>

#include "fig_common.hh"

int
main()
{
    using namespace siprox;

    stats::Table table({"workers", "UDP ops/s", "TCP ops/s"});
    const int counts[] = {2, 4, 8, 16, 24, 32, 48};
    for (int workers : counts) {
        double ops[2] = {0, 0};
        int idx = 0;
        for (auto transport :
             {core::Transport::Udp, core::Transport::Tcp}) {
            workload::Scenario sc =
                workload::paperScenario(transport, 500, 0);
            sc.measureWindow = bench::windowFor(transport, 0) / 2;
            sc.proxy.workers = workers;
            ops[idx++] = workload::runScenario(sc).opsPerSec;
        }
        std::fprintf(stderr, "  [%d workers] udp=%.0f tcp=%.0f\n",
                     workers, ops[0], ops[1]);
        table.addRow({std::to_string(workers),
                      stats::Table::num(ops[0]),
                      stats::Table::num(ops[1])});
    }
    std::printf("=== Worker-count sweep (paper picks 24 UDP / 32 TCP) "
                "===\n%s\n",
                table.render().c_str());
    return 0;
}

/**
 * @file
 * Regenerates Figure 4, "File Descriptor Cache Performance": the §5.2
 * fix — each worker caches descriptors received from the supervisor
 * instead of closing them after every forwarded message.
 *
 * Paper claims reproduced here: persistent and 500 ops/conn TCP reach
 * 66-78% of UDP; 50 ops/conn roughly doubles over baseline but stays
 * about two-fold below the other TCP workloads (idle-scan overhead).
 */

#include "fig_common.hh"

int
main()
{
    using namespace siprox;
    // Bar values from Figure 4 (100 / 500 / 1000 clients).
    const double udp[3] = {33695, 33350, 28395};
    const double tcp50[3] = {13232, 11703, 10113};
    const double tcp500[3] = {23696, 22502, 23032};
    const double tcp_persistent[3] = {23400, 22376, 22238};

    auto grid = bench::paperGrid(udp, tcp50, tcp500, tcp_persistent);
    bench::runFigure(
        "Figure 4: with the per-worker file descriptor cache", grid,
        [](workload::Scenario &sc) {
            sc.proxy.fdCache = true;
            sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
        });
    return 0;
}

/**
 * @file
 * Self-checking harness for the explain reports: runs the paper's
 * headline pairings with windowed telemetry enabled and asserts that
 * the automatic bottleneck attribution reproduces the §5 findings —
 * not by eyeballing a table, but by failing the build when the ranked
 * attribution disagrees:
 *
 *  1. TCP baseline (no fd cache): the supervisor fd-passing IPC round
 *     trip must rank #1 among the server's blocking waits over the
 *     measured phase.
 *  2. TCP + fd cache: the IPC wait must *not* rank #1 any more — the
 *     fix visibly flips the attribution.
 *  3. Overloaded UDP with no admission control: the server's
 *     saturation-onset window must precede the goodput-collapse
 *     window (saturation is the cause, collapse the effect).
 *
 * Run with SIPROX_BENCH_QUICK=1 or SIPROX_SWEEP_SMOKE=1 for shorter
 * windows; the assertions hold in every mode.
 */

#include <cstdio>
#include <string>

#include "sim/trace.hh"
#include "stats/explain.hh"
#include "sweep_common.hh"

namespace {

using namespace siprox;

int failures = 0;

void
check(bool ok, const std::string &what)
{
    std::printf("%s: %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failures;
}

/** Scale per-message costs (ext_overload_sweep's trick) so the UDP
 *  overload point saturates at a simulable client count. */
void
slowCosts(core::CostModel &c, double x)
{
    auto scale = [x](sim::SimTime &t) {
        t = static_cast<sim::SimTime>(static_cast<double>(t) * x);
    };
    scale(c.parse);
    scale(c.route);
    scale(c.serialize);
    scale(c.txnCreate);
    scale(c.txnLookup);
    scale(c.txnUpdate);
    scale(c.registrarLookup);
    scale(c.registrarUpdate);
}

/** Run one TCP point with telemetry + recorder and return the server's
 *  measured-phase top blocking wait ("" when none was recorded). */
std::string
tcpTopWait(bool fd_cache)
{
    workload::Scenario sc = bench::sweepScenario(
        core::Transport::Tcp, bench::smokeMode() ? 20 : 100, 0);
    sc.proxy.fdCache = fd_cache;
    sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
    sc.telemetry.windowMs = 100;

    // Wait-state ranking needs span aggregates; totals are exact
    // regardless of the timeline cap, so keep the buffer small.
    sim::trace::Recorder rec(sim::trace::Recorder::Options{1u << 16});
    sim::trace::setRecorder(&rec);
    workload::RunResult r = workload::runScenario(sc);
    sim::trace::setRecorder(nullptr);
    bench::logPoint(sc, r);

    if (!r.timeseries)
        return "";
    stats::ExplainReport rep = stats::explain(*r.timeseries);
    std::fputs(rep.text().c_str(), stdout);
    const stats::MachineReport *server = rep.machine("server");
    if (!server)
        return "";
    const stats::PhaseAttribution *measure = server->phase("measure");
    return measure ? measure->topWait : "";
}

} // namespace

int
main()
{
    // 1 + 2: the fd-cache attribution flip.
    std::string base = tcpTopWait(false);
    check(base == "ipc",
          "TCP baseline: top server blocking wait is ipc (got '"
              + base + "')");
    std::string cached = tcpTopWait(true);
    check(!cached.empty() && cached != "ipc",
          "TCP fd cache: top server blocking wait is no longer ipc "
          "(got '"
              + cached + "')");

    // 3: overloaded UDP, no admission control — saturation onset must
    // precede goodput collapse. Same shape as ext_overload_sweep's
    // congestion-collapse baseline: slowed costs, a client count past
    // saturation, and a tight caller deadline so queueing delay turns
    // into retransmission amplification.
    workload::Scenario sc =
        workload::paperScenario(core::Transport::Udp, 400, 0);
    sc.name = "UDP/none/400c";
    sc.measureWindow =
        sim::secs(bench::smokeMode() || bench::quickMode() ? 3 : 5);
    sc.maxDuration = sim::secs(60);
    slowCosts(sc.proxy.costs, 40);
    sc.phoneResponseTimeout = sim::msecs(1500);
    sc.phoneRetryBackoffCap = sim::secs(2);
    sc.proxy.txnLinger = sim::msecs(200);
    sc.proxy.overload.policy = core::OverloadPolicy::None;
    sc.proxy.overload.recvQueueCapacity = 512;
    sc.telemetry.windowMs = 250;
    workload::RunResult r = workload::runScenario(sc);
    bench::logPoint(sc, r);

    check(r.timeseries != nullptr, "UDP overload: telemetry captured");
    if (r.timeseries) {
        stats::ExplainReport rep = stats::explain(*r.timeseries);
        std::fputs(rep.text().c_str(), stdout);
        const stats::MachineReport *server = rep.machine("server");
        const stats::PhaseAttribution *measure =
            server ? server->phase("measure") : nullptr;
        check(measure && measure->saturationWindow >= 0,
              "UDP overload: server saturates in the measured phase");
        check(rep.goodputCollapseWindow >= 0,
              "UDP overload: goodput collapse detected");
        if (measure && measure->saturationWindow >= 0
            && rep.goodputCollapseWindow >= 0) {
            check(measure->saturationStartNs
                      < rep.goodputCollapseStartNs,
                  "UDP overload: saturation onset ("
                      + std::to_string(measure->saturationStartNs)
                      + "ns) precedes goodput collapse ("
                      + std::to_string(rep.goodputCollapseStartNs)
                      + "ns)");
        }
    }

    if (failures) {
        std::printf("%d explain self-check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("all explain self-checks passed\n");
    return 0;
}

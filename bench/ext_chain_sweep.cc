/**
 * @file
 * Extension: hop-by-hop distributed overload control over a 3-hop
 * proxy chain (edge -> core -> destination) — the comparative-study
 * experiment (Hong/Huang/Yan; Shen & Schulzrinne) the single-proxy
 * paper never had.
 *
 * Topology: the destination is the bottleneck (1 worker against the
 * edge/core's full complement on equal 4-core machines), the
 * literature's fan-in shape where the overloaded server sits
 * *downstream* of healthy proxies. Under purely local control the
 * destination can defend itself, but only after the edge and core
 * have already spent parse/route/forward cost on every doomed INVITE
 * and then relay its 503 back upstream; callers give up and retry,
 * and that wasted upstream work plus retransmission amplification is
 * exactly what collapses end-to-end goodput. Distributed control
 * back-propagates the destination's admit grant hop by hop until the
 * edge sheds excess load before the chain spends anything on it.
 *
 * Every series keeps the same tuned *local* controller (rate-throttle
 * on each hop); the distributed series additionally enable one
 * feedback scheme (on/off restriction, explicit rate grant, window
 * grant). The acceptance this sweep pins: at >=3x the chain's
 * saturation load, local-only goodput collapses to <=20% of its own
 * peak while at least two distributed schemes sustain >=50%, on UDP
 * and TCP both.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sweep_common.hh"

namespace {

/** Same 40x cost scaling as ext_overload_sweep: saturation at a
 *  simulable client count. */
void
slowCosts(siprox::core::CostModel &c, double x)
{
    auto scale = [x](siprox::sim::SimTime &t) {
        t = static_cast<siprox::sim::SimTime>(
            static_cast<double>(t) * x);
    };
    scale(c.parse);
    scale(c.route);
    scale(c.serialize);
    scale(c.txnCreate);
    scale(c.txnLookup);
    scale(c.txnUpdate);
    scale(c.registrarLookup);
    scale(c.registrarUpdate);
}

} // namespace

int
main()
{
    using namespace siprox;

    struct Series
    {
        const char *label;
        core::FeedbackScheme scheme;
    };
    const std::vector<Series> series = {
        {"local-only", core::FeedbackScheme::None},
        {"hop-onoff", core::FeedbackScheme::OnOff},
        {"hop-rate", core::FeedbackScheme::Rate},
        {"hop-window", core::FeedbackScheme::Window},
    };

    std::vector<core::Transport> transports = {core::Transport::Udp,
                                               core::Transport::Tcp};
    // The bottleneck destination saturates around ~40 closed-loop
    // callers; the top rung offers >=3x that.
    std::vector<int> ladder = {30, 240, 1200};
    double window_secs = bench::quickMode() ? 2.5 : 10;
    bool smoke = bench::smokeMode();
    if (smoke) {
        // CI smoke: UDP only, one pre- and one over-saturation point
        // (the peak reference needs the low rung).
        transports = {core::Transport::Udp};
        ladder = {30, 1200};
        window_secs = 1;
    }

    struct Row
    {
        core::Transport transport;
        const char *scheme;
        int clients;
        workload::RunResult r;
        double goodput = 0;
    };
    std::vector<Row> rows;

    for (core::Transport t : transports) {
        for (const Series &s : series) {
            for (int clients : ladder) {
                workload::Scenario sc =
                    workload::paperScenario(t, clients, 0);
                sc.name = std::string(core::transportName(t)) + "/"
                    + s.label + "/" + std::to_string(clients) + "c";
                sc.measureWindow = sim::secs(window_secs);
                sc.maxDuration = sim::secs(60);
                slowCosts(sc.proxy.costs, 40);
                sc.phoneResponseTimeout = sim::msecs(1500);
                sc.phoneRetryBackoffCap = sim::secs(2);
                sc.sampleInterval = sim::msecs(200);
                sc.proxy.txnLinger = sim::msecs(200);

                // 3-hop chain; the destination's single worker caps it
                // at one core of the 4-core hop machine, so the edge
                // and core have ~4x its capacity — overload lives
                // strictly downstream.
                sc.chain.assign(3, workload::ChainHop{});
                sc.chain[2].workers = 1;
                // The literature's local-control baseline: only the
                // overloaded server defends itself — without feedback
                // the healthy edge and core have no destination-aware
                // signal, so every doomed INVITE costs them forward +
                // relay work. The distributed series keep the local
                // controller on every hop (the advertiser *is* the
                // local controller) with the hop gates on top.
                if (s.scheme == core::FeedbackScheme::None) {
                    sc.chain[0].overloadPolicy =
                        core::OverloadPolicy::None;
                    sc.chain[1].overloadPolicy =
                        core::OverloadPolicy::None;
                }

                // Local controller at the bottleneck: the
                // single-proxy sweep's tuned rate-throttle, scaled to
                // its one-core capacity.
                auto &ov = sc.proxy.overload;
                ov.policy = core::OverloadPolicy::RateThrottle;
                ov.txnTableCapacity = 1400;
                ov.recvQueueCapacity = 512;
                ov.lowWatermark = 0.80;
                ov.latencyHigh = sim::msecs(800);
                ov.latencyLow = sim::msecs(400);
                if (s.scheme == core::FeedbackScheme::None) {
                    // The single-proxy sweep's tuned controller: the
                    // strongest purely local defense we have.
                    ov.initialRate = 300;
                    ov.latencyTarget = sim::msecs(300);
                    ov.decreaseFactor = 0.95;
                    ov.increasePerInterval = 25;
                } else {
                    // Loose safety net: the hop grant is the tight
                    // signal; a local throttle tighter than the
                    // advertised grant would 503 traffic both gates
                    // already admitted, after the full chain cost is
                    // spent.
                    ov.initialRate = 600;
                    ov.latencyTarget = sim::msecs(600);
                    ov.decreaseFactor = 0.95;
                    ov.increasePerInterval = 50;
                }

                // Distributed series: one feedback scheme on top.
                ov.hop.scheme = s.scheme;
                ov.hop.initialRate = 300;
                ov.hop.minRate = 20;
                // UDP punishes over-grant with T1 retransmission
                // storms, so its grants aim lower and cut harder;
                // TCP's flow control forgives overshoot and prefers
                // the deeper pipeline.
                bool udp = t == core::Transport::Udp;
                ov.hop.latencyTarget = sim::msecs(300);
                // React fast: a 25ms tick halves the length of any
                // over-grant excursion, which on UDP is the difference
                // between a queue blip and a retransmission storm.
                ov.hop.adjustInterval = sim::msecs(25);
                // Below saturation (~40 clients) the gate must be
                // transparent, so the burst covers the measured
                // phase's opening herd (every caller fires its first
                // INVITE at once — fewer tokens than callers 503s a
                // cohort into Retry-After backoff that a short smoke
                // window never amortizes). Beyond saturation the
                // burst stays tight: a deep bucket converts every
                // grant-oscillation upswing into a queue-slamming
                // burst at the bottleneck.
                ov.hop.burstTokens = clients <= 40 ? clients + 2 : 8;
                ov.hop.occHigh = 0.85;
                ov.hop.occLow = 0.50;
                // Rate recovers additively (+25 per tick), so it can
                // afford a hard multiplicative cut; the window grant
                // recovers only +1 per tick and needs a gentler one.
                ov.hop.decreaseFactor =
                    s.scheme == core::FeedbackScheme::Window
                        ? (udp ? 0.95 : 0.97)
                        : 0.85;
                ov.hop.windowIncreasePerInterval = udp ? 6 : 8;
                ov.hop.increasePerInterval = 25;
                ov.hop.initialWindow = 64;

                workload::RunResult r = workload::runScenario(sc);
                double goodput = r.duration > 0
                    ? static_cast<double>(r.callsCompleted)
                        / sim::toSecs(r.duration)
                    : 0;
                bench::logPoint(sc, r);
                if (std::getenv("SIPROX_CHAIN_DEBUG")) {
                    std::printf("  util %.2f p50 %lldms p99 %lldms "
                                "rejected503(phone) %llu backoffs %llu\n",
                                r.serverUtilization,
                                (long long)sim::toMsecs(r.inviteP50),
                                (long long)sim::toMsecs(r.inviteP99),
                                (unsigned long long)r.phoneRejected503,
                                (unsigned long long)r.phoneBackoffs);
                    for (std::size_t h = 0; h < r.hopCounters.size(); ++h) {
                        const auto &hc = r.hopCounters[h];
                        std::printf("  hop%zu in %llu fwd %llu gateRej %llu "
                                    "fbApp %llu retransAbs %llu local503 %llu "
                                    "timerB %llu\n",
                                    h,
                                    (unsigned long long)hc.messagesIn,
                                    (unsigned long long)hc.forwards,
                                    (unsigned long long)hc.hopThrottleRejects,
                                    (unsigned long long)hc.hopFeedbackApplied,
                                    (unsigned long long)hc.retransAbsorbed,
                                    (unsigned long long)(hc.overloadRejected
                                                         + hc.overloadThrottled),
                                    (unsigned long long)hc.timerB408s);
                    }
                }
                rows.push_back(
                    Row{t, s.label, clients, std::move(r), goodput});
            }
        }
    }

    stats::Table table(
        {"transport", "scheme", "clients", "goodput/s", "% of peak",
         "gate rejects", "gate drops", "fb sent", "fb applied",
         "local 503s", "retrans", "calls failed"});
    auto peakOf = [&](core::Transport t, const char *scheme) {
        double peak = 0;
        for (const Row &row : rows)
            if (row.transport == t && row.scheme == scheme)
                peak = std::max(peak, row.goodput);
        return peak;
    };
    for (core::Transport t : transports) {
        for (const Series &s : series) {
            double peak = peakOf(t, s.label);
            for (const Row &row : rows) {
                if (row.transport != t || row.scheme != s.label)
                    continue;
                const auto &c = row.r.counters;
                table.addRow(
                    {core::transportName(t), s.label,
                     std::to_string(row.clients),
                     stats::Table::num(row.goodput),
                     peak > 0 ? stats::Table::pct(row.goodput / peak)
                              : "-",
                     std::to_string(c.hopThrottleRejects),
                     std::to_string(c.hopThrottleDrops),
                     std::to_string(c.hopFeedbackSent),
                     std::to_string(c.hopFeedbackApplied),
                     std::to_string(c.overloadRejected
                                    + c.overloadThrottled),
                     std::to_string(row.r.phoneRetransmissions),
                     std::to_string(row.r.callsFailed)});
            }
        }
    }

    std::printf("3-hop chain (edge -> core -> bottleneck destination) "
                "beyond-saturation goodput:\nlocal rate-throttle on "
                "every hop; distributed series add one hop-by-hop "
                "feedback scheme\n\n%s\n",
                table.render().c_str());

    // Acceptance: at the top of the ladder, local-only collapses
    // (<=20% of its own peak) while at least two distributed schemes
    // sustain (>=50%), per transport. Smoke mode (one transport, two
    // rungs, short window) asserts the weaker monotone form at every
    // load point: no distributed scheme falls below local-only, with a
    // 5% tolerance so near-peak rungs (where every series sits at
    // capacity and the short window leaves +/-1-call noise) cannot
    // flake the gate.
    int top = ladder.back();
    bool ok = true;
    for (core::Transport t : transports) {
        auto goodputAt = [&](const char *scheme, int clients) {
            for (const Row &row : rows)
                if (row.transport == t && row.scheme == scheme
                    && row.clients == clients)
                    return row.goodput;
            return 0.0;
        };
        auto topGoodput = [&](const char *scheme) {
            return goodputAt(scheme, top);
        };
        double local_peak = peakOf(t, "local-only");
        double local_frac = local_peak > 0
            ? topGoodput("local-only") / local_peak
            : 0;
        int sustained = 0;
        for (std::size_t i = 1; i < series.size(); ++i) {
            double peak = peakOf(t, series[i].label);
            double frac = peak > 0
                ? topGoodput(series[i].label) / peak
                : 0;
            if (frac >= 0.5)
                ++sustained;
            if (smoke) {
                for (int clients : ladder) {
                    double dist = goodputAt(series[i].label, clients);
                    double local = goodputAt("local-only", clients);
                    if (dist < local * 0.95) {
                        std::printf("FAIL %s: %s goodput %.1f < "
                                    "local-only %.1f at %dc\n",
                                    core::transportName(t),
                                    series[i].label, dist, local,
                                    clients);
                        ok = false;
                    }
                }
            }
        }
        if (!smoke) {
            if (local_frac > 0.20) {
                std::printf("FAIL %s: local-only holds %.0f%% of peak "
                            "at %dc (expected collapse <=20%%)\n",
                            core::transportName(t), local_frac * 100,
                            top);
                ok = false;
            }
            if (sustained < 2) {
                std::printf("FAIL %s: only %d distributed scheme(s) "
                            "sustain >=50%% of peak at %dc "
                            "(expected >=2)\n",
                            core::transportName(t), sustained, top);
                ok = false;
            }
        }
        std::printf("%s @ %dc: local-only %.0f%% of peak, %d/3 "
                    "distributed schemes >=50%%\n",
                    core::transportName(t), top, local_frac * 100,
                    sustained);
    }
    std::printf("%s\n", ok ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL");
    return ok ? 0 : 1;
}

/**
 * @file
 * §4.3 ablation: the TCP supervisor's scheduling priority. The paper
 * elevates the supervisor to nice -20 and reports 40-100% higher TCP
 * throughput, attributing the loss at default priority to Linux
 * 2.6.20 scheduling the supervisor too rarely (stalled workers, idle
 * processors).
 *
 * Known deviation (see EXPERIMENTS.md): this simulator models dynamic
 * priorities and sched_yield demotion on a single global run queue, so
 * the elevated supervisor is never *worse* and the effect's direction
 * reproduces, but the magnitude of the starvation — which on the real
 * kernel came from per-CPU runqueues and expired-array starvation —
 * is much smaller here.
 */

#include <cstdio>

#include "fig_common.hh"

int
main()
{
    using namespace siprox;

    stats::Table table({"workload", "clients", "nice 0 ops/s",
                        "nice -20 ops/s", "gain"});
    struct Case
    {
        const char *name;
        int opsPerConn;
        int clients;
    };
    const Case cases[] = {
        {"persistent", 0, 100},   {"persistent", 0, 1000},
        {"50 ops/conn", 50, 100}, {"50 ops/conn", 50, 1000},
    };
    for (const auto &c : cases) {
        double ops[2] = {0, 0};
        int idx = 0;
        for (int nice : {0, -20}) {
            workload::Scenario sc = workload::paperScenario(
                core::Transport::Tcp, c.clients, c.opsPerConn);
            sc.measureWindow =
                bench::windowFor(core::Transport::Tcp, c.opsPerConn);
            sc.proxy.supervisorNice = nice;
            ops[idx++] = workload::runScenario(sc).opsPerSec;
            std::fprintf(stderr, "  [%s %dc nice %d] %.0f ops/s\n",
                         c.name, c.clients, nice, ops[idx - 1]);
        }
        table.addRow({c.name, std::to_string(c.clients),
                      stats::Table::num(ops[0]),
                      stats::Table::num(ops[1]),
                      stats::Table::pct(ops[1] / ops[0] - 1.0, 1)});
    }
    std::printf("=== Supervisor priority elevation (paper: +40-100%%) "
                "===\n%s\n",
                table.render().c_str());
    return 0;
}

/**
 * @file
 * §4.3 ablation: the idle-connection timeout. OpenSER's default keeps
 * idle TCP connections for 120 s; because the benchmark's clients
 * never close connections, that default caused port starvation under
 * the non-persistent workloads, so the paper reduces it to 10 s.
 *
 * With the long timeout, abandoned connections pin client-side ports
 * and server-side socket structures for minutes; with a constrained
 * ephemeral range (modeling the paper's effective pool) reconnects
 * start failing outright.
 */

#include <cstdio>

#include "fig_common.hh"

int
main()
{
    using namespace siprox;

    stats::Table table({"idle timeout", "ephemeral ports", "ops/s",
                        "reconnect failures", "failed calls",
                        "live conns at end"});
    struct Case
    {
        double timeoutSec;
        int ports; ///< per client host
    };
    // ~75 abandoned conns/s per client host at this load; a port
    // stays pinned ~2x the idle timeout. With 2700 ports/host the
    // paper's 10 s timeout holds steady at ~1.8k pinned+active, while
    // the OpenSER default of 120 s never releases anything within the
    // run and exhausts the pool mid-way. (The 120 s case also drags
    // the linear idle scan across an ever-growing table.)
    const Case cases[] = {
        {10, 28000}, {10, 2700}, {120, 2700},
    };
    for (const auto &c : cases) {
        workload::Scenario sc =
            workload::paperScenario(core::Transport::Tcp, 500, 50);
        sc.measureWindow = bench::quickMode() ? sim::secs(10)
                                              : sim::secs(50);
        sc.proxy.fdCache = true;
        sc.proxy.idleTimeout = sim::secs(c.timeoutSec);
        sc.net.ephemeralLo = 32768;
        sc.net.ephemeralHi =
            static_cast<std::uint16_t>(32768 + c.ports);
        auto r = workload::runScenario(sc);
        std::fprintf(stderr,
                     "  [timeout %.0fs ports %d] %.0f ops/s "
                     "reconnFail=%llu\n",
                     c.timeoutSec, c.ports, r.opsPerSec,
                     static_cast<unsigned long long>(
                         r.reconnectFailures));
        table.addRow(
            {stats::Table::num(c.timeoutSec) + " s",
             std::to_string(c.ports), stats::Table::num(r.opsPerSec),
             std::to_string(r.reconnectFailures),
             std::to_string(r.callsFailed),
             std::to_string(r.counters.connsAccepted
                            + r.counters.outboundConnects
                            - r.counters.connsDestroyed)});
    }
    std::printf("=== Idle timeout ablation (paper: 120 s starves "
                "ports; 10 s avoids it) ===\n%s\n",
                table.render().c_str());
    return 0;
}

/**
 * @file
 * Regenerates Figure 5, "Priority Queue Performance": the §5.3 fix on
 * top of the fd cache — idle connections tracked in timeout-ordered
 * priority queues (shared for the supervisor, local per worker) so
 * only expired entries are examined.
 *
 * Paper claims reproduced here: the 50 ops/conn workload joins the
 * other TCP workloads; all TCP configurations land within 50-72% of
 * UDP; the other workloads are barely affected by the change.
 */

#include "fig_common.hh"

int
main()
{
    using namespace siprox;
    // Bar values from Figure 5 (100 / 500 / 1000 clients).
    const double udp[3] = {33695, 33350, 28395};
    const double tcp50[3] = {18986, 20529, 16661};
    const double tcp500[3] = {22356, 21230, 22574};
    const double tcp_persistent[3] = {22953, 21237, 22082};

    auto grid = bench::paperGrid(udp, tcp50, tcp500, tcp_persistent);
    bench::runFigure(
        "Figure 5: fd cache + priority-queue idle management", grid,
        [](workload::Scenario &sc) {
            sc.proxy.fdCache = true;
            sc.proxy.idleStrategy = core::IdleStrategy::PriorityQueue;
        });
    return 0;
}

/**
 * @file
 * Extension: horizontal scaling of the SIP proxy into a dispatcher-
 * fronted cluster with a sharded registrar — the deployment shape the
 * single-box paper stops short of, and where its transport findings
 * compound: every message now crosses the front end once more, so the
 * per-message UDP-vs-TCP gap is paid twice.
 *
 * The sweep walks {udp, tcp} x {1, 2, 4, 8 instances} x {consistent
 * hash on AOR, round robin} at a fixed closed-loop load, plus an
 * architecture mini-matrix at 4 instances. Consistent hashing lands
 * each request on the shard that owns the callee's AOR, so lookups are
 * local; round robin lands most requests on a non-owner, which must
 * either forward the request to the owner over a real inter-proxy
 * socket (charging parse/route/serialize again) or — with stale reads
 * enabled — answer from a lagged local replica.
 *
 * Self-checks (exit nonzero on failure):
 *   1. hash-aor produces strictly fewer cache-miss forwards than
 *      round robin at every rung with >=2 instances, per transport;
 *   2. the dispatcher's per-instance balance under consistent hashing
 *      stays within a max/mean factor of 2.5 (vnodes smooth the ring);
 *   3. the 100k-AOR 4-instance rung (10k in smoke mode) completes all
 *      calls with zero failures under state-pressure-scaled costs;
 *   4. a dispatcher-bottlenecked run (1-core front end, 8 instances)
 *      is attributed to the dispatcher machine by the explain report:
 *      it saturates first and its measured cpu peak tops every proxy.
 *
 * SIPROX_BENCH_QUICK=1 shortens windows; SIPROX_SWEEP_SMOKE=1 runs the
 * CI subset (udp only, 1-2 instances, 10k AORs).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "stats/explain.hh"
#include "sweep_common.hh"

namespace {

using namespace siprox;

int failures = 0;

void
check(bool ok, const std::string &what)
{
    std::printf("%s: %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failures;
}

/** Same cost scaling as the chain/overload sweeps: saturation at a
 *  simulable client count. */
void
slowCosts(core::CostModel &c, double x)
{
    auto scale = [x](sim::SimTime &t) {
        t = static_cast<sim::SimTime>(static_cast<double>(t) * x);
    };
    scale(c.parse);
    scale(c.route);
    scale(c.serialize);
    scale(c.txnCreate);
    scale(c.txnLookup);
    scale(c.txnUpdate);
    scale(c.registrarLookup);
    scale(c.registrarUpdate);
}

workload::Scenario
clusterPoint(core::Transport t, int instances,
             core::DispatchPolicy policy, int clients,
             double window_secs)
{
    workload::Scenario sc = workload::paperScenario(t, clients, 0);
    sc.name = std::string(core::transportName(t)) + "/"
        + std::to_string(instances) + "i/"
        + core::dispatchPolicyName(policy) + "/"
        + std::to_string(clients) + "c";
    sc.measureWindow = sim::secs(window_secs);
    sc.maxDuration = sim::secs(60);
    sc.serverCores = 2;
    slowCosts(sc.proxy.costs, 20);
    sc.cluster.instances = instances;
    sc.cluster.policy = policy;
    // The front end does less per message than a proxy; 4 cores keep
    // it out of the way so the sweep measures the *instances*.
    sc.cluster.dispatcherCores = 4;
    return sc;
}

double
goodput(const workload::RunResult &r)
{
    return r.duration > 0 ? static_cast<double>(r.callsCompleted)
            / sim::toSecs(r.duration)
                          : 0;
}

/** Dispatcher balance: max over instances / mean, 0 when unroutable. */
double
imbalance(const core::DispatcherStats &d)
{
    if (d.toInstance.empty())
        return 0;
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t v : d.toInstance) {
        total += v;
        peak = std::max(peak, v);
    }
    if (total == 0)
        return 0;
    double mean = static_cast<double>(total)
        / static_cast<double>(d.toInstance.size());
    return static_cast<double>(peak) / mean;
}

} // namespace

int
main()
{
    using namespace siprox;

    const bool smoke = bench::smokeMode();
    const double window_secs =
        smoke ? 1 : (bench::quickMode() ? 2.5 : 5);

    std::vector<core::Transport> transports = {core::Transport::Udp,
                                               core::Transport::Tcp};
    std::vector<int> ladder = {1, 2, 4, 8};
    int clients = 64;
    if (smoke) {
        transports = {core::Transport::Udp};
        ladder = {1, 2};
        clients = 24;
    }
    const std::vector<
        std::pair<const char *, core::DispatchPolicy>>
        policies = {{"hash-aor", core::DispatchPolicy::HashAor},
                    {"rr", core::DispatchPolicy::RoundRobin}};

    struct Row
    {
        core::Transport transport;
        const char *policy;
        int instances;
        workload::RunResult r;
        double goodput = 0;
        double imbalance = 0;
    };
    std::vector<Row> rows;

    // --- main sweep: transport x instances x dispatch policy --------
    for (core::Transport t : transports) {
        for (int n : ladder) {
            for (const auto &[label, policy] : policies) {
                workload::Scenario sc =
                    clusterPoint(t, n, policy, clients, window_secs);
                workload::RunResult r = workload::runScenario(sc);
                bench::logPoint(sc, r);
                Row row{t, label, n, std::move(r), 0, 0};
                row.goodput = goodput(row.r);
                row.imbalance = imbalance(row.r.dispatcherStats);
                rows.push_back(std::move(row));
            }
        }
    }

    stats::Table table({"transport", "policy", "instances",
                        "goodput/s", "loc hits", "replica hits",
                        "miss fwds", "repl installs", "imbalance",
                        "calls failed"});
    for (const Row &row : rows) {
        const auto &c = row.r.counters;
        table.addRow({core::transportName(row.transport), row.policy,
                      std::to_string(row.instances),
                      stats::Table::num(row.goodput),
                      std::to_string(c.locLocalHits),
                      std::to_string(c.locReplicaHits),
                      std::to_string(c.locMissForwards),
                      std::to_string(c.locReplInstalls),
                      stats::Table::num(row.imbalance),
                      std::to_string(row.r.callsFailed)});
    }
    std::printf("dispatcher-fronted cluster, sharded registrar "
                "(%d closed-loop callers):\n\n%s\n",
                clients, table.render().c_str());

    // Self-check 1: AOR-affine hashing beats round robin on cache-miss
    // forwards wherever there is more than one shard to miss into.
    for (core::Transport t : transports) {
        for (int n : ladder) {
            if (n < 2)
                continue;
            const Row *hash = nullptr, *rr = nullptr;
            for (const Row &row : rows) {
                if (row.transport != t || row.instances != n)
                    continue;
                (std::string_view(row.policy) == "hash-aor" ? hash
                                                            : rr) =
                    &row;
            }
            check(hash && rr
                      && hash->r.counters.locMissForwards
                          < rr->r.counters.locMissForwards,
                  std::string(core::transportName(t)) + " "
                      + std::to_string(n)
                      + "i: hash miss-forwards ("
                      + std::to_string(
                          hash->r.counters.locMissForwards)
                      + ") < rr ("
                      + std::to_string(rr->r.counters.locMissForwards)
                      + ")");
        }
    }

    // Self-check 2: the ring's vnodes keep per-instance load within a
    // small factor of even; a broken hash shows up as one instance
    // owning (nearly) everything.
    for (const Row &row : rows) {
        if (std::string_view(row.policy) != "hash-aor"
            || row.instances < 2)
            continue;
        check(row.imbalance > 0 && row.imbalance <= 2.5,
              std::string(core::transportName(row.transport)) + " "
                  + std::to_string(row.instances)
                  + "i hash: dispatcher max/mean balance "
                  + stats::Table::num(row.imbalance) + " <= 2.5");
    }

    // --- architecture mini-matrix at 4 instances --------------------
    if (!smoke) {
        struct ArchPoint
        {
            core::Transport transport;
            core::ArchKind arch;
        };
        const std::vector<ArchPoint> arch_points = {
            {core::Transport::Udp, core::ArchKind::SymmetricWorker},
            {core::Transport::Udp, core::ArchKind::EventDriven},
            {core::Transport::Tcp, core::ArchKind::SupervisorWorker},
            {core::Transport::Tcp, core::ArchKind::EventDriven},
        };
        stats::Table arch_table({"transport", "arch", "goodput/s",
                                 "miss fwds", "calls failed"});
        for (const ArchPoint &ap : arch_points) {
            workload::Scenario sc = clusterPoint(
                ap.transport, 4, core::DispatchPolicy::HashAor,
                clients, window_secs);
            sc.proxy.arch = ap.arch;
            sc.name = std::string(core::archKindName(ap.arch)) + "/"
                + sc.name;
            workload::RunResult r = workload::runScenario(sc);
            bench::logPoint(sc, r);
            arch_table.addRow(
                {core::transportName(ap.transport),
                 core::archKindName(ap.arch),
                 stats::Table::num(goodput(r)),
                 std::to_string(r.counters.locMissForwards),
                 std::to_string(r.callsFailed)});
            check(!r.timedOut && r.callsFailed == 0,
                  std::string(core::archKindName(ap.arch)) + "/"
                      + core::transportName(ap.transport)
                      + " 4i cluster completes cleanly");
        }
        std::printf("\narchitecture matrix at 4 instances "
                    "(hash-aor):\n\n%s\n",
                    arch_table.render().c_str());
    }

    // --- registrar population rung ----------------------------------
    // Self-check 3: a 100k-AOR population (10k in smoke), pre-seeded
    // across the shards, inflates every instance's state-pressure cost
    // scaling — the rung the sharding exists for: each shard carries
    // population/N of it. Costs stay unscaled: state pressure is the
    // load under test.
    {
        const std::uint64_t population = smoke ? 10000 : 100000;
        workload::Scenario sc = workload::paperScenario(
            core::Transport::Udp, clients, 0);
        sc.name = "udp/4i/hash-aor/" + std::to_string(population)
            + "aor";
        sc.measureWindow = sim::secs(window_secs);
        sc.maxDuration = sim::secs(60);
        sc.serverCores = 2;
        sc.cluster.instances = 4;
        sc.cluster.policy = core::DispatchPolicy::HashAor;
        sc.cluster.dispatcherCores = 4;
        sc.cluster.aorPopulation = population;
        workload::RunResult r = workload::runScenario(sc);
        bench::logPoint(sc, r);
        check(!r.timedOut && r.callsFailed == 0
                  && r.callsCompleted > 0,
              std::to_string(population)
                  + "-AOR 4-instance rung completes all calls "
                    "(completed="
                  + std::to_string(r.callsCompleted) + " failed="
                  + std::to_string(r.callsFailed) + ")");
    }

    // --- dispatcher-bottleneck attribution --------------------------
    // Self-check 4: starve the front end (1 core against 8 instances
    // x 2 cores) and the explain report must say so — the dispatcher
    // saturates first and posts the highest measured cpu peak.
    {
        workload::Scenario sc = clusterPoint(
            core::Transport::Udp, smoke ? 2 : 8,
            core::DispatchPolicy::HashAor, clients, window_secs);
        sc.name = "bottleneck/" + sc.name;
        sc.cluster.dispatcherCores = 1;
        // A deliberately expensive front end: peek/route cost ~100x
        // their defaults (think deep header inspection on an
        // underprovisioned box) while the instances keep ample
        // aggregate capacity, so the bottleneck is unambiguously the
        // dispatcher machine — the attribution the check pins.
        sc.proxy.costs.dispatchPeek = sim::usecs(150);
        sc.proxy.costs.dispatchRoute = sim::usecs(80);
        sc.telemetry.windowMs = 100;
        sim::trace::Recorder rec(
            sim::trace::Recorder::Options{1u << 16});
        sim::trace::setRecorder(&rec);
        workload::RunResult r = workload::runScenario(sc);
        sim::trace::setRecorder(nullptr);
        bench::logPoint(sc, r);

        check(r.timeseries != nullptr,
              "bottleneck rung: telemetry captured");
        if (r.timeseries) {
            stats::ExplainReport rep = stats::explain(*r.timeseries);
            std::fputs(rep.text().c_str(), stdout);
            auto cpuPeak = [&](const stats::MachineReport *m) {
                const stats::PhaseAttribution *ph =
                    m ? m->phase("measure") : nullptr;
                if (!ph)
                    return 0.0;
                for (const stats::Ranked &res : ph->resources)
                    if (res.name == "cpu")
                        return res.value;
                return 0.0;
            };
            const stats::MachineReport *disp =
                rep.machine("dispatcher");
            double disp_peak = cpuPeak(disp);
            double proxy_peak = 0;
            std::string proxy_name;
            for (const stats::MachineReport &m : rep.machines) {
                if (m.machine.rfind("proxy", 0) == 0
                    && cpuPeak(&m) > proxy_peak) {
                    proxy_peak = cpuPeak(&m);
                    proxy_name = m.machine;
                }
            }
            const stats::PhaseAttribution *disp_measure =
                disp ? disp->phase("measure") : nullptr;
            check(disp_measure
                      && disp_measure->saturationWindow >= 0,
                  "bottleneck rung: dispatcher saturates in the "
                  "measured phase");
            check(disp_peak > proxy_peak,
                  "bottleneck rung: dispatcher cpu peak ("
                      + stats::Table::num(disp_peak)
                      + ") tops every proxy instance (max "
                      + proxy_name + " "
                      + stats::Table::num(proxy_peak) + ")");
        }
    }

    if (failures) {
        std::printf("%d cluster self-check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("all cluster self-checks passed\n");
    return 0;
}

/**
 * @file
 * Boilerplate shared by every sweep-style bench: run-mode flags
 * (quick/smoke), measurement-window sizing, the paper-grid scenario
 * builder, and per-point progress logging.
 *
 * Set SIPROX_BENCH_QUICK=1 to shrink measurement windows ~4x for smoke
 * runs (shapes hold, absolute steady-state values shift slightly).
 * Set SIPROX_SWEEP_SMOKE=1 to collapse a sweep to one short point —
 * the CI mode that only proves the binary runs end to end.
 */

#ifndef SIPROX_BENCH_SWEEP_COMMON_HH
#define SIPROX_BENCH_SWEEP_COMMON_HH

#include "stats/table.hh"
#include "workload/scenario.hh"

namespace siprox::bench {

/** SIPROX_BENCH_QUICK=1: ~4x shorter measurement windows. */
bool quickMode();

/** SIPROX_SWEEP_SMOKE=1: reduce the sweep to one short point. */
bool smokeMode();

/** Measurement window per workload, sized so the idle-connection
 *  machinery reaches steady state where it matters. */
sim::SimTime windowFor(core::Transport transport, int ops_per_conn);

/** paperScenario with the measurement window already applied. */
workload::Scenario sweepScenario(core::Transport transport, int clients,
                                 int ops_per_conn);

/** One-line per-point progress note on stderr. */
void logPoint(const workload::Scenario &sc,
              const workload::RunResult &r);

} // namespace siprox::bench

#endif // SIPROX_BENCH_SWEEP_COMMON_HH

/**
 * @file
 * Extension: overload control and graceful degradation. The paper
 * measures each transport up to its saturation point; this sweep
 * pushes past it with a client ladder and a tight caller give-up
 * deadline, then compares beyond-saturation *goodput* (completed
 * calls/s) under the three admission policies:
 *
 *  - none:             accept everything — the congestion-collapse
 *                      baseline (retransmissions and retries amplify
 *                      offered load exactly when capacity runs out)
 *  - threshold-reject: 503 + Retry-After above a high watermark with
 *                      hysteresis; TCP additionally pauses accepts and
 *                      reads so kernel flow control pushes back
 *  - rate-throttle:    token-bucket admission tuned by AIMD feedback
 *                      on serving latency
 *
 * The interesting comparison is each policy's goodput at the top of
 * the ladder as a fraction of its own peak: a controlled proxy should
 * hold near its peak while the uncontrolled one collapses.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sweep_common.hh"

namespace {

/**
 * Scale the per-message SIP-processing costs so the client ladder
 * crosses saturation at a simulable client count: ~750 calls/s on the
 * default 4-core server instead of ~15k (which a closed-loop workload
 * only saturates with tens of thousands of phones).
 */
void
slowCosts(siprox::core::CostModel &c, double x)
{
    auto scale = [x](siprox::sim::SimTime &t) {
        t = static_cast<siprox::sim::SimTime>(
            static_cast<double>(t) * x);
    };
    scale(c.parse);
    scale(c.route);
    scale(c.serialize);
    scale(c.txnCreate);
    scale(c.txnLookup);
    scale(c.txnUpdate);
    scale(c.registrarLookup);
    scale(c.registrarUpdate);
}

} // namespace

int
main()
{
    using namespace siprox;

    struct Series
    {
        const char *label;
        core::OverloadPolicy policy;
    };
    const std::vector<Series> series = {
        {"none", core::OverloadPolicy::None},
        {"threshold-reject", core::OverloadPolicy::ThresholdReject},
        {"rate-throttle", core::OverloadPolicy::RateThrottle},
    };

    // A wire is a transport plus its secure-channel variant: TLS is
    // measured both with session resumption and without. Both TLS
    // variants run the churn workload (reconnect every call) —
    // persistent connections never re-handshake, so resumption only
    // matters when connections cycle; without resumption every
    // reconnect pays the full handshake, CPU that competes with SIP
    // processing for the same cores exactly when the proxy is already
    // saturated.
    struct Wire
    {
        const char *label;
        core::Transport transport;
        bool tlsResumption;
        int opsPerConn;
    };
    std::vector<Wire> wires = {
        {"UDP", core::Transport::Udp, true, 0},
        {"TCP", core::Transport::Tcp, true, 0},
        {"TLS", core::Transport::Tls, true, 2},
        {"TLS-nores", core::Transport::Tls, false, 2},
        {"SST", core::Transport::Sst, true, 0},
    };
    // TCP needs a heavier top rung than UDP to collapse: reliable
    // delivery avoids the retransmission amplification that sinks UDP,
    // so only raw queueing delay can push callers past their deadline.
    std::vector<int> ladder = {100, 400, 800, 1200, 2000};
    double window_secs = bench::quickMode() ? 2.5 : 5;
    if (bench::smokeMode()) {
        // CI smoke: one over-saturation point, one transport.
        wires = {{"UDP", core::Transport::Udp, true, 0}};
        ladder = {400};
        window_secs = 1;
    }

    struct Row
    {
        const char *wire;
        const char *policy;
        int clients;
        workload::RunResult r;
        double goodput = 0;
    };
    std::vector<Row> rows;

    for (const Wire &w : wires) {
        for (const Series &s : series) {
            for (int clients : ladder) {
                workload::Scenario sc = workload::paperScenario(
                    w.transport, clients, w.opsPerConn);
                sc.net.tlsResumption = w.tlsResumption;
                sc.name = std::string(w.label) + "/" + s.label + "/"
                    + std::to_string(clients) + "c";
                sc.measureWindow = sim::secs(window_secs);
                sc.maxDuration = sim::secs(60);
                slowCosts(sc.proxy.costs, 40);
                // Overload is only lethal when callers give up and
                // retry: a tight deadline turns queueing delay into
                // retransmission amplification, the collapse mechanism.
                sc.phoneResponseTimeout = sim::msecs(1500);
                sc.phoneRetryBackoffCap = sim::secs(2);
                sc.sampleInterval = sim::msecs(200);
                // Short linger so the transaction table reflects
                // *outstanding* work, not absorbed history.
                sc.proxy.txnLinger = sim::msecs(200);
                auto &ov = sc.proxy.overload;
                ov.policy = s.policy;
                // Table occupancy is the primary admission signal: it
                // bounds outstanding work instantly, where the latency
                // EWMA lags by a full serving time (admitting a burst
                // and then slamming shut).
                // Healthy steady state keeps ~800 entries resident
                // (lingering absorbers plus in-flight); 1400 puts the
                // 0.85 watermark at ~+200 outstanding INVITEs of
                // genuine backlog — well under the 500ms T1 onset.
                ov.txnTableCapacity = 1400;
                // The *signal* queue bound is far below the socket's
                // real 4096 cap: at 40x costs a 4096-deep queue holds
                // ~2.4s of work, so anything admitted from its tail is
                // already past the caller's deadline. Normalizing the
                // queue signal to 512 makes the controller shed (and
                // panic-drop arrival bursts pre-parse) at ~0.3s of
                // queued work, imposing the short queue the policy-less
                // proxy lacks.
                ov.recvQueueCapacity = 512;
                // Narrow hysteresis band: long shed episodes reject
                // whole cohorts of callers who then sit out seconds of
                // backoff, idling the server. Short frequent episodes
                // approximate proportional shedding.
                ov.lowWatermark = 0.80;
                // Latency thresholds as the safety net only.
                ov.latencyHigh = sim::msecs(800);
                ov.latencyLow = sim::msecs(400);
                // Gentle AIMD around a 300ms serving-latency target:
                // deep enough a pipeline to keep the server busy, well
                // under the 1.5s deadline, and very small steps so the
                // admitted rate hovers near capacity instead of
                // sawtoothing below it (the panic valve catches any
                // onset the slow decrease misses).
                ov.initialRate = 500;
                ov.latencyTarget = sim::msecs(300);
                ov.decreaseFactor = 0.95;
                ov.increasePerInterval = 25;
                workload::RunResult r = workload::runScenario(sc);
                double goodput = r.duration > 0
                    ? static_cast<double>(r.callsCompleted)
                        / sim::toSecs(r.duration)
                    : 0;
                bench::logPoint(sc, r);
                rows.push_back(
                    Row{w.label, s.label, clients, std::move(r),
                        goodput});
            }
        }
    }

    stats::Table table({"transport", "policy", "clients", "goodput/s",
                        "% of peak", "503s", "panic drops", "rq drops",
                        "read pauses", "accepts refused", "msgs/op",
                        "calls failed"});
    for (const Wire &w : wires) {
        for (const Series &s : series) {
            double peak = 0;
            for (const Row &row : rows) {
                if (row.wire == w.label && row.policy == s.label)
                    peak = std::max(peak, row.goodput);
            }
            for (const Row &row : rows) {
                if (row.wire != w.label || row.policy != s.label)
                    continue;
                double msgs_per_op = row.r.ops > 0
                    ? static_cast<double>(row.r.counters.messagesIn)
                        / static_cast<double>(row.r.ops)
                    : 0;
                table.addRow(
                    {row.wire, s.label, std::to_string(row.clients),
                     stats::Table::num(row.goodput),
                     peak > 0 ? stats::Table::pct(row.goodput / peak)
                              : "-",
                     std::to_string(row.r.counters.overloadRejected
                                    + row.r.counters.overloadThrottled),
                     std::to_string(row.r.counters.overloadPanicDrops),
                     std::to_string(row.r.proxyRecvQueueDrops),
                     std::to_string(row.r.counters.tcpReadPauses),
                     std::to_string(row.r.proxyAcceptRefused),
                     stats::Table::num(msgs_per_op),
                     std::to_string(row.r.callsFailed)});
            }
        }
    }

    std::printf("Beyond-saturation goodput by overload policy "
                "(callers give up after 1.5s and retry)\n\n%s\n",
                table.render().c_str());
    return 0;
}

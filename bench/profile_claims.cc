/**
 * @file
 * Regenerates the paper's §5.1/§5.2 execution-profile observations
 * (made with OProfile on the real testbed; here with the simulated
 * cost-center profiler over the measured phase):
 *
 *  1. Baseline: ~12% of time in the function where the fd-request IPC
 *     occurs; IPC-related kernel functions prominent.
 *  2. With the fd cache: that function drops to ~4.6%, IPC kernel
 *     functions leave the top of the profile, and the user-level
 *     profile starts to resemble UDP's.
 *  3. 50 ops/conn with the cache: time in the idle-connection scan
 *     (tcpconn_timeout) grows several-fold and scheduler/spinning
 *     functions dominate the kernel side.
 */

#include <cstdio>

#include "fig_common.hh"

namespace {

using namespace siprox;

workload::RunResult
run(core::Transport transport, int ops_per_conn, bool fd_cache)
{
    workload::Scenario sc =
        workload::paperScenario(transport, 100, ops_per_conn);
    sc.measureWindow = bench::windowFor(transport, ops_per_conn);
    sc.proxy.fdCache = fd_cache;
    sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
    return workload::runScenario(sc);
}

void
report(const char *name, const workload::RunResult &r)
{
    std::printf("--- %s: %.0f ops/s ---\n", name, r.opsPerSec);
    std::printf("%s\n", r.serverProfile.report(10).c_str());
}

/** Profile share of @p center, looked up through the unified metrics
 *  snapshot (same values any metrics consumer sees). */
double
share(const stats::MetricsSnapshot &m, const char *center)
{
    return m.gaugeOr(std::string("profile.share.") + center);
}

} // namespace

int
main()
{
    using namespace siprox;

    auto baseline = run(core::Transport::Tcp, 0, false);
    auto cached = run(core::Transport::Tcp, 0, true);
    auto churn_cached = run(core::Transport::Tcp, 50, true);
    auto churn_500 = run(core::Transport::Tcp, 500, true);
    auto udp = run(core::Transport::Udp, 0, false);

    std::printf("=== Profile claims (paper section 5) ===\n\n");
    report("TCP persistent, baseline", baseline);
    report("TCP persistent, fd cache", cached);
    report("TCP 50 ops/conn, fd cache", churn_cached);
    report("UDP", udp);

    // All claim checks read the unified metrics snapshot; the bespoke
    // Profiler::share() lookups live on only inside collectMetrics.
    auto m_base = workload::collectMetrics(baseline).snapshot();
    auto m_cached = workload::collectMetrics(cached).snapshot();
    auto m_churn = workload::collectMetrics(churn_cached).snapshot();
    auto m_500 = workload::collectMetrics(churn_500).snapshot();

    stats::Table table({"claim", "paper", "measured"});
    table.addRow({"IPC fd-request function share, baseline", "12.0%",
                  stats::Table::pct(
                      share(m_base, "ser:tcp_send_fd_request"), 1)});
    table.addRow({"IPC fd-request function share, fd cache", "4.6%",
                  stats::Table::pct(
                      share(m_cached, "ser:tcp_send_fd_request"), 1)});
    double scan_churn = 100.0 * share(m_churn, "ser:tcpconn_timeout");
    double scan_500 = 100.0 * share(m_500, "ser:tcpconn_timeout");
    table.addRow({"tcpconn_timeout growth, 50 vs 500 ops/conn",
                  "~3x",
                  stats::Table::num(
                      scan_500 > 0 ? scan_churn / scan_500 : 0, 1)
                      + "x"});
    table.addRow(
        {"scheduler+spin share, 50 ops/conn cache", "(top-10 kernel)",
         stats::Table::pct(share(m_churn, "kernel:schedule")
                               + share(m_churn, "user:spinlock"),
                           1)});
    table.addRow(
        {"kernel IPC share, baseline -> cache",
         "drops out of top 15",
         stats::Table::pct(share(m_base, "kernel:unix_ipc"), 1)
             + " -> "
             + stats::Table::pct(share(m_cached, "kernel:unix_ipc"),
                                 1)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}

/**
 * @file
 * Regenerates the paper's "where does the time go under TCP"
 * explanation from causal spans instead of the CPU profiler: every
 * message-handling span on the server decomposes its wall-clock time
 * into cpu / run-queue / lock / fd-passing IPC / socket waits, so the
 * per-category shares below are the span-level counterpart of the §5
 * OProfile observations:
 *
 *  - TCP baseline: a large fd-passing IPC share (workers blocked on
 *    the supervisor round trip) that UDP simply does not have.
 *  - TCP + fd cache: the IPC share collapses; what remains looks
 *    much more like the UDP breakdown.
 *
 * Run with SIPROX_BENCH_QUICK=1 for ~4x shorter windows, or
 * SIPROX_SWEEP_SMOKE=1 for a single-point CI smoke run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "sweep_common.hh"

namespace {

using namespace siprox;
using sim::trace::Wait;

struct Breakdown
{
    std::string name;
    double opsPerSec = 0;
    sim::trace::Recorder::WaitTotals server;
};

Breakdown
run(const char *name, core::Transport transport, int ops_per_conn,
    bool fd_cache)
{
    workload::Scenario sc =
        bench::sweepScenario(transport, bench::smokeMode() ? 20 : 100,
                             ops_per_conn);
    sc.proxy.fdCache = fd_cache;
    sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;

    // Aggregates are exact regardless of the event cap; keep the
    // timeline buffer small since this bench only reads totals.
    sim::trace::Recorder rec(sim::trace::Recorder::Options{1u << 16});
    sim::trace::setRecorder(&rec);
    workload::RunResult r = workload::runScenario(sc);
    sim::trace::setRecorder(nullptr);
    bench::logPoint(sc, r);

    Breakdown b;
    b.name = name;
    b.opsPerSec = r.opsPerSec;
    auto it = rec.machineTotals().find("server");
    if (it != rec.machineTotals().end())
        b.server = it->second;
    return b;
}

std::string
pct(const Breakdown &b, Wait w)
{
    if (b.server.total <= 0)
        return "-";
    return stats::Table::pct(static_cast<double>(b.server.at(w))
                                 / static_cast<double>(b.server.total),
                             1);
}

} // namespace

int
main()
{
    std::vector<Breakdown> rows;
    rows.push_back(run("TCP baseline", core::Transport::Tcp, 0, false));
    rows.push_back(run("TCP fd cache", core::Transport::Tcp, 0, true));
    if (!bench::smokeMode()) {
        rows.push_back(
            run("TCP 50 ops/conn", core::Transport::Tcp, 50, true));
        rows.push_back(run("UDP", core::Transport::Udp, 0, false));
    }

    std::printf("=== Server span breakdown: where the time goes ===\n");
    std::printf("(share of wall-clock time inside message-handling "
                "spans, per wait state)\n\n");
    stats::Table table({"workload", "ops/s", "spans", "cpu", "runq",
                        "lock", "ipc", "socket"});
    for (const auto &b : rows) {
        double lock =
            b.server.total > 0
                ? static_cast<double>(b.server.at(Wait::LockSpin)
                                      + b.server.at(Wait::LockBlock))
                      / static_cast<double>(b.server.total)
                : 0;
        table.addRow({b.name, stats::Table::num(b.opsPerSec, 0),
                      std::to_string(b.server.spans), pct(b, Wait::Cpu),
                      pct(b, Wait::RunQueue),
                      b.server.total > 0 ? stats::Table::pct(lock, 1)
                                         : "-",
                      pct(b, Wait::Ipc), pct(b, Wait::Socket)});
    }
    std::printf("%s\n", table.render().c_str());

    double ipc_base =
        rows[0].server.total > 0
            ? static_cast<double>(rows[0].server.at(Wait::Ipc))
            : 0;
    double ipc_cached =
        rows[1].server.total > 0
            ? static_cast<double>(rows[1].server.at(Wait::Ipc))
            : 0;
    std::printf("fd cache removes %.1f%% of the baseline's fd-passing "
                "IPC wait time\n",
                ipc_base > 0 ? 100.0 * (1.0 - ipc_cached / ipc_base)
                             : 0.0);
    return 0;
}

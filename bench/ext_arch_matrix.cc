/**
 * @file
 * Server-architecture matrix: the three architectures of the pluggable
 * layer (supervisor/worker §3.1, symmetric workers §3.2, event-driven
 * §5–§6) side by side over UDP, TCP, TLS, SCTP, and SST on the
 * fig-4/5 workload, persistent and connection-churn variants.
 *
 * Expected shape: event-driven TCP meets or beats the best
 * supervisor/worker configuration (fd cache + priority queue, fig 5)
 * because the fd-request IPC round trip and the supervisor process are
 * gone entirely — closing most of the remaining gap to UDP. On the
 * datagram transports the loops degenerate to symmetric receivers, so
 * event ≈ symmetric there (the architecture only has headroom to
 * reclaim where TCP's connection management put overhead in).
 *
 * The transport extensions probe the churn axis: TLS without session
 * resumption pays a full handshake per reconnect and lands strictly
 * below plain TCP churn; with resumption (and 0-RTT) most of that
 * cost disappears. SST's per-call streams make "reconnect every N
 * ops" structurally free — its churn cell tracks its persistent cell,
 * at or above TCP churn.
 *
 * Output: a table on stdout, and a JSON artifact (argv[1], default
 * BENCH_arch_matrix.json) for CI trend tracking.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fig_common.hh"

namespace {

using namespace siprox;

struct Case
{
    const char *name;
    core::Transport transport;
    core::ArchKind arch;
    bool fdCache;
    core::IdleStrategy idle;
    int opsPerConn;
    bool tlsNoResume = false;
};

struct Row
{
    const Case *c;
    workload::RunResult r;
};

} // namespace

int
main(int argc, char **argv)
{
    using core::ArchKind;
    using core::IdleStrategy;
    using core::Transport;

    const bool smoke = bench::smokeMode();
    const int clients = smoke ? 100 : 500;

    // clang-format off
    const Case all_cases[] = {
        {"UDP symmetric (par. 3.2)",     Transport::Udp,  ArchKind::SymmetricWorker,  false, IdleStrategy::LinearScan,     0},
        {"UDP event-driven",             Transport::Udp,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,     0},
        {"TCP supervisor baseline",      Transport::Tcp,  ArchKind::SupervisorWorker, false, IdleStrategy::LinearScan,    50},
        {"TCP supervisor, both fixes",   Transport::Tcp,  ArchKind::SupervisorWorker, true,  IdleStrategy::PriorityQueue, 50},
        {"TCP event-driven",             Transport::Tcp,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,    50},
        {"TCP supervisor baseline",      Transport::Tcp,  ArchKind::SupervisorWorker, false, IdleStrategy::LinearScan,     0},
        {"TCP supervisor, both fixes",   Transport::Tcp,  ArchKind::SupervisorWorker, true,  IdleStrategy::PriorityQueue,  0},
        {"TCP event-driven",             Transport::Tcp,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,     0},
        {"SCTP symmetric (par. 6)",      Transport::Sctp, ArchKind::SymmetricWorker,  false, IdleStrategy::LinearScan,     0},
        {"SCTP event-driven",            Transport::Sctp, ArchKind::EventDriven,      false, IdleStrategy::LinearScan,     0},
        {"TLS supervisor",               Transport::Tls,  ArchKind::SupervisorWorker, false, IdleStrategy::LinearScan,     0},
        {"TLS event-driven",             Transport::Tls,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,     0},
        {"TLS supervisor, resumption",   Transport::Tls,  ArchKind::SupervisorWorker, false, IdleStrategy::LinearScan,    50},
        {"TLS supervisor, no resume",    Transport::Tls,  ArchKind::SupervisorWorker, false, IdleStrategy::LinearScan,    50, true},
        {"TLS event-driven, resumption", Transport::Tls,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,    50},
        {"SST symmetric",                Transport::Sst,  ArchKind::SymmetricWorker,  false, IdleStrategy::LinearScan,     0},
        {"SST event-driven",             Transport::Sst,  ArchKind::EventDriven,      false, IdleStrategy::LinearScan,     0},
        {"SST symmetric, per-call",      Transport::Sst,  ArchKind::SymmetricWorker,  false, IdleStrategy::LinearScan,    50},
    };
    // clang-format on

    std::vector<Row> rows;
    double udp_ops = 0;
    for (const Case &c : all_cases) {
        // CI smoke proves every architecture x transport pairing runs
        // end to end (UDP, TCP, TLS, SST); SCTP and the
        // connection-churn duplicates add nothing to that and double
        // the runtime.
        if (smoke
            && (c.transport == Transport::Sctp || c.opsPerConn != 0)) {
            continue;
        }
        workload::Scenario sc =
            bench::sweepScenario(c.transport, clients, c.opsPerConn);
        if (smoke)
            sc.measureWindow /= 4;
        sc.proxy.arch = c.arch;
        sc.proxy.fdCache = c.fdCache;
        sc.proxy.idleStrategy = c.idle;
        if (c.tlsNoResume) {
            sc.net.tlsResumption = false;
            sc.name += "/noresume";
        }
        workload::RunResult r = workload::runScenario(sc);
        bench::logPoint(sc, r);
        if (c.transport == Transport::Udp && udp_ops == 0)
            udp_ops = r.opsPerSec;
        rows.push_back({&c, std::move(r)});
    }

    stats::Table table({"architecture", "workload", "ops/s", "% of UDP",
                        "loops", "fd IPC", "stolen"});
    for (const Row &row : rows) {
        table.addRow(
            {row.c->name,
             row.c->opsPerConn == 0
                 ? "persistent"
                 : std::to_string(row.c->opsPerConn) + " ops/conn",
             stats::Table::num(row.r.opsPerSec),
             stats::Table::pct(udp_ops > 0 ? row.r.opsPerSec / udp_ops
                                           : 0),
             std::to_string(row.r.archLoops),
             std::to_string(row.r.counters.fdRequests),
             std::to_string(row.r.counters.connsStolen)});
    }
    std::printf("=== Server-architecture matrix (%d clients) ===\n%s\n",
                clients, table.render().c_str());

    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_arch_matrix.json";
    std::FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n\"schema\": \"siprox-arch-matrix-v1\",\n");
    std::fprintf(f, "\"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "\"clients\": %d,\n\"cells\": {\n", clients);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::string key = std::string(core::archKindName(row.r.archKind))
            + "_" + core::transportName(row.c->transport) + "_"
            + (row.c->opsPerConn == 0
                   ? "persistent"
                   : std::to_string(row.c->opsPerConn) + "opc")
            + (row.c->fdCache ? "_fixes" : "")
            + (row.c->tlsNoResume ? "_noresume" : "");
        std::fprintf(f,
                     "  \"%s\": {\"ops_per_sec\": %.1f, \"loops\": %d, "
                     "\"fd_requests\": %llu, \"conns_stolen\": %llu, "
                     "\"tls_full\": %llu, \"tls_resumed\": %llu, "
                     "\"sst_streams\": %llu, "
                     "\"pct_of_udp\": %.3f}%s\n",
                     key.c_str(), row.r.opsPerSec, row.r.archLoops,
                     static_cast<unsigned long long>(
                         row.r.counters.fdRequests),
                     static_cast<unsigned long long>(
                         row.r.counters.connsStolen),
                     static_cast<unsigned long long>(
                         row.r.net.tlsHandshakesFull),
                     static_cast<unsigned long long>(
                         row.r.net.tlsHandshakesResumed),
                     static_cast<unsigned long long>(
                         row.r.net.sstStreams),
                     udp_ops > 0 ? row.r.opsPerSec / udp_ops : 0.0,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "}\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
    return 0;
}

#include "sweep_common.hh"

#include <cstdio>
#include <cstdlib>

namespace siprox::bench {

bool
quickMode()
{
    const char *env = std::getenv("SIPROX_BENCH_QUICK");
    return env && env[0] == '1';
}

bool
smokeMode()
{
    const char *env = std::getenv("SIPROX_SWEEP_SMOKE");
    return env && env[0] == '1';
}

sim::SimTime
windowFor(core::Transport transport, int ops_per_conn)
{
    double seconds;
    // Byte-stream transports (TCP, TLS) are slower per op, and churn
    // workloads slower still: give them proportionally longer windows
    // so every cell completes a comparable number of calls.
    if (!core::isStreamTransport(transport))
        seconds = 6;
    else if (ops_per_conn == 0)
        seconds = 8;
    else
        seconds = 15;
    if (quickMode())
        seconds /= 4;
    return sim::secs(seconds);
}

workload::Scenario
sweepScenario(core::Transport transport, int clients, int ops_per_conn)
{
    workload::Scenario sc =
        workload::paperScenario(transport, clients, ops_per_conn);
    sc.measureWindow = windowFor(transport, ops_per_conn);
    return sc;
}

void
logPoint(const workload::Scenario &sc, const workload::RunResult &r)
{
    std::fprintf(stderr, "  [%s] %.0f ops/s, %llu calls ok, %llu failed\n",
                 sc.name.c_str(), r.opsPerSec,
                 static_cast<unsigned long long>(r.callsCompleted),
                 static_cast<unsigned long long>(r.callsFailed));
}

} // namespace siprox::bench

/**
 * @file
 * Wall-clock perf-tracking harness for the proxy's hot paths.
 *
 * Unlike the figure benches (which report *simulated* throughput), this
 * binary measures the library's real cost on the host CPU: ns/op and
 * allocations/op for the SIP parse/serialize/forward micros and the
 * event queue, plus wall-clock seconds and events/sec for a fixed
 * fig3-style scenario. Results land in BENCH_hotpath.json so every PR's
 * numbers are comparable — see docs/performance.md.
 *
 * Allocations are counted by interposing global operator new/delete in
 * this binary only; the library itself is untouched.
 *
 * Modes:
 *   SIPROX_PERF_SMOKE=1          tiny iteration counts (CI smoke)
 *   SIPROX_PERF_METRICS_ONLY=1   emit the bare metrics object (for use
 *                                as a later run's baseline)
 *   SIPROX_PERF_BASELINE=<file>  embed that metrics object verbatim as
 *                                "baseline" in the output
 *   argv[1]                      output path (default BENCH_hotpath.json)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "sim/event_queue.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"
#include "sip/transaction.hh"
#include "workload/scenario.hh"

// --- counting allocator ----------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_allocBytes{0};
} // namespace

static void *
countedAlloc(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(n, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(n, std::memory_order_relaxed);
    void *p = std::aligned_alloc(static_cast<std::size_t>(a),
                                 (n + static_cast<std::size_t>(a) - 1)
                                     & ~(static_cast<std::size_t>(a) - 1));
    if (!p)
        throw std::bad_alloc();
    return p;
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return operator new(n, a);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace siprox;
using namespace siprox::sip;
using Clock = std::chrono::steady_clock;

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v && std::strcmp(v, "0") != 0;
}

/** One micro's measured numbers. */
struct Micro
{
    const char *name;
    std::uint64_t iters = 0;
    double nsPerOp = 0;
    double allocsPerOp = 0;
    double allocBytesPerOp = 0;
};

/**
 * Run @p body() @p iters times, charging time and allocations to the
 * returned record. A short warmup primes caches and lazy init.
 */
template <class F>
Micro
measure(const char *name, std::uint64_t iters, F &&body)
{
    for (std::uint64_t i = 0; i < iters / 20 + 1; ++i)
        body();
    std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    std::uint64_t b0 = g_allocBytes.load(std::memory_order_relaxed);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        body();
    auto t1 = Clock::now();
    std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    std::uint64_t b1 = g_allocBytes.load(std::memory_order_relaxed);
    Micro m;
    m.name = name;
    m.iters = iters;
    m.nsPerOp = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count())
        / static_cast<double>(iters);
    m.allocsPerOp =
        static_cast<double>(a1 - a0) / static_cast<double>(iters);
    m.allocBytesPerOp =
        static_cast<double>(b1 - b0) / static_cast<double>(iters);
    return m;
}

SipMessage
sampleInvite()
{
    RequestSpec spec;
    spec.method = Method::Invite;
    spec.requestUri = uriForAddr("bob", net::Addr{3, 5060});
    spec.from = uriForAddr("alice", net::Addr{1, 10000});
    spec.to = uriForAddr("bob", net::Addr{2, 10001});
    spec.fromTag = "tag-12345";
    spec.callId = "perf-call-id-123456@h1";
    spec.cseq = 42;
    spec.viaSentBy = uriForAddr("", net::Addr{1, 10000});
    spec.branch = "z9hG4bK-perf-branch";
    spec.contact = spec.from;
    return buildRequest(spec);
}

/** The per-forward mutation a proxy performs on a parsed request. */
std::string
forwardRewrite(SipMessage &&fwd)
{
    fwd.setMaxForwards(fwd.maxForwards().value_or(70) - 1);
    Via via;
    via.transport = "UDP";
    via.host = "h9";
    via.port = 5060;
    via.branch = "z9hG4bK-proxy-1";
    fwd.prependVia(via);
    return fwd.serialize();
}

/** Wall-clock numbers for one fixed scenario. */
struct SweepResult
{
    const char *name;
    double wallSecs = 0;
    std::uint64_t ops = 0;
    std::uint64_t events = 0;
    double allocsPerOp = 0;
};

SweepResult
runSweep(const char *name, core::Transport transport, int clients,
         int ops_per_conn, int calls_per_client, std::uint64_t seed,
         std::uint64_t cluster_aors = 0)
{
    workload::Scenario sc =
        workload::paperScenario(transport, clients, ops_per_conn);
    sc.callsPerClient = calls_per_client;
    sc.seed = seed;
    if (cluster_aors > 0) {
        // The cluster footprint rung: 4 instances behind the
        // dispatcher, each shard pre-seeded with population/4 AORs.
        // Wall time exercises the dispatcher relay + sharded lookup
        // path; peak RSS (gated by check_perf.py) catches a location
        // service that retains more per AOR than it should.
        sc.cluster.instances = 4;
        sc.cluster.policy = core::DispatchPolicy::HashAor;
        sc.cluster.aorPopulation = cluster_aors;
    }
    std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    auto t0 = Clock::now();
    workload::RunResult r = workload::runScenario(sc);
    auto t1 = Clock::now();
    std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    SweepResult out;
    out.name = name;
    out.wallSecs = std::chrono::duration<double>(t1 - t0).count();
    out.ops = r.ops;
    out.events = r.simEvents;
    if (r.ops) {
        out.allocsPerOp =
            static_cast<double>(a1 - a0) / static_cast<double>(r.ops);
    }
    return out;
}

long
peakRssKb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

void
writeMetrics(std::FILE *f, const std::vector<Micro> &micros,
             const std::vector<SweepResult> &sweeps)
{
    std::fprintf(f, "{\n  \"micros\": {\n");
    for (std::size_t i = 0; i < micros.size(); ++i) {
        const Micro &m = micros[i];
        std::fprintf(f,
                     "    \"%s\": {\"ns_per_op\": %.1f, "
                     "\"allocs_per_op\": %.2f, "
                     "\"alloc_bytes_per_op\": %.1f, \"iters\": %llu}%s\n",
                     m.name, m.nsPerOp, m.allocsPerOp, m.allocBytesPerOp,
                     static_cast<unsigned long long>(m.iters),
                     i + 1 < micros.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"sweeps\": {\n");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepResult &s = sweeps[i];
        std::fprintf(f,
                     "    \"%s\": {\"wall_secs\": %.3f, \"ops\": %llu, "
                     "\"events\": %llu, \"events_per_wall_sec\": %.0f, "
                     "\"allocs_per_op\": %.1f}%s\n",
                     s.name, s.wallSecs,
                     static_cast<unsigned long long>(s.ops),
                     static_cast<unsigned long long>(s.events),
                     s.wallSecs > 0
                         ? static_cast<double>(s.events) / s.wallSecs
                         : 0.0,
                     s.allocsPerOp, i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"peak_rss_kb\": %ld\n}", peakRssKb());
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = envFlag("SIPROX_PERF_SMOKE");
    const std::uint64_t k = smoke ? 2000 : 100000;

    std::string wire = sampleInvite().serialize();
    SipMessage built = sampleInvite();

    std::vector<Micro> micros;
    micros.push_back(measure("parse_invite", 2 * k, [&] {
        auto r = parseMessage(wire);
        if (!r.ok)
            std::abort();
    }));
    micros.push_back(measure("serialize_invite", 4 * k, [&] {
        std::string s = built.serialize();
        if (s.empty())
            std::abort();
    }));
    micros.push_back(measure("forward_rewrite", 2 * k, [&] {
        std::string s = forwardRewrite(SipMessage(built));
        if (s.empty())
            std::abort();
    }));
    // The acceptance-criteria micro: receive bytes, parse, rewrite as a
    // proxy would, re-serialize.
    micros.push_back(measure("parse_forward", 2 * k, [&] {
        auto r = parseMessage(wire);
        if (!r.ok)
            std::abort();
        std::string s = forwardRewrite(std::move(r.message));
        if (s.empty())
            std::abort();
    }));
    {
        std::string stream;
        for (int i = 0; i < 16; ++i)
            stream += wire;
        micros.push_back(measure("framer_512b_chunks", k / 4 + 1, [&] {
            StreamFramer framer;
            int messages = 0;
            for (std::size_t off = 0; off < stream.size(); off += 512) {
                framer.feed(std::string_view(stream).substr(off, 512));
                while (auto m = framer.next())
                    ++messages;
            }
            if (messages != 16)
                std::abort();
        }));
    }
    {
        // Schedule/run cycles with a 16-byte capture, like a timer.
        sim::EventQueue q;
        std::uint64_t fired = 0;
        sim::SimTime now = 0;
        sim::SimTime at = 0;
        micros.push_back(measure("event_schedule_run", 8 * k, [&] {
            std::uint64_t *p = &fired;
            q.schedule(++at, [p] { ++*p; });
            q.runNext(now);
        }));
        if (fired == 0)
            std::abort();
    }

    std::vector<SweepResult> sweeps;
    sweeps.push_back(runSweep("udp_100c", core::Transport::Udp, 100, 0,
                              smoke ? 5 : 40, 1));
    sweeps.push_back(runSweep("tcp_churn_50c", core::Transport::Tcp, 50,
                              50, smoke ? 5 : 30, 2));
    sweeps.push_back(runSweep("cluster_100k_aor_4i",
                              core::Transport::Udp, 100, 0,
                              smoke ? 5 : 20, 3,
                              smoke ? 10000 : 100000));

    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_hotpath.json";
    if (envFlag("SIPROX_PERF_METRICS_ONLY")) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::perror("fopen");
            return 1;
        }
        writeMetrics(f, micros, sweeps);
        std::fprintf(f, "\n");
        std::fclose(f);
    } else {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::perror("fopen");
            return 1;
        }
        std::fprintf(f, "{\n\"schema\": \"siprox-perf-v1\",\n");
        std::fprintf(f, "\"smoke\": %s,\n", smoke ? "true" : "false");
        if (const char *base = std::getenv("SIPROX_PERF_BASELINE");
            base && *base) {
            if (std::FILE *bf = std::fopen(base, "r")) {
                std::fprintf(f, "\"baseline\": ");
                char buf[4096];
                std::size_t n;
                while ((n = std::fread(buf, 1, sizeof buf, bf)) > 0)
                    std::fwrite(buf, 1, n, f);
                std::fclose(bf);
                // The baseline file ends in a newline; keep JSON tidy.
                std::fprintf(f, ",\n");
            }
        }
        std::fprintf(f, "\"current\": ");
        writeMetrics(f, micros, sweeps);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
    }

    // Console summary.
    for (const Micro &m : micros) {
        std::fprintf(stderr, "%-22s %9.1f ns/op  %6.2f allocs/op\n",
                     m.name, m.nsPerOp, m.allocsPerOp);
    }
    for (const SweepResult &s : sweeps) {
        std::fprintf(stderr,
                     "%-22s %8.3f wall-s  %8llu ops  %6.1f allocs/op\n",
                     s.name, s.wallSecs,
                     static_cast<unsigned long long>(s.ops),
                     s.allocsPerOp);
    }
    std::fprintf(stderr, "peak RSS %ld KB -> %s\n", peakRssKb(),
                 out_path);
    return 0;
}

/**
 * @file
 * Real-time (google-benchmark) microbenchmarks of the SIP stack the
 * simulated proxy runs on: parsing, serialization, stream framing, and
 * transaction-key hashing. These measure this library's actual code on
 * the host CPU — not simulated time — and back the cost-model's
 * relative ordering (parse > serialize > key ops).
 */

#include <benchmark/benchmark.h>

#include "sip/builders.hh"
#include "sip/parser.hh"
#include "sip/transaction.hh"

namespace {

using namespace siprox;
using namespace siprox::sip;

SipMessage
sampleInvite()
{
    RequestSpec spec;
    spec.method = Method::Invite;
    spec.requestUri = uriForAddr("bob", net::Addr{3, 5060});
    spec.from = uriForAddr("alice", net::Addr{1, 10000});
    spec.to = uriForAddr("bob", net::Addr{2, 10001});
    spec.fromTag = "tag-12345";
    spec.callId = "benchmark-call-id-123456@h1";
    spec.cseq = 42;
    spec.viaSentBy = uriForAddr("", net::Addr{1, 10000});
    spec.branch = "z9hG4bK-benchmark-branch";
    spec.contact = spec.from;
    return buildRequest(spec);
}

void
BM_ParseInvite(benchmark::State &state)
{
    std::string wire = sampleInvite().serialize();
    for (auto _ : state) {
        auto r = parseMessage(wire);
        benchmark::DoNotOptimize(r.message);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_ParseInvite);

void
BM_ParseResponse(benchmark::State &state)
{
    SipMessage invite = sampleInvite();
    std::string wire = buildResponse(invite, 200, "totag").serialize();
    for (auto _ : state) {
        auto r = parseMessage(wire);
        benchmark::DoNotOptimize(r.message);
    }
}
BENCHMARK(BM_ParseResponse);

void
BM_SerializeInvite(benchmark::State &state)
{
    SipMessage msg = sampleInvite();
    for (auto _ : state) {
        std::string wire = msg.serialize();
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(BM_SerializeInvite);

void
BM_BuildRequest(benchmark::State &state)
{
    for (auto _ : state) {
        SipMessage msg = sampleInvite();
        benchmark::DoNotOptimize(msg);
    }
}
BENCHMARK(BM_BuildRequest);

void
BM_ProxyForwardRewrite(benchmark::State &state)
{
    // The per-forward mutation a proxy performs: copy, decrement
    // Max-Forwards, push a Via, retarget, serialize.
    SipMessage msg = sampleInvite();
    for (auto _ : state) {
        SipMessage fwd = msg;
        fwd.setMaxForwards(fwd.maxForwards().value_or(70) - 1);
        Via via;
        via.transport = "UDP";
        via.host = "h9";
        via.port = 5060;
        via.branch = "z9hG4bK-proxy-1";
        fwd.prependHeader("Via", via.toString());
        std::string wire = fwd.serialize();
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(BM_ProxyForwardRewrite);

void
BM_FramerThroughput(benchmark::State &state)
{
    std::string wire = sampleInvite().serialize();
    std::string stream;
    for (int i = 0; i < 64; ++i)
        stream += wire;
    const std::size_t chunk = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        StreamFramer framer;
        int messages = 0;
        for (std::size_t off = 0; off < stream.size(); off += chunk) {
            framer.feed(
                std::string_view(stream).substr(off, chunk));
            while (auto m = framer.next())
                ++messages;
        }
        benchmark::DoNotOptimize(messages);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_FramerThroughput)->Arg(64)->Arg(512)->Arg(4096);

void
BM_TransactionKey(benchmark::State &state)
{
    SipMessage msg = sampleInvite();
    TransactionKeyHash hash;
    for (auto _ : state) {
        auto key = transactionKey(msg);
        benchmark::DoNotOptimize(hash(*key));
    }
}
BENCHMARK(BM_TransactionKey);

void
BM_UriParse(benchmark::State &state)
{
    for (auto _ : state) {
        auto uri =
            SipUri::parse("sip:alice@h17:10042;transport=tcp;lr");
        benchmark::DoNotOptimize(uri);
    }
}
BENCHMARK(BM_UriParse);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Regenerates Figure 3, "Baseline OpenSER Performance": stock
 * configuration — no fd cache, linear-scan idle management, supervisor
 * priority elevated (the paper elevates it in all experiments, §4.3).
 *
 * Paper claims reproduced here: OpenSER over TCP performs at 13-51% of
 * UDP; the non-persistent workloads are worst; throughput ordering is
 * 50 ops/conn < 500 ops/conn < persistent << UDP.
 */

#include "fig_common.hh"

int
main()
{
    using namespace siprox;
    // Bar values from Figure 3 (100 / 500 / 1000 clients).
    const double udp[3] = {33695, 33350, 28395};
    const double tcp50[3] = {4651, 6794, 5853};
    const double tcp500[3] = {9500, 12359, 7472};
    const double tcp_persistent[3] = {14635, 12630, 9791};

    auto grid = bench::paperGrid(udp, tcp50, tcp500, tcp_persistent);
    bench::runFigure(
        "Figure 3: baseline throughput (no fd cache, linear scan)",
        grid, [](workload::Scenario &sc) {
            sc.proxy.fdCache = false;
            sc.proxy.idleStrategy = core::IdleStrategy::LinearScan;
        });
    return 0;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/profile_claims.cc" "bench/CMakeFiles/profile_claims.dir/profile_claims.cc.o" "gcc" "bench/CMakeFiles/profile_claims.dir/profile_claims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/siprox_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/siprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/siprox_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/siprox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/siprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/siprox_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/siprox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/siprox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/profile_claims.dir/profile_claims.cc.o"
  "CMakeFiles/profile_claims.dir/profile_claims.cc.o.d"
  "profile_claims"
  "profile_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

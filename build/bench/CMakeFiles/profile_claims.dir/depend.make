# Empty dependencies file for profile_claims.
# This may be replaced when dependencies are built.

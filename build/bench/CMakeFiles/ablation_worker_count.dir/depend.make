# Empty dependencies file for ablation_worker_count.
# This may be replaced when dependencies are built.

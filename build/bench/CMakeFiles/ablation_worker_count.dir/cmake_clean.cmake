file(REMOVE_RECURSE
  "CMakeFiles/ablation_worker_count.dir/ablation_worker_count.cc.o"
  "CMakeFiles/ablation_worker_count.dir/ablation_worker_count.cc.o.d"
  "ablation_worker_count"
  "ablation_worker_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_worker_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_supervisor_priority.dir/ablation_supervisor_priority.cc.o"
  "CMakeFiles/ablation_supervisor_priority.dir/ablation_supervisor_priority.cc.o.d"
  "ablation_supervisor_priority"
  "ablation_supervisor_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_supervisor_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_supervisor_priority.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig5_prioqueue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_prioqueue.dir/fig5_prioqueue.cc.o"
  "CMakeFiles/fig5_prioqueue.dir/fig5_prioqueue.cc.o.d"
  "fig5_prioqueue"
  "fig5_prioqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_prioqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_sip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_sip.dir/micro_sip.cc.o"
  "CMakeFiles/micro_sip.dir/micro_sip.cc.o.d"
  "micro_sip"
  "micro_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

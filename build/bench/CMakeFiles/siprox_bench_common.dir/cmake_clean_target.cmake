file(REMOVE_RECURSE
  "libsiprox_bench_common.a"
)

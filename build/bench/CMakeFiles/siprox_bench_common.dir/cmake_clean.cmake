file(REMOVE_RECURSE
  "CMakeFiles/siprox_bench_common.dir/fig_common.cc.o"
  "CMakeFiles/siprox_bench_common.dir/fig_common.cc.o.d"
  "libsiprox_bench_common.a"
  "libsiprox_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

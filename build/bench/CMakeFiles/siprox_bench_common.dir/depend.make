# Empty dependencies file for siprox_bench_common.
# This may be replaced when dependencies are built.

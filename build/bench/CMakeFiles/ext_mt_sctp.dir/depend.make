# Empty dependencies file for ext_mt_sctp.
# This may be replaced when dependencies are built.

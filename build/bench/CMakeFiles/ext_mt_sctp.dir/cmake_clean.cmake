file(REMOVE_RECURSE
  "CMakeFiles/ext_mt_sctp.dir/ext_mt_sctp.cc.o"
  "CMakeFiles/ext_mt_sctp.dir/ext_mt_sctp.cc.o.d"
  "ext_mt_sctp"
  "ext_mt_sctp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mt_sctp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3_baseline.dir/fig3_baseline.cc.o"
  "CMakeFiles/fig3_baseline.dir/fig3_baseline.cc.o.d"
  "fig3_baseline"
  "fig3_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_auth_redirect.dir/ext_auth_redirect.cc.o"
  "CMakeFiles/ext_auth_redirect.dir/ext_auth_redirect.cc.o.d"
  "ext_auth_redirect"
  "ext_auth_redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_auth_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_auth_redirect.
# This may be replaced when dependencies are built.

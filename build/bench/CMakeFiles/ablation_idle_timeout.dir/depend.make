# Empty dependencies file for ablation_idle_timeout.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_idle_timeout.dir/ablation_idle_timeout.cc.o"
  "CMakeFiles/ablation_idle_timeout.dir/ablation_idle_timeout.cc.o.d"
  "ablation_idle_timeout"
  "ablation_idle_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

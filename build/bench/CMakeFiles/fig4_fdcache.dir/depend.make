# Empty dependencies file for fig4_fdcache.
# This may be replaced when dependencies are built.

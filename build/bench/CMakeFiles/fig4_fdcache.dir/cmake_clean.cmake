file(REMOVE_RECURSE
  "CMakeFiles/fig4_fdcache.dir/fig4_fdcache.cc.o"
  "CMakeFiles/fig4_fdcache.dir/fig4_fdcache.cc.o.d"
  "fig4_fdcache"
  "fig4_fdcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fdcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

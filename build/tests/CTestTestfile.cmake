# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_sim_sync[1]_include.cmake")
include("/root/repo/build/tests/test_sim_channel[1]_include.cmake")
include("/root/repo/build/tests/test_net_udp[1]_include.cmake")
include("/root/repo/build/tests/test_net_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_net_sctp[1]_include.cmake")
include("/root/repo/build/tests/test_sip_uri[1]_include.cmake")
include("/root/repo/build/tests/test_sip_message[1]_include.cmake")
include("/root/repo/build/tests/test_sip_parser[1]_include.cmake")
include("/root/repo/build/tests/test_proxy_integration[1]_include.cmake")
include("/root/repo/build/tests/test_core_tables[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_proxy_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim_dynprio[1]_include.cmake")
include("/root/repo/build/tests/test_auth_redirect[1]_include.cmake")
include("/root/repo/build/tests/test_sim_misc[1]_include.cmake")
include("/root/repo/build/tests/test_net_misc[1]_include.cmake")
include("/root/repo/build/tests/test_sip_misc[1]_include.cmake")
include("/root/repo/build/tests/test_proxy_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_outbound_connect[1]_include.cmake")

add_test([=[OutboundConnectTest.ProxyDialsUnconnectedContact]=]  /root/repo/build/tests/test_outbound_connect [==[--gtest_filter=OutboundConnectTest.ProxyDialsUnconnectedContact]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[OutboundConnectTest.ProxyDialsUnconnectedContact]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_outbound_connect_TESTS OutboundConnectTest.ProxyDialsUnconnectedContact)

file(REMOVE_RECURSE
  "CMakeFiles/test_sip_uri.dir/test_sip_uri.cc.o"
  "CMakeFiles/test_sip_uri.dir/test_sip_uri.cc.o.d"
  "test_sip_uri"
  "test_sip_uri.pdb"
  "test_sip_uri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_uri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

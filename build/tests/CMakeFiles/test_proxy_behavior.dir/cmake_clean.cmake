file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_behavior.dir/test_proxy_behavior.cc.o"
  "CMakeFiles/test_proxy_behavior.dir/test_proxy_behavior.cc.o.d"
  "test_proxy_behavior"
  "test_proxy_behavior.pdb"
  "test_proxy_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

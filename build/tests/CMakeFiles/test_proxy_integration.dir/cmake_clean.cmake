file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_integration.dir/test_proxy_integration.cc.o"
  "CMakeFiles/test_proxy_integration.dir/test_proxy_integration.cc.o.d"
  "test_proxy_integration"
  "test_proxy_integration.pdb"
  "test_proxy_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

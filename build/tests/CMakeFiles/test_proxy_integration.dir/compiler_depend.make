# Empty compiler generated dependencies file for test_proxy_integration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_outbound_connect.dir/test_outbound_connect.cc.o"
  "CMakeFiles/test_outbound_connect.dir/test_outbound_connect.cc.o.d"
  "test_outbound_connect"
  "test_outbound_connect.pdb"
  "test_outbound_connect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outbound_connect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

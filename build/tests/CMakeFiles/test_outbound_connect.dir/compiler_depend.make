# Empty compiler generated dependencies file for test_outbound_connect.
# This may be replaced when dependencies are built.

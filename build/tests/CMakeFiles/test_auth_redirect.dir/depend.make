# Empty dependencies file for test_auth_redirect.
# This may be replaced when dependencies are built.

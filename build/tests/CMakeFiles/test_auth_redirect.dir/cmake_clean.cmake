file(REMOVE_RECURSE
  "CMakeFiles/test_auth_redirect.dir/test_auth_redirect.cc.o"
  "CMakeFiles/test_auth_redirect.dir/test_auth_redirect.cc.o.d"
  "test_auth_redirect"
  "test_auth_redirect.pdb"
  "test_auth_redirect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auth_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_net_sctp.dir/test_net_sctp.cc.o"
  "CMakeFiles/test_net_sctp.dir/test_net_sctp.cc.o.d"
  "test_net_sctp"
  "test_net_sctp.pdb"
  "test_net_sctp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_sctp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

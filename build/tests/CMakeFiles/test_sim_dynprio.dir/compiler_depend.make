# Empty compiler generated dependencies file for test_sim_dynprio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dynprio.dir/test_sim_dynprio.cc.o"
  "CMakeFiles/test_sim_dynprio.dir/test_sim_dynprio.cc.o.d"
  "test_sim_dynprio"
  "test_sim_dynprio.pdb"
  "test_sim_dynprio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dynprio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

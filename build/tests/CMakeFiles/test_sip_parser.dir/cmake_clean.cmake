file(REMOVE_RECURSE
  "CMakeFiles/test_sip_parser.dir/test_sip_parser.cc.o"
  "CMakeFiles/test_sip_parser.dir/test_sip_parser.cc.o.d"
  "test_sip_parser"
  "test_sip_parser.pdb"
  "test_sip_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sip_parser.
# This may be replaced when dependencies are built.

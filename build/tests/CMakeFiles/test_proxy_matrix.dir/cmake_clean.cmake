file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_matrix.dir/test_proxy_matrix.cc.o"
  "CMakeFiles/test_proxy_matrix.dir/test_proxy_matrix.cc.o.d"
  "test_proxy_matrix"
  "test_proxy_matrix.pdb"
  "test_proxy_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

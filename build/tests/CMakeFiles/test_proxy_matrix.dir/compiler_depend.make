# Empty compiler generated dependencies file for test_proxy_matrix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_net_udp.dir/test_net_udp.cc.o"
  "CMakeFiles/test_net_udp.dir/test_net_udp.cc.o.d"
  "test_net_udp"
  "test_net_udp.pdb"
  "test_net_udp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

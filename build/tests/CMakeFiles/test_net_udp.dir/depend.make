# Empty dependencies file for test_net_udp.
# This may be replaced when dependencies are built.

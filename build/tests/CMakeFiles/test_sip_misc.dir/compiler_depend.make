# Empty compiler generated dependencies file for test_sip_misc.
# This may be replaced when dependencies are built.

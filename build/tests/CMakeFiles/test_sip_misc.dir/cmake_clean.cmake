file(REMOVE_RECURSE
  "CMakeFiles/test_sip_misc.dir/test_sip_misc.cc.o"
  "CMakeFiles/test_sip_misc.dir/test_sip_misc.cc.o.d"
  "test_sip_misc"
  "test_sip_misc.pdb"
  "test_sip_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

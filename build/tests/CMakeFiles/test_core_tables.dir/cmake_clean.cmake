file(REMOVE_RECURSE
  "CMakeFiles/test_core_tables.dir/test_core_tables.cc.o"
  "CMakeFiles/test_core_tables.dir/test_core_tables.cc.o.d"
  "test_core_tables"
  "test_core_tables.pdb"
  "test_core_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_net_misc.dir/test_net_misc.cc.o"
  "CMakeFiles/test_net_misc.dir/test_net_misc.cc.o.d"
  "test_net_misc"
  "test_net_misc.pdb"
  "test_net_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

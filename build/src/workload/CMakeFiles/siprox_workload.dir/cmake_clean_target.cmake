file(REMOVE_RECURSE
  "libsiprox_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/siprox_workload.dir/runner.cc.o"
  "CMakeFiles/siprox_workload.dir/runner.cc.o.d"
  "libsiprox_workload.a"
  "libsiprox_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for siprox_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsiprox_net.a"
)

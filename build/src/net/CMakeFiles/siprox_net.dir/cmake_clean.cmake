file(REMOVE_RECURSE
  "CMakeFiles/siprox_net.dir/network.cc.o"
  "CMakeFiles/siprox_net.dir/network.cc.o.d"
  "CMakeFiles/siprox_net.dir/sctp.cc.o"
  "CMakeFiles/siprox_net.dir/sctp.cc.o.d"
  "CMakeFiles/siprox_net.dir/tcp.cc.o"
  "CMakeFiles/siprox_net.dir/tcp.cc.o.d"
  "CMakeFiles/siprox_net.dir/udp.cc.o"
  "CMakeFiles/siprox_net.dir/udp.cc.o.d"
  "libsiprox_net.a"
  "libsiprox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for siprox_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsiprox_stats.a"
)

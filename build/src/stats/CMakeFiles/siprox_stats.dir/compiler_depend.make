# Empty compiler generated dependencies file for siprox_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/siprox_stats.dir/histogram.cc.o"
  "CMakeFiles/siprox_stats.dir/histogram.cc.o.d"
  "CMakeFiles/siprox_stats.dir/table.cc.o"
  "CMakeFiles/siprox_stats.dir/table.cc.o.d"
  "libsiprox_stats.a"
  "libsiprox_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

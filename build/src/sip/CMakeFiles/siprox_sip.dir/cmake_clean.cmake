file(REMOVE_RECURSE
  "CMakeFiles/siprox_sip.dir/builders.cc.o"
  "CMakeFiles/siprox_sip.dir/builders.cc.o.d"
  "CMakeFiles/siprox_sip.dir/message.cc.o"
  "CMakeFiles/siprox_sip.dir/message.cc.o.d"
  "CMakeFiles/siprox_sip.dir/parser.cc.o"
  "CMakeFiles/siprox_sip.dir/parser.cc.o.d"
  "CMakeFiles/siprox_sip.dir/transaction.cc.o"
  "CMakeFiles/siprox_sip.dir/transaction.cc.o.d"
  "CMakeFiles/siprox_sip.dir/uri.cc.o"
  "CMakeFiles/siprox_sip.dir/uri.cc.o.d"
  "libsiprox_sip.a"
  "libsiprox_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

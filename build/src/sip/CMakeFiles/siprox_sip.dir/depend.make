# Empty dependencies file for siprox_sip.
# This may be replaced when dependencies are built.

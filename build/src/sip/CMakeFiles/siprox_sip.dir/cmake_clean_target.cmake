file(REMOVE_RECURSE
  "libsiprox_sip.a"
)

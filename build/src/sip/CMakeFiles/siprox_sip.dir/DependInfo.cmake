
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/builders.cc" "src/sip/CMakeFiles/siprox_sip.dir/builders.cc.o" "gcc" "src/sip/CMakeFiles/siprox_sip.dir/builders.cc.o.d"
  "/root/repo/src/sip/message.cc" "src/sip/CMakeFiles/siprox_sip.dir/message.cc.o" "gcc" "src/sip/CMakeFiles/siprox_sip.dir/message.cc.o.d"
  "/root/repo/src/sip/parser.cc" "src/sip/CMakeFiles/siprox_sip.dir/parser.cc.o" "gcc" "src/sip/CMakeFiles/siprox_sip.dir/parser.cc.o.d"
  "/root/repo/src/sip/transaction.cc" "src/sip/CMakeFiles/siprox_sip.dir/transaction.cc.o" "gcc" "src/sip/CMakeFiles/siprox_sip.dir/transaction.cc.o.d"
  "/root/repo/src/sip/uri.cc" "src/sip/CMakeFiles/siprox_sip.dir/uri.cc.o" "gcc" "src/sip/CMakeFiles/siprox_sip.dir/uri.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/siprox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

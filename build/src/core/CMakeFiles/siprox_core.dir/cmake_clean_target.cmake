file(REMOVE_RECURSE
  "libsiprox_core.a"
)

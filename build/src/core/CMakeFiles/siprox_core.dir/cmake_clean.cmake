file(REMOVE_RECURSE
  "CMakeFiles/siprox_core.dir/engine.cc.o"
  "CMakeFiles/siprox_core.dir/engine.cc.o.d"
  "CMakeFiles/siprox_core.dir/proxy.cc.o"
  "CMakeFiles/siprox_core.dir/proxy.cc.o.d"
  "CMakeFiles/siprox_core.dir/tcp_arch.cc.o"
  "CMakeFiles/siprox_core.dir/tcp_arch.cc.o.d"
  "CMakeFiles/siprox_core.dir/txn_table.cc.o"
  "CMakeFiles/siprox_core.dir/txn_table.cc.o.d"
  "CMakeFiles/siprox_core.dir/udp_arch.cc.o"
  "CMakeFiles/siprox_core.dir/udp_arch.cc.o.d"
  "libsiprox_core.a"
  "libsiprox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/siprox_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/siprox_core.dir/engine.cc.o.d"
  "/root/repo/src/core/proxy.cc" "src/core/CMakeFiles/siprox_core.dir/proxy.cc.o" "gcc" "src/core/CMakeFiles/siprox_core.dir/proxy.cc.o.d"
  "/root/repo/src/core/tcp_arch.cc" "src/core/CMakeFiles/siprox_core.dir/tcp_arch.cc.o" "gcc" "src/core/CMakeFiles/siprox_core.dir/tcp_arch.cc.o.d"
  "/root/repo/src/core/txn_table.cc" "src/core/CMakeFiles/siprox_core.dir/txn_table.cc.o" "gcc" "src/core/CMakeFiles/siprox_core.dir/txn_table.cc.o.d"
  "/root/repo/src/core/udp_arch.cc" "src/core/CMakeFiles/siprox_core.dir/udp_arch.cc.o" "gcc" "src/core/CMakeFiles/siprox_core.dir/udp_arch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/siprox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/siprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/siprox_sip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for siprox_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsiprox_phone.a"
)

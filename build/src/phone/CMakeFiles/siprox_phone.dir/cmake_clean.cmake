file(REMOVE_RECURSE
  "CMakeFiles/siprox_phone.dir/phone.cc.o"
  "CMakeFiles/siprox_phone.dir/phone.cc.o.d"
  "libsiprox_phone.a"
  "libsiprox_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

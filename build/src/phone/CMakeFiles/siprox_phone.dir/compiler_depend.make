# Empty compiler generated dependencies file for siprox_phone.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsiprox_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/siprox_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/pollable.cc" "src/sim/CMakeFiles/siprox_sim.dir/pollable.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/pollable.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/sim/CMakeFiles/siprox_sim.dir/process.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/process.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/siprox_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/profiler.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/siprox_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/sim/CMakeFiles/siprox_sim.dir/simulation.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/simulation.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/sim/CMakeFiles/siprox_sim.dir/sync.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/sync.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/siprox_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/siprox_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

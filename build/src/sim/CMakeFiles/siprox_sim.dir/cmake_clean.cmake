file(REMOVE_RECURSE
  "CMakeFiles/siprox_sim.dir/machine.cc.o"
  "CMakeFiles/siprox_sim.dir/machine.cc.o.d"
  "CMakeFiles/siprox_sim.dir/pollable.cc.o"
  "CMakeFiles/siprox_sim.dir/pollable.cc.o.d"
  "CMakeFiles/siprox_sim.dir/process.cc.o"
  "CMakeFiles/siprox_sim.dir/process.cc.o.d"
  "CMakeFiles/siprox_sim.dir/profiler.cc.o"
  "CMakeFiles/siprox_sim.dir/profiler.cc.o.d"
  "CMakeFiles/siprox_sim.dir/scheduler.cc.o"
  "CMakeFiles/siprox_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/siprox_sim.dir/simulation.cc.o"
  "CMakeFiles/siprox_sim.dir/simulation.cc.o.d"
  "CMakeFiles/siprox_sim.dir/sync.cc.o"
  "CMakeFiles/siprox_sim.dir/sync.cc.o.d"
  "CMakeFiles/siprox_sim.dir/trace.cc.o"
  "CMakeFiles/siprox_sim.dir/trace.cc.o.d"
  "libsiprox_sim.a"
  "libsiprox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siprox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

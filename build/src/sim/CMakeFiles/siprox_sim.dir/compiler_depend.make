# Empty compiler generated dependencies file for siprox_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/transport_faceoff.dir/transport_faceoff.cpp.o"
  "CMakeFiles/transport_faceoff.dir/transport_faceoff.cpp.o.d"
  "transport_faceoff"
  "transport_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

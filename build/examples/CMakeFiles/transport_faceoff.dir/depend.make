# Empty dependencies file for transport_faceoff.
# This may be replaced when dependencies are built.

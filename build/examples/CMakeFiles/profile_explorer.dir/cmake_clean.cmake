file(REMOVE_RECURSE
  "CMakeFiles/profile_explorer.dir/profile_explorer.cpp.o"
  "CMakeFiles/profile_explorer.dir/profile_explorer.cpp.o.d"
  "profile_explorer"
  "profile_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for profile_explorer.
# This may be replaced when dependencies are built.

# Empty dependencies file for sip_trace.
# This may be replaced when dependencies are built.

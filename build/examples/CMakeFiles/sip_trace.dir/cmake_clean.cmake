file(REMOVE_RECURSE
  "CMakeFiles/sip_trace.dir/sip_trace.cpp.o"
  "CMakeFiles/sip_trace.dir/sip_trace.cpp.o.d"
  "sip_trace"
  "sip_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

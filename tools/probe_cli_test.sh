#!/bin/sh
# Exit-code and --help coverage for probe's cluster flags: invalid
# combinations must exit 2 with the named reason on stderr, valid runs
# exit 0, and --help documents every flag. Registered as a ctest by
# tools/CMakeLists.txt; $1 is the probe binary.
set -u
PROBE="$1"
rc=0
fail() {
    echo "FAIL: $*"
    rc=1
}

# --help exits 0 and documents the cluster flags.
help_out=$("$PROBE" --help) || fail "--help exited nonzero"
for flag in '--cluster=N' '--dispatch=POLICY' '--aors=N' \
    '--repl-lag-ms=N' '--stale'; do
    case "$help_out" in
    *"$flag"*) ;;
    *) fail "--help does not document $flag" ;;
    esac
done

# expect_usage <description> <expected-stderr-fragment> <args...>
expect_usage() {
    desc="$1"
    want="$2"
    shift 2
    err=$("$PROBE" "$@" 2>&1 >/dev/null)
    code=$?
    [ "$code" -eq 2 ] || fail "$desc: exit $code, expected 2"
    case "$err" in
    *"$want"*) ;;
    *) fail "$desc: stderr lacks '$want': $err" ;;
    esac
}

expect_usage "dispatch without cluster" "require --cluster" \
    --dispatch=rr udp
expect_usage "aors without cluster" "require --cluster" --aors=100 udp
expect_usage "stale without cluster" "require --cluster" --stale udp
expect_usage "cluster over TLS" "does not terminate TLS" \
    --cluster=2 tls
expect_usage "cluster over SCTP" "" --cluster=2 sctp
expect_usage "cluster out of range" "out of range" --cluster=99 udp
expect_usage "unknown dispatch policy" "unknown dispatch policy" \
    --cluster=2 --dispatch=bogus udp

# A valid clustered run exits 0 and reports the cluster counters.
run_out=$("$PROBE" --cluster=2 --dispatch=hash-aor --aors=1000 \
    --window=0.5 udp 20) || fail "valid cluster run exited nonzero"
case "$run_out" in
*"cluster: instances=2"*) ;;
*) fail "cluster run did not print the cluster counter line" ;;
esac

[ "$rc" -eq 0 ] && echo "probe cluster CLI coverage: all checks passed"
exit "$rc"

#!/usr/bin/env python3
"""Validate the observability artifacts probe exports.

Usage: check_trace.py [--timeseries=FILE] [TRACE_JSON [METRICS_JSON]]

Checks that TRACE_JSON is a well-formed Chrome trace-event document
with the track layout the recorder promises (machine processes, core /
process / lock threads, span slices whose per-category wait breakdown
sums to the slice duration, matched async call begin/end pairs), and
that METRICS_JSON is a well-formed metrics snapshot with the unified
counter namespaces. Exits nonzero with a message on the first
violation — the CI gate for the exported artifacts.

--timeseries=FILE additionally (or instead) validates a windowed
telemetry export (probe --timeseries-out): window starts strictly
increasing and contiguous within each series, counter deltas
non-negative integers, and the sum of per-window deltas equal to the
series' end-of-run totals for every counter — the invariant that makes
the windows trustworthy as a decomposition of the final counters.
"""

import json
import sys
from collections import Counter


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    pids = {}          # pid -> process_name
    phases = Counter()
    cats = Counter()
    async_open = Counter()  # (pid, id, name) -> depth
    spans_checked = 0

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None:
            fail(f"event {i}: missing ph")
        phases[ph] += 1

        if ph == "M":
            if e.get("name") == "process_name":
                pids[e["pid"]] = e["args"]["name"]
            continue

        for key in ("ts", "pid", "tid"):
            if key not in e:
                fail(f"event {i}: missing {key}")
        if ph == "X" and "dur" not in e:
            fail(f"event {i}: complete event missing dur")
        cats[e.get("cat", "-")] += 1

        if ph == "X" and e.get("cat") == "span":
            args = e.get("args", {})
            if "callId" not in args:
                fail(f"event {i}: span without callId")
            wait_us = sum(v for k, v in args.items()
                          if k.endswith("_us"))
            # The recorder guarantees the decomposition sums to the
            # span duration exactly in ns; after the fixed 3-decimal
            # µs rendering, the parts can each lose < 1ns.
            if abs(wait_us - e["dur"]) > 0.001 * max(1, len(args)):
                fail(f"event {i}: span wait breakdown {wait_us}us "
                     f"!= dur {e['dur']}us")
            spans_checked += 1

        if ph in ("b", "e"):
            key = (e["pid"], e.get("id"), e.get("name"))
            async_open[key] += 1 if ph == "b" else -1
            if async_open[key] < 0:
                fail(f"event {i}: async end without begin: {key}")

    unbalanced = {k: v for k, v in async_open.items() if v != 0}
    if unbalanced:
        fail(f"{len(unbalanced)} unbalanced async call tracks")

    if "calls" not in pids.values():
        fail("missing the synthetic 'calls' process")
    if len(pids) < 2:
        fail("expected at least one machine process besides 'calls'")
    for cat in ("sched", "span"):
        if cats[cat] == 0:
            fail(f"no '{cat}' events recorded")
    if phases["b"] == 0 or phases["b"] != phases["e"]:
        fail("async call begin/end events missing or unbalanced")
    if spans_checked == 0:
        fail("no span slices to check")

    print(f"check_trace: trace ok: {len(events)} events, "
          f"{len(pids)} processes, {spans_checked} spans checked, "
          f"{phases['b']} async calls")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)

    for section in ("counters", "gauges"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"metrics: missing {section} object")
    counters = doc["counters"]
    for ns in ("proxy.", "phone.", "net.", "faults."):
        if not any(k.startswith(ns) for k in counters):
            fail(f"metrics: no counters in namespace {ns}*")
    for name, v in counters.items():
        if not isinstance(v, int) or v < 0:
            fail(f"metrics: counter {name} is not a non-negative "
                 f"integer")
    if list(counters) != sorted(counters):
        fail("metrics: counters are not sorted")
    print(f"check_trace: metrics ok: {len(counters)} counters, "
          f"{len(doc['gauges'])} gauges")


def check_timeseries(path):
    with open(path) as f:
        doc = json.load(f)

    meta = doc.get("meta")
    if not isinstance(meta, dict) or meta.get("windowNs", 0) <= 0:
        fail("timeseries: meta.windowNs must be a positive integer")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail("timeseries: series must be a non-empty array")

    machines = []
    bounds = {}        # machine -> [(startNs, endNs), ...]
    windows_checked = 0
    counters_checked = 0
    for s in series:
        name = s.get("machine", "?")
        machines.append(name)
        totals = s.get("totals")
        windows = s.get("windows")
        if not isinstance(totals, dict) or not isinstance(windows,
                                                          list):
            fail(f"timeseries: series {name}: missing totals/windows")

        sums = {}
        prev_end = None
        prev_start = None
        for i, w in enumerate(windows):
            start, end = w.get("startNs"), w.get("endNs")
            if not isinstance(start, int) or not isinstance(end, int):
                fail(f"timeseries: {name} window {i}: non-integer "
                     f"bounds")
            if end < start:
                fail(f"timeseries: {name} window {i}: endNs {end} < "
                     f"startNs {start}")
            if prev_start is not None and start <= prev_start:
                fail(f"timeseries: {name} window {i}: startNs {start} "
                     f"not after previous start {prev_start}")
            if prev_end is not None and start != prev_end:
                fail(f"timeseries: {name} window {i}: gap — startNs "
                     f"{start} != previous endNs {prev_end}")
            prev_start, prev_end = start, end
            bounds.setdefault(name, []).append((start, end))
            for metric, v in w.get("counters", {}).items():
                if not isinstance(v, int) or v < 0:
                    fail(f"timeseries: {name} window {i}: counter "
                         f"{metric} delta {v!r} is not a non-negative "
                         f"integer")
                sums[metric] = sums.get(metric, 0) + v
            windows_checked += 1

        for metric, total in sorted(totals.items()):
            if sums.get(metric, 0) != total:
                fail(f"timeseries: {name}: sum of window deltas for "
                     f"{metric} is {sums.get(metric, 0)}, end-of-run "
                     f"total is {total}")
            counters_checked += 1
        stray = sorted(set(sums) - set(totals))
        if stray:
            fail(f"timeseries: {name}: window counters missing from "
                 f"totals: {stray}")

    # Per-instance labels must be unambiguous: the explain report and
    # the cluster bench both key on the machine label, so a duplicate
    # silently merges two instances' telemetry.
    dupes = sorted(m for m, n in Counter(machines).items() if n > 1)
    if dupes:
        fail(f"timeseries: duplicate machine labels: {dupes}")

    # Cluster runs (a series with arch "dispatcher") must carry one
    # series per proxy instance — contiguously numbered proxy0..N-1 —
    # and every instance must be present in every window: identical
    # window boundaries across instances, so a per-instance comparison
    # at any window index compares the same simulated interval.
    if any(s.get("arch") == "dispatcher" for s in series):
        import re
        inst = {}
        for s in series:
            m = re.fullmatch(r"proxy(\d+)", s.get("machine", ""))
            if m:
                inst[int(m.group(1))] = s.get("machine")
        if not inst:
            fail("timeseries: dispatcher series without any "
                 "proxy<i> instance series")
        expect = set(range(len(inst)))
        if set(inst) != expect:
            fail(f"timeseries: instance labels not contiguous: "
                 f"have {sorted(inst)}, expected {sorted(expect)}")
        ref_name = inst[0]
        ref_bounds = bounds.get(ref_name, [])
        for i in sorted(inst):
            got = bounds.get(inst[i], [])
            if got != ref_bounds:
                fail(f"timeseries: instance {inst[i]} windows differ "
                     f"from {ref_name}: {len(got)} vs "
                     f"{len(ref_bounds)} — every instance must be "
                     f"present in every window")
        print(f"check_trace: cluster labels ok: {len(inst)} "
              f"instances x {len(ref_bounds)} aligned windows")

    print(f"check_trace: timeseries ok: {len(series)} series "
          f"({len(set(machines))} machines), {windows_checked} "
          f"windows, {counters_checked} counters reconciled with "
          f"totals")


def main():
    args = sys.argv[1:]
    ts_path = None
    positional = []
    for a in args:
        if a.startswith("--timeseries="):
            ts_path = a.split("=", 1)[1]
        else:
            positional.append(a)
    if (ts_path is None and not positional) or len(positional) > 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if positional:
        check_trace(positional[0])
    if len(positional) == 2:
        check_metrics(positional[1])
    if ts_path is not None:
        check_timeseries(ts_path)


if __name__ == "__main__":
    main()

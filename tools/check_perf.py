#!/usr/bin/env python3
"""Gate CI on hot-path perf regressions.

Usage: check_perf.py CHECKED_IN.json FRESH.json

Compares the micro-benchmarks of a fresh perf_harness run (its
"current" section) against the checked-in BENCH_hotpath.json. The
reference for each metric is max(baseline, current) from the
checked-in file: "baseline" pins the pre-rework numbers, "current"
the last recorded state, and a micro is allowed to sit wherever the
slower of the two puts it, plus headroom.

Fails (exit 1) when a micro regresses by more than REGRESSION_SLACK
(10%) over its reference:
  - ns_per_op: wall-clock per operation (noisy on shared runners, so
    the 10% rides on top of the slower of the two recorded numbers)
  - allocs_per_op: allocation count (deterministic, counted by the
    harness's interposed operator new; an extra +0.5 absolute slack
    absorbs amortized-growth rounding)

Also gates peak RSS: the harness records getrusage peak_rss_kb per
section, and the fresh run's footprint may not exceed the slower of
the checked-in baseline/current values by more than RSS_SLACK (10%).
Memory regressions rarely show in ns_per_op — a leaked or oversized
retained pool costs wall time only at the 100k-phone scale, so the
footprint needs its own gate.

Micros present in only one file are reported but never fail the run,
so adding a new benchmark does not require regenerating the baseline
in the same commit. Smoke-mode fresh runs (SIPROX_PERF_SMOKE=1) are
skipped: their iteration counts are too small to gate on.

Every run prints the full delta table — metric, reference, fresh
value, % change, verdict — not just the failures, so a CI log answers
"how close are we to the budget" without rerunning anything.
"""

import json
import sys

REGRESSION_SLACK = 0.10
ALLOC_ABS_SLACK = 0.5
RSS_SLACK = 0.10


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def micros(doc, section):
    return doc.get(section, {}).get("micros", {})


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    checked = load(sys.argv[1])
    fresh = load(sys.argv[2])

    if fresh.get("smoke"):
        print("check_perf: fresh run is smoke mode; nothing to gate")
        return

    ref_base = micros(checked, "baseline")
    ref_cur = micros(checked, "current")
    measured = micros(fresh, "current")

    print(f"  {'metric':38s} {'reference':>10s} {'fresh':>10s} "
          f"{'delta':>8s} {'allowed':>10s}  verdict")
    failures = []

    def row(metric, ref, got, allowed):
        verdict = "ok" if got <= allowed else "REGRESSION"
        delta = (got - ref) / ref if ref > 0.0 else 0.0
        print(f"  {metric:38s} {ref:10.1f} {got:10.1f} "
              f"{delta:+8.1%} {allowed:10.1f}  {verdict}")
        if verdict == "REGRESSION":
            failures.append(
                f"{metric}: {got:.1f} > allowed {allowed:.1f} "
                f"(ref {ref:.1f} {delta:+.1%})")

    for name, m in sorted(measured.items()):
        refs = [r[name] for r in (ref_base, ref_cur) if name in r]
        if not refs:
            print(f"  {name:38s} new micro, no reference — skipped")
            continue
        for key, abs_slack in (("ns_per_op", 0.0),
                               ("allocs_per_op", ALLOC_ABS_SLACK)):
            got = m.get(key)
            ref = max((r.get(key, 0.0) for r in refs), default=0.0)
            if got is None or ref <= 0.0:
                continue
            row(f"{name}.{key}", ref, got,
                ref * (1.0 + REGRESSION_SLACK) + abs_slack)

    got_rss = fresh.get("current", {}).get("peak_rss_kb")
    ref_rss = max(
        (checked.get(s, {}).get("peak_rss_kb", 0)
         for s in ("baseline", "current")),
        default=0)
    if got_rss is not None and ref_rss > 0:
        row("peak_rss_kb", float(ref_rss), float(got_rss),
            ref_rss * (1.0 + RSS_SLACK))

    if failures:
        print(f"\ncheck_perf: {len(failures)} regression(s) over "
              f"{REGRESSION_SLACK:.0%} budget:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)
    print("check_perf: all micros within budget")


if __name__ == "__main__":
    main()

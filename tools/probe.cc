/**
 * @file
 * Command-line probe: run one paper scenario and print its headline
 * numbers, optionally exporting the full observability artifacts — a
 * Perfetto-loadable timeline (--trace-out) and a metrics snapshot
 * (--metrics-json).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "stats/explain.hh"
#include "workload/scenario.hh"

using namespace siprox;
using namespace siprox::workload;

namespace {

constexpr const char *kUsage =
    "usage: probe [options] [transport] [clients] [opsPerConn]\n"
    "             [fdcache] [prioqueue] [supervisorNice]\n"
    "\n"
    "Run one paper scenario and print its headline numbers.\n"
    "\n"
    "positional arguments:\n"
    "  transport        udp | tcp | tls | sctp | sst (default udp)\n"
    "  clients          concurrent call pairs, >0 (default 100)\n"
    "  opsPerConn       TCP/TLS reconnect period, >=0 (default 0:\n"
    "                   persistent connections)\n"
    "  fdcache          0 | 1: supervisor fd cache (default 0)\n"
    "  prioqueue        0 | 1: priority-queue idle scan (default 0)\n"
    "  supervisorNice   -20..19                   (default -20)\n"
    "\n"
    "options:\n"
    "  --arch=KIND          server architecture: auto | supervisor |\n"
    "                       symmetric | event (default auto: the\n"
    "                       transport-implied OpenSER architecture).\n"
    "                       supervisor requires tcp/tls; symmetric\n"
    "                       requires udp/sctp/sst; event serves all\n"
    "  --window=SECS        time-based measured phase of SECS\n"
    "                       simulated seconds (overrides the WINDOW\n"
    "                       environment variable)\n"
    "  --trace-out=FILE     record the run and write Chrome\n"
    "                       trace-event JSON (open in Perfetto)\n"
    "  --metrics-json=FILE  write the unified metrics snapshot\n"
    "  --telemetry-ms=N     sample windowed time-series telemetry\n"
    "                       every N simulated milliseconds (implied\n"
    "                       at 100ms by the artifact options below)\n"
    "  --timeseries-out=FILE   write the time-series as JSON\n"
    "  --timeseries-csv=FILE   write the time-series as long CSV\n"
    "  --explain=FILE       write the bottleneck-attribution report\n"
    "                       (deterministic text; also printed).\n"
    "                       Installs the trace recorder so wait\n"
    "                       states can be ranked\n"
    "  --explain-json=FILE  same report as JSON\n"
    "  --cluster=N          run N proxy instances behind a front-end\n"
    "                       dispatcher with a sharded registrar\n"
    "                       (default 0: single proxy, no dispatcher)\n"
    "  --dispatch=POLICY    dispatcher routing policy: rr |\n"
    "                       hash-callid | hash-aor (default hash-aor;\n"
    "                       requires --cluster)\n"
    "  --aors=N             pre-seed N registered AORs across the\n"
    "                       cluster shards (requires --cluster)\n"
    "  --repl-lag-ms=N      registrar replication lag in simulated\n"
    "                       milliseconds (default 50; requires\n"
    "                       --cluster)\n"
    "  --stale              serve lookups from local replicas instead\n"
    "                       of forwarding misses to the shard owner\n"
    "                       (requires --cluster)\n"
    "  -h, --help           show this help and exit\n"
    "\n"
    "exit status: 0 ok, 1 artifact write failed, 2 usage error.\n";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "probe: %s\n\n%s", msg.c_str(), kUsage);
    std::exit(2);
}

/** Strict base-10 integer parse; usage error on garbage or range. */
long
parseLong(const char *what, const char *s, long lo, long hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0')
        usageError(std::string(what) + ": not an integer: '" + s
                   + "'");
    if (v < lo || v > hi)
        usageError(std::string(what) + ": " + std::to_string(v)
                   + " out of range [" + std::to_string(lo) + ", "
                   + std::to_string(hi) + "]");
    return v;
}

double
parseSeconds(const char *what, const char *s)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (errno != 0 || end == s || *end != '\0' || !(v > 0))
        usageError(std::string(what) + ": not a positive duration: '"
                   + s + "'");
    return v;
}

core::Transport
parseTransport(const char *s)
{
    if (std::strcmp(s, "udp") == 0)
        return core::Transport::Udp;
    if (std::strcmp(s, "tcp") == 0)
        return core::Transport::Tcp;
    if (std::strcmp(s, "tls") == 0)
        return core::Transport::Tls;
    if (std::strcmp(s, "sctp") == 0)
        return core::Transport::Sctp;
    if (std::strcmp(s, "sst") == 0)
        return core::Transport::Sst;
    usageError(std::string("unknown transport '") + s
               + "' (expected udp, tcp, tls, sctp, or sst)");
}

core::DispatchPolicy
parseDispatchPolicy(const char *s)
{
    if (std::strcmp(s, "rr") == 0)
        return core::DispatchPolicy::RoundRobin;
    if (std::strcmp(s, "hash-callid") == 0)
        return core::DispatchPolicy::HashCallId;
    if (std::strcmp(s, "hash-aor") == 0)
        return core::DispatchPolicy::HashAor;
    usageError(std::string("unknown dispatch policy '") + s
               + "' (expected rr, hash-callid, or hash-aor)");
}

core::ArchKind
parseArch(const char *s)
{
    if (std::strcmp(s, "auto") == 0)
        return core::ArchKind::Auto;
    if (std::strcmp(s, "supervisor") == 0)
        return core::ArchKind::SupervisorWorker;
    if (std::strcmp(s, "symmetric") == 0)
        return core::ArchKind::SymmetricWorker;
    if (std::strcmp(s, "event") == 0)
        return core::ArchKind::EventDriven;
    usageError(std::string("unknown architecture '") + s
               + "' (expected auto, supervisor, symmetric, or event)");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_out;
    std::string metrics_out;
    std::string timeseries_out;
    std::string timeseries_csv;
    std::string explain_out;
    std::string explain_json;
    long telemetry_ms = 0;
    double window_secs = 0;
    core::ArchKind arch = core::ArchKind::Auto;
    long cluster = 0;
    core::DispatchPolicy dispatch = core::DispatchPolicy::HashAor;
    bool dispatch_set = false;
    long aors = 0;
    long repl_lag_ms = -1;
    bool stale = false;

    // Split --options from positionals (options may appear anywhere).
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "-h") == 0 || std::strcmp(a, "--help") == 0) {
            std::fputs(kUsage, stdout);
            return 0;
        }
        if (std::strncmp(a, "--arch=", 7) == 0)
            arch = parseArch(a + 7);
        else if (std::strncmp(a, "--window=", 9) == 0)
            window_secs = parseSeconds("--window", a + 9);
        else if (std::strncmp(a, "--trace-out=", 12) == 0)
            trace_out = a + 12;
        else if (std::strncmp(a, "--metrics-json=", 15) == 0)
            metrics_out = a + 15;
        else if (std::strncmp(a, "--telemetry-ms=", 15) == 0)
            telemetry_ms =
                parseLong("--telemetry-ms", a + 15, 1, 3600000);
        else if (std::strncmp(a, "--timeseries-out=", 17) == 0)
            timeseries_out = a + 17;
        else if (std::strncmp(a, "--timeseries-csv=", 17) == 0)
            timeseries_csv = a + 17;
        else if (std::strncmp(a, "--cluster=", 10) == 0)
            cluster = parseLong("--cluster", a + 10, 1, 16);
        else if (std::strncmp(a, "--dispatch=", 11) == 0) {
            dispatch = parseDispatchPolicy(a + 11);
            dispatch_set = true;
        } else if (std::strncmp(a, "--aors=", 7) == 0)
            aors = parseLong("--aors", a + 7, 0, 1000000);
        else if (std::strncmp(a, "--repl-lag-ms=", 14) == 0)
            repl_lag_ms =
                parseLong("--repl-lag-ms", a + 14, 0, 60000);
        else if (std::strcmp(a, "--stale") == 0)
            stale = true;
        else if (std::strncmp(a, "--explain-json=", 15) == 0)
            explain_json = a + 15;
        else if (std::strncmp(a, "--explain=", 10) == 0)
            explain_out = a + 10;
        else if (a[0] == '-' && a[1] != '\0'
                 && !(a[1] >= '0' && a[1] <= '9'))
            usageError(std::string("unknown option '") + a + "'");
        else
            pos.push_back(a);
    }
    if (pos.size() > 6)
        usageError("too many positional arguments");

    core::Transport tr =
        pos.size() > 0 ? parseTransport(pos[0]) : core::Transport::Udp;
    int clients = pos.size() > 1
        ? static_cast<int>(parseLong("clients", pos[1], 1, 1000000))
        : 100;
    int opc = pos.size() > 2
        ? static_cast<int>(parseLong("opsPerConn", pos[2], 0, 1000000))
        : 0;
    int fdcache = pos.size() > 3
        ? static_cast<int>(parseLong("fdcache", pos[3], 0, 1))
        : 0;
    int pq = pos.size() > 4
        ? static_cast<int>(parseLong("prioqueue", pos[4], 0, 1))
        : 0;
    int nice = pos.size() > 5
        ? static_cast<int>(parseLong("supervisorNice", pos[5], -20, 19))
        : -20;

    // Reject unsupported arch x transport pairings up front, with the
    // same reason string Proxy::start() would throw.
    if (const char *err = core::archSupportError(arch, tr))
        usageError(std::string("--arch=") + core::archKindName(arch)
                   + " with " + core::transportName(tr) + ": " + err);

    Scenario sc = paperScenario(tr, clients, opc);
    sc.proxy.arch = arch;
    if (arch != core::ArchKind::Auto)
        sc.name = std::string(core::archKindName(arch)) + "/" + sc.name;
    if (window_secs > 0)
        sc.measureWindow = sim::secs(window_secs);
    else if (const char *w = std::getenv("WINDOW"))
        sc.measureWindow = sim::secs(parseSeconds("WINDOW", w));
    sc.proxy.fdCache = fdcache != 0;
    sc.proxy.idleStrategy = pq ? core::IdleStrategy::PriorityQueue
                               : core::IdleStrategy::LinearScan;
    sc.proxy.supervisorNice = nice;

    if (cluster == 0
        && (dispatch_set || aors > 0 || repl_lag_ms >= 0 || stale))
        usageError("--dispatch, --aors, --repl-lag-ms, and --stale "
                   "require --cluster=N");
    if (cluster > 0) {
        sc.cluster.instances = static_cast<int>(cluster);
        sc.cluster.policy = dispatch;
        sc.cluster.aorPopulation =
            static_cast<std::uint64_t>(aors);
        if (repl_lag_ms >= 0)
            sc.cluster.replicationLag = sim::msecs(repl_lag_ms);
        sc.cluster.staleReads = stale;
        sc.name = "cluster" + std::to_string(cluster) + "-"
            + core::dispatchPolicyName(dispatch) + "/" + sc.name;
        if (const char *err = clusterSupportError(sc))
            usageError(std::string("--cluster=")
                       + std::to_string(cluster) + " with "
                       + core::transportName(tr) + ": " + err);
    }

    // Windowed telemetry: any telemetry artifact implies sampling at
    // the default 100ms window unless --telemetry-ms chose one.
    bool want_telemetry = telemetry_ms > 0 || !timeseries_out.empty()
        || !timeseries_csv.empty() || !explain_out.empty()
        || !explain_json.empty();
    if (want_telemetry)
        sc.telemetry.windowMs =
            telemetry_ms > 0 ? static_cast<int>(telemetry_ms) : 100;

    // Observability: install the recorder only when an artifact was
    // requested; the run stays zero-overhead otherwise. The explain
    // report ranks span wait states, so it needs the recorder too.
    bool record = !trace_out.empty() || !metrics_out.empty()
        || !explain_out.empty() || !explain_json.empty();
    sim::trace::Recorder rec;
    if (record)
        sim::trace::setRecorder(&rec);
    RunResult r = runScenario(sc);
    sim::trace::setRecorder(nullptr);

    int rc = 0;
    if (!trace_out.empty()) {
        if (rec.writeJsonFile(trace_out)) {
            std::printf("trace: %s (%zu events, %llu dropped)\n",
                        trace_out.c_str(), rec.eventCount(),
                        (unsigned long long)rec.dropped());
        } else {
            std::fprintf(stderr, "probe: cannot write %s\n",
                         trace_out.c_str());
            rc = 1;
        }
    }
    auto write_file = [&rc](const std::string &path,
                            const std::string &body,
                            const char *what) {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "probe: cannot write %s\n",
                         path.c_str());
            rc = 1;
            return;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("%s: %s\n", what, path.c_str());
    };
    if (!metrics_out.empty()) {
        stats::MetricsRegistry reg = collectMetrics(r);
        write_file(metrics_out, reg.snapshot().toJson(), "metrics");
    }
    if (!timeseries_out.empty() && r.timeseries)
        write_file(timeseries_out, r.timeseries->toJson(),
                   "timeseries");
    if (!timeseries_csv.empty() && r.timeseries)
        write_file(timeseries_csv, r.timeseries->toCsv(),
                   "timeseries-csv");
    if ((!explain_out.empty() || !explain_json.empty())
        && r.timeseries) {
        stats::ExplainReport rep = stats::explain(*r.timeseries);
        std::string text = rep.text();
        std::fputs(text.c_str(), stdout);
        if (!explain_out.empty())
            write_file(explain_out, text, "explain");
        if (!explain_json.empty())
            write_file(explain_json, rep.toJson(), "explain-json");
    }

    double ipc = r.serverProfile.share("ser:tcp_send_fd_request")
               + r.serverProfile.share("kernel:unix_ipc");
    std::printf(
        "ipcShare=%.1f%% schedShare=%.1f%% spinShare=%.1f%% "
        "scanShare=%.1f%%\n",
        ipc * 100, r.serverProfile.share("kernel:schedule") * 100,
        r.serverProfile.share("user:spinlock") * 100,
        r.serverProfile.share("ser:tcpconn_timeout") * 100);
    std::printf(
        "%s: %.0f ops/s  ops=%lu dur=%.2fs failed=%lu srvUtil=%.2f "
        "cliUtil=%.2f fdReq=%lu hits=%lu scansVisited=%lu "
        "retransAbs=%lu retransSent=%lu p50=%.2fms timedOut=%d\n",
        sc.name.c_str(), r.opsPerSec, (unsigned long)r.ops,
        sim::toSecs(r.duration), (unsigned long)r.callsFailed,
        r.serverUtilization, r.maxClientUtilization,
        (unsigned long)r.counters.fdRequests,
        (unsigned long)r.counters.fdCacheHits,
        (unsigned long)r.counters.idleScanVisited,
        (unsigned long)r.counters.retransAbsorbed,
        (unsigned long)r.counters.retransSent,
        sim::toMsecs(r.inviteP50), r.timedOut);
    std::printf(
        "conns: accepted=%lu destroyed=%lu returned=%lu outbound=%lu "
        "scans=%lu reconnects=%lu reconnFail=%lu deadSends=%lu\n",
        (unsigned long)r.counters.connsAccepted,
        (unsigned long)r.counters.connsDestroyed,
        (unsigned long)r.counters.connsReturnedByWorkers,
        (unsigned long)r.counters.outboundConnects,
        (unsigned long)r.counters.idleScans,
        (unsigned long)r.reconnects,
        (unsigned long)r.reconnectFailures,
        (unsigned long)r.counters.sendsToDeadConns);
    if (r.clusterInstances > 0) {
        std::printf(
            "cluster: instances=%d dispIn=%lu dispReq=%lu "
            "dispRsp=%lu dispReg=%lu drops=%lu locHit=%lu "
            "replicaHit=%lu missFwd=%lu replInst=%lu\n",
            r.clusterInstances,
            (unsigned long)r.dispatcherStats.messagesIn,
            (unsigned long)r.dispatcherStats.requestsRouted,
            (unsigned long)r.dispatcherStats.responsesRouted,
            (unsigned long)r.dispatcherStats.registersRouted,
            (unsigned long)r.dispatcherStats.dropsNoRoute,
            (unsigned long)r.counters.locLocalHits,
            (unsigned long)r.counters.locReplicaHits,
            (unsigned long)r.counters.locMissForwards,
            (unsigned long)r.counters.locReplInstalls);
    }
    std::puts("top profile:");
    std::fputs(r.serverProfile.report(12).c_str(), stdout);
    return rc;
}

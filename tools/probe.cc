#include <cstdio>
#include <cstdlib>
#include "workload/scenario.hh"
using namespace siprox;
using namespace siprox::workload;

int main(int argc, char** argv) {
    const char* t = argc > 1 ? argv[1] : "udp";
    int clients = argc > 2 ? atoi(argv[2]) : 100;
    int opc = argc > 3 ? atoi(argv[3]) : 0;
    int fdcache = argc > 4 ? atoi(argv[4]) : 0;
    int pq = argc > 5 ? atoi(argv[5]) : 0;
    int nice = argc > 6 ? atoi(argv[6]) : -20;
    core::Transport tr = t[0]=='u' ? core::Transport::Udp :
                         t[0]=='s' ? core::Transport::Sctp : core::Transport::Tcp;
    Scenario sc = paperScenario(tr, clients, opc);
    if (const char* w = getenv("WINDOW"))
        sc.measureWindow = sim::secs(atof(w));
    sc.proxy.fdCache = fdcache;
    sc.proxy.idleStrategy = pq ? core::IdleStrategy::PriorityQueue : core::IdleStrategy::LinearScan;
    sc.proxy.supervisorNice = nice;
    RunResult r = runScenario(sc);
    double ipc = r.serverProfile.share("ser:tcp_send_fd_request")
               + r.serverProfile.share("kernel:unix_ipc");
    printf("ipcShare=%.1f%% schedShare=%.1f%% spinShare=%.1f%% scanShare=%.1f%%\n",
           ipc * 100, r.serverProfile.share("kernel:schedule") * 100,
           r.serverProfile.share("user:spinlock") * 100,
           r.serverProfile.share("ser:tcpconn_timeout") * 100);
    printf("%s: %.0f ops/s  ops=%lu dur=%.2fs failed=%lu srvUtil=%.2f cliUtil=%.2f "
           "fdReq=%lu hits=%lu scansVisited=%lu retransAbs=%lu retransSent=%lu p50=%.2fms timedOut=%d\n",
           sc.name.c_str(), r.opsPerSec, (unsigned long)r.ops, sim::toSecs(r.duration),
           (unsigned long)r.callsFailed, r.serverUtilization, r.maxClientUtilization,
           (unsigned long)r.counters.fdRequests, (unsigned long)r.counters.fdCacheHits,
           (unsigned long)r.counters.idleScanVisited,
           (unsigned long)r.counters.retransAbsorbed, (unsigned long)r.counters.retransSent,
           sim::toMsecs(r.inviteP50), r.timedOut);
    printf("conns: accepted=%lu destroyed=%lu returned=%lu outbound=%lu scans=%lu reconnects=%lu reconnFail=%lu deadSends=%lu\n",
           (unsigned long)r.counters.connsAccepted, (unsigned long)r.counters.connsDestroyed,
           (unsigned long)r.counters.connsReturnedByWorkers, (unsigned long)r.counters.outboundConnects,
           (unsigned long)r.counters.idleScans, (unsigned long)r.reconnects,
           (unsigned long)r.reconnectFailures, (unsigned long)r.counters.sendsToDeadConns);
    puts("top profile:");
    fputs(r.serverProfile.report(12).c_str(), stdout);
    return 0;
}

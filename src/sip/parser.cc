#include "sip/parser.hh"

#include <cctype>
#include <charconv>
#include <memory>
#include <utility>

namespace siprox::sip {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'
                          || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

/** Pop one line (without terminator) off @p text; handles \r\n and \n. */
std::optional<std::string_view>
takeLine(std::string_view &text)
{
    auto nl = text.find('\n');
    if (nl == std::string_view::npos)
        return std::nullopt;
    std::string_view line = text.substr(0, nl);
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);
    text.remove_prefix(nl + 1);
    return line;
}

ParseResult
fail(std::string why)
{
    ParseResult r;
    r.error = std::move(why);
    return r;
}

/**
 * Locate the end of the header section (index just past the blank
 * line), or npos if incomplete. Accepts \r\n\r\n and \n\n.
 */
std::size_t
findHeaderEnd(std::string_view text)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\n')
            continue;
        std::size_t j = i + 1;
        if (j < text.size() && text[j] == '\r')
            ++j;
        if (j < text.size() && text[j] == '\n')
            return j + 1;
    }
    return std::string_view::npos;
}

/** Scan the header section for Content-Length (or compact "l"). */
std::size_t
scanContentLength(std::string_view headers)
{
    while (!headers.empty()) {
        auto line = takeLine(headers);
        if (!line)
            break;
        auto colon = line->find(':');
        if (colon == std::string_view::npos)
            continue;
        std::string_view name = trim(line->substr(0, colon));
        if (!iequals(name, "Content-Length") && !iequals(name, "l"))
            continue;
        std::string_view value = trim(line->substr(colon + 1));
        std::size_t n = 0;
        auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), n);
        if (ec == std::errc() && ptr == value.data() + value.size())
            return n;
        return 0;
    }
    return 0;
}

} // namespace

std::string_view
expandHeaderName(std::string_view name)
{
    if (name.size() != 1)
        return name;
    switch (std::tolower(static_cast<unsigned char>(name[0]))) {
      case 'i':
        return "Call-ID";
      case 'm':
        return "Contact";
      case 'f':
        return "From";
      case 't':
        return "To";
      case 'v':
        return "Via";
      case 'l':
        return "Content-Length";
      case 'c':
        return "Content-Type";
      case 's':
        return "Subject";
      case 'k':
        return "Supported";
      default:
        return name;
    }
}

/**
 * Friend of SipMessage: installs headers and body as views into the
 * adopted wire buffer, bypassing the interning mutators.
 */
class Parser
{
  public:
    static ParseResult parse(std::string text);
};

ParseResult
Parser::parse(std::string text)
{
    auto arena = std::make_shared<detail::MsgArena>(std::move(text));
    std::string_view rest = arena->wire();

    // Skip leading keep-alive newlines.
    while (!rest.empty() && (rest.front() == '\r' || rest.front() == '\n'))
        rest.remove_prefix(1);

    auto start = takeLine(rest);
    if (!start || start->empty())
        return fail("missing start line");

    ParseResult result;
    SipMessage &msg = result.message;
    msg.arena_ = arena;

    if (start->substr(0, 8) == "SIP/2.0 ") {
        // Status line: SIP/2.0 200 OK
        std::string_view body = start->substr(8);
        auto sp = body.find(' ');
        std::string_view code =
            sp == std::string_view::npos ? body : body.substr(0, sp);
        int status = 0;
        auto [ptr, ec] =
            std::from_chars(code.data(), code.data() + code.size(),
                            status);
        if (ec != std::errc() || ptr != code.data() + code.size()
            || status < 100 || status > 699) {
            return fail("bad status code");
        }
        msg.isRequest_ = false;
        msg.status_ = status;
        if (sp != std::string_view::npos)
            msg.reason_ = std::string(trim(body.substr(sp + 1)));
    } else {
        // Request line: METHOD uri SIP/2.0
        auto sp1 = start->find(' ');
        if (sp1 == std::string_view::npos)
            return fail("bad request line");
        auto sp2 = start->find(' ', sp1 + 1);
        if (sp2 == std::string_view::npos)
            return fail("bad request line");
        if (trim(start->substr(sp2 + 1)) != "SIP/2.0")
            return fail("bad SIP version");
        Method m = methodFromName(start->substr(0, sp1));
        auto uri = SipUri::parse(start->substr(sp1 + 1, sp2 - sp1 - 1));
        if (!uri)
            return fail("bad request URI");
        msg.isRequest_ = true;
        msg.method_ = m;
        msg.requestUri_ = std::move(*uri);
    }

    // Headers, with folding: continuation lines start with SP/HT.
    // The common case appends a {id, name view, value view} triple; a
    // folded value (rare) is joined and interned into the arena.
    msg.headers_.reserve(12);
    bool has_pending = false;
    HeaderId pending_id = HeaderId::Other;
    std::string_view pending_name;
    std::string_view pending_value;
    bool is_folded = false;
    std::string folded;
    auto flush = [&] {
        if (!has_pending)
            return;
        std::string_view value =
            is_folded ? arena->intern(folded) : pending_value;
        msg.headers_.push_back(Header{pending_id, pending_name, value});
        has_pending = false;
        is_folded = false;
        folded.clear();
    };
    for (;;) {
        auto line = takeLine(rest);
        if (!line)
            return fail("unterminated headers");
        if (line->empty())
            break; // end of headers
        if (line->front() == ' ' || line->front() == '\t') {
            if (!has_pending)
                return fail("continuation without header");
            if (!is_folded) {
                is_folded = true;
                folded.assign(pending_value);
            }
            folded += ' ';
            folded += trim(*line);
            continue;
        }
        flush();
        auto colon = line->find(':');
        if (colon == std::string_view::npos)
            return fail("header without colon");
        std::string_view name = trim(line->substr(0, colon));
        if (name.empty())
            return fail("empty header name");
        has_pending = true;
        pending_name = expandHeaderName(name);
        pending_id = headerIdFor(pending_name);
        pending_value = trim(line->substr(colon + 1));
    }
    flush();

    // Body per Content-Length (truncated input is an error).
    std::size_t content_length = 0;
    if (auto cl = msg.header(HeaderId::ContentLength)) {
        auto v = trim(*cl);
        auto [ptr, ec] =
            std::from_chars(v.data(), v.data() + v.size(),
                            content_length);
        if (ec != std::errc() || ptr != v.data() + v.size())
            return fail("bad Content-Length");
    } else {
        content_length = rest.size();
    }
    if (rest.size() < content_length)
        return fail("truncated body");
    msg.body_ = rest.substr(0, content_length);

    result.ok = true;
    return result;
}

ParseResult
parseMessage(std::string_view text)
{
    return Parser::parse(std::string(text));
}

ParseResult
parseOwned(std::string text)
{
    return Parser::parse(std::move(text));
}

std::optional<std::string>
StreamFramer::next()
{
    // Skip keep-alive CRLFs between messages.
    while (pos_ < buf_.size()
           && (buf_[pos_] == '\r' || buf_[pos_] == '\n')) {
        ++pos_;
    }
    if (scanned_ < pos_)
        scanned_ = pos_;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = scanned_ = 0;
        return std::nullopt;
    }

    const std::string_view view(buf_);
    // Resume the header scan where the last attempt stopped, backed up
    // three bytes so a terminator straddling the chunk boundary is
    // still seen whole.
    const std::size_t from =
        scanned_ > pos_ + 3 ? scanned_ - 3 : pos_;
    std::size_t header_end = findHeaderEnd(view.substr(from));
    if (header_end == std::string_view::npos) {
        scanned_ = buf_.size();
        if (buf_.size() - pos_ > kMaxHeaderBytes)
            poisoned_ = true;
        return std::nullopt;
    }
    header_end += from;
    std::size_t content_length =
        scanContentLength(view.substr(pos_, header_end - pos_));
    std::size_t total = header_end + content_length;
    if (buf_.size() < total) {
        scanned_ = header_end;
        return std::nullopt;
    }
    if (pos_ == 0 && total == buf_.size()) {
        // The buffer is exactly one message: hand it over whole.
        std::string raw = std::move(buf_);
        buf_.clear();
        pos_ = scanned_ = 0;
        return raw;
    }
    std::string raw = buf_.substr(pos_, total - pos_);
    pos_ = scanned_ = total;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = scanned_ = 0;
    }
    return raw;
}

} // namespace siprox::sip

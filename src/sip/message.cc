#include "sip/message.hh"

#include <cctype>
#include <charconv>

namespace siprox::sip {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

} // namespace

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

HeaderId
headerIdFor(std::string_view name)
{
    // Dispatch on length first; each bucket has at most three candidates.
    switch (name.size()) {
      case 2:
        if (iequals(name, "To"))
            return HeaderId::To;
        break;
      case 3:
        if (iequals(name, "Via"))
            return HeaderId::Via;
        break;
      case 4:
        if (iequals(name, "From"))
            return HeaderId::From;
        if (iequals(name, "CSeq"))
            return HeaderId::CSeq;
        break;
      case 5:
        if (iequals(name, "Route"))
            return HeaderId::Route;
        break;
      case 7:
        if (iequals(name, "Call-ID"))
            return HeaderId::CallId;
        if (iequals(name, "Contact"))
            return HeaderId::Contact;
        break;
      case 8:
        if (iequals(name, "Overload"))
            return HeaderId::Overload;
        break;
      case 12:
        if (iequals(name, "Max-Forwards"))
            return HeaderId::MaxForwards;
        if (iequals(name, "Content-Type"))
            return HeaderId::ContentType;
        if (iequals(name, "Record-Route"))
            return HeaderId::RecordRoute;
        break;
      case 14:
        if (iequals(name, "Content-Length"))
            return HeaderId::ContentLength;
        break;
      default:
        break;
    }
    return HeaderId::Other;
}

std::string_view
headerCanonicalName(HeaderId id)
{
    switch (id) {
      case HeaderId::Via:
        return "Via";
      case HeaderId::To:
        return "To";
      case HeaderId::From:
        return "From";
      case HeaderId::CallId:
        return "Call-ID";
      case HeaderId::CSeq:
        return "CSeq";
      case HeaderId::Contact:
        return "Contact";
      case HeaderId::MaxForwards:
        return "Max-Forwards";
      case HeaderId::ContentLength:
        return "Content-Length";
      case HeaderId::ContentType:
        return "Content-Type";
      case HeaderId::Route:
        return "Route";
      case HeaderId::RecordRoute:
        return "Record-Route";
      case HeaderId::Overload:
        return "Overload";
      case HeaderId::Other:
        break;
    }
    return {};
}

const char *
methodName(Method m)
{
    switch (m) {
      case Method::Invite:
        return "INVITE";
      case Method::Ack:
        return "ACK";
      case Method::Bye:
        return "BYE";
      case Method::Cancel:
        return "CANCEL";
      case Method::Register:
        return "REGISTER";
      case Method::Options:
        return "OPTIONS";
      case Method::Unknown:
        break;
    }
    return "UNKNOWN";
}

Method
methodFromName(std::string_view name)
{
    if (name == "INVITE")
        return Method::Invite;
    if (name == "ACK")
        return Method::Ack;
    if (name == "BYE")
        return Method::Bye;
    if (name == "CANCEL")
        return Method::Cancel;
    if (name == "REGISTER")
        return Method::Register;
    if (name == "OPTIONS")
        return Method::Options;
    return Method::Unknown;
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case status::kTrying:
        return "Trying";
      case status::kRinging:
        return "Ringing";
      case status::kOk:
        return "OK";
      case status::kMovedTemporarily:
        return "Moved Temporarily";
      case status::kBadRequest:
        return "Bad Request";
      case status::kUnauthorized:
        return "Unauthorized";
      case status::kNotFound:
        return "Not Found";
      case status::kRequestTimeout:
        return "Request Timeout";
      case status::kServerError:
        return "Server Internal Error";
      case status::kServiceUnavailable:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

std::optional<Via>
Via::parse(std::string_view text)
{
    // "SIP/2.0/UDP host:port;branch=..."
    text = trim(text);
    if (text.substr(0, 8) != "SIP/2.0/")
        return std::nullopt;
    text.remove_prefix(8);
    Via via;
    auto sp = text.find(' ');
    if (sp == std::string_view::npos)
        return std::nullopt;
    via.transport = std::string(text.substr(0, sp));
    text.remove_prefix(sp + 1);

    auto semi = text.find(';');
    std::string_view hostport = trim(text.substr(0, semi));
    std::string_view params =
        semi == std::string_view::npos ? std::string_view{}
                                       : text.substr(semi + 1);
    auto colon = hostport.find(':');
    if (colon == std::string_view::npos) {
        via.host = std::string(hostport);
    } else {
        via.host = std::string(hostport.substr(0, colon));
        auto p = hostport.substr(colon + 1);
        unsigned v = 0;
        auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
        if (ec != std::errc() || ptr != p.data() + p.size() || v > 65535)
            return std::nullopt;
        via.port = static_cast<std::uint16_t>(v);
    }
    if (via.host.empty())
        return std::nullopt;

    while (!params.empty()) {
        auto next = params.find(';');
        std::string_view param = trim(params.substr(0, next));
        params = next == std::string_view::npos
            ? std::string_view{}
            : params.substr(next + 1);
        if (param.substr(0, 7) == "branch=")
            via.branch = std::string(param.substr(7));
    }
    return via;
}

std::string
Via::toString() const
{
    char portBuf[8];
    std::size_t portLen = 0;
    if (port) {
        auto end =
            std::to_chars(portBuf, portBuf + sizeof(portBuf), port).ptr;
        portLen = static_cast<std::size_t>(end - portBuf);
    }
    std::string out;
    out.reserve(8 + transport.size() + 1 + host.size()
                + (port ? 1 + portLen : 0)
                + (branch.empty() ? 0 : 8 + branch.size()));
    out += "SIP/2.0/";
    out += transport;
    out += ' ';
    out += host;
    if (port) {
        out += ':';
        out.append(portBuf, portLen);
    }
    if (!branch.empty()) {
        out += ";branch=";
        out += branch;
    }
    return out;
}

std::optional<CSeq>
CSeq::parse(std::string_view text)
{
    text = trim(text);
    auto sp = text.find(' ');
    if (sp == std::string_view::npos)
        return std::nullopt;
    CSeq cseq;
    auto num = text.substr(0, sp);
    auto [ptr, ec] =
        std::from_chars(num.data(), num.data() + num.size(), cseq.number);
    if (ec != std::errc() || ptr != num.data() + num.size())
        return std::nullopt;
    cseq.method = methodFromName(trim(text.substr(sp + 1)));
    return cseq;
}

std::string
CSeq::toString() const
{
    return std::to_string(number) + " " + methodName(method);
}

SipMessage::SipMessage(const SipMessage &o)
    : isRequest_(o.isRequest_),
      method_(o.method_),
      requestUri_(o.requestUri_),
      status_(o.status_),
      reason_(o.reason_),
      body_(o.body_),
      arena_(o.arena_)
{
    // Leave room for the proxy's Via prepend / Max-Forwards rewrite so
    // the common forward path never reallocates the header vector.
    // Caches are deliberately not copied; they rebuild on demand.
    headers_.reserve(o.headers_.size() + 2);
    headers_ = o.headers_;
}

SipMessage &
SipMessage::operator=(const SipMessage &o)
{
    if (this == &o)
        return *this;
    isRequest_ = o.isRequest_;
    method_ = o.method_;
    requestUri_ = o.requestUri_;
    status_ = o.status_;
    reason_ = o.reason_;
    headers_.reserve(o.headers_.size() + 2);
    headers_ = o.headers_;
    body_ = o.body_;
    arena_ = o.arena_;
    wireCacheValid_ = false;
    cseqCacheValid_ = false;
    viaCacheValid_ = false;
    return *this;
}

SipMessage
SipMessage::request(Method m, SipUri uri)
{
    SipMessage msg;
    msg.isRequest_ = true;
    msg.method_ = m;
    msg.requestUri_ = std::move(uri);
    return msg;
}

SipMessage
SipMessage::response(int status, std::string reason)
{
    SipMessage msg;
    msg.isRequest_ = false;
    msg.status_ = status;
    msg.reason_ = reason.empty() ? reasonPhrase(status)
                                 : std::move(reason);
    return msg;
}

detail::MsgArena &
SipMessage::arena()
{
    if (!arena_)
        arena_ = std::make_shared<detail::MsgArena>();
    return *arena_;
}

std::string_view
SipMessage::intern(std::string_view s)
{
    if (s.empty())
        return {};
    return arena().intern(s);
}

namespace {

/** Canonical static name when @p name already matches it byte-for-byte
 *  (the common case); otherwise empty, and the caller interns @p name
 *  to preserve the original spelling on re-serialization. */
std::string_view
staticNameFor(HeaderId id, std::string_view name)
{
    std::string_view canon = headerCanonicalName(id);
    return canon == name ? canon : std::string_view{};
}

} // namespace

void
SipMessage::addHeader(std::string_view name, std::string_view value)
{
    HeaderId id = headerIdFor(name);
    std::string_view sn = staticNameFor(id, name);
    headers_.push_back(
        Header{id, sn.empty() ? intern(name) : sn, intern(value)});
    noteMutation(id);
}

void
SipMessage::prependHeader(std::string_view name, std::string_view value)
{
    HeaderId id = headerIdFor(name);
    std::string_view sn = staticNameFor(id, name);
    headers_.insert(
        headers_.begin(),
        Header{id, sn.empty() ? intern(name) : sn, intern(value)});
    noteMutation(id);
}

void
SipMessage::prependVia(const Via &via)
{
    char portBuf[8];
    std::size_t portLen = 0;
    if (via.port) {
        auto end =
            std::to_chars(portBuf, portBuf + sizeof(portBuf), via.port)
                .ptr;
        portLen = static_cast<std::size_t>(end - portBuf);
    }
    std::size_t n = 8 + via.transport.size() + 1 + via.host.size()
        + (via.port ? 1 + portLen : 0)
        + (via.branch.empty() ? 0 : 8 + via.branch.size());
    char *base = arena().alloc(n);
    char *w = base;
    auto put = [&w](std::string_view s) {
        std::memcpy(w, s.data(), s.size());
        w += s.size();
    };
    put("SIP/2.0/");
    put(via.transport);
    *w++ = ' ';
    put(via.host);
    if (via.port) {
        *w++ = ':';
        put(std::string_view(portBuf, portLen));
    }
    if (!via.branch.empty()) {
        put(";branch=");
        put(via.branch);
    }
    headers_.insert(headers_.begin(),
                    Header{HeaderId::Via, "Via",
                           std::string_view(base, n)});
    noteMutation(HeaderId::Via);
}

std::optional<std::string_view>
SipMessage::header(std::string_view name) const
{
    HeaderId id = headerIdFor(name);
    if (id != HeaderId::Other)
        return header(id);
    for (const auto &h : headers_) {
        if (h.id == HeaderId::Other && iequals(h.name, name))
            return h.value;
    }
    return std::nullopt;
}

std::optional<std::string_view>
SipMessage::header(HeaderId id) const
{
    for (const auto &h : headers_) {
        if (h.id == id)
            return h.value;
    }
    return std::nullopt;
}

std::vector<std::string_view>
SipMessage::headerAll(std::string_view name) const
{
    HeaderId id = headerIdFor(name);
    if (id != HeaderId::Other)
        return headerAll(id);
    std::vector<std::string_view> out;
    for (const auto &h : headers_) {
        if (h.id == HeaderId::Other && iequals(h.name, name))
            out.push_back(h.value);
    }
    return out;
}

std::vector<std::string_view>
SipMessage::headerAll(HeaderId id) const
{
    std::vector<std::string_view> out;
    for (const auto &h : headers_) {
        if (h.id == id)
            out.push_back(h.value);
    }
    return out;
}

void
SipMessage::setHeader(std::string_view name, std::string_view value)
{
    HeaderId id = headerIdFor(name);
    for (auto &h : headers_) {
        bool match = id != HeaderId::Other
            ? h.id == id
            : h.id == HeaderId::Other && iequals(h.name, name);
        if (match) {
            h.value = intern(value);
            noteMutation(id);
            return;
        }
    }
    addHeader(name, value);
}

bool
SipMessage::removeFirstHeader(std::string_view name)
{
    HeaderId id = headerIdFor(name);
    if (id != HeaderId::Other)
        return removeFirstHeader(id);
    for (auto it = headers_.begin(); it != headers_.end(); ++it) {
        if (it->id == HeaderId::Other && iequals(it->name, name)) {
            headers_.erase(it);
            wireCacheValid_ = false;
            return true;
        }
    }
    return false;
}

bool
SipMessage::removeFirstHeader(HeaderId id)
{
    for (auto it = headers_.begin(); it != headers_.end(); ++it) {
        if (it->id == id) {
            headers_.erase(it);
            noteMutation(id);
            return true;
        }
    }
    return false;
}

std::string_view
SipMessage::callId() const
{
    return header(HeaderId::CallId).value_or(std::string_view{});
}

std::optional<CSeq>
SipMessage::cseq() const
{
    if (!cseqCacheValid_) {
        cseqCache_.reset();
        if (auto h = header(HeaderId::CSeq))
            cseqCache_ = CSeq::parse(*h);
        cseqCacheValid_ = true;
    }
    return cseqCache_;
}

const std::optional<Via> &
SipMessage::topVia() const
{
    if (!viaCacheValid_) {
        viaCache_.reset();
        if (auto h = header(HeaderId::Via))
            viaCache_ = Via::parse(*h);
        viaCacheValid_ = true;
    }
    return viaCache_;
}

std::string_view
SipMessage::from() const
{
    return header(HeaderId::From).value_or(std::string_view{});
}

std::string_view
SipMessage::to() const
{
    return header(HeaderId::To).value_or(std::string_view{});
}

std::optional<SipUri>
SipMessage::contactUri() const
{
    auto h = header(HeaderId::Contact);
    if (!h)
        return std::nullopt;
    std::string_view v = trim(*h);
    // Strip "<...>" and display names.
    auto lt = v.find('<');
    if (lt != std::string_view::npos) {
        auto gt = v.find('>', lt);
        if (gt == std::string_view::npos)
            return std::nullopt;
        v = v.substr(lt + 1, gt - lt - 1);
    }
    return SipUri::parse(v);
}

std::optional<int>
SipMessage::maxForwards() const
{
    auto h = header(HeaderId::MaxForwards);
    if (!h)
        return std::nullopt;
    auto v = trim(*h);
    int out = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size())
        return std::nullopt;
    return out;
}

void
SipMessage::setMaxForwards(int v)
{
    char buf[16];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    setHeader("Max-Forwards",
              std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

void
SipMessage::setBody(std::string_view body, std::string_view content_type)
{
    body_ = intern(body);
    wireCacheValid_ = false;
    if (!content_type.empty())
        setHeader("Content-Type", content_type);
}

void
SipMessage::buildWire() const
{
    char statusBuf[16];
    std::size_t statusLen = 0;
    char lenBuf[20];
    auto lenEnd = std::to_chars(lenBuf, lenBuf + sizeof(lenBuf),
                                body_.size()).ptr;
    std::size_t lenLen = static_cast<std::size_t>(lenEnd - lenBuf);

    std::size_t n = 0;
    std::string_view method;
    if (isRequest_) {
        method = methodName(method_);
        n += method.size() + 1 + requestUri_.renderedSize()
            + 10; // " SIP/2.0\r\n"
    } else {
        auto end = std::to_chars(statusBuf, statusBuf + sizeof(statusBuf),
                                 status_).ptr;
        statusLen = static_cast<std::size_t>(end - statusBuf);
        n += 8 + statusLen + 1 + reason_.size() + 2; // "SIP/2.0 ...\r\n"
    }
    for (const auto &h : headers_) {
        if (h.id == HeaderId::ContentLength)
            continue; // always recomputed
        n += h.name.size() + 2 + h.value.size() + 2;
    }
    n += 16 + lenLen + 4 + body_.size(); // "Content-Length: N\r\n\r\n"

    wireCache_.clear();
    wireCache_.reserve(n);
    if (isRequest_) {
        wireCache_ += method;
        wireCache_ += ' ';
        requestUri_.appendTo(wireCache_);
        wireCache_ += " SIP/2.0\r\n";
    } else {
        wireCache_ += "SIP/2.0 ";
        wireCache_.append(statusBuf, statusLen);
        wireCache_ += ' ';
        wireCache_ += reason_;
        wireCache_ += "\r\n";
    }
    for (const auto &h : headers_) {
        if (h.id == HeaderId::ContentLength)
            continue;
        wireCache_ += h.name;
        wireCache_ += ": ";
        wireCache_ += h.value;
        wireCache_ += "\r\n";
    }
    wireCache_ += "Content-Length: ";
    wireCache_.append(lenBuf, lenLen);
    wireCache_ += "\r\n\r\n";
    wireCache_ += body_;
    wireCacheValid_ = true;
}

std::string
SipMessage::serialize() const
{
    if (!wireCacheValid_)
        buildWire();
    return wireCache_;
}

std::size_t
SipMessage::serializedSize() const
{
    if (!wireCacheValid_)
        buildWire();
    return wireCache_.size();
}

std::string
SipMessage::summary() const
{
    std::string out;
    if (isRequest_) {
        out = std::string(methodName(method_)) + " "
            + requestUri_.toString();
    } else {
        out = std::to_string(status_) + " " + reason_;
    }
    auto cs = cseq();
    if (cs)
        out += " (CSeq " + cs->toString() + ")";
    return out;
}

} // namespace siprox::sip

#include "sip/message.hh"

#include <cctype>
#include <charconv>

namespace siprox::sip {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

} // namespace

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

const char *
methodName(Method m)
{
    switch (m) {
      case Method::Invite:
        return "INVITE";
      case Method::Ack:
        return "ACK";
      case Method::Bye:
        return "BYE";
      case Method::Cancel:
        return "CANCEL";
      case Method::Register:
        return "REGISTER";
      case Method::Options:
        return "OPTIONS";
      case Method::Unknown:
        break;
    }
    return "UNKNOWN";
}

Method
methodFromName(std::string_view name)
{
    if (name == "INVITE")
        return Method::Invite;
    if (name == "ACK")
        return Method::Ack;
    if (name == "BYE")
        return Method::Bye;
    if (name == "CANCEL")
        return Method::Cancel;
    if (name == "REGISTER")
        return Method::Register;
    if (name == "OPTIONS")
        return Method::Options;
    return Method::Unknown;
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case status::kTrying:
        return "Trying";
      case status::kRinging:
        return "Ringing";
      case status::kOk:
        return "OK";
      case status::kMovedTemporarily:
        return "Moved Temporarily";
      case status::kBadRequest:
        return "Bad Request";
      case status::kUnauthorized:
        return "Unauthorized";
      case status::kNotFound:
        return "Not Found";
      case status::kRequestTimeout:
        return "Request Timeout";
      case status::kServerError:
        return "Server Internal Error";
      case status::kServiceUnavailable:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

std::optional<Via>
Via::parse(std::string_view text)
{
    // "SIP/2.0/UDP host:port;branch=..."
    text = trim(text);
    if (text.substr(0, 8) != "SIP/2.0/")
        return std::nullopt;
    text.remove_prefix(8);
    Via via;
    auto sp = text.find(' ');
    if (sp == std::string_view::npos)
        return std::nullopt;
    via.transport = std::string(text.substr(0, sp));
    text.remove_prefix(sp + 1);

    auto semi = text.find(';');
    std::string_view hostport = trim(text.substr(0, semi));
    std::string_view params =
        semi == std::string_view::npos ? std::string_view{}
                                       : text.substr(semi + 1);
    auto colon = hostport.find(':');
    if (colon == std::string_view::npos) {
        via.host = std::string(hostport);
    } else {
        via.host = std::string(hostport.substr(0, colon));
        auto p = hostport.substr(colon + 1);
        unsigned v = 0;
        auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
        if (ec != std::errc() || ptr != p.data() + p.size() || v > 65535)
            return std::nullopt;
        via.port = static_cast<std::uint16_t>(v);
    }
    if (via.host.empty())
        return std::nullopt;

    while (!params.empty()) {
        auto next = params.find(';');
        std::string_view param = trim(params.substr(0, next));
        params = next == std::string_view::npos
            ? std::string_view{}
            : params.substr(next + 1);
        if (param.substr(0, 7) == "branch=")
            via.branch = std::string(param.substr(7));
    }
    return via;
}

std::string
Via::toString() const
{
    std::string out = "SIP/2.0/" + transport + " " + host;
    if (port) {
        out += ':';
        out += std::to_string(port);
    }
    if (!branch.empty()) {
        out += ";branch=";
        out += branch;
    }
    return out;
}

std::optional<CSeq>
CSeq::parse(std::string_view text)
{
    text = trim(text);
    auto sp = text.find(' ');
    if (sp == std::string_view::npos)
        return std::nullopt;
    CSeq cseq;
    auto num = text.substr(0, sp);
    auto [ptr, ec] =
        std::from_chars(num.data(), num.data() + num.size(), cseq.number);
    if (ec != std::errc() || ptr != num.data() + num.size())
        return std::nullopt;
    cseq.method = methodFromName(trim(text.substr(sp + 1)));
    return cseq;
}

std::string
CSeq::toString() const
{
    return std::to_string(number) + " " + methodName(method);
}

SipMessage
SipMessage::request(Method m, SipUri uri)
{
    SipMessage msg;
    msg.isRequest_ = true;
    msg.method_ = m;
    msg.requestUri_ = std::move(uri);
    return msg;
}

SipMessage
SipMessage::response(int status, std::string reason)
{
    SipMessage msg;
    msg.isRequest_ = false;
    msg.status_ = status;
    msg.reason_ = reason.empty() ? reasonPhrase(status)
                                 : std::move(reason);
    return msg;
}

void
SipMessage::addHeader(std::string name, std::string value)
{
    headers_.push_back(Header{std::move(name), std::move(value)});
}

void
SipMessage::prependHeader(std::string name, std::string value)
{
    headers_.insert(headers_.begin(),
                    Header{std::move(name), std::move(value)});
}

std::optional<std::string_view>
SipMessage::header(std::string_view name) const
{
    for (const auto &h : headers_) {
        if (iequals(h.name, name))
            return std::string_view(h.value);
    }
    return std::nullopt;
}

std::vector<std::string_view>
SipMessage::headerAll(std::string_view name) const
{
    std::vector<std::string_view> out;
    for (const auto &h : headers_) {
        if (iequals(h.name, name))
            out.emplace_back(h.value);
    }
    return out;
}

void
SipMessage::setHeader(std::string_view name, std::string value)
{
    for (auto &h : headers_) {
        if (iequals(h.name, name)) {
            h.value = std::move(value);
            return;
        }
    }
    addHeader(std::string(name), std::move(value));
}

bool
SipMessage::removeFirstHeader(std::string_view name)
{
    for (auto it = headers_.begin(); it != headers_.end(); ++it) {
        if (iequals(it->name, name)) {
            headers_.erase(it);
            return true;
        }
    }
    return false;
}

std::string_view
SipMessage::callId() const
{
    return header("Call-ID").value_or(std::string_view{});
}

std::optional<CSeq>
SipMessage::cseq() const
{
    auto h = header("CSeq");
    if (!h)
        return std::nullopt;
    return CSeq::parse(*h);
}

std::optional<Via>
SipMessage::topVia() const
{
    auto h = header("Via");
    if (!h)
        return std::nullopt;
    return Via::parse(*h);
}

std::string_view
SipMessage::from() const
{
    return header("From").value_or(std::string_view{});
}

std::string_view
SipMessage::to() const
{
    return header("To").value_or(std::string_view{});
}

std::optional<SipUri>
SipMessage::contactUri() const
{
    auto h = header("Contact");
    if (!h)
        return std::nullopt;
    std::string_view v = trim(*h);
    // Strip "<...>" and display names.
    auto lt = v.find('<');
    if (lt != std::string_view::npos) {
        auto gt = v.find('>', lt);
        if (gt == std::string_view::npos)
            return std::nullopt;
        v = v.substr(lt + 1, gt - lt - 1);
    }
    return SipUri::parse(v);
}

std::optional<int>
SipMessage::maxForwards() const
{
    auto h = header("Max-Forwards");
    if (!h)
        return std::nullopt;
    auto v = trim(*h);
    int out = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size())
        return std::nullopt;
    return out;
}

void
SipMessage::setMaxForwards(int v)
{
    setHeader("Max-Forwards", std::to_string(v));
}

void
SipMessage::setBody(std::string body, std::string content_type)
{
    body_ = std::move(body);
    if (!content_type.empty())
        setHeader("Content-Type", std::move(content_type));
}

std::string
SipMessage::serialize() const
{
    std::string out;
    out.reserve(256 + body_.size());
    if (isRequest_) {
        out += methodName(method_);
        out += ' ';
        out += requestUri_.toString();
        out += " SIP/2.0\r\n";
    } else {
        out += "SIP/2.0 ";
        out += std::to_string(status_);
        out += ' ';
        out += reason_;
        out += "\r\n";
    }
    for (const auto &h : headers_) {
        if (iequals(h.name, "Content-Length"))
            continue; // always recomputed
        out += h.name;
        out += ": ";
        out += h.value;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(body_.size());
    out += "\r\n\r\n";
    out += body_;
    return out;
}

std::string
SipMessage::summary() const
{
    std::string out;
    if (isRequest_) {
        out = std::string(methodName(method_)) + " "
            + requestUri_.toString();
    } else {
        out = std::to_string(status_) + " " + reason_;
    }
    auto cs = cseq();
    if (cs)
        out += " (CSeq " + cs->toString() + ")";
    return out;
}

} // namespace siprox::sip

/**
 * @file
 * Transaction identification (RFC 3261 §17.2.3). A transaction is keyed
 * by the top Via branch plus the CSeq method (with ACK and CANCEL
 * matching the INVITE they refer to). The stateful proxy's shared
 * transaction table and the phones' pending-request maps key on this.
 */

#ifndef SIPROX_SIP_TRANSACTION_HH
#define SIPROX_SIP_TRANSACTION_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sip/message.hh"

namespace siprox::sip {

/** Magic cookie required at the start of RFC 3261 branches. */
inline constexpr const char *kBranchCookie = "z9hG4bK";

/** Key identifying one transaction at one element. */
struct TransactionKey
{
    std::string branch;
    Method method = Method::Unknown;

    bool operator==(const TransactionKey &) const = default;
};

struct TransactionKeyHash
{
    std::size_t
    operator()(const TransactionKey &k) const
    {
        return std::hash<std::string>{}(k.branch)
            ^ (static_cast<std::size_t>(k.method) << 1);
    }
};

/**
 * Transaction key for a message arriving at a proxy/UAS. ACK matches
 * its INVITE transaction; CANCEL likewise. Returns nullopt when the
 * message lacks a Via branch or CSeq.
 */
std::optional<TransactionKey> transactionKey(const SipMessage &msg);

/**
 * Deterministic branch-parameter generator (one per sending element).
 */
class BranchGenerator
{
  public:
    explicit BranchGenerator(std::uint64_t salt) : salt_(salt) {}

    std::string
    next()
    {
        return std::string(kBranchCookie) + std::to_string(salt_) + "."
            + std::to_string(++counter_);
    }

  private:
    std::uint64_t salt_;
    std::uint64_t counter_ = 0;
};

} // namespace siprox::sip

#endif // SIPROX_SIP_TRANSACTION_HH

/**
 * @file
 * SIP message parsing (RFC 3261 §7) and stream framing.
 *
 * The parser accepts CRLF or bare LF line endings, header folding,
 * compact header names, and case-insensitive header matching. The
 * StreamFramer carves complete messages out of a TCP byte stream using
 * Content-Length — the per-connection reassembly that forces OpenSER's
 * one-reader-per-connection rule (§3.1).
 */

#ifndef SIPROX_SIP_PARSER_HH
#define SIPROX_SIP_PARSER_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "sip/message.hh"

namespace siprox::sip {

/** Outcome of a parse attempt. */
struct ParseResult
{
    bool ok = false;
    SipMessage message;
    std::string error;
};

/** Parse a complete SIP message from @p text (copies it once). */
ParseResult parseMessage(std::string_view text);

/**
 * Parse a complete SIP message, adopting @p text as the message's
 * backing buffer: headers and body become views into it, so nothing is
 * copied per header. This is the hot path for wire input — pass the
 * datagram/frame string by move.
 */
ParseResult parseOwned(std::string text);

/** Expand a compact header name ("i" -> "Call-ID"); identity otherwise. */
std::string_view expandHeaderName(std::string_view name);

/**
 * Incremental framer for stream transports.
 *
 * Feed arbitrary byte chunks; next() yields the raw text of each
 * complete message (start line through body) as soon as it is fully
 * buffered. Interleaved keep-alive CRLFs are skipped.
 */
class StreamFramer
{
  public:
    /** Append received bytes. */
    void
    feed(std::string_view bytes)
    {
        if (pos_
            && (pos_ == buf_.size() || pos_ >= kCompactAt
                || pos_ >= buf_.size() - pos_))
            compact();
        buf_.append(bytes);
    }

    /** Disambiguates string literals (otherwise ambiguous between the
     *  view and rvalue overloads). */
    void feed(const char *bytes) { feed(std::string_view(bytes)); }

    /** Append received bytes, adopting the buffer when ours is fully
     *  consumed (the steady-state case: the previous chunk framed
     *  completely). */
    void
    feed(std::string &&bytes)
    {
        if (pos_ == buf_.size()) {
            buf_ = std::move(bytes);
            pos_ = 0;
            scanned_ = 0;
            return;
        }
        if (pos_ && (pos_ >= kCompactAt || pos_ >= buf_.size() - pos_))
            compact();
        buf_.append(bytes);
    }

    /**
     * Extract the next complete message.
     * @return the raw message text, or nullopt if more bytes are needed.
     */
    std::optional<std::string> next();

    /** Bytes buffered but not yet framed. */
    std::size_t buffered() const { return buf_.size() - pos_; }

    /**
     * True if the buffer starts with data that can never frame (no
     * header terminator within the cap). Callers should drop the
     * connection.
     */
    bool poisoned() const { return poisoned_; }

    /** Cap on header-section size before declaring the stream broken. */
    static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;

    /** Consumed-prefix length past which feed() compacts the buffer.
     *  Messages are sliced off by advancing pos_ instead of erasing
     *  from the front (which memmoves the whole tail per message); the
     *  dead prefix is reclaimed in one move once it is worth it. feed()
     *  also compacts whenever the dead prefix has grown at least as
     *  large as the live remainder (amortized O(1) per byte), which
     *  caps the ring near the working-set size instead of letting the
     *  consumed prefix balloon capacity toward kCompactAt on streams
     *  of small messages. */
    static constexpr std::size_t kCompactAt = 4096;

  private:
    void
    compact()
    {
        buf_.erase(0, pos_);
        scanned_ -= pos_;
        pos_ = 0;
    }

    std::string buf_;
    /** Consumed prefix: bytes before this offset were handed out. */
    std::size_t pos_ = 0;
    /** Header-scan high-water mark: no header terminator *ends* before
     *  this offset, so an incomplete message is rescanned only over
     *  bytes that arrived since the last attempt (minus the 3-byte
     *  terminator overlap), not from the start every time. */
    std::size_t scanned_ = 0;
    bool poisoned_ = false;
};

} // namespace siprox::sip

#endif // SIPROX_SIP_PARSER_HH

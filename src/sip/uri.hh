/**
 * @file
 * SIP URI (RFC 3261 §19.1) — the subset used by proxies and phones:
 * sip:user@host:port;param=value;flag
 *
 * In the simulated network, hosts are named "h<id>", so a URI maps
 * directly to a net::Addr.
 */

#ifndef SIPROX_SIP_URI_HH
#define SIPROX_SIP_URI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/addr.hh"

namespace siprox::sip {

/** Parsed SIP URI. */
struct SipUri
{
    std::string user;
    std::string host;
    std::uint16_t port = 0; ///< 0 means "default" (5060)
    /** URI parameters in order; flag params have empty values. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse "sip:user@host:port;params". Returns nullopt on error. */
    static std::optional<SipUri> parse(std::string_view text);

    /** Render canonical form. */
    std::string toString() const;

    /** Exact length of toString() without rendering. */
    std::size_t renderedSize() const;

    /** Append the canonical form to @p out (no temporary string). */
    void appendTo(std::string &out) const;

    /** Port with the 5060 default applied. */
    std::uint16_t effectivePort() const { return port ? port : 5060; }

    /** Value of parameter @p name, if present. */
    std::optional<std::string_view> param(std::string_view name) const;

    bool operator==(const SipUri &) const = default;
};

/**
 * Map a URI with an "h<id>" host to a simulated network address.
 * Returns nullopt if the host does not follow the convention.
 */
std::optional<net::Addr> addrFromUri(const SipUri &uri);

/** Same mapping from a bare host name and port (no SipUri temporary). */
std::optional<net::Addr> addrFromHost(std::string_view host,
                                      std::uint16_t port);

/** Build a URI for @p user at a simulated address. */
SipUri uriForAddr(std::string user, net::Addr addr);

} // namespace siprox::sip

#endif // SIPROX_SIP_URI_HH

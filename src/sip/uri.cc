#include "sip/uri.hh"

#include <charconv>

namespace siprox::sip {

namespace {

/** Split @p text at the first @p sep; returns {text, ""} if absent. */
std::pair<std::string_view, std::string_view>
splitFirst(std::string_view text, char sep)
{
    auto pos = text.find(sep);
    if (pos == std::string_view::npos)
        return {text, {}};
    return {text.substr(0, pos), text.substr(pos + 1)};
}

bool
parsePort(std::string_view text, std::uint16_t &out)
{
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()
        || value == 0 || value > 65535) {
        return false;
    }
    out = static_cast<std::uint16_t>(value);
    return true;
}

} // namespace

std::optional<SipUri>
SipUri::parse(std::string_view text)
{
    if (text.substr(0, 4) != "sip:")
        return std::nullopt;
    text.remove_prefix(4);

    SipUri uri;
    // Split off URI parameters first.
    auto [core, params] = splitFirst(text, ';');
    // user@hostport or hostport
    auto at = core.find('@');
    std::string_view hostport = core;
    if (at != std::string_view::npos) {
        uri.user = std::string(core.substr(0, at));
        hostport = core.substr(at + 1);
    }
    auto [host, port] = splitFirst(hostport, ':');
    if (host.empty())
        return std::nullopt;
    uri.host = std::string(host);
    if (!port.empty() && !parsePort(port, uri.port))
        return std::nullopt;

    while (!params.empty()) {
        auto [param, rest] = splitFirst(params, ';');
        params = rest;
        if (param.empty())
            continue;
        auto [name, value] = splitFirst(param, '=');
        uri.params.emplace_back(std::string(name), std::string(value));
    }
    return uri;
}

std::size_t
SipUri::renderedSize() const
{
    std::size_t n = 4 + host.size(); // "sip:"
    if (!user.empty())
        n += user.size() + 1;
    if (port) {
        char buf[8];
        auto end = std::to_chars(buf, buf + sizeof(buf), port).ptr;
        n += 1 + static_cast<std::size_t>(end - buf);
    }
    for (const auto &[name, value] : params) {
        n += 1 + name.size();
        if (!value.empty())
            n += 1 + value.size();
    }
    return n;
}

void
SipUri::appendTo(std::string &out) const
{
    out += "sip:";
    if (!user.empty()) {
        out += user;
        out += '@';
    }
    out += host;
    if (port) {
        char buf[8];
        auto end = std::to_chars(buf, buf + sizeof(buf), port).ptr;
        out += ':';
        out.append(buf, static_cast<std::size_t>(end - buf));
    }
    for (const auto &[name, value] : params) {
        out += ';';
        out += name;
        if (!value.empty()) {
            out += '=';
            out += value;
        }
    }
}

std::string
SipUri::toString() const
{
    std::string out;
    out.reserve(renderedSize());
    appendTo(out);
    return out;
}

std::optional<std::string_view>
SipUri::param(std::string_view name) const
{
    for (const auto &[pname, pvalue] : params) {
        if (pname == name)
            return std::string_view(pvalue);
    }
    return std::nullopt;
}

std::optional<net::Addr>
addrFromUri(const SipUri &uri)
{
    return addrFromHost(uri.host, uri.effectivePort());
}

std::optional<net::Addr>
addrFromHost(std::string_view host, std::uint16_t port)
{
    if (host.size() < 2 || host[0] != 'h')
        return std::nullopt;
    std::uint32_t id = 0;
    auto sv = host.substr(1);
    auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), id);
    if (ec != std::errc() || ptr != sv.data() + sv.size())
        return std::nullopt;
    return net::Addr{id, port};
}

SipUri
uriForAddr(std::string user, net::Addr addr)
{
    SipUri uri;
    uri.user = std::move(user);
    uri.host = "h" + std::to_string(addr.host);
    uri.port = addr.port;
    return uri;
}

} // namespace siprox::sip

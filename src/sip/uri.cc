#include "sip/uri.hh"

#include <charconv>

namespace siprox::sip {

namespace {

/** Split @p text at the first @p sep; returns {text, ""} if absent. */
std::pair<std::string_view, std::string_view>
splitFirst(std::string_view text, char sep)
{
    auto pos = text.find(sep);
    if (pos == std::string_view::npos)
        return {text, {}};
    return {text.substr(0, pos), text.substr(pos + 1)};
}

bool
parsePort(std::string_view text, std::uint16_t &out)
{
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()
        || value == 0 || value > 65535) {
        return false;
    }
    out = static_cast<std::uint16_t>(value);
    return true;
}

} // namespace

std::optional<SipUri>
SipUri::parse(std::string_view text)
{
    if (text.substr(0, 4) != "sip:")
        return std::nullopt;
    text.remove_prefix(4);

    SipUri uri;
    // Split off URI parameters first.
    auto [core, params] = splitFirst(text, ';');
    // user@hostport or hostport
    auto at = core.find('@');
    std::string_view hostport = core;
    if (at != std::string_view::npos) {
        uri.user = std::string(core.substr(0, at));
        hostport = core.substr(at + 1);
    }
    auto [host, port] = splitFirst(hostport, ':');
    if (host.empty())
        return std::nullopt;
    uri.host = std::string(host);
    if (!port.empty() && !parsePort(port, uri.port))
        return std::nullopt;

    while (!params.empty()) {
        auto [param, rest] = splitFirst(params, ';');
        params = rest;
        if (param.empty())
            continue;
        auto [name, value] = splitFirst(param, '=');
        uri.params.emplace_back(std::string(name), std::string(value));
    }
    return uri;
}

std::string
SipUri::toString() const
{
    std::string out = "sip:";
    if (!user.empty()) {
        out += user;
        out += '@';
    }
    out += host;
    if (port) {
        out += ':';
        out += std::to_string(port);
    }
    for (const auto &[name, value] : params) {
        out += ';';
        out += name;
        if (!value.empty()) {
            out += '=';
            out += value;
        }
    }
    return out;
}

std::optional<std::string_view>
SipUri::param(std::string_view name) const
{
    for (const auto &[pname, pvalue] : params) {
        if (pname == name)
            return std::string_view(pvalue);
    }
    return std::nullopt;
}

std::optional<net::Addr>
addrFromUri(const SipUri &uri)
{
    if (uri.host.size() < 2 || uri.host[0] != 'h')
        return std::nullopt;
    std::uint32_t id = 0;
    auto sv = std::string_view(uri.host).substr(1);
    auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), id);
    if (ec != std::errc() || ptr != sv.data() + sv.size())
        return std::nullopt;
    return net::Addr{id, uri.effectivePort()};
}

SipUri
uriForAddr(std::string user, net::Addr addr)
{
    SipUri uri;
    uri.user = std::move(user);
    uri.host = "h" + std::to_string(addr.host);
    uri.port = addr.port;
    return uri;
}

} // namespace siprox::sip

/**
 * @file
 * SIP message model (RFC 3261): requests and responses with an ordered
 * header list, typed accessors for the headers proxies route on, and
 * serialization. Parsing lives in sip/parser.hh.
 */

#ifndef SIPROX_SIP_MESSAGE_HH
#define SIPROX_SIP_MESSAGE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sip/uri.hh"

namespace siprox::sip {

/** Request methods used in VoIP call flows. */
enum class Method
{
    Invite,
    Ack,
    Bye,
    Cancel,
    Register,
    Options,
    Unknown,
};

const char *methodName(Method m);
Method methodFromName(std::string_view name);

/** Status codes appearing in the paper's call flows. */
namespace status {
inline constexpr int kTrying = 100;
inline constexpr int kRinging = 180;
inline constexpr int kOk = 200;
inline constexpr int kMovedTemporarily = 302;
inline constexpr int kBadRequest = 400;
inline constexpr int kUnauthorized = 401;
inline constexpr int kNotFound = 404;
inline constexpr int kRequestTimeout = 408;
inline constexpr int kServerError = 500;
inline constexpr int kServiceUnavailable = 503;
} // namespace status

/** Default reason phrase for a status code. */
const char *reasonPhrase(int status);

/** One header field (name is stored in canonical full form). */
struct Header
{
    std::string name;
    std::string value;
};

/** Parsed Via header value. */
struct Via
{
    std::string transport; ///< "UDP", "TCP", "SCTP"
    std::string host;
    std::uint16_t port = 0;
    std::string branch;

    static std::optional<Via> parse(std::string_view text);
    std::string toString() const;

    std::uint16_t effectivePort() const { return port ? port : 5060; }
};

/** Parsed CSeq header value. */
struct CSeq
{
    std::uint32_t number = 0;
    Method method = Method::Unknown;

    static std::optional<CSeq> parse(std::string_view text);
    std::string toString() const;
};

/**
 * A SIP request or response.
 */
class SipMessage
{
  public:
    SipMessage() = default;

    /** Construct a request line. */
    static SipMessage request(Method m, SipUri uri);

    /** Construct a response line. */
    static SipMessage response(int status, std::string reason = "");

    bool isRequest() const { return isRequest_; }
    bool isResponse() const { return !isRequest_; }

    Method method() const { return method_; }
    const SipUri &requestUri() const { return requestUri_; }
    void setRequestUri(SipUri uri) { requestUri_ = std::move(uri); }

    int statusCode() const { return status_; }
    const std::string &reason() const { return reason_; }
    bool isProvisional() const { return status_ >= 100 && status_ < 200; }
    bool isFinal() const { return status_ >= 200; }
    bool isSuccess() const { return status_ >= 200 && status_ < 300; }

    // --- headers -------------------------------------------------------
    const std::vector<Header> &headers() const { return headers_; }

    /** Append a header at the end. */
    void addHeader(std::string name, std::string value);

    /** Prepend a header (used for Via insertion at proxies). */
    void prependHeader(std::string name, std::string value);

    /** First value of @p name (case-insensitive); nullopt if absent. */
    std::optional<std::string_view> header(std::string_view name) const;

    /** All values of @p name in order. */
    std::vector<std::string_view> headerAll(std::string_view name) const;

    /** Replace the first @p name or append it. */
    void setHeader(std::string_view name, std::string value);

    /** Remove the first @p name; true if one was removed. */
    bool removeFirstHeader(std::string_view name);

    // --- typed accessors -------------------------------------------------
    std::string_view callId() const;
    std::optional<CSeq> cseq() const;
    std::optional<Via> topVia() const;
    std::string_view from() const;
    std::string_view to() const;

    /** Contact header's URI, if present and parseable. */
    std::optional<SipUri> contactUri() const;

    /** Max-Forwards value; nullopt if absent/garbled. */
    std::optional<int> maxForwards() const;
    void setMaxForwards(int v);

    // --- body ------------------------------------------------------------
    const std::string &body() const { return body_; }
    void setBody(std::string body, std::string content_type = "");

    /** Render the message; recomputes Content-Length. */
    std::string serialize() const;

    /** Short one-line description for traces. */
    std::string summary() const;

  private:
    friend class Parser;

    bool isRequest_ = true;
    Method method_ = Method::Unknown;
    SipUri requestUri_;
    int status_ = 0;
    std::string reason_;
    std::vector<Header> headers_;
    std::string body_;
};

/** Case-insensitive ASCII string compare. */
bool iequals(std::string_view a, std::string_view b);

} // namespace siprox::sip

#endif // SIPROX_SIP_MESSAGE_HH

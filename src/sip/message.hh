/**
 * @file
 * SIP message model (RFC 3261): requests and responses with an ordered
 * header list, typed accessors for the headers proxies route on, and
 * serialization. Parsing lives in sip/parser.hh.
 *
 * Hot-path design (see docs/performance.md): a message owns its wire
 * bytes in a ref-counted arena and headers are string_view slices into
 * it, so parsing copies nothing per header. Well-known header names are
 * interned to a small enum id at insertion, making lookups an integer
 * compare instead of a case-insensitive scan. Mutation (Via prepend,
 * Max-Forwards rewrite) copies only the new bytes into the arena;
 * copies of a message share the arena. serialize() emits in one
 * exact-size pass and caches the result until the next mutation.
 */

#ifndef SIPROX_SIP_MESSAGE_HH
#define SIPROX_SIP_MESSAGE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/mem_stats.hh"
#include "sip/uri.hh"

namespace siprox::sip {

/** Request methods used in VoIP call flows. */
enum class Method
{
    Invite,
    Ack,
    Bye,
    Cancel,
    Register,
    Options,
    Unknown,
};

const char *methodName(Method m);
Method methodFromName(std::string_view name);

/** Status codes appearing in the paper's call flows. */
namespace status {
inline constexpr int kTrying = 100;
inline constexpr int kRinging = 180;
inline constexpr int kOk = 200;
inline constexpr int kMovedTemporarily = 302;
inline constexpr int kBadRequest = 400;
inline constexpr int kUnauthorized = 401;
inline constexpr int kNotFound = 404;
inline constexpr int kRequestTimeout = 408;
inline constexpr int kServerError = 500;
inline constexpr int kServiceUnavailable = 503;
} // namespace status

/** Default reason phrase for a status code. */
const char *reasonPhrase(int status);

/**
 * Interned ids for the headers proxies route on. Everything else is
 * HeaderId::Other and matches by case-insensitive name.
 */
enum class HeaderId : std::uint8_t
{
    Via,
    To,
    From,
    CallId,
    CSeq,
    Contact,
    MaxForwards,
    ContentLength,
    ContentType,
    Route,
    RecordRoute,
    /** Simulated hop-by-hop overload-feedback advertisement. */
    Overload,
    Other,
};

/** Id for @p name (case-insensitive, full names only; compact names
 *  are expanded by the parser before interning). */
HeaderId headerIdFor(std::string_view name);

/** Canonical name of a well-known id; empty for HeaderId::Other. */
std::string_view headerCanonicalName(HeaderId id);

namespace detail {

/**
 * Ref-counted bump arena backing one message (and its copies). The
 * first "chunk" is the adopted wire buffer; mutations intern new bytes
 * into fixed-size chunks. Chunk storage never moves, so string_views
 * into the arena stay valid as it grows.
 */
class MsgArena
{
  public:
    MsgArena() = default;

    explicit MsgArena(std::string wire) : wire_(std::move(wire))
    {
        // Adopted buffers arrive with producer-sized capacity (framer
        // rings, socket payload strings grown by doubling); the arena
        // retains that capacity for the whole message lifetime, so trim
        // gross overshoot now, before any view points into the bytes.
        if (wire_.capacity() > wire_.size() + kChunkSize)
            wire_.shrink_to_fit();
        tracked_ = wire_.capacity();
        sim::mem::ledgers().arena.add(tracked_);
    }

    MsgArena(const MsgArena &) = delete;
    MsgArena &operator=(const MsgArena &) = delete;

    ~MsgArena() { sim::mem::ledgers().arena.sub(tracked_); }

    /** The adopted wire bytes (empty for built messages). */
    std::string_view wire() const { return wire_; }

    /** Copy @p s into the arena; the returned view is stable. */
    std::string_view
    intern(std::string_view s)
    {
        if (s.empty())
            return {};
        char *p = alloc(s.size());
        std::memcpy(p, s.data(), s.size());
        return {p, s.size()};
    }

    /** Reserve @p n stable bytes (caller fills them). */
    char *
    alloc(std::size_t n)
    {
        if (chunks_.empty()
            || chunks_.back().used + n > chunks_.back().cap) {
            Chunk c;
            c.cap = n > kChunkSize ? n : kChunkSize;
            c.data = std::make_unique<char[]>(c.cap);
            chunks_.push_back(std::move(c));
            tracked_ += c.cap;
            sim::mem::ledgers().arena.add(c.cap);
        }
        Chunk &c = chunks_.back();
        char *p = c.data.get() + c.used;
        c.used += n;
        return p;
    }

  private:
    static constexpr std::size_t kChunkSize = 256;

    struct Chunk
    {
        std::unique_ptr<char[]> data;
        std::size_t used = 0;
        std::size_t cap = 0;
    };

    std::string wire_;
    std::vector<Chunk> chunks_;
    /** Bytes this arena reported to the retained-bytes ledger. */
    std::size_t tracked_ = 0;
};

} // namespace detail

/**
 * One header field. @p name is the canonical static literal for
 * well-known headers, otherwise a slice of the message arena; @p value
 * is a slice of the arena (or of static storage for built constants).
 */
struct Header
{
    HeaderId id = HeaderId::Other;
    std::string_view name;
    std::string_view value;
};

/** Parsed Via header value. */
struct Via
{
    std::string transport; ///< "UDP", "TCP", "SCTP"
    std::string host;
    std::uint16_t port = 0;
    std::string branch;

    static std::optional<Via> parse(std::string_view text);
    std::string toString() const;

    std::uint16_t effectivePort() const { return port ? port : 5060; }
};

/** Parsed CSeq header value. */
struct CSeq
{
    std::uint32_t number = 0;
    Method method = Method::Unknown;

    static std::optional<CSeq> parse(std::string_view text);
    std::string toString() const;
};

/**
 * A SIP request or response.
 */
class SipMessage
{
  public:
    SipMessage() = default;

    SipMessage(const SipMessage &o);
    SipMessage &operator=(const SipMessage &o);
    SipMessage(SipMessage &&) = default;
    SipMessage &operator=(SipMessage &&) = default;

    /** Construct a request line. */
    static SipMessage request(Method m, SipUri uri);

    /** Construct a response line. */
    static SipMessage response(int status, std::string reason = "");

    bool isRequest() const { return isRequest_; }
    bool isResponse() const { return !isRequest_; }

    Method method() const { return method_; }
    const SipUri &requestUri() const { return requestUri_; }

    void
    setRequestUri(SipUri uri)
    {
        requestUri_ = std::move(uri);
        wireCacheValid_ = false;
    }

    int statusCode() const { return status_; }
    const std::string &reason() const { return reason_; }
    bool isProvisional() const { return status_ >= 100 && status_ < 200; }
    bool isFinal() const { return status_ >= 200; }
    bool isSuccess() const { return status_ >= 200 && status_ < 300; }

    // --- headers -------------------------------------------------------
    const std::vector<Header> &headers() const { return headers_; }

    /** Append a header at the end. */
    void addHeader(std::string_view name, std::string_view value);

    /** Prepend a header (used for Via insertion at proxies). */
    void prependHeader(std::string_view name, std::string_view value);

    /**
     * Prepend a Via header, rendering @p via directly into the arena
     * (equivalent to prependHeader("Via", via.toString()) without the
     * temporary string).
     */
    void prependVia(const Via &via);

    /** First value of @p name (case-insensitive); nullopt if absent. */
    std::optional<std::string_view> header(std::string_view name) const;

    /** First value of a well-known header; O(headers) id compares. */
    std::optional<std::string_view> header(HeaderId id) const;

    /** All values of @p name in order. */
    std::vector<std::string_view> headerAll(std::string_view name) const;

    /** All values of a well-known header in order. */
    std::vector<std::string_view> headerAll(HeaderId id) const;

    /** Replace the first @p name or append it. */
    void setHeader(std::string_view name, std::string_view value);

    /** Remove the first @p name; true if one was removed. */
    bool removeFirstHeader(std::string_view name);
    bool removeFirstHeader(HeaderId id);

    // --- typed accessors -------------------------------------------------
    std::string_view callId() const;

    /** CSeq, decoded once and cached until a CSeq header mutates. */
    std::optional<CSeq> cseq() const;

    /** Top Via, decoded once and cached until a Via header mutates. */
    const std::optional<Via> &topVia() const;

    std::string_view from() const;
    std::string_view to() const;

    /** Contact header's URI, if present and parseable. */
    std::optional<SipUri> contactUri() const;

    /** Max-Forwards value; nullopt if absent/garbled. */
    std::optional<int> maxForwards() const;
    void setMaxForwards(int v);

    // --- body ------------------------------------------------------------
    std::string_view body() const { return body_; }
    void setBody(std::string_view body, std::string_view content_type = "");

    /**
     * Render the message (Content-Length recomputed) in one exact-size
     * pass. The rendering is cached until the next mutation, so
     * repeated calls cost one string copy each.
     */
    std::string serialize() const;

    /** Serialized size in bytes (renders into the cache if needed). */
    std::size_t serializedSize() const;

    /** Short one-line description for traces. */
    std::string summary() const;

  private:
    friend class Parser;

    /** The arena, created on first mutation of a built message. */
    detail::MsgArena &arena();

    /** Copy @p s into this message's arena. */
    std::string_view intern(std::string_view s);

    /** Drop caches invalidated by a mutation of header @p id. */
    void
    noteMutation(HeaderId id)
    {
        wireCacheValid_ = false;
        if (id == HeaderId::Via)
            viaCacheValid_ = false;
        else if (id == HeaderId::CSeq)
            cseqCacheValid_ = false;
    }

    void buildWire() const;

    bool isRequest_ = true;
    Method method_ = Method::Unknown;
    SipUri requestUri_;
    int status_ = 0;
    std::string reason_;
    std::vector<Header> headers_;
    std::string_view body_;
    std::shared_ptr<detail::MsgArena> arena_;

    // Caches; never copied, rebuilt on demand.
    mutable std::string wireCache_;
    mutable bool wireCacheValid_ = false;
    mutable std::optional<CSeq> cseqCache_;
    mutable bool cseqCacheValid_ = false;
    mutable std::optional<Via> viaCache_;
    mutable bool viaCacheValid_ = false;
};

/** Case-insensitive ASCII string compare. */
bool iequals(std::string_view a, std::string_view b);

} // namespace siprox::sip

#endif // SIPROX_SIP_MESSAGE_HH

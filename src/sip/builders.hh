/**
 * @file
 * Constructors for well-formed SIP messages: requests with the full
 * header set a proxy expects, responses derived from requests per RFC
 * 3261 §8.2.6, and ACKs. Used by the phones and by tests.
 */

#ifndef SIPROX_SIP_BUILDERS_HH
#define SIPROX_SIP_BUILDERS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sip/message.hh"
#include "sip/uri.hh"

namespace siprox::sip {

/** Everything needed to build a request. */
struct RequestSpec
{
    Method method = Method::Invite;
    SipUri requestUri;          ///< where the request is aimed
    SipUri from;                ///< caller AoR
    SipUri to;                  ///< callee AoR
    std::string fromTag;
    std::string toTag;          ///< empty outside a dialog
    std::string callId;
    std::uint32_t cseq = 1;
    std::string viaTransport = "UDP";
    SipUri viaSentBy;           ///< host:port the sender listens on
    std::string branch;
    std::optional<SipUri> contact;
    int maxForwards = 70;
};

/** Build a request with Via/From/To/Call-ID/CSeq/Max-Forwards. */
SipMessage buildRequest(const RequestSpec &spec);

/**
 * Build a response to @p req: copies Via stack, From, To (adding
 * @p to_tag if non-empty), Call-ID, and CSeq (RFC 3261 §8.2.6.2).
 */
SipMessage buildResponse(const SipMessage &req, int status,
                         const std::string &to_tag = "",
                         std::optional<SipUri> contact = std::nullopt);

/**
 * Build the ACK for a final response to @p invite (2xx ACK: new branch
 * supplied by the caller; non-2xx ACK reuses the INVITE branch).
 */
SipMessage buildAck(const SipMessage &invite, const SipMessage &final,
                    const std::string &branch);

/** A small realistic SDP body for INVITE/200 OK. */
std::string defaultSdp(const SipUri &origin);

} // namespace siprox::sip

#endif // SIPROX_SIP_BUILDERS_HH

#include "sip/builders.hh"

namespace siprox::sip {

namespace {

std::string
nameAddr(const SipUri &uri, const std::string &tag)
{
    std::string out = "<" + uri.toString() + ">";
    if (!tag.empty())
        out += ";tag=" + tag;
    return out;
}

} // namespace

SipMessage
buildRequest(const RequestSpec &spec)
{
    SipMessage msg = SipMessage::request(spec.method, spec.requestUri);
    Via via;
    via.transport = spec.viaTransport;
    via.host = spec.viaSentBy.host;
    via.port = spec.viaSentBy.port;
    via.branch = spec.branch;
    msg.addHeader("Via", via.toString());
    msg.addHeader("Max-Forwards", std::to_string(spec.maxForwards));
    msg.addHeader("From", nameAddr(spec.from, spec.fromTag));
    msg.addHeader("To", nameAddr(spec.to, spec.toTag));
    msg.addHeader("Call-ID", spec.callId);
    msg.addHeader("CSeq",
                  CSeq{spec.cseq, spec.method}.toString());
    if (spec.contact)
        msg.addHeader("Contact", "<" + spec.contact->toString() + ">");
    msg.addHeader("User-Agent", "siprox-phone/1.0");
    if (spec.method == Method::Invite)
        msg.setBody(defaultSdp(spec.from), "application/sdp");
    return msg;
}

SipMessage
buildResponse(const SipMessage &req, int status, const std::string &to_tag,
              std::optional<SipUri> contact)
{
    SipMessage rsp = SipMessage::response(status);
    for (auto via : req.headerAll(HeaderId::Via))
        rsp.addHeader("Via", via);
    rsp.addHeader("From", req.from());
    std::string to(req.to());
    if (!to_tag.empty() && to.find(";tag=") == std::string::npos)
        to += ";tag=" + to_tag;
    rsp.addHeader("To", to);
    rsp.addHeader("Call-ID", req.callId());
    if (auto cs = req.header(HeaderId::CSeq))
        rsp.addHeader("CSeq", *cs);
    if (contact)
        rsp.addHeader("Contact", "<" + contact->toString() + ">");
    if (status == status::kOk && req.method() == Method::Invite) {
        auto to_uri = SipUri::parse(
            to.substr(to.find('<') + 1,
                      to.find('>') - to.find('<') - 1));
        rsp.setBody(defaultSdp(to_uri.value_or(SipUri{})),
                    "application/sdp");
    }
    return rsp;
}

SipMessage
buildAck(const SipMessage &invite, const SipMessage &final,
         const std::string &branch)
{
    SipMessage ack =
        SipMessage::request(Method::Ack, invite.requestUri());
    auto via = invite.topVia().value_or(Via{});
    via.branch = branch;
    ack.addHeader("Via", via.toString());
    ack.addHeader("Max-Forwards", "70");
    ack.addHeader("From", invite.from());
    // The To of the ACK carries the tag from the final response.
    ack.addHeader("To", final.to());
    ack.addHeader("Call-ID", invite.callId());
    auto cseq = invite.cseq().value_or(CSeq{});
    ack.addHeader("CSeq", CSeq{cseq.number, Method::Ack}.toString());
    return ack;
}

std::string
defaultSdp(const SipUri &origin)
{
    std::string host = origin.host.empty() ? "h0" : origin.host;
    std::string user = origin.user.empty() ? "anon" : origin.user;
    return "v=0\r\n"
           "o=" + user + " 2890844526 2890844526 IN IP4 " + host + "\r\n"
           "s=call\r\n"
           "c=IN IP4 " + host + "\r\n"
           "t=0 0\r\n"
           "m=audio 49170 RTP/AVP 0 8\r\n"
           "a=rtpmap:0 PCMU/8000\r\n"
           "a=rtpmap:8 PCMA/8000\r\n";
}

} // namespace siprox::sip

/**
 * @file
 * RFC 3261 timer constants (§17, Table 4), used by the stateful proxy's
 * retransmission machinery and by the phones' UAC/UAS loops.
 */

#ifndef SIPROX_SIP_TIMERS_HH
#define SIPROX_SIP_TIMERS_HH

#include "sim/time.hh"

namespace siprox::sip::timers {

using sim::SimTime;

/** RTT estimate: base retransmission interval. */
inline constexpr SimTime kT1 = sim::msecs(500);
/** Maximum retransmission interval for non-INVITE requests. */
inline constexpr SimTime kT2 = sim::secs(4);
/** Maximum duration a message remains in the network. */
inline constexpr SimTime kT4 = sim::secs(5);
/** INVITE transaction timeout (Timer B/F): 64*T1. */
inline constexpr SimTime kTimerB = 64 * kT1;
/** Completed-state linger for INVITE server transactions (Timer H). */
inline constexpr SimTime kTimerH = 64 * kT1;

} // namespace siprox::sip::timers

#endif // SIPROX_SIP_TIMERS_HH

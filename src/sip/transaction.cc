#include "sip/transaction.hh"

namespace siprox::sip {

std::optional<TransactionKey>
transactionKey(const SipMessage &msg)
{
    const auto &via = msg.topVia();
    if (!via || via->branch.empty())
        return std::nullopt;
    auto cseq = msg.cseq();
    if (!cseq)
        return std::nullopt;
    Method m = cseq->method;
    // ACK for a non-2xx response and CANCEL match the INVITE
    // transaction they refer to (RFC 3261 17.2.3): same branch.
    if (m == Method::Ack || m == Method::Cancel)
        m = Method::Invite;
    return TransactionKey{std::string(via->branch), m};
}

} // namespace siprox::sip

/**
 * @file
 * Retained-bytes accounting for the simulator's long-lived allocation
 * pools.
 *
 * The 100k-phone sweeps are footprint-bound, and the heavy retainers
 * are not transient strings but the recycling pools: SIP message
 * arenas (wire buffer + intern chunks, held for the message lifetime),
 * the event-queue slot slabs (never shrink), and the coroutine frame
 * pool (blocks recycle forever within a thread). Each gets a ledger of
 * currently-retained bytes plus a high-water mark, cheap enough to
 * leave on always (two adds on the allocation slow path only — pool
 * hits and bump-pointer allocations don't touch the ledger).
 *
 * Ledgers are thread_local like the pools they mirror; the simulator
 * is single-threaded per scenario, so runner code reads its own
 * thread's ledgers. Peaks are reset at scenario start (resetPeaks())
 * and reported as metrics gauges — NOT digest material, since byte
 * counts depend on allocator/layout details that may shift across
 * hosts and toolchains.
 */

#ifndef SIPROX_SIM_MEM_STATS_HH
#define SIPROX_SIM_MEM_STATS_HH

#include <cstddef>
#include <cstdint>

namespace siprox::sim::mem {

/** Retained bytes + high-water mark for one subsystem. */
struct Ledger
{
    std::uint64_t current = 0;
    std::uint64_t peak = 0;

    void
    add(std::size_t n)
    {
        current += n;
        if (current > peak)
            peak = current;
    }

    /** Clamped: a subsystem that can't observe its teardown (e.g. a
     *  thread_local pool torn down after this ledger) must simply not
     *  call sub — the clamp keeps a stray mismatch from wrapping. */
    void
    sub(std::size_t n)
    {
        current -= n <= current ? n : current;
    }

    void resetPeak() { peak = current; }
};

/** One ledger per retaining subsystem. */
struct Ledgers
{
    /** SIP message arenas: adopted wire buffers + intern chunks. */
    Ledger arena;
    /** Event-queue slot slabs (grow-only per simulation). */
    Ledger eventSlab;
    /** Coroutine frame pool blocks drawn from the heap. */
    Ledger framePool;

    void
    resetPeaks()
    {
        arena.resetPeak();
        eventSlab.resetPeak();
        framePool.resetPeak();
    }
};

inline Ledgers &
ledgers()
{
    thread_local Ledgers ls;
    return ls;
}

} // namespace siprox::sim::mem

#endif // SIPROX_SIM_MEM_STATS_HH

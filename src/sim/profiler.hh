/**
 * @file
 * Simulated-CPU profiler. Every CPU burst in the simulation is charged
 * to a named cost center; per-machine totals give an OProfile-style
 * "top functions" view over simulated time, which the paper's §5 profile
 * claims are reproduced against.
 */

#ifndef SIPROX_SIM_PROFILER_HH
#define SIPROX_SIM_PROFILER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace siprox::sim {

/** Interned identifier for a profiler cost center. */
using CostCenterId = std::uint32_t;

/**
 * Global registry of cost-center names. Interning is process-global so
 * ids can be cached in static locals at charge sites.
 */
class CostCenters
{
  public:
    /** Intern @p name, returning its stable id. */
    static CostCenterId id(std::string_view name);

    /** Name for an interned id. */
    static const std::string &name(CostCenterId id);

    /** Number of interned centers. */
    static std::size_t count();
};

/**
 * Accumulates simulated CPU time per cost center for one machine.
 */
class Profiler
{
  public:
    /** One row of a profile report. */
    struct Line
    {
        std::string name;
        SimTime time = 0;
        double pct = 0.0;
    };

    /** Charge @p t of simulated CPU to center @p cc. */
    void
    charge(CostCenterId cc, SimTime t)
    {
        if (cc >= totals_.size())
            totals_.resize(cc + 1, 0);
        totals_[cc] += t;
        total_ += t;
    }

    /** Total busy CPU time across all centers. */
    SimTime total() const { return total_; }

    /** Time charged to center @p cc. */
    SimTime
    at(CostCenterId cc) const
    {
        return cc < totals_.size() ? totals_[cc] : 0;
    }

    /** Time charged to the center named @p name. */
    SimTime at(std::string_view name) const;

    /** Fraction of busy time spent in @p name, in [0,1]. */
    double share(std::string_view name) const;

    /** The @p n largest centers, descending. */
    std::vector<Line> top(std::size_t n = 15) const;

    /** Human-readable top-N report. */
    std::string report(std::size_t n = 15) const;

    void
    reset()
    {
        totals_.assign(totals_.size(), 0);
        total_ = 0;
    }

  private:
    std::vector<SimTime> totals_;
    SimTime total_ = 0;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_PROFILER_HH

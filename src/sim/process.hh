/**
 * @file
 * Simulated OS process. A Process wraps a root Task coroutine and
 * provides the awaitable "syscalls" through which the body consumes
 * simulated CPU time, sleeps, yields, and blocks on primitives.
 */

#ifndef SIPROX_SIM_PROCESS_HH
#define SIPROX_SIM_PROCESS_HH

#include <coroutine>
#include <exception>
#include <string>

#include "sim/profiler.hh"
#include "sim/task.hh"
#include "sim/time.hh"
#include "sim/trace.hh"

namespace siprox::sim {

class Machine;
class Simulation;
class CpuScheduler;

/**
 * One simulated process. Created via Machine::spawn(); the body is a
 * Task coroutine that interacts with simulated time exclusively through
 * the awaitables below.
 */
class Process
{
  public:
    enum class State
    {
        /** Waiting in the CPU run queue. */
        Ready,
        /** Occupying a core. */
        Running,
        /** Executing non-CPU (zero simulated cost) code. */
        Executing,
        /** Blocked on a primitive (channel, lock, sleep, poll). */
        Blocked,
        /** Woken; resume event pending. */
        Waking,
        /** Root task finished. */
        Terminated,
    };

    /** Awaitable that consumes CPU through the machine's scheduler. */
    struct CpuAwait
    {
        Process &proc;
        SimTime cost;
        CostCenterId center;

        bool await_ready() const noexcept { return cost <= 0; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}
    };

    /** Awaitable implementing sched_yield semantics. */
    struct YieldAwait
    {
        Process &proc;

        bool await_ready() const noexcept;
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}
    };

    /** Awaitable that parks the process until wake() is called. */
    struct BlockAwait
    {
        Process &proc;
        const char *reason;
        trace::Wait cls;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}
    };

    Process(Machine &machine, std::string name, int nice);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /**
     * Consume @p cost of simulated CPU, charged to @p center. The
     * process competes for the machine's cores; resumption time
     * includes queueing, context switches, and preemption.
     */
    CpuAwait
    cpu(SimTime cost, CostCenterId center)
    {
        return CpuAwait{*this, cost, center};
    }

    /** Convenience overload interning the center name per call site. */
    CpuAwait
    cpu(SimTime cost, std::string_view center)
    {
        return CpuAwait{*this, cost, CostCenters::id(center)};
    }

    /**
     * sched_yield: requeue at the tail of this priority level if anyone
     * else is runnable; otherwise continue immediately.
     */
    YieldAwait yieldCpu() { return YieldAwait{*this}; }

    /** Sleep for @p d of simulated time (no CPU consumed). */
    Task sleepFor(SimTime d);

    /**
     * Park until wake(). Callers must re-check their condition on
     * resume (Mesa semantics): wakeups may be spurious. @p cls
     * classifies the wait for span attribution (IPC vs socket vs
     * lock...), so per-call breakdowns name the right category.
     */
    BlockAwait
    block(const char *reason, trace::Wait cls = trace::Wait::Sleep)
    {
        return BlockAwait{*this, reason, cls};
    }

    /**
     * Wake a Blocked process. Safe to call redundantly; only the first
     * wake between blocks has an effect.
     */
    void wake();

    Machine &machine() const { return machine_; }
    Simulation &sim() const;

    const std::string &name() const { return name_; }
    int pid() const { return pid_; }
    State state() const { return state_; }
    bool terminated() const { return state_ == State::Terminated; }

    /** Why the process is currently blocked (diagnostics). */
    const char *blockReason() const { return blockReason_; }

    /** Scheduling priority; lower is more favored (nice -20..19). */
    int nice() const { return nice_; }
    void setNice(int nice) { nice_ = nice; }

    /**
     * Effective (dynamic) priority, Linux 2.6 O(1)-style: processes
     * that sleep a lot earn an interactivity bonus of up to 5 levels.
     * A CPU-bound nice-0 supervisor therefore queues behind its own
     * sleepy workers — the starvation the paper's §4.3 priority
     * elevation works around.
     */
    int
    dynNice() const
    {
        int bonus = static_cast<int>(sleepAvg_ / sim::msecs(200));
        if (bonus > 5)
            bonus = 5;
        int dyn = nice_ - bonus;
        return dyn < -20 ? -20 : dyn;
    }

    /** Recent-sleep accumulator behind the interactivity bonus. */
    SimTime sleepAvg() const { return sleepAvg_; }

    /** Total simulated CPU consumed, including context-switch shares. */
    SimTime cpuTime() const { return cpuTime_; }

    /** Exception that escaped the root task, if any. */
    std::exception_ptr failure() const { return failure_; }

    /**
     * The causal span currently attributed to this process, if any.
     * While set, the scheduler and blocking primitives add every
     * elapsed nanosecond to one of its wait buckets. Only installed
     * while a recorder observes, so the null check is the entire
     * hot-path cost.
     */
    trace::SpanCtx *span() const { return span_; }
    void setSpan(trace::SpanCtx *span) { span_ = span; }

  private:
    friend class Machine;
    friend class CpuScheduler;

    /** Bind and start the root task (Machine::spawn). */
    void adoptRoot(Task root);

    Machine &machine_;
    std::string name_;
    int nice_;
    int pid_ = -1;
    State state_ = State::Executing;
    const char *blockReason_ = "";

    Task root_;
    std::coroutine_handle<> resumePoint_;

    // Scheduler bookkeeping.
    SimTime remaining_ = 0;
    CostCenterId center_ = 0;
    bool queued_ = false;

    SimTime cpuTime_ = 0;
    SimTime sleepAvg_ = 0;
    SimTime blockStart_ = 0;
    SimTime queuedAt_ = 0;
    trace::Wait blockClass_ = trace::Wait::Sleep;
    trace::SpanCtx *span_ = nullptr;
    std::exception_ptr failure_;
};

/**
 * RAII causal-span scope. When a recorder is installed, installs a
 * fresh SpanCtx on @p p for the enclosing scope and reports it to the
 * recorder on scope exit; otherwise does nothing (and allocates
 * nothing). Safe across co_await: coroutine locals are destroyed when
 * the body scope exits. If the recorder was removed mid-span (e.g.
 * teardown), the span is dropped instead of reported.
 */
class SpanScope
{
  public:
    explicit SpanScope(Process &p);
    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** The span being recorded, or nullptr when not recording. */
    trace::SpanCtx *ctx() { return active_ ? &span_ : nullptr; }

  private:
    Process &p_;
    trace::SpanCtx span_;
    bool active_ = false;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_PROCESS_HH

/**
 * @file
 * A simulated machine: a set of CPU cores with a scheduler, a profiler,
 * and the processes spawned onto it.
 */

#ifndef SIPROX_SIM_MACHINE_HH
#define SIPROX_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/process.hh"
#include "sim/profiler.hh"
#include "sim/scheduler.hh"
#include "sim/time.hh"

namespace siprox::sim {

class Simulation;

/** Machine-wide tunables. */
struct MachineConfig
{
    SchedConfig sched;
    /** One failed try-lock iteration of a spin-then-yield lock. */
    SimTime spinTryCost = usecs(0.4);
};

/**
 * A host in the simulated testbed (the proxy server or a client box).
 */
class Machine
{
  public:
    Machine(Simulation &sim, std::string name, int cores,
            MachineConfig cfg = {});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Create a process and start its root task at the current time.
     *
     * @param name Process name (diagnostics, profiler).
     * @param nice Static priority, -20 (highest) .. 19.
     * @param factory Invoked once with the new Process to produce the
     *        root Task. The factory may capture; the coroutine function
     *        it calls must take its context as parameters.
     */
    Process &spawn(std::string name, int nice,
                   std::function<Task(Process &)> factory);

    Simulation &sim() const { return sim_; }
    const std::string &name() const { return name_; }

    /** Position in Simulation::machines() (stable; trace track id). */
    int id() const { return id_; }
    CpuScheduler &scheduler() { return sched_; }
    Profiler &profiler() { return prof_; }
    const Profiler &profiler() const { return prof_; }
    const MachineConfig &config() const { return cfg_; }

    /** All processes ever spawned (including terminated ones). */
    const std::vector<std::unique_ptr<Process>> &
    processes() const
    {
        return procs_;
    }

    /**
     * Record one contended lock acquisition that waited @p waited
     * before succeeding (SpinLock spins, SimMutex blocks). Always-on
     * machine counters so windowed telemetry can diff them without a
     * trace recorder attached.
     */
    void
    noteLockContention(SimTime waited)
    {
        lockContendTime_ += waited;
        ++lockContentions_;
    }

    /** Cumulative time processes spent waiting on contended locks. */
    SimTime lockContendTime() const { return lockContendTime_; }

    /** Number of contended lock acquisitions. */
    std::uint64_t lockContentions() const { return lockContentions_; }

    /** Fraction of total core time busy over [0, elapsed]. */
    double
    utilization(SimTime elapsed) const
    {
        if (elapsed <= 0)
            return 0.0;
        double capacity = static_cast<double>(elapsed)
            * sched_.cores();
        return static_cast<double>(sched_.busyTime()) / capacity;
    }

  private:
    friend class Simulation;

    Simulation &sim_;
    std::string name_;
    int id_ = 0;
    MachineConfig cfg_;
    Profiler prof_;
    CpuScheduler sched_;
    std::vector<std::unique_ptr<Process>> procs_;
    int nextPid_ = 1;
    SimTime lockContendTime_ = 0;
    std::uint64_t lockContentions_ = 0;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_MACHINE_HH

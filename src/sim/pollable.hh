/**
 * @file
 * Readiness interface and an epoll/select-style wait. Sockets and
 * channels implement Pollable; event loops wait on several at once.
 */

#ifndef SIPROX_SIM_POLLABLE_HH
#define SIPROX_SIM_POLLABLE_HH

#include <vector>

#include "sim/process.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace siprox::sim {

/**
 * Something an event loop can wait on. Implementations call
 * notifyPollWaiters() whenever pollReady() may have become true.
 */
class Pollable
{
  public:
    virtual ~Pollable() = default;

    /** True if a wait on this object would not block. */
    virtual bool pollReady() const = 0;

    void
    addPollWaiter(Process *p)
    {
        pollWaiters_.push_back(p);
    }

    void
    removePollWaiter(Process *p)
    {
        for (auto it = pollWaiters_.begin(); it != pollWaiters_.end();
             ++it) {
            if (*it == p) {
                pollWaiters_.erase(it);
                return;
            }
        }
    }

  protected:
    /** Wake every process polling on this object. */
    void
    notifyPollWaiters()
    {
        // Waiters deregister themselves; iterate over a copy.
        auto waiters = pollWaiters_;
        for (Process *p : waiters)
            p->wake();
    }

  private:
    std::vector<Process *> pollWaiters_;
};

/**
 * Wait until one of @p items is ready or @p timeout elapses.
 *
 * @param self The polling process.
 * @param items Objects to wait on (the vector and the pointers must
 *        stay valid until the poll returns; passing by reference keeps
 *        this hot call allocation-free).
 * @param timeout Relative timeout; kTimeNever blocks indefinitely; 0
 *        makes the poll non-blocking.
 * @param ready_index Receives the index of the first ready item, or -1
 *        on timeout.
 */
Task poll(Process &self, const std::vector<Pollable *> &items,
          SimTime timeout, int &ready_index);

/**
 * Wait until at least one of @p items is ready or @p timeout elapses,
 * collecting the indices of *every* ready item (epoll_wait semantics:
 * one wakeup reports the whole ready set, so an event loop services a
 * batch per scheduling round instead of one item per wakeup).
 *
 * @param ready Cleared, then filled with ready indices in item order;
 *        left empty on timeout. The caller must revalidate each entry
 *        as it services the batch — handling one item can retire
 *        another (e.g. closing a connection that was also ready).
 */
Task pollAll(Process &self, const std::vector<Pollable *> &items,
             SimTime timeout, std::vector<int> &ready);

} // namespace siprox::sim

#endif // SIPROX_SIM_POLLABLE_HH

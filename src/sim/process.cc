#include "sim/process.hh"

#include <cassert>

#include "sim/machine.hh"
#include "sim/simulation.hh"

namespace siprox::sim {

Process::Process(Machine &machine, std::string name, int nice)
    : machine_(machine), name_(std::move(name)), nice_(nice)
{
    assert(nice >= -20 && nice <= 19);
}

Simulation &
Process::sim() const
{
    return machine_.sim();
}

void
Process::CpuAwait::await_suspend(std::coroutine_handle<> h)
{
    proc.resumePoint_ = h;
    proc.machine().scheduler().submit(&proc, cost, center);
}

bool
Process::YieldAwait::await_ready() const noexcept
{
    // Continue without suspending when yielding would be a no-op.
    return !proc.machine().scheduler().wouldYield(&proc);
}

void
Process::YieldAwait::await_suspend(std::coroutine_handle<> h)
{
    proc.machine().scheduler().submitYield(&proc, h);
}

void
Process::BlockAwait::await_suspend(std::coroutine_handle<> h)
{
    proc.state_ = State::Blocked;
    proc.blockReason_ = reason;
    proc.blockClass_ = cls;
    proc.resumePoint_ = h;
    proc.blockStart_ = proc.sim().now();
}

void
Process::wake()
{
    if (state_ != State::Blocked)
        return;
    state_ = State::Waking;
    sim().at(sim().now(), [this] {
        if (state_ != State::Waking)
            return;
        state_ = State::Executing;
        const char *reason = blockReason_;
        blockReason_ = "";
        SimTime blocked = sim().now() - blockStart_;
        if (span_)
            span_->add(blockClass_, blocked);
        if (trace::recording() && blocked > 0) {
            trace::recorder()->waitSlice(*this, blockClass_, reason,
                                         blockStart_, blocked);
        }
        // Credit the sleep toward the interactivity bonus (capped).
        sleepAvg_ += blocked;
        if (sleepAvg_ > secs(1))
            sleepAvg_ = secs(1);
        auto h = resumePoint_;
        resumePoint_ = nullptr;
        h.resume();
    });
}

Task
Process::sleepFor(SimTime d)
{
    SimTime deadline = sim().now() + d;
    while (sim().now() < deadline) {
        auto ev = sim().at(deadline, [this] { wake(); });
        co_await block("sleep");
        ev.cancel();
    }
}

SpanScope::SpanScope(Process &p) : p_(p)
{
    if (!trace::recording())
        return;
    span_.begin = p.sim().now();
    p.setSpan(&span_);
    active_ = true;
}

SpanScope::~SpanScope()
{
    if (!active_)
        return;
    if (p_.span() == &span_)
        p_.setSpan(nullptr);
    if (trace::recording())
        trace::recorder()->spanDone(p_, span_, p_.sim().now());
}

void
Process::adoptRoot(Task root)
{
    root_ = std::move(root);
    root_.setOnDone([this] {
        state_ = State::Terminated;
        failure_ = root_.exceptionPtr();
        if (failure_)
            sim().reportFailure(machine_.name() + "/" + name_, failure_);
    });
}

} // namespace siprox::sim

#include "sim/scheduler.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "sim/machine.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::sim {

CpuScheduler::CpuScheduler(Machine &machine, int cores, SchedConfig cfg)
    : machine_(machine), cfg_(cfg), cores_(cores),
      coreBusy_(cores, 0),
      schedCenter_(CostCenters::id("kernel:schedule")),
      spinCenter_(CostCenters::id("user:spinlock"))
{
    assert(cores > 0);
}

void
CpuScheduler::submit(Process *p, SimTime cost, CostCenterId center)
{
    p->remaining_ = cost;
    p->center_ = center;
    // Continuation: the process just finished a burst on some core and
    // has not blocked since. It stays on that core — no requeue, no
    // context switch — unless its quantum ran out and others wait.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core &c = cores_[i];
        if (c.hot != p)
            continue;
        SimTime now = machine_.sim().now();
        bool quantum_ok = runnable_ == 0
            || now - c.continuousStart < cfg_.quantum;
        c.hot = nullptr;
        if (quantum_ok) {
            SimTime keep_start = c.continuousStart;
            dispatch(i, p);
            c.continuousStart = keep_start;
            return;
        }
        break; // involuntary switch: queue at the tail
    }
    enqueue(p, false);
}

void
CpuScheduler::submitYield(Process *p, std::coroutine_handle<> h)
{
    p->resumePoint_ = h;
    p->remaining_ = 0;
    p->center_ = schedCenter_;
    // Linux 2.6 sched_yield demotes the caller to the expired array;
    // approximated here by forfeiting the interactivity bonus, so
    // spinning never starves a lower-bonus lock holder for long.
    p->sleepAvg_ = 0;
    enqueue(p, false);
}

bool
CpuScheduler::wouldYield(const Process *p) const
{
    // Linux 2.6 sched_yield moves the caller behind *everything*
    // runnable (the expired array), regardless of priority.
    (void)p;
    return runnable_ > 0;
}

int
CpuScheduler::busyCores() const
{
    int n = 0;
    for (const auto &c : cores_) {
        if (c.running)
            ++n;
    }
    return n;
}

void
CpuScheduler::enqueue(Process *p, bool front)
{
    p->state_ = Process::State::Ready;
    p->queued_ = true;
    p->queuedAt_ = machine_.sim().now();
    int idx = niceIndex(p->dynNice());
    auto &q = runq_[idx];
    if (front)
        q.push_front(p);
    else
        q.push_back(p);
    runqMask_ |= std::uint64_t{1} << idx;
    ++runnable_;
    tryDispatch();
    if (p->queued_)
        maybePreemptFor(p);
}

Process *
CpuScheduler::popBest()
{
    if (runqMask_ == 0)
        return nullptr;
    int idx = std::countr_zero(runqMask_);
    auto &q = runq_[idx];
    Process *p = q.front();
    q.pop_front();
    if (q.empty())
        runqMask_ &= ~(std::uint64_t{1} << idx);
    p->queued_ = false;
    --runnable_;
    return p;
}

void
CpuScheduler::tryDispatch()
{
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (cores_[i].running)
            continue;
        Process *p = popBest();
        if (!p)
            return;
        dispatch(i, p);
    }
}

void
CpuScheduler::maybePreemptFor(Process *p)
{
    if (!cfg_.preemption || !p->queued_)
        return;
    // Find the running process with the worst (numerically largest)
    // nice value; preempt it if p is strictly better.
    std::size_t victim_idx = cores_.size();
    int worst = p->dynNice();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Process *r = cores_[i].running;
        if (r && r->dynNice() > worst) {
            worst = r->dynNice();
            victim_idx = i;
        }
    }
    if (victim_idx == cores_.size())
        return;

    Core &c = cores_[victim_idx];
    Process *victim = c.running;
    SimTime now = machine_.sim().now();
    c.completion.cancel();
    SimTime ran = now - c.sliceStart;
    accountRun(c, ran);
    SimTime user_part = std::max<SimTime>(0, ran - c.ctxShare);
    victim->remaining_ = std::max<SimTime>(0, victim->remaining_
                                           - user_part);
    c.lastRun = victim;
    c.running = nullptr;

    // Remove p from its queue and give it the core *before* requeueing
    // the victim, so the recursive dispatch inside enqueue() cannot
    // hand the freed core (or p itself) to someone else first.
    int pidx = niceIndex(p->dynNice());
    auto &pq = runq_[pidx];
    pq.erase(std::find(pq.begin(), pq.end(), p));
    if (pq.empty())
        runqMask_ &= ~(std::uint64_t{1} << pidx);
    p->queued_ = false;
    --runnable_;
    dispatch(victim_idx, p);
    // Head of its own priority level so it resumes promptly; it was
    // the worst-priority running process, so it cannot preempt anyone.
    enqueue(victim, true);
}

void
CpuScheduler::dispatch(std::size_t core_idx, Process *p)
{
    Core &c = cores_[core_idx];
    assert(!c.running);
    c.running = p;
    c.hot = nullptr;
    p->state_ = Process::State::Running;
    SimTime now = machine_.sim().now();
    // Linux 2.6 credits time spent waiting on the runqueue toward
    // sleep_avg, so a starved CPU-bound process slowly climbs back —
    // the oscillation behind the paper's §4.3 supervisor anomaly.
    if (p->queuedAt_ > 0) {
        SimTime waited = now - p->queuedAt_;
        if (p->span_)
            p->span_->add(trace::Wait::RunQueue, waited);
        if (trace::recording() && waited > 0) {
            trace::recorder()->runqueueSlice(*p, p->queuedAt_,
                                             waited);
        }
        p->sleepAvg_ += waited;
        if (p->sleepAvg_ > secs(1))
            p->sleepAvg_ = secs(1);
        p->queuedAt_ = 0;
    }
    c.sliceStart = now;
    c.continuousStart = now;
    c.ctxShare = (c.lastRun != p) ? cfg_.ctxSwitchCost : 0;
    SimTime slice = c.ctxShare + std::min(p->remaining_, cfg_.quantum);
    c.completion = machine_.sim().at(
        now + slice, [this, core_idx] { onSliceEnd(core_idx); });
}

void
CpuScheduler::accountRun(Core &c, SimTime ran)
{
    Process *p = c.running;
    SimTime ctx_part = std::min(ran, c.ctxShare);
    SimTime user_part = ran - ctx_part;
    auto &prof = machine_.profiler();
    if (ctx_part > 0)
        prof.charge(schedCenter_, ctx_part);
    if (user_part > 0)
        prof.charge(p->center_, user_part);
    if (trace::SpanCtx *s = p->span_) {
        // Spin bursts are lock waits, not useful work; everything
        // else on-core (including the context-switch share) is CPU.
        bool spin = p->center_ == spinCenter_;
        s->add(spin ? trace::Wait::LockSpin : trace::Wait::Cpu,
               user_part);
        s->add(trace::Wait::Cpu, ctx_part);
    }
    if (trace::recording() && ran > 0) {
        auto core_idx = static_cast<int>(&c - cores_.data());
        trace::recorder()->runSlice(machine_, core_idx, *p,
                                    machine_.sim().now() - ran, ran,
                                    ctx_part);
    }
    p->cpuTime_ += ran;
    // Running drains the interactivity credit (Linux sleep_avg).
    p->sleepAvg_ = ran >= p->sleepAvg_ ? 0 : p->sleepAvg_ - ran;
    busyTime_ += ran;
    coreBusy_[static_cast<std::size_t>(&c - cores_.data())] += ran;
}

void
CpuScheduler::onSliceEnd(std::size_t core_idx)
{
    Core &c = cores_[core_idx];
    Process *p = c.running;
    assert(p);
    SimTime now = machine_.sim().now();
    SimTime ran = now - c.sliceStart;
    accountRun(c, ran);
    SimTime user_part = ran - std::min(ran, c.ctxShare);
    p->remaining_ -= user_part;
    c.lastRun = p;
    c.running = nullptr;

    if (p->remaining_ > 0) {
        // Quantum expired with work left: round-robin to the tail.
        enqueue(p, false);
        tryDispatch();
        return;
    }

    p->state_ = Process::State::Executing;
    auto h = p->resumePoint_;
    p->resumePoint_ = nullptr;
    // Open the continuation window: if p submits more CPU while we
    // resume it (synchronously), it keeps this core.
    c.hot = p;
    h.resume();
    if (cores_[core_idx].hot == p) {
        // p blocked, yielded, or terminated: the core is really free.
        cores_[core_idx].hot = nullptr;
        tryDispatch();
    }
}

} // namespace siprox::sim

/**
 * @file
 * Coroutine task type for simulated-process bodies.
 *
 * Every simulated process and every subroutine that can block in
 * simulated time is a coroutine returning Task. Awaiting a Task runs the
 * child to completion (in simulated time) and then resumes the parent via
 * symmetric transfer. Exceptions thrown inside a task propagate to the
 * awaiter; an exception escaping a process's root task is reported by the
 * Simulation run loop.
 *
 * Lifetime rule: a coroutine's *captures* are not part of its frame. Do
 * not write capturing-lambda coroutines; write named (member) functions
 * taking arguments by value and, if needed, wrap them in a capturing
 * lambda that merely *calls* the coroutine function.
 */

#ifndef SIPROX_SIM_TASK_HH
#define SIPROX_SIM_TASK_HH

#include <array>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "sim/mem_stats.hh"

namespace siprox::sim {

namespace detail {

/**
 * Size-bucketed recycler for coroutine frames. Simulated processes
 * create and destroy frames at very high rate (every cpu()/lock/recv
 * subroutine is a coroutine); recycling them avoids a heap round trip
 * per call. Blocks are returned to the heap when the thread exits.
 */
class FramePool
{
  public:
    static void *
    alloc(std::size_t n)
    {
        std::size_t b = bucket(n);
        if (b >= kBuckets) {
            mem::ledgers().framePool.add(n);
            return ::operator new(n);
        }
        auto &fl = lists().buckets[b];
        if (!fl.empty()) {
            void *p = fl.back();
            fl.pop_back();
            return p;
        }
        mem::ledgers().framePool.add((b + 1) * kGranule);
        return ::operator new((b + 1) * kGranule);
    }

    static void
    free(void *p, std::size_t n)
    {
        std::size_t b = bucket(n);
        if (b >= kBuckets) {
            mem::ledgers().framePool.sub(n);
            ::operator delete(p);
            return;
        }
        // Recycled blocks stay retained by the pool (no sub); heap
        // return happens only at thread exit, in ~Lists, which may run
        // after this thread's ledgers — so the pool never subs there.
        lists().buckets[b].push_back(p);
    }

  private:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kBuckets = 32; // frames up to 2 KiB

    static std::size_t
    bucket(std::size_t n)
    {
        return (n - 1) / kGranule;
    }

    struct Lists
    {
        std::array<std::vector<void *>, kBuckets> buckets;

        ~Lists()
        {
            for (auto &fl : buckets)
                for (void *p : fl)
                    ::operator delete(p);
        }
    };

    static Lists &
    lists()
    {
        thread_local Lists ls;
        return ls;
    }
};

} // namespace detail

/**
 * Lazily-started coroutine handle with continuation chaining.
 * Move-only; owns the coroutine frame.
 */
class [[nodiscard]] Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto &p = h.promise();
            p.done = true;
            if (p.onDone)
                p.onDone();
            if (p.continuation)
                return p.continuation;
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        /** Coroutine to resume when this task completes. */
        std::coroutine_handle<> continuation;
        /** Exception captured from the body, rethrown in the awaiter. */
        std::exception_ptr exception;
        /** Completion hook used by Process to observe root-task exit. */
        std::function<void()> onDone;
        bool done = false;

        Task get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        // Frames come from the recycling pool, not the global heap.
        static void *
        operator new(std::size_t n)
        {
            return detail::FramePool::alloc(n);
        }

        static void
        operator delete(void *p, std::size_t n)
        {
            detail::FramePool::free(p, n);
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;

    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if this task holds a live coroutine. */
    bool valid() const { return handle_ != nullptr; }

    /** True once the body has run to completion. */
    bool done() const { return !handle_ || handle_.promise().done; }

    /**
     * Start (or resume) the task without awaiting it. Used by Process
     * for root tasks; ordinary code should co_await instead.
     */
    void
    start()
    {
        if (handle_ && !handle_.done())
            handle_.resume();
    }

    /** Install a hook invoked when the task body finishes. */
    void
    setOnDone(std::function<void()> fn)
    {
        handle_.promise().onDone = std::move(fn);
    }

    /** The exception captured from the body, if any. */
    std::exception_ptr
    exceptionPtr() const
    {
        return handle_ ? handle_.promise().exception : nullptr;
    }

    /** Rethrow the task's captured exception, if any. */
    void
    rethrowIfFailed()
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    // Awaiter interface: co_await task starts the child and resumes the
    // parent when the child completes.
    bool await_ready() const noexcept { return !handle_ || handle_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        handle_.promise().continuation = parent;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_TASK_HH

/**
 * @file
 * Top-level simulation: owns the event queue, simulated time, and the
 * machines. Runs the event loop until quiescence, a deadline, or a
 * process failure.
 */

#ifndef SIPROX_SIM_SIMULATION_HH
#define SIPROX_SIM_SIMULATION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace siprox::sim {

/**
 * A deterministic discrete-event simulation. Single-threaded; all
 * nondeterminism flows from the seeded Rng.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Events run so far (wall-clock perf accounting). */
    std::uint64_t eventsRun() const { return events_.popped(); }

    /** The seed this simulation (and its RNG) was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    template <class F>
    EventHandle
    at(SimTime when, F &&fn)
    {
        return events_.schedule(when < now_ ? now_ : when,
                                std::forward<F>(fn));
    }

    /** Schedule @p fn after @p delay. */
    template <class F>
    EventHandle
    after(SimTime delay, F &&fn)
    {
        return events_.schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Add a machine with @p cores CPU cores. */
    Machine &addMachine(std::string name, int cores,
                        MachineConfig cfg = {});

    /**
     * Run until the event queue drains, stop() is called, or a process
     * fails. Throws the failing process's exception, if any.
     */
    void run();

    /** Run until simulated time @p deadline (inclusive of events at it). */
    void runUntil(SimTime deadline);

    /** Run for @p d more simulated time. */
    void runFor(SimTime d) { runUntil(now_ + d); }

    /** Request the run loop to return after the current event. */
    void stop() { stopped_ = true; }

    /** Record a root-task failure (called by Machine). */
    void reportFailure(const std::string &who, std::exception_ptr e);

    /** True if any process failed. */
    bool failed() const { return failure_ != nullptr; }

    /** Names and block reasons of all currently blocked processes. */
    std::vector<std::string> blockedReport() const;

    /** True if any non-terminated process exists (deadlock check aid). */
    bool hasLiveProcesses() const;

    Rng &rng() { return rng_; }

    const std::vector<std::unique_ptr<Machine>> &
    machines() const
    {
        return machines_;
    }

  private:
    void rethrowIfFailed();

    SimTime now_ = 0;
    std::uint64_t seed_ = 0;
    EventQueue events_;
    bool stopped_ = false;
    std::exception_ptr failure_;
    std::string failureWho_;
    Rng rng_;
    // Declared after events_ so machines (and coroutine frames they own)
    // are destroyed before the queue that may reference them.
    std::vector<std::unique_ptr<Machine>> machines_;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_SIMULATION_HH

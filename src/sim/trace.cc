#include "sim/trace.hh"

#include <cstdio>

namespace siprox::sim::trace {

namespace {

Sink &
sinkSlot()
{
    static Sink sink;
    return sink;
}

} // namespace

void
setSink(Sink sink)
{
    sinkSlot() = std::move(sink);
}

bool
enabled()
{
    return static_cast<bool>(sinkSlot());
}

void
log(SimTime now, std::string_view category, std::string_view msg)
{
    if (auto &sink = sinkSlot())
        sink(now, category, msg);
}

Sink
stdoutSink()
{
    return [](SimTime now, std::string_view cat, std::string_view msg) {
        std::printf("[%12.6f] %-12.*s %.*s\n", toSecs(now),
                    static_cast<int>(cat.size()), cat.data(),
                    static_cast<int>(msg.size()), msg.data());
    };
}

} // namespace siprox::sim::trace

#include "sim/trace.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "sim/machine.hh"
#include "sim/process.hh"

namespace siprox::sim::trace {

// ---------------------------------------------------------------------------
// Legacy line-oriented sink
// ---------------------------------------------------------------------------

namespace {

Sink &
sinkSlot()
{
    static Sink sink;
    return sink;
}

} // namespace

void
setSink(Sink sink)
{
    sinkSlot() = std::move(sink);
}

bool
enabled()
{
    return static_cast<bool>(sinkSlot());
}

void
log(SimTime now, std::string_view category, std::string_view msg)
{
    if (auto &sink = sinkSlot())
        sink(now, category, msg);
}

Sink
stdoutSink()
{
    return [](SimTime now, std::string_view cat, std::string_view msg) {
        std::printf("[%12.6f] %-12.*s %.*s\n", toSecs(now),
                    static_cast<int>(cat.size()), cat.data(),
                    static_cast<int>(msg.size()), msg.data());
    };
}

// ---------------------------------------------------------------------------
// Wait-state attribution
// ---------------------------------------------------------------------------

std::string_view
waitName(Wait w)
{
    switch (w) {
      case Wait::Cpu:
        return "cpu";
      case Wait::RunQueue:
        return "runqueue";
      case Wait::LockSpin:
        return "lockspin";
      case Wait::LockBlock:
        return "lockblock";
      case Wait::Ipc:
        return "ipc";
      case Wait::Socket:
        return "socket";
      case Wait::Sleep:
        return "sleep";
      case Wait::Throttled:
        return "throttled";
    }
    return "?";
}

SimTime
SpanCtx::waitSum() const
{
    SimTime sum = 0;
    for (SimTime w : wait)
        sum += w;
    return sum;
}

std::uint64_t
traceIdFor(std::string_view call_id)
{
    // FNV-1a 64: stable across runs, platforms, and library versions.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : call_id) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    // Avoid the reserved "no id" value for the (vanishingly unlikely)
    // Call-ID that hashes to zero.
    return h ? h : 1;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

namespace detail {
Recorder *g_recorder = nullptr;
} // namespace detail

void
setRecorder(Recorder *r)
{
    detail::g_recorder = r;
}

namespace {

/** Trace category table; Event::cat indexes into it. */
constexpr std::string_view kCats[] = {"sched", "wait", "lock",
                                      "span",  "call", "mark"};
constexpr char kCatSched = 0;
constexpr char kCatWait = 1;
constexpr char kCatLock = 2;
constexpr char kCatSpan = 3;
constexpr char kCatCall = 4;
constexpr char kCatMark = 5;

/** Synthetic trace-process hosting the per-call async tracks. */
constexpr int kCallsPid = 0;

void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendMicros(std::string &out, SimTime ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

} // namespace

Recorder::Recorder() : Recorder(Options{}) {}

Recorder::Recorder(Options opts) : opts_(opts)
{
    strings_.emplace_back(); // index 0: "no string"
    pidNames_[kCallsPid] = "calls";
    trackNames_[{kCallsPid, 0}] = "sip calls";
}

std::uint32_t
Recorder::intern(std::string_view s)
{
    auto it = internIdx_.find(s);
    if (it != internIdx_.end())
        return it->second;
    auto idx = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    internIdx_.emplace(std::string(s), idx);
    return idx;
}

void
Recorder::ensurePid(int pid, std::string_view name)
{
    pidNames_.try_emplace(pid, name);
}

void
Recorder::ensureTrack(int pid, int tid, std::string_view name)
{
    trackNames_.try_emplace({pid, tid}, name);
}

void
Recorder::push(const Event &ev)
{
    if (events_.size() >= opts_.maxEvents) {
        ++dropped_;
        return;
    }
    events_.push_back(ev);
}

int
Recorder::pidOf(const Machine &m)
{
    int pid = m.id() + 1;
    ensurePid(pid, m.name());
    return pid;
}

int
Recorder::tidOf(const Process &p) const
{
    // Cores are tids 1..N; processes live above them.
    return 100 + p.pid();
}

void
Recorder::runSlice(const Machine &m, int core, const Process &p,
                   SimTime start, SimTime dur, SimTime ctx_part)
{
    int pid = pidOf(m);
    int tid = 1 + core;
    ensureTrack(pid, tid, "core" + std::to_string(core));
    push({start, dur, 0, intern(p.name()), 0, pid, tid, 'X',
          kCatSched});
    if (ctx_part > 0) {
        push({start, ctx_part, 0, intern("ctx switch"), 0, pid, tid,
              'X', kCatSched});
    }
}

void
Recorder::runqueueSlice(const Process &p, SimTime start, SimTime dur)
{
    int pid = pidOf(p.machine());
    int tid = tidOf(p);
    ensureTrack(pid, tid, p.name());
    push({start, dur, 0, intern("runqueue"), 0, pid, tid, 'X',
          kCatWait});
}

void
Recorder::waitSlice(const Process &p, Wait cls, const char *reason,
                    SimTime start, SimTime dur)
{
    int pid = pidOf(p.machine());
    int tid = tidOf(p);
    ensureTrack(pid, tid, p.name());
    std::string args = "{\"class\":\"";
    args += waitName(cls);
    args += "\"}";
    push({start, dur, 0, intern(reason), intern(args), pid, tid, 'X',
          kCatWait});
}

void
Recorder::lockContend(const Process &p, std::string_view lock,
                      SimTime start, SimTime dur)
{
    int pid = pidOf(p.machine());
    int tid = tidOf(p);
    ensureTrack(pid, tid, p.name());
    std::string name = "contend:";
    name += lock;
    push({start, dur, 0, intern(name), 0, pid, tid, 'X', kCatLock});
}

void
Recorder::lockHold(const Machine &m, std::string_view lock,
                   SimTime start, SimTime dur)
{
    int pid = pidOf(m);
    std::string track = "lock:";
    track += lock;
    // One track per lock name; tids above the process range.
    int tid = 100000 + static_cast<int>(intern(track));
    ensureTrack(pid, tid, track);
    push({start, dur, 0, intern(lock), 0, pid, tid, 'X', kCatLock});
}

void
Recorder::spanDone(const Process &p, const SpanCtx &span, SimTime end)
{
    int pid = pidOf(p.machine());
    int tid = tidOf(p);
    ensureTrack(pid, tid, p.name());
    SimTime dur = end - span.begin;
    std::string_view label =
        span.label.empty() ? std::string_view("span") : span.label;

    std::string args = "{\"callId\":\"";
    appendEscaped(args, span.callId);
    args += "\"";
    for (std::size_t i = 0; i < kWaitCount; ++i) {
        if (span.wait[i] == 0)
            continue;
        args += ",\"";
        args += waitName(static_cast<Wait>(i));
        args += "_us\":";
        appendMicros(args, span.wait[i]);
    }
    if (span.batchDepth > 0) {
        args += ",\"batched\":";
        args += std::to_string(span.batchDepth);
    }
    args += "}";
    push({span.begin, dur, span.traceId, intern(label), intern(args),
          pid, tid, 'X', kCatSpan});

    if (span.traceId != 0) {
        // Async segment: one per-call track across all machines.
        std::uint32_t name = intern(label);
        push({span.begin, 0, span.traceId, name, 0, kCallsPid, 0, 'b',
              kCatCall});
        push({end, 0, span.traceId, name, 0, kCallsPid, 0, 'e',
              kCatCall});

        CallStats &cs = calls_[span.traceId];
        cs.total += dur;
        ++cs.spans;
        for (std::size_t i = 0; i < kWaitCount; ++i)
            cs.wait[i] += span.wait[i];
    }

    WaitTotals &mt = machineTotals_[p.machine().name()];
    mt.total += dur;
    ++mt.spans;
    for (std::size_t i = 0; i < kWaitCount; ++i)
        mt.wait[i] += span.wait[i];
}

void
Recorder::instant(std::string_view name, SimTime ts)
{
    push({ts, 0, 0, intern(name), 0, kCallsPid, 0, 'i', kCatMark});
}

void
Recorder::writeJson(std::ostream &os) const
{
    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"droppedEvents\":";
    out += std::to_string(dropped_);
    out += "},\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    for (const auto &[pid, name] : pidNames_) {
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{"
               "\"name\":\"";
        appendEscaped(out, name);
        out += "\"}}";
    }
    for (const auto &[key, name] : trackNames_) {
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        out += std::to_string(key.first);
        out += ",\"tid\":";
        out += std::to_string(key.second);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        appendEscaped(out, name);
        out += "\"}}";
    }

    char buf[64];
    for (const Event &ev : events_) {
        sep();
        out += "{\"ph\":\"";
        out += ev.ph;
        out += "\",\"pid\":";
        out += std::to_string(ev.pid);
        out += ",\"tid\":";
        out += std::to_string(ev.tid);
        out += ",\"ts\":";
        appendMicros(out, ev.ts);
        if (ev.ph == 'X') {
            out += ",\"dur\":";
            appendMicros(out, ev.dur);
        }
        if (ev.ph == 'b' || ev.ph == 'e') {
            std::snprintf(buf, sizeof buf, ",\"id\":\"0x%llx\"",
                          static_cast<unsigned long long>(ev.id));
            out += buf;
        }
        if (ev.ph == 'i')
            out += ",\"s\":\"g\"";
        out += ",\"cat\":\"";
        out += kCats[static_cast<std::size_t>(ev.cat)];
        out += "\",\"name\":\"";
        appendEscaped(out, strings_[ev.name]);
        out += "\"";
        if (ev.args != 0) {
            out += ",\"args\":";
            out += strings_[ev.args];
        }
        out += "}";
        if (out.size() >= (1u << 16)) {
            os << out;
            out.clear();
        }
    }
    out += "]}\n";
    os << out;
}

bool
Recorder::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeJson(os);
    os.flush();
    return os.good();
}

} // namespace siprox::sim::trace

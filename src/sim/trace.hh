/**
 * @file
 * Observability: the legacy line-oriented trace sink plus the typed
 * event recorder behind causal spans and Perfetto timeline export.
 *
 * Two independent facilities share this header:
 *
 *  - The original stringly Sink (setSink/enabled/log): examples and
 *    tests install a callback to observe simulation activity as text.
 *
 *  - The Recorder: a typed event collector that turns scheduler run
 *    slices, lock hold/contend intervals, block waits, and per-call
 *    SIP spans into Chrome trace-event JSON loadable in Perfetto,
 *    while aggregating per-call and per-machine wait-state totals.
 *
 * Both are off by default. The hot-path guards are a single pointer
 * load (`recording()`) or a null `Process::span()` check, so the
 * instrumented code allocates nothing and costs one predictable
 * branch when observability is off.
 */

#ifndef SIPROX_SIM_TRACE_HH
#define SIPROX_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace siprox::sim {

class Machine;
class Process;

namespace trace {

// ---------------------------------------------------------------------------
// Legacy line-oriented sink
// ---------------------------------------------------------------------------

/** Receives (sim time, category, message) for every trace line. */
using Sink =
    std::function<void(SimTime, std::string_view, std::string_view)>;

/** Install a sink; pass nullptr to disable tracing. */
void setSink(Sink sink);

/** True if a sink is installed; guard expensive message formatting. */
bool enabled();

/** Emit one trace line. No-op when disabled. */
void log(SimTime now, std::string_view category, std::string_view msg);

/** Convenience sink that prints "[time] category: msg" to stdout. */
Sink stdoutSink();

// ---------------------------------------------------------------------------
// Wait-state attribution
// ---------------------------------------------------------------------------

/**
 * Where a process's wall-clock time went while a span was active.
 * These are exactly the categories the paper's §5 explanations name:
 * CPU (including context-switch shares), run-queue delay, spinning on
 * a user-level lock, sleeping on a blocking lock, fd-passing IPC,
 * socket waits, and explicit sleeps.
 */
enum class Wait : std::uint8_t
{
    Cpu,
    RunQueue,
    LockSpin,
    LockBlock,
    Ipc,
    Socket,
    Sleep,
    /** Held by hop-by-hop overload control: the downstream proxy's
     *  advertised rate/window is exhausted and the forward is parked
     *  until a grant frees up (or the hold deadline rejects it). */
    Throttled,
};

inline constexpr std::size_t kWaitCount = 8;

/** Stable lower-case name for a wait category ("cpu", "runqueue"...). */
std::string_view waitName(Wait w);

/**
 * One causal span: the window during which a process handles one SIP
 * message (or one phone call, end to end). While a span is installed
 * on a Process (Process::setSpan), the scheduler and blocking
 * primitives attribute every nanosecond of elapsed simulated time to
 * one Wait bucket, so `end - begin == waitSum()` holds exactly.
 */
struct SpanCtx
{
    /** Causal trace id; 0 until the engine parses the Call-ID. */
    std::uint64_t traceId = 0;
    SimTime begin = 0;
    std::array<SimTime, kWaitCount> wait{};
    /** Short description ("INVITE", "rsp 200", "timeout 408"...). */
    std::string label;
    std::string callId;
    /** When the message was drained as part of a batched dequeue
     *  (recvmmsg model), the batch's size; 0 for unbatched spans. The
     *  export attributes it as a "batched" arg, not a Wait bucket, so
     *  the exact-sum invariant is untouched. */
    std::uint32_t batchDepth = 0;

    void
    add(Wait w, SimTime d)
    {
        wait[static_cast<std::size_t>(w)] += d;
    }

    SimTime
    at(Wait w) const
    {
        return wait[static_cast<std::size_t>(w)];
    }

    SimTime waitSum() const;
};

/**
 * Stable 64-bit trace id for a Call-ID (FNV-1a; identical across runs
 * and platforms, unlike std::hash).
 */
std::uint64_t traceIdFor(std::string_view call_id);

// ---------------------------------------------------------------------------
// Typed event recorder
// ---------------------------------------------------------------------------

/**
 * Collects typed timeline events and per-call aggregates; exports
 * Chrome trace-event JSON ("trace event format") that Perfetto and
 * chrome://tracing load directly.
 *
 * Track layout: each machine is a trace "process" (pid = machine id
 * + 1); its CPU cores, simulated processes, and locks are "threads".
 * Per-call spans additionally appear as async begin/end pairs under a
 * synthetic pid 0 so one call's journey across machines reads as a
 * single track.
 *
 * All record methods assume the caller already checked recording();
 * they are never on the no-observer hot path.
 */
class Recorder
{
  public:
    struct Options
    {
        /** Events kept in memory; beyond this, events are counted as
         *  dropped but aggregates stay exact. */
        std::size_t maxEvents = 1u << 22;
    };

    /** Per-call aggregate across all recorded spans of one trace id. */
    struct CallStats
    {
        SimTime total = 0;
        std::array<SimTime, kWaitCount> wait{};
        int spans = 0;
    };

    /** Per-machine aggregate across all spans recorded on it. */
    struct WaitTotals
    {
        SimTime total = 0;
        std::array<SimTime, kWaitCount> wait{};
        int spans = 0;

        SimTime
        at(Wait w) const
        {
            return wait[static_cast<std::size_t>(w)];
        }
    };

    Recorder();
    explicit Recorder(Options opts);

    // --- recording hooks (callers must check recording()) ---

    /** A process occupied a core for [start, start+dur); the first
     *  @p ctx_part of it was context-switch overhead. */
    void runSlice(const Machine &m, int core, const Process &p,
                  SimTime start, SimTime dur, SimTime ctx_part);

    /** A process waited on the run queue for [start, start+dur). */
    void runqueueSlice(const Process &p, SimTime start, SimTime dur);

    /** A process was blocked (reason + class) for [start, start+dur). */
    void waitSlice(const Process &p, Wait cls, const char *reason,
                   SimTime start, SimTime dur);

    /** A process spun/yielded on @p lock for [start, start+dur). */
    void lockContend(const Process &p, std::string_view lock,
                     SimTime start, SimTime dur);

    /** @p lock was held for [start, start+dur) on machine @p m. */
    void lockHold(const Machine &m, std::string_view lock,
                  SimTime start, SimTime dur);

    /** A span completed at @p end; emits the timeline slice and the
     *  async call segment, and folds it into the aggregates. */
    void spanDone(const Process &p, const SpanCtx &span, SimTime end);

    /** Global instant marker (measurement window edges etc.). */
    void instant(std::string_view name, SimTime ts);

    // --- aggregates / introspection ---

    const std::map<std::uint64_t, CallStats> &
    calls() const
    {
        return calls_;
    }

    const std::map<std::string, WaitTotals> &
    machineTotals() const
    {
        return machineTotals_;
    }

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }

    // --- export ---

    /** Write the full Chrome trace-event JSON document. */
    void writeJson(std::ostream &os) const;

    /** writeJson to @p path; false (with no partial file kept open) on
     *  I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    struct Event
    {
        SimTime ts;
        SimTime dur;
        std::uint64_t id;
        std::uint32_t name;
        std::uint32_t args; // interned pre-rendered JSON; 0 = none
        std::int32_t pid;
        std::int32_t tid;
        char ph;
        char cat; // index into kCats
    };

    std::uint32_t intern(std::string_view s);
    void ensurePid(int pid, std::string_view name);
    void ensureTrack(int pid, int tid, std::string_view name);
    void push(const Event &ev);
    int pidOf(const Machine &m);
    int tidOf(const Process &p) const;

    Options opts_;
    std::vector<std::string> strings_;
    std::map<std::string, std::uint32_t, std::less<>> internIdx_;
    std::vector<Event> events_;
    std::uint64_t dropped_ = 0;
    std::map<int, std::string> pidNames_;
    std::map<std::pair<int, int>, std::string> trackNames_;
    std::map<std::uint64_t, CallStats> calls_;
    std::map<std::string, WaitTotals> machineTotals_;
};

/** Install (or, with nullptr, remove) the global recorder. The caller
 *  keeps ownership and must outlive the recording window. */
void setRecorder(Recorder *r);

namespace detail {
extern Recorder *g_recorder;
} // namespace detail

/** The installed recorder, or nullptr. */
inline Recorder *
recorder()
{
    return detail::g_recorder;
}

/** Hot-path guard: true iff a recorder is installed. */
inline bool
recording()
{
    return detail::g_recorder != nullptr;
}

} // namespace trace
} // namespace siprox::sim

#endif // SIPROX_SIM_TRACE_HH

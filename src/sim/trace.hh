/**
 * @file
 * Lightweight global trace facility. Disabled by default; examples and
 * tests install a sink to observe simulation activity (SIP messages,
 * connection lifecycle, scheduler decisions).
 */

#ifndef SIPROX_SIM_TRACE_HH
#define SIPROX_SIM_TRACE_HH

#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hh"

namespace siprox::sim::trace {

/** Receives (sim time, category, message) for every trace line. */
using Sink =
    std::function<void(SimTime, std::string_view, std::string_view)>;

/** Install a sink; pass nullptr to disable tracing. */
void setSink(Sink sink);

/** True if a sink is installed; guard expensive message formatting. */
bool enabled();

/** Emit one trace line. No-op when disabled. */
void log(SimTime now, std::string_view category, std::string_view msg);

/** Convenience sink that prints "[time] category: msg" to stdout. */
Sink stdoutSink();

} // namespace siprox::sim::trace

#endif // SIPROX_SIM_TRACE_HH

#include "sim/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

namespace siprox::sim {

namespace {

struct Registry
{
    std::vector<std::string> names;
    std::unordered_map<std::string, CostCenterId> ids;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

CostCenterId
CostCenters::id(std::string_view name)
{
    auto &r = registry();
    auto it = r.ids.find(std::string(name));
    if (it != r.ids.end())
        return it->second;
    CostCenterId new_id = static_cast<CostCenterId>(r.names.size());
    r.names.emplace_back(name);
    r.ids.emplace(std::string(name), new_id);
    return new_id;
}

const std::string &
CostCenters::name(CostCenterId id)
{
    auto &r = registry();
    if (id >= r.names.size())
        throw std::out_of_range("unknown cost center id");
    return r.names[id];
}

std::size_t
CostCenters::count()
{
    return registry().names.size();
}

SimTime
Profiler::at(std::string_view name) const
{
    auto &r = registry();
    auto it = r.ids.find(std::string(name));
    if (it == r.ids.end())
        return 0;
    return at(it->second);
}

double
Profiler::share(std::string_view name) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(at(name)) / static_cast<double>(total_);
}

std::vector<Profiler::Line>
Profiler::top(std::size_t n) const
{
    std::vector<Line> lines;
    for (CostCenterId cc = 0; cc < totals_.size(); ++cc) {
        if (totals_[cc] == 0)
            continue;
        Line line;
        line.name = CostCenters::name(cc);
        line.time = totals_[cc];
        line.pct = total_ > 0
            ? 100.0 * static_cast<double>(totals_[cc])
                / static_cast<double>(total_)
            : 0.0;
        lines.push_back(std::move(line));
    }
    // Ties broken by name so equal-cost centers report in a stable
    // order (std::sort is not stable).
    std::sort(lines.begin(), lines.end(),
              [](const Line &a, const Line &b) {
                  if (a.time != b.time)
                      return a.time > b.time;
                  return a.name < b.name;
              });
    if (lines.size() > n)
        lines.resize(n);
    return lines;
}

std::string
Profiler::report(std::size_t n) const
{
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-36s %12s %7s\n",
                  "cost center", "cpu (ms)", "%");
    out += buf;
    for (const auto &line : top(n)) {
        std::snprintf(buf, sizeof(buf), "%-36s %12.3f %6.2f%%\n",
                      line.name.c_str(), toMsecs(line.time), line.pct);
        out += buf;
    }
    return out;
}

} // namespace siprox::sim

#include "sim/machine.hh"

#include "sim/simulation.hh"

namespace siprox::sim {

Machine::Machine(Simulation &sim, std::string name, int cores,
                 MachineConfig cfg)
    : sim_(sim), name_(std::move(name)), cfg_(cfg),
      sched_(*this, cores, cfg.sched)
{
}

Process &
Machine::spawn(std::string name, int nice,
               std::function<Task(Process &)> factory)
{
    auto proc = std::make_unique<Process>(*this, std::move(name), nice);
    Process &p = *proc;
    p.pid_ = nextPid_++;
    p.adoptRoot(factory(p));
    procs_.push_back(std::move(proc));
    // Start via an event so spawn order, not call nesting, determines
    // execution order, and so spawn() is safe during construction.
    sim_.at(sim_.now(), [&p] { p.root_.start(); });
    return p;
}

} // namespace siprox::sim

/**
 * @file
 * Simulated time. All simulation timestamps and durations are integer
 * nanosecond counts; helpers below build durations from human units.
 */

#ifndef SIPROX_SIM_TIME_HH
#define SIPROX_SIM_TIME_HH

#include <cstdint>

namespace siprox::sim {

/** A point in simulated time or a duration, in nanoseconds. */
using SimTime = std::int64_t;

/** Duration constructors. Fractional inputs are truncated to whole ns. */
constexpr SimTime
nsecs(double n)
{
    return static_cast<SimTime>(n);
}

constexpr SimTime
usecs(double n)
{
    return static_cast<SimTime>(n * 1e3);
}

constexpr SimTime
msecs(double n)
{
    return static_cast<SimTime>(n * 1e6);
}

constexpr SimTime
secs(double n)
{
    return static_cast<SimTime>(n * 1e9);
}

/** Conversions back to floating-point units, for reporting. */
constexpr double
toUsecs(SimTime t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMsecs(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSecs(SimTime t)
{
    return static_cast<double>(t) / 1e9;
}

/** Sentinel for "no deadline". */
constexpr SimTime kTimeNever = INT64_MAX;

} // namespace siprox::sim

#endif // SIPROX_SIM_TIME_HH

/**
 * @file
 * Cancellable discrete-event queue ordered by (time, insertion sequence).
 */

#ifndef SIPROX_SIM_EVENT_QUEUE_HH
#define SIPROX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hh"

namespace siprox::sim {

/**
 * Handle to a scheduled event; allows cancellation. Cancelled events stay
 * in the heap but are skipped when popped.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    void
    cancel()
    {
        if (auto r = rec_.lock())
            r->cancelled = true;
        rec_.reset();
    }

    /** True if the handle refers to a still-pending event. */
    bool
    pending() const
    {
        auto r = rec_.lock();
        return r && !r->cancelled && !r->fired;
    }

  private:
    friend class EventQueue;

    struct Rec
    {
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::weak_ptr<Rec> rec) : rec_(std::move(rec)) {}

    std::weak_ptr<Rec> rec_;
};

/**
 * Time-ordered event queue. Events scheduled for the same instant fire
 * in insertion order, which keeps the simulation deterministic.
 */
class EventQueue
{
  public:
    /** Schedule @p fn at absolute simulated time @p at. */
    EventHandle
    schedule(SimTime at, std::function<void()> fn)
    {
        auto rec = std::make_shared<EventHandle::Rec>();
        rec->fn = std::move(fn);
        heap_.push(Entry{at, nextSeq_++, rec});
        return EventHandle(rec);
    }

    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; kTimeNever if none. */
    SimTime
    nextTime() const
    {
        return heap_.empty() ? kTimeNever : heap_.top().at;
    }

    /**
     * Pop and run the earliest non-cancelled event.
     * @param now Receives the event's timestamp.
     * @return false if the queue had no runnable events.
     */
    bool
    runNext(SimTime &now)
    {
        while (!heap_.empty()) {
            Entry e = heap_.top();
            heap_.pop();
            if (e.rec->cancelled)
                continue;
            now = e.at;
            e.rec->fired = true;
            // Move the callback out so the record can be released even
            // if the callback schedules more events.
            auto fn = std::move(e.rec->fn);
            fn();
            return true;
        }
        return false;
    }

  private:
    struct Entry
    {
        SimTime at;
        std::uint64_t seq;
        std::shared_ptr<EventHandle::Rec> rec;

        bool
        operator>(const Entry &o) const
        {
            if (at != o.at)
                return at > o.at;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_EVENT_QUEUE_HH

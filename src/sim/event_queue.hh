/**
 * @file
 * Cancellable discrete-event queue ordered by (time, insertion sequence).
 *
 * Hot-path design (see docs/performance.md): callables live in pooled
 * slab slots with small-buffer storage, so steady-state scheduling does
 * no heap allocation — no shared_ptr control block and no std::function
 * type erasure. Handles address a slot by (index, generation); a slot's
 * generation bumps on release, so stale handles are harmless, and an
 * aliveness tag keeps cancel()/pending() safe even after the queue
 * itself is destroyed. Ordering uses a two-tier 4-ary min-heap: the
 * near tier holds events earlier than every deferred timer and stays
 * small (cache-resident) under per-CPU-burst churn, while long SIP
 * timers wait in the far tier and are touched only when due. Keys
 * (time, seq) are unique, so pop order — and therefore every digest —
 * is identical to a single heap's.
 */

#ifndef SIPROX_SIM_EVENT_QUEUE_HH
#define SIPROX_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/mem_stats.hh"
#include "sim/time.hh"

namespace siprox::sim {

class EventQueue;

/**
 * Handle to a scheduled event; allows cancellation. Cancelled events stay
 * in the heap but are skipped when popped. Copies share the underlying
 * event: cancelling through one copy is visible to the others.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    inline void cancel();

    /** True if the handle refers to a still-pending event. */
    inline bool pending() const;

  private:
    friend class EventQueue;

    EventHandle(std::weak_ptr<void> alive, EventQueue *q,
                std::uint32_t slot, std::uint32_t gen)
        : alive_(std::move(alive)), q_(q), slot_(slot), gen_(gen)
    {
    }

    std::weak_ptr<void> alive_;
    EventQueue *q_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * Time-ordered event queue. Events scheduled for the same instant fire
 * in insertion order, which keeps the simulation deterministic.
 */
class EventQueue
{
  public:
    /** Callables up to this size are stored inline in the slot. */
    static constexpr std::size_t kInlineSize = 64;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        for (auto &slab : slabs_) {
            for (std::size_t i = 0; i < kSlabSize; ++i) {
                Slot &s = slab[i];
                if (s.active)
                    s.destroy(s);
            }
        }
        mem::ledgers().eventSlab.sub(slabs_.size() * kSlabSize
                                     * sizeof(Slot));
    }

    /** Schedule @p fn at absolute simulated time @p at. */
    template <class F>
    EventHandle
    schedule(SimTime at, F &&fn)
    {
        using Fn = std::decay_t<F>;
        std::uint32_t idx = acquireSlot();
        Slot &s = slot(idx);
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(s.buf)) Fn(std::forward<F>(fn));
            s.invoke = [](Slot &sl) { (*payload<Fn>(sl))(); };
            s.destroy = [](Slot &sl) { payload<Fn>(sl)->~Fn(); };
        } else {
            Fn *p = new Fn(std::forward<F>(fn));
            ::new (static_cast<void *>(s.buf)) Fn *(p);
            s.invoke = [](Slot &sl) { (**payload<Fn *>(sl))(); };
            s.destroy = [](Slot &sl) { delete *payload<Fn *>(sl); };
        }
        s.active = true;
        s.cancelled = false;
        Entry e{at, nextSeq_++, idx, s.gen};
        // Two-tier heap: events earlier than every deferred timer go to
        // the small near heap, which stays cache-resident under the
        // per-CPU-burst churn; long timers sit in far and are only
        // touched when they come due (see docs/performance.md).
        if (!far_.empty() && e.at < far_.front().at)
            heapPush(near_, e);
        else
            heapPush(far_, e);
        return EventHandle(alive_, this, idx, s.gen);
    }

    bool empty() const { return near_.empty() && far_.empty(); }

    std::size_t size() const { return near_.size() + far_.size(); }

    /** Events popped and run so far (wall-clock perf accounting). */
    std::uint64_t popped() const { return popped_; }

    /** Time of the earliest pending event; kTimeNever if none. */
    SimTime
    nextTime() const
    {
        if (near_.empty() && far_.empty())
            return kTimeNever;
        if (near_.empty())
            return far_.front().at;
        if (far_.empty())
            return near_.front().at;
        return near_.front().before(far_.front()) ? near_.front().at
                                                  : far_.front().at;
    }

    /**
     * Pop and run the earliest non-cancelled event.
     * @param now Receives the event's timestamp.
     * @return false if the queue had no runnable events.
     */
    bool
    runNext(SimTime &now)
    {
        while (!near_.empty() || !far_.empty()) {
            Entry e = popMin();
            Slot &s = slot(e.slot);
            if (!s.active || s.gen != e.gen)
                continue; // stale entry
            if (s.cancelled) {
                releaseSlot(e.slot);
                continue;
            }
            now = e.at;
            ++popped_;
            // The slot stays live (and unavailable for reuse) while the
            // callback runs, so the callback may schedule more events;
            // slab storage never moves, so &s stays valid.
            s.invoke(s);
            releaseSlot(e.slot);
            return true;
        }
        return false;
    }

  private:
    friend class EventHandle;

    static constexpr std::size_t kSlabSize = 256;

    struct Slot
    {
        alignas(std::max_align_t) unsigned char buf[kInlineSize];
        void (*invoke)(Slot &) = nullptr;
        void (*destroy)(Slot &) = nullptr;
        std::uint32_t gen = 0;
        bool active = false;
        bool cancelled = false;
    };

    struct Entry
    {
        SimTime at;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;

        /** Strict ordering by (time, insertion seq); keys are unique,
         *  so every correct heap pops in exactly the same order. */
        bool
        before(const Entry &o) const
        {
            if (at != o.at)
                return at < o.at;
            return seq < o.seq;
        }
    };

    template <class Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize
            && alignof(Fn) <= alignof(std::max_align_t)
            && std::is_nothrow_move_constructible_v<Fn>;
    }

    template <class T>
    static T *
    payload(Slot &s)
    {
        return std::launder(reinterpret_cast<T *>(s.buf));
    }

    Slot &
    slot(std::uint32_t idx)
    {
        return slabs_[idx / kSlabSize][idx % kSlabSize];
    }

    const Slot &
    slot(std::uint32_t idx) const
    {
        return slabs_[idx / kSlabSize][idx % kSlabSize];
    }

    std::uint32_t
    acquireSlot()
    {
        if (free_.empty()) {
            auto base =
                static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
            slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
            mem::ledgers().eventSlab.add(kSlabSize * sizeof(Slot));
            for (std::uint32_t i = 0; i < kSlabSize; ++i)
                free_.push_back(base + kSlabSize - 1 - i);
        }
        std::uint32_t idx = free_.back();
        free_.pop_back();
        return idx;
    }

    void
    releaseSlot(std::uint32_t idx)
    {
        Slot &s = slot(idx);
        s.destroy(s);
        s.invoke = nullptr;
        s.destroy = nullptr;
        s.active = false;
        ++s.gen;
        free_.push_back(idx);
    }

    void
    cancelSlot(std::uint32_t idx, std::uint32_t gen)
    {
        Slot &s = slot(idx);
        if (s.active && s.gen == gen)
            s.cancelled = true;
    }

    bool
    slotPending(std::uint32_t idx, std::uint32_t gen) const
    {
        const Slot &s = slot(idx);
        return s.active && s.gen == gen && !s.cancelled;
    }

    // 4-ary min-heap: half the depth of a binary heap and children on
    // one cache line, which matters at tens of millions of events/run.
    static void
    heapPush(std::vector<Entry> &heap, Entry e)
    {
        std::size_t i = heap.size();
        heap.push_back(e);
        while (i > 0) {
            std::size_t parent = (i - 1) / 4;
            if (!heap[i].before(heap[parent]))
                break;
            std::swap(heap[i], heap[parent]);
            i = parent;
        }
    }

    static Entry
    heapPop(std::vector<Entry> &heap)
    {
        Entry top = heap.front();
        Entry last = heap.back();
        heap.pop_back();
        std::size_t n = heap.size();
        if (n > 0) {
            std::size_t i = 0;
            for (;;) {
                std::size_t first = i * 4 + 1;
                if (first >= n)
                    break;
                std::size_t best = first;
                std::size_t end = first + 4 < n ? first + 4 : n;
                for (std::size_t c = first + 1; c < end; ++c) {
                    if (heap[c].before(heap[best]))
                        best = c;
                }
                if (!heap[best].before(last))
                    break;
                heap[i] = heap[best];
                i = best;
            }
            heap[i] = last;
        }
        return top;
    }

    /** Pop the global minimum across both tiers (keys are unique, so
     *  the result is identical to a single heap's pop order). */
    Entry
    popMin()
    {
        if (near_.empty())
            return heapPop(far_);
        if (far_.empty())
            return heapPop(near_);
        return near_.front().before(far_.front()) ? heapPop(near_)
                                                  : heapPop(far_);
    }

    std::vector<Entry> near_;
    std::vector<Entry> far_;
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<std::uint32_t> free_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t popped_ = 0;
    // Aliveness tag for handles that outlive the queue.
    std::shared_ptr<void> alive_ = std::make_shared<char>('\0');
};

inline void
EventHandle::cancel()
{
    if (alive_.lock())
        q_->cancelSlot(slot_, gen_);
    alive_.reset();
    q_ = nullptr;
}

inline bool
EventHandle::pending() const
{
    if (!alive_.lock())
        return false;
    return q_->slotPending(slot_, gen_);
}

} // namespace siprox::sim

#endif // SIPROX_SIM_EVENT_QUEUE_HH

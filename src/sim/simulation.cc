#include "sim/simulation.hh"

namespace siprox::sim {

Simulation::Simulation(std::uint64_t seed) : seed_(seed), rng_(seed) {}

Machine &
Simulation::addMachine(std::string name, int cores, MachineConfig cfg)
{
    machines_.push_back(
        std::make_unique<Machine>(*this, std::move(name), cores, cfg));
    machines_.back()->id_ = static_cast<int>(machines_.size()) - 1;
    return *machines_.back();
}

void
Simulation::run()
{
    stopped_ = false;
    while (!stopped_ && !failure_ && events_.runNext(now_)) {
    }
    rethrowIfFailed();
}

void
Simulation::runUntil(SimTime deadline)
{
    stopped_ = false;
    while (!stopped_ && !failure_ && events_.nextTime() <= deadline) {
        events_.runNext(now_);
    }
    if (!stopped_ && !failure_ && now_ < deadline)
        now_ = deadline;
    rethrowIfFailed();
}

void
Simulation::reportFailure(const std::string &who, std::exception_ptr e)
{
    if (!failure_) {
        failure_ = e;
        failureWho_ = who;
    }
    stop();
}

void
Simulation::rethrowIfFailed()
{
    if (failure_) {
        auto e = failure_;
        failure_ = nullptr;
        std::rethrow_exception(e);
    }
}

std::vector<std::string>
Simulation::blockedReport() const
{
    std::vector<std::string> out;
    for (const auto &m : machines_) {
        for (const auto &p : m->processes()) {
            if (p->state() == Process::State::Blocked) {
                out.push_back(m->name() + "/" + p->name() + ": "
                              + p->blockReason());
            }
        }
    }
    return out;
}

bool
Simulation::hasLiveProcesses() const
{
    for (const auto &m : machines_) {
        for (const auto &p : m->processes()) {
            if (!p->terminated())
                return true;
        }
    }
    return false;
}

} // namespace siprox::sim

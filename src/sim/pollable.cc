#include "sim/pollable.hh"

#include "sim/simulation.hh"

namespace siprox::sim {

Task
poll(Process &self, const std::vector<Pollable *> &items, SimTime timeout,
     int &ready_index)
{
    Simulation &sim = self.sim();
    SimTime deadline =
        timeout == kTimeNever ? kTimeNever : sim.now() + timeout;
    for (;;) {
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (items[i]->pollReady()) {
                ready_index = static_cast<int>(i);
                co_return;
            }
        }
        if (sim.now() >= deadline) {
            ready_index = -1;
            co_return;
        }
        for (Pollable *it : items)
            it->addPollWaiter(&self);
        EventHandle timer;
        if (deadline != kTimeNever) {
            Process *p = &self;
            timer = sim.at(deadline, [p] { p->wake(); });
        }
        co_await self.block("poll", trace::Wait::Socket);
        timer.cancel();
        for (Pollable *it : items)
            it->removePollWaiter(&self);
    }
}

Task
pollAll(Process &self, const std::vector<Pollable *> &items,
        SimTime timeout, std::vector<int> &ready)
{
    Simulation &sim = self.sim();
    SimTime deadline =
        timeout == kTimeNever ? kTimeNever : sim.now() + timeout;
    ready.clear();
    for (;;) {
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (items[i]->pollReady())
                ready.push_back(static_cast<int>(i));
        }
        if (!ready.empty())
            co_return;
        if (sim.now() >= deadline)
            co_return;
        for (Pollable *it : items)
            it->addPollWaiter(&self);
        EventHandle timer;
        if (deadline != kTimeNever) {
            Process *p = &self;
            timer = sim.at(deadline, [p] { p->wake(); });
        }
        co_await self.block("poll", trace::Wait::Socket);
        timer.cancel();
        for (Pollable *it : items)
            it->removePollWaiter(&self);
    }
}

} // namespace siprox::sim

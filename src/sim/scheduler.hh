/**
 * @file
 * Multi-core CPU scheduler for one simulated machine.
 *
 * Models the properties of the Linux 2.6 scheduler that the paper's
 * results depend on: static priorities (nice -20..19) with strict
 * priority preemption, FIFO round-robin within a priority level with a
 * timeslice, an explicit context-switch cost charged to the
 * "kernel:schedule" cost center, and sched_yield requeue-at-tail. A
 * nice -20 supervisor therefore preempts immediately on wakeup, while a
 * nice 0 supervisor waits behind runnable workers — the §4.3 effect.
 */

#ifndef SIPROX_SIM_SCHEDULER_HH
#define SIPROX_SIM_SCHEDULER_HH

#include <array>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/profiler.hh"
#include "sim/time.hh"

namespace siprox::sim {

class Machine;
class Process;
class Simulation;

/** Tunable scheduler behaviour, per machine. */
struct SchedConfig
{
    /** Direct cost of a context switch (charged to kernel:schedule). */
    SimTime ctxSwitchCost = usecs(1.5);
    /** Round-robin timeslice within a priority level. */
    SimTime quantum = msecs(10);
    /** Whether higher-priority wakeups preempt running processes. */
    bool preemption = true;
};

/**
 * Priority-preemptive round-robin scheduler over N cores.
 */
class CpuScheduler
{
  public:
    CpuScheduler(Machine &machine, int cores, SchedConfig cfg);

    /** Submit a CPU burst request for @p p (called by Process::cpu). */
    void submit(Process *p, SimTime cost, CostCenterId center);

    /**
     * sched_yield support: true if another process is queued at this
     * process's priority or better, i.e. yielding would deschedule.
     */
    bool wouldYield(const Process *p) const;

    /** Submit a zero-cost requeue-at-tail (the yield itself). */
    void submitYield(Process *p, std::coroutine_handle<> h);

    int cores() const { return static_cast<int>(cores_.size()); }

    /** Number of processes waiting in the run queue (not on cores). */
    int queued() const { return runnable_; }

    /** Number of cores currently occupied. */
    int busyCores() const;

    /** Total core-busy simulated time, for utilization accounting. */
    SimTime busyTime() const { return busyTime_; }

    /** Busy time accumulated by one core (telemetry per-core series). */
    SimTime
    coreBusyTime(int core) const
    {
        return coreBusy_[static_cast<std::size_t>(core)];
    }

    const SchedConfig &config() const { return cfg_; }

  private:
    struct Core
    {
        Process *running = nullptr;
        Process *lastRun = nullptr;
        /** Continuation window: the process that just finished a burst
         *  and is executing zero-cost code; it keeps this core if it
         *  immediately submits more CPU (no context switch, as a real
         *  process runs on between non-blocking calls). */
        Process *hot = nullptr;
        SimTime sliceStart = 0;
        SimTime ctxShare = 0;
        /** Start of this process's continuous occupancy (quantum). */
        SimTime continuousStart = 0;
        EventHandle completion;
    };

    void enqueue(Process *p, bool front);
    void tryDispatch();
    void maybePreemptFor(Process *p);
    void dispatch(std::size_t core_idx, Process *p);
    void onSliceEnd(std::size_t core_idx);
    /** Charge the time core @p c ran its process since sliceStart. */
    void accountRun(Core &c, SimTime ran);
    Process *popBest();
    int niceIndex(int nice) const { return nice + 20; }

    Machine &machine_;
    SchedConfig cfg_;
    std::vector<Core> cores_;
    std::array<std::deque<Process *>, 40> runq_;
    /** Bit i set iff runq_[i] is non-empty; popBest() is a find-first-
     *  set instead of scanning 40 deques on every dispatch. */
    std::uint64_t runqMask_ = 0;
    int runnable_ = 0;
    SimTime busyTime_ = 0;
    /** Per-core slice of busyTime_, indexed like cores_. */
    std::vector<SimTime> coreBusy_;
    CostCenterId schedCenter_;
    /** "user:spinlock" — bursts charged here are lock spin, not work;
     *  span attribution files them under Wait::LockSpin. */
    CostCenterId spinCenter_;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_SCHEDULER_HH

#include "sim/sync.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::sim {

namespace {

void
removeWaiter(std::deque<Process *> &q, Process *p)
{
    auto it = std::find(q.begin(), q.end(), p);
    if (it != q.end())
        q.erase(it);
}

void
wakeOne(std::deque<Process *> &q)
{
    if (!q.empty()) {
        Process *p = q.front();
        q.pop_front();
        p->wake();
    }
}

} // namespace

SpinLock::SpinLock(std::string name)
    : name_(std::move(name)),
      spinCenter_(CostCenters::id("user:spinlock"))
{
}

Task
SpinLock::acquire(Process &p)
{
    // Spin-then-yield, with the simulated spin slice growing while the
    // lock stays held. The total CPU burned matches a real spinner's;
    // coarsening long waits just caps the event rate (overshoot is at
    // most one slice against millisecond-scale holds).
    SimTime contend_start = -1;
    SimTime slice = p.machine().config().spinTryCost;
    const SimTime max_slice = 16 * p.machine().config().spinTryCost;
    while (!tryAcquire()) {
        if (contend_start < 0)
            contend_start = p.sim().now();
        ++contentions_;
        co_await p.cpu(slice, spinCenter_);
        co_await p.yieldCpu();
        if (slice < max_slice)
            slice *= 2;
    }
    if (contend_start >= 0) {
        p.machine().noteLockContention(p.sim().now() - contend_start);
    }
    if (trace::recording()) {
        SimTime now = p.sim().now();
        if (contend_start >= 0) {
            trace::recorder()->lockContend(p, name_, contend_start,
                                           now - contend_start);
        }
        holdMachine_ = &p.machine();
        holdStart_ = now;
    }
}

void
SpinLock::release()
{
    held_ = false;
    if (holdMachine_) {
        if (trace::recording()) {
            Machine &m = *holdMachine_;
            trace::recorder()->lockHold(m, name_, holdStart_,
                                        m.sim().now() - holdStart_);
        }
        holdMachine_ = nullptr;
    }
}

Task
SimMutex::acquire(Process &p)
{
    SimTime contend_start = -1;
    while (held_) {
        if (contend_start < 0)
            contend_start = p.sim().now();
        waiters_.push_back(&p);
        co_await p.block("mutex", trace::Wait::LockBlock);
        removeWaiter(waiters_, &p);
    }
    if (contend_start >= 0) {
        p.machine().noteLockContention(p.sim().now() - contend_start);
    }
    held_ = true;
}

void
SimMutex::release()
{
    held_ = false;
    wakeOne(waiters_);
}

Task
Semaphore::acquire(Process &p)
{
    while (count_ <= 0) {
        waiters_.push_back(&p);
        co_await p.block("semaphore", trace::Wait::LockBlock);
        removeWaiter(waiters_, &p);
    }
    --count_;
}

void
Semaphore::release()
{
    ++count_;
    wakeOne(waiters_);
}

void
Latch::arrive()
{
    if (remaining_ > 0)
        --remaining_;
    if (remaining_ == 0) {
        while (!waiters_.empty())
            wakeOne(waiters_);
    }
}

Task
Latch::wait(Process &p)
{
    while (remaining_ > 0) {
        waiters_.push_back(&p);
        co_await p.block("latch");
        removeWaiter(waiters_, &p);
    }
}

} // namespace siprox::sim

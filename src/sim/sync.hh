/**
 * @file
 * Synchronization primitives over simulated processes.
 *
 * SpinLock models the OpenSER/SER user-level lock: a failed try spins
 * briefly and calls sched_yield, so contention converts directly into
 * scheduler churn — the effect behind the paper's §5.2 kernel profiles.
 * SimMutex/Semaphore/Latch are conventional blocking primitives used
 * where the modeled software blocks in the kernel instead.
 */

#ifndef SIPROX_SIM_SYNC_HH
#define SIPROX_SIM_SYNC_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::sim {

/**
 * Spin-then-yield lock (OpenSER style). Acquire must be awaited:
 *   co_await lock.acquire(self);
 */
class SpinLock
{
  public:
    explicit SpinLock(std::string name = "spinlock");

    /** Spin (burning CPU) and sched_yield until the lock is taken. */
    Task acquire(Process &p);

    /** Take the lock iff free. Bare tryAcquire/release pairs are not
     *  tracked as timeline hold intervals (no process context). */
    bool
    tryAcquire()
    {
        if (held_)
            return false;
        held_ = true;
        return true;
    }

    void release();

    bool held() const { return held_; }

    /** Number of failed acquisition attempts (contention metric). */
    std::uint64_t contentions() const { return contentions_; }

    const std::string &name() const { return name_; }

  private:
    bool held_ = false;
    std::uint64_t contentions_ = 0;
    std::string name_;
    CostCenterId spinCenter_;
    /** Hold-interval tracking, set by acquire() while a recorder is
     *  installed; release() emits the lock-track slice. */
    Machine *holdMachine_ = nullptr;
    SimTime holdStart_ = 0;
};

/** RAII-style scoped hold is impossible across co_await; use acquire/
 *  release pairs and keep critical sections small. */

/**
 * FIFO blocking mutex (models sleeping kernel locks).
 */
class SimMutex
{
  public:
    Task acquire(Process &p);
    void release();
    bool held() const { return held_; }

  private:
    bool held_ = false;
    std::deque<Process *> waiters_;
};

/**
 * Counting semaphore.
 */
class Semaphore
{
  public:
    explicit Semaphore(int count = 0) : count_(count) {}

    Task acquire(Process &p);
    void release();
    int count() const { return count_; }

  private:
    int count_;
    std::deque<Process *> waiters_;
};

/**
 * Single-use countdown latch; processes wait for N arrivals.
 */
class Latch
{
  public:
    explicit Latch(int count) : remaining_(count) {}

    /** Record one arrival (not necessarily from a waiting process). */
    void arrive();

    /** Block until the count reaches zero. */
    Task wait(Process &p);

    int remaining() const { return remaining_; }

  private:
    int remaining_;
    std::deque<Process *> waiters_;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_SYNC_HH

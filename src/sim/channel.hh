/**
 * @file
 * Bounded FIFO message channel between simulated processes, modeling a
 * Unix-domain socketpair as OpenSER uses for worker/supervisor IPC
 * (including file-descriptor passing: channel payloads may carry socket
 * handles). send() blocks while the buffer is full — the property behind
 * the §6 supervisor/worker deadlock.
 */

#ifndef SIPROX_SIM_CHANNEL_HH
#define SIPROX_SIM_CHANNEL_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::sim {

/**
 * Bounded, blocking, pollable channel.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(std::size_t capacity, std::string name = "chan")
        : cap_(capacity), name_(std::move(name)), readable_(*this),
          writable_(*this)
    {
    }

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Blocking send; parks the sender while the buffer is full. */
    Task
    send(Process &p, T item)
    {
        while (buf_.size() >= cap_) {
            sendWaiters_.push_back(&p);
            co_await p.block("chan send (full)", trace::Wait::Ipc);
            removeWaiter(sendWaiters_, &p);
        }
        push(std::move(item));
    }

    /** Non-blocking send; false if the buffer is full. */
    bool
    trySend(T item)
    {
        if (buf_.size() >= cap_)
            return false;
        push(std::move(item));
        return true;
    }

    /** Blocking receive. */
    Task
    recv(Process &p, T &out)
    {
        while (buf_.empty()) {
            recvWaiters_.push_back(&p);
            co_await p.block("chan recv (empty)", trace::Wait::Ipc);
            removeWaiter(recvWaiters_, &p);
        }
        out = std::move(buf_.front());
        pop();
    }

    /** Non-blocking receive; false if empty. */
    bool
    tryRecv(T &out)
    {
        if (buf_.empty())
            return false;
        out = std::move(buf_.front());
        pop();
        return true;
    }

    std::size_t size() const { return buf_.size(); }
    std::size_t capacity() const { return cap_; }
    bool empty() const { return buf_.empty(); }
    bool full() const { return buf_.size() >= cap_; }
    const std::string &name() const { return name_; }

    /** Pollable that is ready when a message can be received. */
    Pollable &readable() { return readable_; }

    /** Pollable that is ready when a message can be sent. */
    Pollable &writable() { return writable_; }

  private:
    struct Readable : Pollable
    {
        explicit Readable(Channel &c) : chan(c) {}
        bool pollReady() const override { return !chan.buf_.empty(); }
        void notify() { this->notifyPollWaiters(); }
        Channel &chan;
    };

    struct Writable : Pollable
    {
        explicit Writable(Channel &c) : chan(c) {}

        bool
        pollReady() const override
        {
            return chan.buf_.size() < chan.cap_;
        }

        void notify() { this->notifyPollWaiters(); }
        Channel &chan;
    };

    static void
    removeWaiter(std::deque<Process *> &q, Process *p)
    {
        auto it = std::find(q.begin(), q.end(), p);
        if (it != q.end())
            q.erase(it);
    }

    void
    push(T item)
    {
        buf_.push_back(std::move(item));
        if (!recvWaiters_.empty()) {
            Process *w = recvWaiters_.front();
            recvWaiters_.pop_front();
            w->wake();
        }
        readable_.notify();
    }

    void
    pop()
    {
        buf_.pop_front();
        if (!sendWaiters_.empty()) {
            Process *w = sendWaiters_.front();
            sendWaiters_.pop_front();
            w->wake();
        }
        writable_.notify();
    }

    std::deque<T> buf_;
    std::size_t cap_;
    std::string name_;
    std::deque<Process *> sendWaiters_;
    std::deque<Process *> recvWaiters_;
    Readable readable_;
    Writable writable_;
};

} // namespace siprox::sim

#endif // SIPROX_SIM_CHANNEL_HH

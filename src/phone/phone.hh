/**
 * @file
 * SIP phone simulator (the paper's §4.2 benchmark client). Each phone
 * is one simulated process on a client machine acting as caller (UAC)
 * or callee (UAS). Phones speak real SIP over the configured
 * transport, retransmit per RFC 3261 timers on UDP, and — for the
 * non-persistent TCP workloads — abandon and re-establish their proxy
 * connection every N operations *without closing the old one*, exactly
 * the behaviour that stresses OpenSER's idle-connection machinery.
 */

#ifndef SIPROX_PHONE_PHONE_HH
#define SIPROX_PHONE_PHONE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "net/network.hh"
#include "net/sctp.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/machine.hh"
#include "sim/sync.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"
#include "sip/transaction.hh"
#include "stats/histogram.hh"

namespace siprox::phone {

/** Per-phone configuration. */
struct PhoneConfig
{
    std::string user;
    std::uint16_t port = 0; ///< contact port (bound for UDP/SCTP)
    core::Transport transport = core::Transport::Udp;
    net::Addr proxyAddr;
    /** TCP: abandon + re-establish the connection every N operations
     *  (0 = persistent). */
    int opsPerConn = 0;
    /** Delay between RINGING and OK ("pick up" time). */
    sim::SimTime answerDelay = 0;
    /** Per-await give-up deadline (a failed call, not a crash). */
    sim::SimTime responseTimeout = sim::secs(4);
    /** Per-message processing cost charged on the client machine. */
    sim::SimTime processCost = sim::usecs(3);
    /** Cap on the exponential backoff honoring 503 Retry-After. */
    sim::SimTime retryBackoffCap = sim::secs(8);
};

/**
 * The wait a caller takes after a 503, honoring the advertised
 * Retry-After as a hard floor (RFC 3261 §21.5.4 semantics: never come
 * back sooner than asked). @p streak consecutive rejections double the
 * wait each time; @p cap bounds the growth but never below the
 * advertisement itself; @p u01 in [0, 1) adds up to +50% jitter — only
 * upward, so desynchronizing simultaneously rejected callers cannot
 * undercut the floor.
 */
inline sim::SimTime
backoffWait(sim::SimTime advertised, int streak, sim::SimTime cap,
            double u01)
{
    sim::SimTime wait = advertised << std::min(streak, 20);
    wait = std::min(wait, std::max(cap, advertised));
    return wait
        + static_cast<sim::SimTime>(static_cast<double>(wait) * 0.5
                                    * u01);
}

/** Outcome counters for one phone. */
struct PhoneStats
{
    std::uint64_t opsCompleted = 0;
    std::uint64_t callsCompleted = 0;
    std::uint64_t callsFailed = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t reconnectFailures = 0;
    std::uint64_t strayMessages = 0;
    std::uint64_t registers = 0;
    std::uint64_t authChallengesSeen = 0;
    std::uint64_t redirectsFollowed = 0;
    std::uint64_t rejected503 = 0; ///< calls refused with 503
    std::uint64_t backoffs = 0;    ///< Retry-After sleeps taken
    sim::SimTime firstOpDone = -1;
    sim::SimTime lastOpDone = 0;
    stats::LatencyHistogram inviteLatency;
    stats::LatencyHistogram byeLatency;
};

/**
 * One simulated SIP phone.
 */
class Phone
{
  public:
    Phone(sim::Machine &machine, net::Host &host, PhoneConfig cfg);
    ~Phone();

    Phone(const Phone &) = delete;
    Phone &operator=(const Phone &) = delete;

    /**
     * Spawn as callee: register, arrive at @p registered, then answer
     * @p expected_calls calls and arrive at @p done.
     */
    void startCallee(int expected_calls, sim::Latch *registered,
                     sim::Latch *done);

    /**
     * Spawn as caller: register, arrive at @p registered, wait for
     * @p start, place @p calls calls to @p callee_user, arrive at
     * @p done. If @p stop is non-null, the caller also stops at the
     * first call boundary where *stop is true (time-based runs).
     */
    void startCaller(int calls, std::string callee_user,
                     sim::Latch *registered, sim::Latch *start,
                     sim::Latch *done, const bool *stop = nullptr);

    const PhoneStats &stats() const { return stats_; }
    const PhoneConfig &config() const { return cfg_; }

    /** This phone's contact URI. */
    sip::SipUri contactUri() const;

  private:
    /**
     * Transport adapter: sends to the proxy, receives framed SIP
     * messages, handles TCP connection cycling with zombie draining.
     */
    class Link;

    sim::Task calleeMain(sim::Process &p, int expected_calls,
                         sim::Latch *registered, sim::Latch *done);
    sim::Task callerMain(sim::Process &p, int calls,
                         std::string callee_user,
                         sim::Latch *registered, sim::Latch *start,
                         sim::Latch *done, const bool *stop);

    /** REGISTER and await the 200. */
    sim::Task doRegister(sim::Process &p, bool *ok);

    /** One complete caller-side call (INVITE txn + BYE txn). */
    sim::Task placeCall(sim::Process &p, const std::string &callee_user,
                        int call_index, bool *ok);

    /**
     * Build, send, and await the final response for a request,
     * transparently answering one 401 digest challenge (the request is
     * resent with credentials and an incremented CSeq).
     * @param sent Receives the request as last transmitted.
     */
    sim::Task transact(sim::Process &p, sip::RequestSpec spec,
                       std::optional<sip::SipMessage> *rsp,
                       sip::SipMessage *sent);

    /**
     * Await a response with CSeq method @p method and final/provisional
     * handling; retransmits @p request on UDP timer T1 backoff.
     */
    sim::Task awaitFinal(sim::Process &p, const sip::SipMessage &request,
                         const std::string &call_id, sip::Method method,
                         std::optional<sip::SipMessage> *out);

    /** Mark one operation complete. */
    void opDone(sim::SimTime now);

    /** Reconnect if the per-connection op budget is exhausted. */
    sim::Task maybeCycle(sim::Process &p);

    sim::Machine &machine_;
    net::Host &host_;
    PhoneConfig cfg_;
    PhoneStats stats_;
    std::unique_ptr<Link> link_;
    sip::BranchGenerator branches_;
    std::uint32_t cseq_ = 0;
    int opsSinceConnect_ = 0;
    /** 503 Retry-After backoff: pending sleep and rejection streak. */
    sim::SimTime pendingBackoff_ = 0;
    int consecutive503_ = 0;
    /** Nonce from the proxy's last 401 challenge (digest auth). */
    std::string authNonce_;
    /** Where requests go: invalid means "the proxy"; a redirect (302)
     *  points this at the callee directly for the rest of the call. */
    net::Addr requestDst_{};
    /** Requests received while awaiting a response (e.g. an INVITE
     *  arriving during a re-REGISTER); replayed to the callee loop. */
    std::deque<std::string> pendingRequests_;
};

} // namespace siprox::phone

#endif // SIPROX_PHONE_PHONE_HH

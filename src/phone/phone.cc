#include "phone/phone.hh"

#include <algorithm>
#include <cstdlib>

#include "net/error.hh"
#include "net/sst.hh"
#include "sim/pollable.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"
#include "sip/timers.hh"

namespace siprox::phone {

namespace {

const sim::CostCenterId kPhoneCc =
    sim::CostCenters::id("phone:process");

} // namespace

// ---------------------------------------------------------------------------
// Link: transport adapter
// ---------------------------------------------------------------------------

class Phone::Link
{
  public:
    Link(net::Host &host, const PhoneConfig &cfg)
        : host_(host), cfg_(cfg)
    {
    }

    sim::Task
    open(sim::Process &p, bool *ok)
    {
        *ok = true;
        switch (cfg_.transport) {
          case core::Transport::Udp:
            udp_ = &host_.udpBind(cfg_.port);
            break;
          case core::Transport::Sctp:
            sctp_ = &host_.sctpBind(cfg_.port);
            break;
          case core::Transport::Sst:
            sst_ = &host_.sstBind(cfg_.port);
            break;
          case core::Transport::Tcp:
          case core::Transport::Tls:
            co_await connect(p, ok);
            break;
        }
    }

    /** Send to the proxy, or (datagram transports only) directly to
     *  @p dst when it is valid — used after a 302 redirect and for
     *  Via-routed responses. */
    sim::Task
    send(sim::Process &p, std::string wire, bool *ok,
         net::Addr dst = {})
    {
        *ok = true;
        if (sim::trace::enabled()) {
            auto eol = wire.find('\r');
            sim::trace::log(p.sim().now(), cfg_.user + " ->",
                            wire.substr(0, eol));
        }
        net::Addr target = dst.valid() ? dst : cfg_.proxyAddr;
        switch (cfg_.transport) {
          case core::Transport::Udp:
            co_await udp_->sendTo(p, target, std::move(wire));
            break;
          case core::Transport::Sctp:
            co_await sctp_->sendTo(p, target, std::move(wire));
            break;
          case core::Transport::Sst:
            co_await sst_->sendTo(p, target, std::move(wire));
            break;
          case core::Transport::Tcp:
          case core::Transport::Tls:
            if (!active_) {
                *ok = false;
                co_return;
            }
            co_await active_->conn.send(p, std::move(wire));
            break;
        }
    }

    /** Receive one SIP message; empty string on timeout. */
    sim::Task
    recv(sim::Process &p, std::string *raw, sim::SimTime timeout)
    {
        raw->clear();
        sim::SimTime deadline = timeout == sim::kTimeNever
            ? sim::kTimeNever
            : p.sim().now() + timeout;
        std::vector<sim::Pollable *> items;
        while (ready_.empty()) {
            items.clear();
            if (udp_) {
                items.push_back(udp_);
            } else if (sctp_) {
                items.push_back(sctp_);
            } else if (sst_) {
                items.push_back(sst_);
            } else {
                if (active_)
                    items.push_back(&active_->conn.readable());
                for (auto &z : zombies_)
                    items.push_back(&z->conn.readable());
            }
            sim::SimTime budget = deadline == sim::kTimeNever
                ? sim::kTimeNever
                : deadline - p.sim().now();
            if (deadline != sim::kTimeNever && budget <= 0)
                co_return; // timeout
            if (items.empty()) {
                // No open flow: wait out the budget.
                if (deadline == sim::kTimeNever)
                    co_return;
                co_await p.sleepFor(budget);
                co_return;
            }
            int idx = -1;
            co_await sim::poll(p, items, budget, idx);
            if (idx < 0)
                co_return; // timeout
            co_await harvest(p);
        }
        *raw = std::move(ready_.front());
        ready_.pop_front();
        if (sim::trace::enabled()) {
            auto eol = raw->find('\r');
            sim::trace::log(p.sim().now(), cfg_.user + " <-",
                            std::string_view(*raw).substr(0, eol));
        }
    }

    /** TCP: abandon the current connection (left open; the server's
     *  idle machinery must deal with it) and open a fresh one. */
    sim::Task
    cycle(sim::Process &p, bool *ok)
    {
        *ok = true;
        if (!core::isStreamTransport(cfg_.transport))
            co_return;
        auto old = std::move(active_);
        active_.reset();
        if (old)
            zombies_.push_back(std::move(old));
        co_await connect(p, ok);
        if (!*ok && !zombies_.empty()) {
            // Could not reconnect (e.g. port exhaustion): fall back to
            // the most recent abandoned connection.
            active_ = std::move(zombies_.back());
            zombies_.pop_back();
        }
    }

    bool hasActiveFlow() const
    {
        return udp_ || sctp_ || sst_ || active_ != nullptr;
    }

  private:
    struct TcpFlow
    {
        net::TcpConn conn;
        sip::StreamFramer framer;
    };

    sim::Task
    connect(sim::Process &p, bool *ok)
    {
        auto flow = std::make_unique<TcpFlow>();
        try {
            if (cfg_.transport == core::Transport::Tls)
                co_await host_.tlsConnect(p, cfg_.proxyAddr,
                                          flow->conn);
            else
                co_await host_.tcpConnect(p, cfg_.proxyAddr,
                                          flow->conn);
        } catch (const net::NetError &) {
            *ok = false;
            co_return;
        }
        active_ = std::move(flow);
        *ok = true;
    }

    /** Drain every readable flow into the ready-message queue. */
    sim::Task
    harvest(sim::Process &p)
    {
        if (udp_) {
            net::Datagram d;
            while (udp_->pollReady()) {
                co_await udp_->recvFrom(p, d);
                ready_.push_back(std::move(d.payload));
            }
            co_return;
        }
        if (sctp_) {
            net::Datagram d;
            while (sctp_->pollReady()) {
                co_await sctp_->recvFrom(p, d);
                ready_.push_back(std::move(d.payload));
            }
            co_return;
        }
        if (sst_) {
            net::Datagram d;
            while (sst_->pollReady()) {
                co_await sst_->recvFrom(p, d);
                ready_.push_back(std::move(d.payload));
            }
            co_return;
        }
        if (active_ && active_->conn.readable().pollReady()) {
            bool alive = true;
            co_await readFlow(p, *active_, &alive);
            if (!alive)
                active_.reset();
        }
        for (std::size_t i = 0; i < zombies_.size();) {
            if (!zombies_[i]->conn.readable().pollReady()) {
                ++i;
                continue;
            }
            bool alive = true;
            co_await readFlow(p, *zombies_[i], &alive);
            if (!alive)
                zombies_.erase(zombies_.begin()
                               + static_cast<long>(i));
            else
                ++i;
        }
    }

    sim::Task
    readFlow(sim::Process &p, TcpFlow &flow, bool *alive)
    {
        std::string bytes;
        co_await flow.conn.recv(p, bytes);
        if (bytes.empty()) {
            *alive = false; // EOF / reset
            co_return;
        }
        flow.framer.feed(std::move(bytes));
        while (auto raw = flow.framer.next())
            ready_.push_back(std::move(*raw));
        *alive = !flow.framer.poisoned();
    }

    net::Host &host_;
    const PhoneConfig &cfg_;
    net::UdpSocket *udp_ = nullptr;
    net::SctpSocket *sctp_ = nullptr;
    net::SstSocket *sst_ = nullptr;
    std::unique_ptr<TcpFlow> active_;
    std::vector<std::unique_ptr<TcpFlow>> zombies_;
    std::deque<std::string> ready_;
};

// ---------------------------------------------------------------------------
// Phone
// ---------------------------------------------------------------------------

Phone::Phone(sim::Machine &machine, net::Host &host, PhoneConfig cfg)
    : machine_(machine), host_(host), cfg_(std::move(cfg)),
      link_(std::make_unique<Link>(host_, cfg_)),
      branches_(std::hash<std::string>{}(cfg_.user))
{
}

Phone::~Phone() = default;

sip::SipUri
Phone::contactUri() const
{
    return sip::uriForAddr(cfg_.user, host_.addr(cfg_.port));
}

void
Phone::startCallee(int expected_calls, sim::Latch *registered,
                   sim::Latch *done)
{
    machine_.spawn(cfg_.user, 0,
                   [this, expected_calls, registered,
                    done](sim::Process &p) {
                       return calleeMain(p, expected_calls, registered,
                                         done);
                   });
}

void
Phone::startCaller(int calls, std::string callee_user,
                   sim::Latch *registered, sim::Latch *start,
                   sim::Latch *done, const bool *stop)
{
    machine_.spawn(cfg_.user, 0,
                   [this, calls, callee_user, registered, start, done,
                    stop](sim::Process &p) {
                       return callerMain(p, calls, callee_user,
                                         registered, start, done,
                                         stop);
                   });
}

void
Phone::opDone(sim::SimTime now)
{
    ++stats_.opsCompleted;
    ++opsSinceConnect_;
    if (stats_.firstOpDone < 0)
        stats_.firstOpDone = now;
    stats_.lastOpDone = now;
}

sim::Task
Phone::maybeCycle(sim::Process &p)
{
    if (!core::isStreamTransport(cfg_.transport) || cfg_.opsPerConn <= 0
        || opsSinceConnect_ < cfg_.opsPerConn) {
        co_return;
    }
    opsSinceConnect_ = 0;
    bool ok = false;
    co_await link_->cycle(p, &ok);
    if (!ok) {
        ++stats_.reconnectFailures;
        co_return;
    }
    ++stats_.reconnects;
    // The new flow must be (re-)registered so the proxy's aliases and
    // location bindings point at it.
    bool reg_ok = false;
    co_await doRegister(p, &reg_ok);
}

sim::Task
Phone::doRegister(sim::Process &p, bool *ok)
{
    *ok = false;
    sip::RequestSpec spec;
    spec.method = sip::Method::Register;
    spec.requestUri = sip::uriForAddr("", cfg_.proxyAddr);
    spec.from = contactUri();
    spec.to = sip::uriForAddr(cfg_.user, cfg_.proxyAddr);
    spec.fromTag = cfg_.user + "-reg";
    spec.callId = cfg_.user + "-reg-"
        + std::to_string(stats_.registers);
    spec.cseq = ++cseq_;
    spec.viaTransport = core::transportName(cfg_.transport);
    spec.viaSentBy = contactUri();
    spec.branch = branches_.next();
    spec.contact = contactUri();

    requestDst_ = net::Addr{}; // registrations always go to the proxy
    std::optional<sip::SipMessage> rsp;
    sip::SipMessage sent_req;
    co_await transact(p, std::move(spec), &rsp, &sent_req);
    if (rsp && rsp->isSuccess()) {
        ++stats_.registers;
        *ok = true;
    }
}

sim::Task
Phone::awaitFinal(sim::Process &p, const sip::SipMessage &request,
                  const std::string &call_id, sip::Method method,
                  std::optional<sip::SipMessage> *out)
{
    out->reset();
    const bool udp = cfg_.transport == core::Transport::Udp;
    const std::string wire = request.serialize();
    sim::SimTime deadline = p.sim().now() + cfg_.responseTimeout;
    sim::SimTime interval =
        udp ? sip::timers::kT1 : cfg_.responseTimeout;
    bool got_provisional = false;

    for (;;) {
        sim::SimTime now = p.sim().now();
        if (now >= deadline)
            co_return; // give up: failed call
        sim::SimTime budget = std::min(deadline, now + interval) - now;
        std::string raw;
        co_await link_->recv(p, &raw, budget);
        if (raw.empty()) {
            // Interval expired: retransmit on UDP unless a provisional
            // response told us the proxy has taken over (§2).
            if (udp && !got_provisional
                && p.sim().now() < deadline) {
                ++stats_.retransmissions;
                bool sent = false;
                co_await link_->send(p, wire, &sent, requestDst_);
                interval = std::min<sim::SimTime>(interval * 2,
                                                  sip::timers::kT2);
            }
            continue;
        }
        co_await p.cpu(cfg_.processCost, kPhoneCc);
        auto parsed = sip::parseMessage(raw);
        if (!parsed.ok) {
            ++stats_.strayMessages;
            continue;
        }
        sip::SipMessage &msg = parsed.message;
        if (msg.isRequest()) {
            // Do not drop requests racing a response (e.g. the next
            // INVITE arriving during a post-reconnect REGISTER).
            pendingRequests_.push_back(std::move(raw));
            continue;
        }
        auto cseq = msg.cseq();
        if (msg.callId() != call_id || !cseq
            || cseq->method != method) {
            ++stats_.strayMessages;
            continue;
        }
        if (msg.isProvisional()) {
            got_provisional = true;
            continue;
        }
        *out = std::move(msg);
        co_return;
    }
}

namespace {

/** The address a request's top Via says responses go to (RFC 3261
 *  Â§18.2.2); invalid if it is not an h<id> simulated address. */
net::Addr
viaAddr(const sip::SipMessage &msg)
{
    const auto &via = msg.topVia();
    if (!via)
        return {};
    return sip::addrFromHost(via->host, via->effectivePort())
        .value_or(net::Addr{});
}

/** Seconds a 503's Retry-After asks us to wait (RFC 3261 §21.5.4);
 *  defaults to 1 s when the header is missing or unparsable. */
sim::SimTime
retryAfterOf(const sip::SipMessage &rsp)
{
    auto h = rsp.header("Retry-After");
    if (!h)
        return sim::secs(1);
    int s = std::atoi(std::string(*h).c_str());
    return s > 0 ? sim::secs(s) : sim::secs(1);
}

/** Pull the nonce value out of a WWW-Authenticate header. */
std::string
nonceFrom(const sip::SipMessage &rsp)
{
    auto h = rsp.header("WWW-Authenticate");
    if (!h)
        return {};
    auto pos = h->find("nonce=\"");
    if (pos == std::string_view::npos)
        return {};
    auto rest = h->substr(pos + 7);
    auto end = rest.find('"');
    return std::string(rest.substr(0, end));
}

} // namespace

sim::Task
Phone::transact(sim::Process &p, sip::RequestSpec spec,
                std::optional<sip::SipMessage> *rsp,
                sip::SipMessage *sent)
{
    for (int attempt = 0; attempt < 2; ++attempt) {
        sip::SipMessage msg = sip::buildRequest(spec);
        if (!authNonce_.empty()) {
            msg.setHeader("Authorization",
                          "Digest username=\"" + cfg_.user
                              + "\", nonce=\"" + authNonce_
                              + "\", response=\"0badcafe\"");
        }
        *sent = msg;
        co_await p.cpu(cfg_.processCost, kPhoneCc);
        bool send_ok = false;
        co_await link_->send(p, msg.serialize(), &send_ok,
                             requestDst_);
        if (!send_ok) {
            rsp->reset();
            co_return;
        }
        co_await awaitFinal(p, msg, spec.callId, spec.method, rsp);
        if (!*rsp
            || (*rsp)->statusCode() != sip::status::kUnauthorized) {
            co_return;
        }
        // Digest challenge: remember the nonce and retry with
        // credentials and an incremented CSeq (RFC 2617).
        ++stats_.authChallengesSeen;
        authNonce_ = nonceFrom(**rsp);
        spec.cseq = ++cseq_;
        spec.branch = branches_.next();
    }
    rsp->reset(); // challenged twice: give up
}

sim::Task
Phone::placeCall(sim::Process &p, const std::string &callee_user,
                 int call_index, bool *ok)
{
    *ok = false;
    const std::string call_id =
        cfg_.user + "-call-" + std::to_string(call_index);

    // End-to-end causal span: the Call-ID minted here is the trace id
    // every hop (transport, kernel queue, worker, timer) joins on.
    sim::SpanScope call_span(p);
    if (auto *s = call_span.ctx()) {
        s->traceId = sim::trace::traceIdFor(call_id);
        s->callId = call_id;
        s->label = "call";
    }

    // --- INVITE transaction ---------------------------------------------
    sip::RequestSpec spec;
    spec.method = sip::Method::Invite;
    spec.requestUri = sip::uriForAddr(callee_user, cfg_.proxyAddr);
    spec.from = contactUri();
    spec.to = sip::uriForAddr(callee_user, cfg_.proxyAddr);
    spec.fromTag = cfg_.user + "-" + std::to_string(call_index);
    spec.callId = call_id;
    spec.cseq = ++cseq_;
    spec.viaTransport = core::transportName(cfg_.transport);
    spec.viaSentBy = contactUri();
    spec.branch = branches_.next();
    spec.contact = contactUri();

    sim::SimTime t0 = p.sim().now();
    requestDst_ = net::Addr{}; // each call starts at the proxy
    std::optional<sip::SipMessage> final_rsp;
    sip::SipMessage invite;
    co_await transact(p, spec, &final_rsp, &invite);

    if (final_rsp
        && final_rsp->statusCode() == sip::status::kMovedTemporarily
        && !core::isStreamTransport(cfg_.transport)) {
        // Redirect server (paper Â§2): re-issue the INVITE straight to
        // the contact; the rest of the call bypasses the server.
        auto contact = final_rsp->contactUri();
        auto direct = contact ? sip::addrFromUri(*contact)
                              : std::nullopt;
        if (!direct)
            co_return;
        ++stats_.redirectsFollowed;
        requestDst_ = *direct;
        spec.requestUri = *contact;
        spec.cseq = ++cseq_;
        spec.branch = branches_.next();
        co_await transact(p, spec, &final_rsp, &invite);
    }
    if (final_rsp
        && final_rsp->statusCode() == sip::status::kServiceUnavailable) {
        // Overload rejection: note the requested backoff; callerMain
        // sleeps it off between calls instead of hammering the proxy.
        ++stats_.rejected503;
        pendingBackoff_ = retryAfterOf(*final_rsp);
    }
    if (!final_rsp || !final_rsp->isSuccess())
        co_return;

    // ACK (end-to-end for 2xx: routed via the proxy to the contact,
    // or straight to the callee after a redirect).
    sip::SipMessage ack =
        sip::buildAck(invite, *final_rsp, branches_.next());
    if (auto contact = final_rsp->contactUri())
        ack.setRequestUri(*contact);
    co_await p.cpu(cfg_.processCost, kPhoneCc);
    bool sent = false;
    co_await link_->send(p, ack.serialize(), &sent, requestDst_);
    stats_.inviteLatency.record(p.sim().now() - t0);
    opDone(p.sim().now());

    // --- BYE transaction ------------------------------------------------
    sim::SimTime t1 = p.sim().now();
    sip::RequestSpec bye_spec = spec;
    bye_spec.method = sip::Method::Bye;
    if (auto contact = final_rsp->contactUri())
        bye_spec.requestUri = *contact;
    bye_spec.cseq = ++cseq_;
    bye_spec.branch = branches_.next();
    bye_spec.contact.reset();
    std::optional<sip::SipMessage> bye_rsp;
    sip::SipMessage bye;
    co_await transact(p, std::move(bye_spec), &bye_rsp, &bye);
    if (bye_rsp
        && bye_rsp->statusCode() == sip::status::kServiceUnavailable) {
        ++stats_.rejected503;
        pendingBackoff_ = retryAfterOf(*bye_rsp);
    }
    if (!bye_rsp || !bye_rsp->isSuccess())
        co_return;
    stats_.byeLatency.record(p.sim().now() - t1);
    opDone(p.sim().now());
    *ok = true;
}

sim::Task
Phone::callerMain(sim::Process &p, int calls, std::string callee_user,
                  sim::Latch *registered, sim::Latch *start,
                  sim::Latch *done, const bool *stop)
{
    bool ok = false;
    co_await link_->open(p, &ok);
    if (ok)
        co_await doRegister(p, &ok);
    if (registered)
        registered->arrive();
    if (ok) {
        if (start)
            co_await start->wait(p);
        for (int i = 0; i < calls && !(stop && *stop); ++i) {
            bool call_ok = false;
            co_await placeCall(p, callee_user, i, &call_ok);
            if (call_ok) {
                ++stats_.callsCompleted;
                consecutive503_ = 0;
            } else {
                ++stats_.callsFailed;
            }
            if (pendingBackoff_ > 0) {
                sim::SimTime wait =
                    backoffWait(pendingBackoff_, consecutive503_,
                                cfg_.retryBackoffCap,
                                p.sim().rng().uniform());
                pendingBackoff_ = 0;
                ++consecutive503_;
                ++stats_.backoffs;
                co_await p.sleepFor(wait);
            }
            co_await maybeCycle(p);
        }
    }
    if (done)
        done->arrive();
}

sim::Task
Phone::calleeMain(sim::Process &p, int expected_calls,
                  sim::Latch *registered, sim::Latch *done)
{
    bool ok = false;
    co_await link_->open(p, &ok);
    if (ok)
        co_await doRegister(p, &ok);
    if (registered)
        registered->arrive();
    if (!ok) {
        if (done)
            done->arrive();
        co_return;
    }

    const bool udp = cfg_.transport == core::Transport::Udp;
    const std::string to_tag = cfg_.user + "-tag";
    int completed = 0;
    std::string current_call;  // Call-ID being serviced
    std::string ok200_wire;    // for retransmission until ACK
    net::Addr ok200_dst;       // where the 200 goes (top Via)
    bool awaiting_ack = false;
    sim::SimTime retrans_at = sim::kTimeNever;
    sim::SimTime retrans_interval = sip::timers::kT1;

    while (completed < expected_calls) {
        sim::SimTime timeout = sim::kTimeNever;
        if (awaiting_ack && udp)
            timeout = retrans_at - p.sim().now();
        std::string raw;
        if (!pendingRequests_.empty()) {
            raw = std::move(pendingRequests_.front());
            pendingRequests_.pop_front();
        } else {
            co_await link_->recv(
                p, &raw,
                timeout == sim::kTimeNever
                    ? sim::kTimeNever
                    : std::max<sim::SimTime>(timeout, 0));
        }
        if (raw.empty()) {
            // Retransmit 200 OK until the ACK arrives (UAS, §2).
            if (awaiting_ack && udp && !ok200_wire.empty()) {
                ++stats_.retransmissions;
                bool sent = false;
                co_await link_->send(p, ok200_wire, &sent, ok200_dst);
                retrans_interval =
                    std::min<sim::SimTime>(retrans_interval * 2,
                                           sip::timers::kT2);
                retrans_at = p.sim().now() + retrans_interval;
            }
            continue;
        }
        co_await p.cpu(cfg_.processCost, kPhoneCc);
        auto parsed = sip::parseOwned(std::move(raw));
        if (!parsed.ok) {
            ++stats_.strayMessages;
            continue;
        }
        sip::SipMessage &msg = parsed.message;
        if (!msg.isRequest()) {
            ++stats_.strayMessages;
            continue;
        }
        switch (msg.method()) {
          case sip::Method::Invite: {
            std::string cid(msg.callId());
            bool duplicate = awaiting_ack && cid == current_call;
            current_call = cid;
            // Responses follow the request's top Via: the proxy when
            // proxied, the caller directly after a redirect.
            ok200_dst = viaAddr(msg);
            if (!duplicate) {
                sip::SipMessage ringing =
                    sip::buildResponse(msg, sip::status::kRinging,
                                       to_tag);
                bool sent = false;
                co_await p.cpu(cfg_.processCost, kPhoneCc);
                co_await link_->send(p, ringing.serialize(), &sent,
                                     ok200_dst);
                if (cfg_.answerDelay > 0)
                    co_await p.sleepFor(cfg_.answerDelay);
                sip::SipMessage ok200 = sip::buildResponse(
                    msg, sip::status::kOk, to_tag, contactUri());
                ok200_wire = ok200.serialize();
            } else {
                ++stats_.retransmissions;
            }
            bool sent = false;
            co_await p.cpu(cfg_.processCost, kPhoneCc);
            co_await link_->send(p, ok200_wire, &sent, ok200_dst);
            awaiting_ack = true;
            retrans_interval = sip::timers::kT1;
            retrans_at = p.sim().now() + retrans_interval;
            break;
          }
          case sip::Method::Ack: {
            if (awaiting_ack && msg.callId() == current_call) {
                awaiting_ack = false;
                retrans_at = sim::kTimeNever;
                opDone(p.sim().now()); // invite transaction complete
            }
            break;
          }
          case sip::Method::Bye: {
            // A BYE implies the ACK made it (or was lost; either way
            // the call is established and now ending).
            if (awaiting_ack && msg.callId() == current_call) {
                awaiting_ack = false;
                retrans_at = sim::kTimeNever;
                opDone(p.sim().now());
            }
            sip::SipMessage ok = sip::buildResponse(
                msg, sip::status::kOk, to_tag);
            bool sent = false;
            co_await p.cpu(cfg_.processCost, kPhoneCc);
            co_await link_->send(p, ok.serialize(), &sent,
                                 viaAddr(msg));
            if (!current_call.empty() && msg.callId() == current_call) {
                opDone(p.sim().now()); // bye transaction complete
                ++stats_.callsCompleted;
                ++completed;
                current_call.clear();
                co_await maybeCycle(p);
            } else {
                ++stats_.retransmissions;
            }
            break;
          }
          default:
            ++stats_.strayMessages;
            break;
        }
    }
    if (done)
        done->arrive();
}

} // namespace siprox::phone

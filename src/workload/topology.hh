/**
 * @file
 * The topology layer: everything between "a Scenario" and "a set of
 * running proxy machines phones can talk to". Owns the server machines,
 * their network hosts, the per-hop proxy instances, and — in cluster
 * mode — the front-end dispatcher machine.
 *
 * Three shapes are supported:
 *   - single proxy     (chain empty, cluster disabled)  — the classic
 *     paper topology, byte-identical to the pre-Topology runner;
 *   - linear chain     (Scenario::chain non-empty) — a 1-wide linear
 *     topology, edge -> ... -> destination;
 *   - dispatched cluster (Scenario::cluster enabled) — N peer proxy
 *     instances behind a core::Dispatcher front end, each owning a
 *     shard of the location database (core/location.hh).
 *
 * The runner builds one Topology, attaches phones to callerEntry() /
 * calleeEntry(), and reads per-instance state back through proxies().
 */

#ifndef SIPROX_WORKLOAD_TOPOLOGY_HH
#define SIPROX_WORKLOAD_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dispatcher.hh"
#include "core/proxy.hh"
#include "net/network.hh"
#include "sim/machine.hh"
#include "sim/simulation.hh"

namespace siprox::workload {

struct Scenario;

/**
 * The server side of one scenario: machines, hosts, proxies, and the
 * optional dispatcher, built and started in a fixed order so existing
 * digest goldens stay byte-identical for non-cluster scenarios.
 */
class Topology
{
  public:
    /** Build machines/hosts and start every proxy (and dispatcher).
     *  Callers must have validated the scenario first
     *  (chainSupportError / clusterSupportError). */
    Topology(sim::Simulation &simu, net::Network &network,
             const Scenario &sc);
    ~Topology();

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    /** Chain length (1 for single proxy and for every cluster). */
    std::size_t hops() const { return hops_; }

    /** True when this topology runs a dispatched cluster. */
    bool cluster() const { return dispatcher_ != nullptr; }

    /** Proxy instances: chain hops (edge first) or cluster members. */
    std::vector<std::unique_ptr<core::Proxy>> &proxies()
    {
        return proxies_;
    }

    core::Proxy &edge() { return *proxies_.front(); }
    core::Proxy &dest() { return *proxies_.back(); }

    /** One machine/host per proxy instance, aligned with proxies(). */
    std::vector<sim::Machine *> &serverMachines()
    {
        return serverMachines_;
    }
    std::vector<net::Host *> &serverHosts() { return serverHosts_; }

    /** The cluster front end (null for single proxy and chains). */
    core::Dispatcher *dispatcher() { return dispatcher_.get(); }
    sim::Machine *dispatcherMachine() { return dispatcherMachine_; }
    net::Host *dispatcherHost() { return dispatcherHost_; }

    /** Where callers send their SIP traffic: the dispatcher in a
     *  cluster, otherwise the edge proxy. */
    net::Addr callerEntry() const;

    /** Where callees register: the dispatcher in a cluster, otherwise
     *  the chain destination (their home proxy). */
    net::Addr calleeEntry() const;

    /** The host scenario link faults/partitions apply against (what
     *  the phones actually talk to). */
    net::Host &faultHost();

    /** Machines whose profilers/utilization cover the measured phase:
     *  every proxy machine, plus the dispatcher machine last. */
    std::vector<sim::Machine *> profiledMachines() const;

    /** The machine whose CPU profile lands in RunResult::serverProfile
     *  (destination hop; the dispatcher in a cluster is reported via
     *  telemetry, not the profile). */
    sim::Machine &profileMachine() { return *serverMachines_.back(); }

    /**
     * Pre-seed @p population additional AORs ("u0".."u<n-1>") into the
     * location shards before the simulation runs, owner shard only —
     * models a large installed user base whose resident state pressures
     * the per-instance caches without simulating a registration flood.
     * No locks are taken: the simulation has not started.
     */
    void preSeedAors(std::uint64_t population);

    /** Ask every proxy (and the dispatcher) to stop. */
    void requestStop();

  private:
    void buildCluster(sim::Simulation &simu, net::Network &network,
                      const Scenario &sc);

    std::size_t hops_ = 1;
    std::vector<sim::Machine *> serverMachines_;
    std::vector<net::Host *> serverHosts_;
    std::vector<std::unique_ptr<core::Proxy>> proxies_;
    sim::Machine *dispatcherMachine_ = nullptr;
    net::Host *dispatcherHost_ = nullptr;
    std::unique_ptr<core::Dispatcher> dispatcher_;
};

} // namespace siprox::workload

#endif // SIPROX_WORKLOAD_TOPOLOGY_HH

#include "workload/scenario.hh"

#include <algorithm>
#include <climits>
#include <memory>
#include <stdexcept>

#include <functional>

#include "core/proxy.hh"
#include "net/network.hh"
#include "workload/topology.hh"
#include "phone/phone.hh"
#include "sim/mem_stats.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/trace.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace siprox::workload {

namespace {

/** Manager bookkeeping shared with the manager process. */
struct Phases
{
    sim::Latch registered;
    sim::Latch start{1};
    sim::Latch done;
    sim::SimTime measureStart = 0;
    sim::SimTime measureEnd = 0;
    std::vector<sim::SimTime> serverBusyAtStart;
    std::vector<sim::SimTime> clientBusyAtStart;
    bool finished = false;
    /** Time-based mode: set after the measurement window elapses. */
    bool stopCalling = false;
    sim::SimTime window = 0;

    Phases(int phones, int callers)
        : registered(phones), done(callers)
    {
    }
};

/**
 * The manager program (§4.2): waits for every phone to register,
 * starts the measured phase, and records its end.
 */
sim::Task
managerMain(sim::Process &p, Phases *phases,
            std::vector<sim::Machine *> servers,
            std::vector<sim::Machine *> client_machines)
{
    co_await phases->registered.wait(p);
    phases->measureStart = p.sim().now();
    // Profile and utilization cover only the measured phase.
    for (auto *m : servers) {
        m->profiler().reset();
        phases->serverBusyAtStart.push_back(m->scheduler().busyTime());
    }
    for (auto *m : client_machines)
        phases->clientBusyAtStart.push_back(m->scheduler().busyTime());
    if (sim::trace::recording()) {
        sim::trace::recorder()->instant("measure-start",
                                        phases->measureStart);
    }
    phases->start.arrive();
    if (phases->window > 0) {
        co_await p.sleepFor(phases->window);
        phases->stopCalling = true;
    }
    co_await phases->done.wait(p);
    phases->measureEnd = p.sim().now();
    phases->finished = true;
    if (sim::trace::recording()) {
        sim::trace::recorder()->instant("measure-end",
                                        phases->measureEnd);
    }
}

/**
 * Occupancy sampler: records the proxy's transaction-table size and
 * queue depths at a fixed period over the measured phase, giving the
 * overload benches an onset time series.
 */
sim::Task
samplerMain(sim::Process &p, Phases *phases, core::Proxy *proxy,
            sim::SimTime interval, std::vector<OccupancySample> *out)
{
    co_await phases->start.wait(p);
    while (!phases->finished) {
        out->push_back({p.sim().now(), proxy->shared().txns.size(),
                        proxy->requestQueueDepth(),
                        proxy->recvQueueDepth()});
        co_await p.sleepFor(interval);
    }
}

/**
 * Windowed-telemetry sampler: cuts a window at every multiple of the
 * window width from t=0 (registration included — the warmup phase is
 * part of the story). The final, partial window is flushed
 * synchronously by runScenario at the exact point it reads the run's
 * end-of-run counters, so per-window deltas sum to the RunResult
 * totals.
 */
sim::Task
telemetryMain(sim::Process &p, Phases *phases, sim::SimTime window,
              const std::function<void(sim::SimTime)> *boundary)
{
    sim::SimTime next = window;
    for (;;) {
        sim::SimTime now = p.sim().now();
        if (now < next)
            co_await p.sleepFor(next - now);
        // Once the measured phase is over, everything after this
        // boundary (the settle tail) belongs to the final window that
        // runScenario flushes synchronously — stop ticking so the run
        // loop's coast to its next check produces no empty windows.
        if (phases->finished)
            co_return;
        (*boundary)(p.sim().now());
        next += window;
    }
}

/** Per-hop serve-latency accumulator fed by the overload controller's
 *  served sink: a histogram over the current window (reset at each
 *  boundary) plus the run-cumulative served count. */
struct ServedWindow
{
    stats::LatencyHistogram hist;
    std::uint64_t servedTotal = 0;
};

/**
 * Machine-level telemetry shared by server and client series: CPU busy
 * time (total and per core), lock contention, socket I/O, run-queue
 * depth, and — when a trace recorder is attached — the per-wait-state
 * span totals the explain report ranks.
 */
void
sampleMachine(stats::Series &s, sim::Machine &m, const net::Host &h)
{
    sim::CpuScheduler &sched = m.scheduler();
    s.counter("cpu.busyNs",
              static_cast<std::uint64_t>(sched.busyTime()));
    for (int c = 0; c < sched.cores(); ++c) {
        s.counter("cpu.core" + std::to_string(c) + ".busyNs",
                  static_cast<std::uint64_t>(sched.coreBusyTime(c)));
    }
    s.counter("lock.contendNs",
              static_cast<std::uint64_t>(m.lockContendTime()));
    s.counter("lock.contentions", m.lockContentions());
    const net::HostIoStats &io = h.io();
    s.counter("io.pktsOut", io.pktsOut);
    s.counter("io.bytesOut", io.bytesOut);
    s.counter("io.pktsIn", io.pktsIn);
    s.counter("io.bytesIn", io.bytesIn);
    s.gauge("cpu.cores", sched.cores());
    s.gauge("sched.queued", sched.queued());
    if (sim::trace::recording()) {
        const auto &totals = sim::trace::recorder()->machineTotals();
        auto it = totals.find(m.name());
        if (it != totals.end()) {
            for (std::size_t w = 0; w < sim::trace::kWaitCount; ++w) {
                s.counter("wait."
                              + std::string(sim::trace::waitName(
                                  static_cast<sim::trace::Wait>(w))),
                          static_cast<std::uint64_t>(
                              it->second.wait[w]));
            }
        }
    }
}

} // namespace

const char *
chainSupportError(const Scenario &sc)
{
    if (sc.chain.empty())
        return nullptr;
    if (sc.chain.size() < 2)
        return "a proxy chain needs at least 2 hops (an edge and a "
               "destination); leave `chain` empty for a single proxy";
    if (sc.chain.size() > 4)
        return "proxy chains support at most 4 hops (edge, up to two "
               "cores, destination)";
    for (const auto &hop : sc.chain) {
        core::Transport t = hop.transport.value_or(sc.proxy.transport);
        if (t != sc.proxy.transport)
            return "mixed-transport chains are not supported: every "
                   "hop must speak the scenario transport (per-hop "
                   "architectures are free to vary)";
        if (const char *err = core::archSupportError(hop.arch, t))
            return err;
    }
    if (sc.proxy.redirect)
        return "redirect mode short-circuits the chain (the 302 hands "
               "the caller the contact directly); run it single-proxy";
    if (sc.proxy.overload.hop.scheme == core::FeedbackScheme::Window
        && !sc.proxy.stateful)
        return "the window scheme needs stateful proxies: pending "
               "slots are released when the transaction record sees "
               "its final response";
    return nullptr;
}

const char *
clusterSupportError(const Scenario &sc)
{
    const ClusterConfig &cl = sc.cluster;
    if (!cl.enabled())
        return nullptr;
    if (cl.instances > 16)
        return "clusters support at most 16 proxy instances; beyond "
               "that the dispatcher model (one machine, one socket) "
               "stops being the interesting bottleneck";
    if (!sc.chain.empty())
        return "cluster and chain topologies are mutually exclusive: "
               "a cluster is N peers behind one dispatcher, not a "
               "linear pipeline — pick one";
    if (const char *err =
            core::dispatchSupportError(cl.policy, sc.proxy.transport))
        return err;
    if (const char *err = core::archSupportError(sc.proxy.arch,
                                                 sc.proxy.transport))
        return err;
    if (sc.proxy.redirect)
        return "redirect mode hands the caller the contact directly, "
               "bypassing the dispatcher on the next request; run it "
               "single-proxy";
    if (cl.dispatcherCores < 1 || cl.dispatcherWorkers < 1)
        return "the dispatcher needs at least one core and one worker";
    if (cl.vnodes < 1)
        return "the consistent-hash ring needs at least one virtual "
               "node per instance";
    if (cl.aorPopulation > 1000000)
        return "pre-seeded AOR populations are capped at 1M per "
               "cluster (beyond that the seeding loop dominates run "
               "setup)";
    return nullptr;
}

RunResult
runScenario(const Scenario &sc)
{
    if (const char *err = chainSupportError(sc))
        throw std::invalid_argument(std::string("chain topology: ")
                                    + err);
    if (const char *err = clusterSupportError(sc))
        throw std::invalid_argument(std::string("cluster topology: ")
                                    + err);

    // Per-run retained-bytes high-water marks (pools persist across
    // runs in one process; the peaks should describe this scenario).
    sim::mem::ledgers().resetPeaks();

    sim::Simulation simu(sc.seed);
    net::Network network(simu, sc.net);
    // All server-side machine/host/proxy wiring (single proxy, chain,
    // or dispatched cluster) lives in the topology layer.
    Topology topo(simu, network, sc);
    const std::size_t hops = topo.hops();
    std::vector<sim::Machine *> &server_machines = topo.serverMachines();
    std::vector<net::Host *> &server_hosts = topo.serverHosts();
    std::vector<std::unique_ptr<core::Proxy>> &proxies = topo.proxies();
    // Profile/utilization accounting covers every proxy machine plus,
    // in a cluster, the dispatcher machine (appended last).
    std::vector<sim::Machine *> profiled = topo.profiledMachines();
    net::Host &server_host = topo.faultHost(); // what phones talk to
    core::Proxy &proxy = topo.edge();          // edge: callers
    core::Proxy &dest_proxy = topo.dest();     // destination: callees

    std::vector<sim::Machine *> client_machines;
    std::vector<net::Host *> client_hosts;
    for (int i = 0; i < sc.clientMachines; ++i) {
        auto &m = simu.addMachine("client" + std::to_string(i),
                                  sc.clientCores);
        client_machines.push_back(&m);
        client_hosts.push_back(&network.attach(m));
    }

    // Scenario-level fault injection: translate machine indices into
    // host ids now that every host is attached.
    auto for_each_client = [&](int which, auto &&fn) {
        for (int i = 0; i < sc.clientMachines; ++i) {
            if (which < 0 || which == i)
                fn(client_hosts[static_cast<std::size_t>(i)]->id());
        }
    };
    for (const auto &lf : sc.linkFaults) {
        for_each_client(lf.clientMachine, [&](std::uint32_t client) {
            if (lf.toProxy)
                network.faults().setLink(client, server_host.id(),
                                         lf.imp);
            if (lf.fromProxy)
                network.faults().setLink(server_host.id(), client,
                                         lf.imp);
        });
    }
    for (const auto &pt : sc.partitions) {
        for_each_client(pt.clientMachine, [&](std::uint32_t client) {
            network.faults().addPartition(server_host.id(), client,
                                          pt.start, pt.stop);
        });
    }

    Phases phases(2 * sc.clients, sc.clients);
    phases.window = sc.measureWindow;
    const int calls_per_client = sc.measureWindow > 0
        ? INT_MAX / 4
        : sc.callsPerClient;
    std::vector<std::unique_ptr<phone::Phone>> callers, callees;
    callers.reserve(static_cast<std::size_t>(sc.clients));
    callees.reserve(static_cast<std::size_t>(sc.clients));
    for (int i = 0; i < sc.clients; ++i) {
        int m = i % sc.clientMachines;
        auto mk_cfg = [&](const std::string &user, std::uint16_t port,
                          net::Addr proxy_addr) {
            phone::PhoneConfig cfg;
            cfg.user = user;
            cfg.port = port;
            cfg.transport = sc.proxy.transport;
            cfg.proxyAddr = proxy_addr;
            cfg.opsPerConn = sc.opsPerConn;
            cfg.answerDelay = sc.answerDelay;
            cfg.responseTimeout = sc.phoneResponseTimeout;
            cfg.retryBackoffCap = sc.phoneRetryBackoffCap;
            return cfg;
        };
        // Callers attach to the edge; callees live at the destination
        // (their home proxy) so only requests traverse the chain and
        // registrations stay local to each hop.
        callees.push_back(std::make_unique<phone::Phone>(
            *client_machines[static_cast<std::size_t>(m)],
            *client_hosts[static_cast<std::size_t>(m)],
            mk_cfg("c" + std::to_string(i),
                   static_cast<std::uint16_t>(16000 + i),
                   topo.calleeEntry())));
        callees.back()->startCallee(calls_per_client,
                                    &phases.registered, nullptr);
        callers.push_back(std::make_unique<phone::Phone>(
            *client_machines[static_cast<std::size_t>(m)],
            *client_hosts[static_cast<std::size_t>(m)],
            mk_cfg("a" + std::to_string(i),
                   static_cast<std::uint16_t>(6000 + i),
                   topo.callerEntry())));
        callers.back()->startCaller(calls_per_client,
                                    "c" + std::to_string(i),
                                    &phases.registered, &phases.start,
                                    &phases.done, &phases.stopCalling);
    }

    client_machines[0]->spawn(
        "manager", 0, [&](sim::Process &p) {
            return managerMain(p, &phases, profiled,
                               client_machines);
        });

    // The sampler watches the destination: in a chain it is the
    // bottleneck whose signals drive the feedback (single proxy: the
    // only one).
    std::vector<OccupancySample> occupancy;
    if (sc.sampleInterval > 0) {
        client_machines[0]->spawn(
            "sampler", 0, [&](sim::Process &p) {
                return samplerMain(p, &phases, &dest_proxy,
                                   sc.sampleInterval, &occupancy);
            });
    }

    // Windowed telemetry (Scenario::telemetry): one series per proxy
    // hop and per client machine, plus phone-fleet and network-fabric
    // pseudo-series. Everything below — including the sampler process
    // itself — exists only when enabled, so default runs keep their
    // pinned digests byte-identical.
    std::shared_ptr<stats::TimeSeries> telemetry;
    std::vector<stats::Series *> hop_series, client_series;
    stats::Series *phone_series = nullptr;
    stats::Series *disp_series = nullptr;
    stats::Series *net_series = nullptr;
    std::vector<stats::Series *> all_series;
    std::vector<ServedWindow> served(proxies.size());
    std::function<void(sim::SimTime)> telemetry_sample;
    std::function<void(sim::SimTime)> telemetry_boundary;
    if (sc.telemetry.enabled()) {
        const char *transport =
            core::transportName(sc.proxy.transport);
        telemetry = std::make_shared<stats::TimeSeries>(
            sc.name, sc.seed, sc.telemetry.window(), transport);
        // One series per proxy instance: chain hops (hop = chain
        // index) or cluster members (hop = instance index).
        for (std::size_t i = 0; i < proxies.size(); ++i) {
            hop_series.push_back(&telemetry->add(
                server_machines[i]->name(), static_cast<int>(i),
                core::archKindName(proxies[i]->arch()->kind()),
                core::transportName(
                    proxies[i]->config().transport)));
            // The overload controller times every served request on
            // every policy (including None); the sink gives telemetry
            // a per-window latency histogram without a second timer.
            proxies[i]->shared().overload.setServedSink(
                [sw = &served[i]](sim::SimTime latency) {
                    sw->hist.record(latency);
                    ++sw->servedTotal;
                });
        }
        if (topo.cluster()) {
            disp_series = &telemetry->add(
                topo.dispatcherMachine()->name(), -1, "dispatcher",
                transport);
        }
        for (std::size_t i = 0; i < client_machines.size(); ++i) {
            client_series.push_back(&telemetry->add(
                client_machines[i]->name(), -1, "", transport));
        }
        phone_series = &telemetry->add("phones", -1, "", transport);
        net_series = &telemetry->add("net", -1, "", transport);
        for (stats::Series *s : hop_series)
            all_series.push_back(s);
        if (disp_series)
            all_series.push_back(disp_series);
        for (stats::Series *s : client_series)
            all_series.push_back(s);
        all_series.push_back(phone_series);
        all_series.push_back(net_series);

        telemetry_sample = [&](sim::SimTime) {
            for (std::size_t i = 0; i < proxies.size(); ++i) {
                stats::Series &s = *hop_series[i];
                core::Proxy &px = *proxies[i];
                sampleMachine(s, *server_machines[i],
                              *server_hosts[i]);
                const core::ProxyCounters &c =
                    px.shared().counters;
                s.counter("proxy.messagesIn", c.messagesIn);
                s.counter("proxy.requestsIn", c.requestsIn);
                s.counter("proxy.responsesIn", c.responsesIn);
                s.counter("proxy.forwards", c.forwards);
                s.counter("proxy.localReplies", c.localReplies);
                s.counter("proxy.retransAbsorbed",
                          c.retransAbsorbed);
                s.counter("proxy.retransSent", c.retransSent);
                s.counter("proxy.fdRequests", c.fdRequests);
                s.counter("proxy.fdCacheHits", c.fdCacheHits);
                s.counter("proxy.connsAccepted", c.connsAccepted);
                s.counter("proxy.outboundConnects",
                          c.outboundConnects);
                s.counter("proxy.overloadRejected",
                          c.overloadRejected);
                s.counter("proxy.overloadThrottled",
                          c.overloadThrottled);
                s.counter("proxy.overloadPanicDrops",
                          c.overloadPanicDrops);
                s.counter("proxy.hopFeedbackSent",
                          c.hopFeedbackSent);
                s.counter("proxy.hopThrottleHolds",
                          c.hopThrottleHolds);
                s.counter("proxy.hopThrottleRejects",
                          c.hopThrottleRejects);
                s.counter("queue.recvDrops", px.recvQueueDrops());
                s.counter("accept.refused", px.acceptRefused());
                s.counter("served.count", served[i].servedTotal);
                if (topo.cluster()) {
                    s.counter("loc.localHits", c.locLocalHits);
                    s.counter("loc.replicaHits", c.locReplicaHits);
                    s.counter("loc.missForwards", c.locMissForwards);
                    s.counter("loc.replPushes", c.locReplPushes);
                    s.counter("loc.replInstalls", c.locReplInstalls);
                }

                const core::ProxyConfig &cfg = px.config();
                core::SharedState &sh = px.shared();
                s.gauge("queue.request",
                        static_cast<double>(
                            px.requestQueueDepth()));
                s.gauge("queue.recv",
                        static_cast<double>(px.recvQueueDepth()));
                // Two table keys per transaction record.
                s.gauge("txn.records",
                        static_cast<double>(sh.txns.size()) / 2.0);
                if (cfg.overload.txnTableCapacity > 0) {
                    s.gauge("occ.txnTable",
                            static_cast<double>(sh.txns.size())
                                / static_cast<double>(
                                    cfg.overload.txnTableCapacity));
                }
                if (cfg.overload.recvQueueCapacity > 0) {
                    s.gauge("occ.recvQueue",
                            static_cast<double>(px.recvQueueDepth())
                                / static_cast<double>(
                                    cfg.overload
                                        .recvQueueCapacity));
                }
                const core::OverloadController &oc = sh.overload;
                s.gauge("overload.occupancy", oc.occupancySignal());
                s.gauge("overload.latencyEwmaMs",
                        sim::toMsecs(oc.latencyEwma()));
                s.gauge("overload.rate", oc.currentRate());
                s.gauge("overload.shedding",
                        oc.shedding() ? 1.0 : 0.0);
                s.gauge("hop.grantedRate", oc.hopGrantedRate());
                s.gauge("hop.grantedWindow",
                        static_cast<double>(oc.hopGrantedWindow()));
                s.gauge("hop.on", oc.hopOn() ? 1.0 : 0.0);
                if (cfg.nextHop.valid()) {
                    s.gauge("hopgate.rateToNext",
                            sh.hopGate.grantedRate(cfg.nextHop));
                    s.gauge("hopgate.windowToNext",
                            static_cast<double>(
                                sh.hopGate.grantedWindow(
                                    cfg.nextHop)));
                    s.gauge("hopgate.pendingToNext",
                            static_cast<double>(
                                sh.hopGate.pendingToward(
                                    cfg.nextHop)));
                }
                ServedWindow &sw = served[i];
                if (sw.hist.count() > 0) {
                    s.gauge("latency.meanMs",
                            sim::toMsecs(sw.hist.mean()));
                    s.gauge("latency.p50Ms",
                            sim::toMsecs(
                                sw.hist.percentileMid(0.5)));
                    s.gauge("latency.p95Ms",
                            sim::toMsecs(
                                sw.hist.percentileMid(0.95)));
                    s.gauge("latency.p99Ms",
                            sim::toMsecs(
                                sw.hist.percentileMid(0.99)));
                    s.gauge("latency.p999Ms",
                            sim::toMsecs(
                                sw.hist.percentileMid(0.999)));
                    s.gauge("latency.maxMs",
                            sim::toMsecs(sw.hist.max()));
                }
                sw.hist.reset();
                if (const core::ServerArch *arch = px.arch()) {
                    std::vector<core::ArchGauge> gauges;
                    arch->appendTelemetryGauges(gauges);
                    for (const core::ArchGauge &g : gauges)
                        s.gauge(g.name, g.value);
                }
            }

            if (disp_series) {
                stats::Series &s = *disp_series;
                sampleMachine(s, *topo.dispatcherMachine(),
                              *topo.dispatcherHost());
                const core::DispatcherStats &d =
                    topo.dispatcher()->stats();
                s.counter("disp.messagesIn", d.messagesIn);
                s.counter("disp.requestsRouted", d.requestsRouted);
                s.counter("disp.responsesRouted", d.responsesRouted);
                s.counter("disp.registersRouted", d.registersRouted);
                s.counter("disp.peekFailures", d.peekFailures);
                s.counter("disp.dropsNoRoute", d.dropsNoRoute);
                s.counter("disp.clientConnsAccepted",
                          d.clientConnsAccepted);
                for (std::size_t i = 0; i < d.toInstance.size(); ++i) {
                    s.counter("disp.toInstance" + std::to_string(i),
                              d.toInstance[i]);
                }
            }

            for (std::size_t i = 0; i < client_series.size(); ++i) {
                sampleMachine(*client_series[i],
                              *client_machines[i],
                              *client_hosts[i]);
            }

            std::uint64_t p_ops = 0, p_done = 0, p_fail = 0,
                          p_ret = 0, p_rej = 0, p_back = 0;
            for (const auto &ph : callers) {
                const phone::PhoneStats &st = ph->stats();
                p_ops += st.opsCompleted;
                p_done += st.callsCompleted;
                p_fail += st.callsFailed;
                p_ret += st.retransmissions;
                p_rej += st.rejected503;
                p_back += st.backoffs;
            }
            for (const auto &ph : callees)
                p_ret += ph->stats().retransmissions;
            phone_series->counter("phone.ops", p_ops);
            phone_series->counter("phone.callsCompleted", p_done);
            phone_series->counter("phone.callsFailed", p_fail);
            phone_series->counter("phone.retransmissions", p_ret);
            phone_series->counter("phone.rejected503", p_rej);
            phone_series->counter("phone.backoffs", p_back);

            const net::NetStats &nst = network.stats();
            net_series->counter("net.udpSent", nst.udpSent);
            net_series->counter("net.udpDelivered",
                                nst.udpDelivered);
            net_series->counter("net.udpDropped", nst.udpDropped);
            net_series->counter("net.udpLost", nst.udpLost);
            net_series->counter("net.tcpConnects", nst.tcpConnects);
            net_series->counter("net.tcpSegments", nst.tcpSegments);
            net_series->counter("net.tcpBytes", nst.tcpBytes);
            net_series->counter("net.sctpMessages",
                                nst.sctpMessages);
            net_series->counter("net.sctpDropped", nst.sctpDropped);
            net_series->counter("net.sstMessages", nst.sstMessages);
            net_series->counter("net.sstFrames", nst.sstFrames);
            net_series->counter("net.sstDropped", nst.sstDropped);
            net_series->counter("net.tlsRecords", nst.tlsRecords);
            net_series->counter("net.batchRecvCalls",
                                nst.batchRecv.calls);
            net_series->counter("net.batchRecvMsgs",
                                nst.batchRecv.messages);
            net_series->counter("net.batchSendCalls",
                                nst.batchSend.calls);
            net_series->counter("net.batchSendMsgs",
                                nst.batchSend.messages);
        };
        telemetry_boundary = [&](sim::SimTime now) {
            telemetry_sample(now);
            for (stats::Series *s : all_series)
                s->beginWindow(now);
        };

        // Window 0 opens at t=0; the sampler closes a window at every
        // following multiple of the width. The last (partial) window
        // is flushed synchronously when the run's counters are read.
        for (stats::Series *s : all_series)
            s->beginWindow(0);
        client_machines[0]->spawn(
            "telemetry", 0, [&](sim::Process &p) {
                return telemetryMain(p, &phases,
                                     sc.telemetry.window(),
                                     &telemetry_boundary);
            });
    }

    // Registration phase has no explicit cap; the measured phase is
    // capped at maxDuration past its start.
    while (!phases.finished) {
        sim::SimTime deadline = phases.measureStart > 0
            ? phases.measureStart + sc.maxDuration
            : simu.now() + sim::secs(30);
        simu.runUntil(std::min(deadline, simu.now() + sim::secs(1)));
        if (phases.measureStart > 0
            && simu.now() >= phases.measureStart + sc.maxDuration) {
            break;
        }
        if (phases.measureStart == 0
            && simu.now() > sim::secs(3600)) {
            break; // registration wedged: report what we have
        }
    }

    if (phases.finished && sc.settleTime > 0)
        simu.runFor(sc.settleTime);

    // Flush the final telemetry window here — the same instant the
    // end-of-run counters below are read — so every series' per-window
    // deltas sum exactly to the totals in RunResult.
    if (telemetry) {
        const sim::SimTime tele_end = simu.now();
        telemetry_sample(tele_end);
        for (stats::Series *s : all_series)
            s->finish(tele_end);
        telemetry->setMeasurePhase(
            phases.measureStart,
            phases.finished ? phases.measureEnd : tele_end);
    }

    RunResult result;
    result.timeseries = telemetry;
    result.timedOut = !phases.finished;
    sim::SimTime end = phases.finished ? phases.measureEnd : simu.now();
    result.duration = end - phases.measureStart;

    // Operations are counted at the callers (each transaction once).
    sim::SimTime last_op = phases.measureStart;
    for (const auto &ph : callers) {
        const auto &st = ph->stats();
        result.ops += st.opsCompleted;
        result.callsCompleted += st.callsCompleted;
        result.callsFailed += st.callsFailed;
        last_op = std::max(last_op, st.lastOpDone);
    }
    for (const auto &ph : callees) {
        const auto &st = ph->stats();
        result.phoneRetransmissions += st.retransmissions;
        result.reconnects += st.reconnects;
        result.reconnectFailures += st.reconnectFailures;
    }
    for (const auto &ph : callers) {
        const auto &st = ph->stats();
        result.phoneRetransmissions += st.retransmissions;
        result.reconnects += st.reconnects;
        result.reconnectFailures += st.reconnectFailures;
        result.phoneRejected503 += st.rejected503;
        result.phoneBackoffs += st.backoffs;
    }
    if (result.timedOut)
        result.duration = last_op - phases.measureStart;
    if (result.duration > 0) {
        result.opsPerSec = static_cast<double>(result.ops)
            / sim::toSecs(result.duration);
    }

    // Latency percentiles over all callers' INVITE transactions.
    stats::LatencyHistogram invite;
    for (const auto &ph : callers)
        invite.merge(ph->stats().inviteLatency);
    result.inviteP50 = invite.percentile(0.5);
    result.inviteP99 = invite.percentile(0.99);

    for (const auto &px : proxies) {
        result.counters.add(px->shared().counters);
        result.txnEntriesAtEnd += px->shared().txns.size();
        result.retransEntriesAtEnd += px->shared().retrans.size();
        result.connEntriesAtEnd += px->shared().conns.size();
        result.proxyRecvQueueDrops += px->recvQueueDrops();
        result.proxyAcceptRefused += px->acceptRefused();
    }
    if (hops > 1) {
        for (const auto &px : proxies)
            result.hopCounters.push_back(px->shared().counters);
    }
    if (topo.cluster()) {
        result.clusterInstances = static_cast<int>(proxies.size());
        for (const auto &px : proxies)
            result.instanceCounters.push_back(px->shared().counters);
        result.dispatcherStats = topo.dispatcher()->stats();
    }
    result.net = network.stats();
    result.faults = network.faults().stats();
    if (const core::ServerArch *arch = proxy.arch()) {
        result.archKind = arch->kind();
        result.archLoops = arch->loopCount();
    }
    result.occupancy = std::move(occupancy);
    // Profile the destination machine: it is the saturating hop the
    // distributed schemes protect (single proxy: the only machine).
    result.serverProfile = server_machines.back()->profiler();
    if (result.duration > 0) {
        // Server utilization reports the busiest server-side machine
        // (hop, cluster instance, or the dispatcher).
        for (std::size_t i = 0; i < profiled.size(); ++i) {
            double capacity = sim::toSecs(result.duration)
                * profiled[i]->scheduler().cores();
            // Bursts spanning the phase boundary are charged when
            // they end, so clamp the tiny resulting over-count.
            result.serverUtilization = std::max(
                result.serverUtilization,
                std::min(
                    1.0,
                    sim::toSecs(
                        profiled[i]->scheduler().busyTime()
                        - (i < phases.serverBusyAtStart.size()
                               ? phases.serverBusyAtStart[i]
                               : 0))
                        / capacity));
        }
        for (std::size_t i = 0; i < client_machines.size(); ++i) {
            double busy = sim::toSecs(
                client_machines[i]->scheduler().busyTime()
                - (i < phases.clientBusyAtStart.size()
                       ? phases.clientBusyAtStart[i]
                       : 0));
            double cap = sim::toSecs(result.duration)
                * client_machines[i]->scheduler().cores();
            result.maxClientUtilization = std::max(
                result.maxClientUtilization, busy / cap);
        }
    }

    result.simEvents = simu.eventsRun();
    const sim::mem::Ledgers &mem = sim::mem::ledgers();
    result.memArenaPeak = mem.arena.peak;
    result.memEventSlabPeak = mem.eventSlab.peak;
    result.memFramePoolPeak = mem.framePool.peak;
    topo.requestStop();
    return result;
}

std::string
RunResult::digest() const
{
    std::string out;
    auto add = [&out](const char *name, std::uint64_t v) {
        out += name;
        out += '=';
        out += std::to_string(v);
        out += '\n';
    };
    add("ops", ops);
    add("callsCompleted", callsCompleted);
    add("callsFailed", callsFailed);
    add("phoneRetransmissions", phoneRetransmissions);
    add("reconnects", reconnects);
    add("reconnectFailures", reconnectFailures);
    add("duration", static_cast<std::uint64_t>(duration));
    add("inviteP50", static_cast<std::uint64_t>(inviteP50));
    add("inviteP99", static_cast<std::uint64_t>(inviteP99));
    add("timedOut", timedOut ? 1 : 0);
    add("messagesIn", counters.messagesIn);
    add("requestsIn", counters.requestsIn);
    add("responsesIn", counters.responsesIn);
    add("forwards", counters.forwards);
    add("localReplies", counters.localReplies);
    add("parseErrors", counters.parseErrors);
    add("routeFailures", counters.routeFailures);
    add("retransAbsorbed", counters.retransAbsorbed);
    add("retransSent", counters.retransSent);
    add("retransTimeouts", counters.retransTimeouts);
    add("timerB408s", counters.timerB408s);
    add("registrations", counters.registrations);
    add("connsAccepted", counters.connsAccepted);
    add("connsDestroyed", counters.connsDestroyed);
    add("outboundConnects", counters.outboundConnects);
    add("overloadRejected", counters.overloadRejected);
    add("overloadThrottled", counters.overloadThrottled);
    add("overloadPanicDrops", counters.overloadPanicDrops);
    add("overloadShedEnters", counters.overloadShedEnters);
    add("overloadShedExits", counters.overloadShedExits);
    add("tcpReadPauses", counters.tcpReadPauses);
    add("tcpReadResumes", counters.tcpReadResumes);
    add("tcpAcceptPauses", counters.tcpAcceptPauses);
    add("phoneRejected503", phoneRejected503);
    add("phoneBackoffs", phoneBackoffs);
    add("proxyRecvQueueDrops", proxyRecvQueueDrops);
    add("proxyAcceptRefused", proxyAcceptRefused);
    add("occupancySamples", occupancy.size());
    add("udpSent", net.udpSent);
    add("udpDelivered", net.udpDelivered);
    add("udpLost", net.udpLost);
    add("udpDropped", net.udpDropped);
    add("tcpConnects", net.tcpConnects);
    add("tcpRefused", net.tcpRefused);
    add("tcpSegments", net.tcpSegments);
    add("tcpBytes", net.tcpBytes);
    add("sctpMessages", net.sctpMessages);
    add("sctpDropped", net.sctpDropped);
    add("sctpAssocs", net.sctpAssocs);
    add("faultDropped", net.faultDropped);
    add("faultDuplicated", net.faultDuplicated);
    add("faultDelayed", net.faultDelayed);
    add("tcpFaultRefused", net.tcpFaultRefused);
    add("tcpRstInjected", net.tcpRstInjected);
    add("tcpBlackholed", net.tcpBlackholed);
    add("tcpRecoveries", net.tcpRecoveries);
    add("txnEntriesAtEnd", txnEntriesAtEnd);
    add("retransEntriesAtEnd", retransEntriesAtEnd);
    add("connEntriesAtEnd", connEntriesAtEnd);
    // TLS and SST groups are appended only when the transport was in
    // play, so pre-existing digests stay byte-identical.
    if (net.tlsConnects || net.tlsHandshakeAborts) {
        add("tlsConnects", net.tlsConnects);
        add("tlsHandshakesFull", net.tlsHandshakesFull);
        add("tlsHandshakesResumed", net.tlsHandshakesResumed);
        add("tlsZeroRttResumes", net.tlsZeroRttResumes);
        add("tlsSessionEvictions", net.tlsSessionEvictions);
        add("tlsHandshakeAborts", net.tlsHandshakeAborts);
        add("tlsRecords", net.tlsRecords);
    }
    if (net.sstMessages || net.sstChannels) {
        add("sstMessages", net.sstMessages);
        add("sstStreams", net.sstStreams);
        add("sstFrames", net.sstFrames);
        add("sstChannels", net.sstChannels);
        add("sstDropped", net.sstDropped);
        add("sstLost", net.sstLost);
    }
    // Batched-I/O group: only the recvBatch/sendBatch paths record
    // batch syscalls, and the architectures take those paths only at
    // batchMax > 1, so every batchMax=1 digest stays byte-identical
    // to its pre-batching golden.
    if (net.batchRecv.calls || net.batchSend.calls) {
        add("batchRecvCalls", net.batchRecv.calls);
        add("batchRecvMsgs", net.batchRecv.messages);
        add("batchRecvMaxDepth", net.batchRecv.maxDepth);
        add("batchSendCalls", net.batchSend.calls);
        add("batchSendMsgs", net.batchSend.messages);
        add("batchSendMaxDepth", net.batchSend.maxDepth);
    }
    // Hop-by-hop control and chain groups follow the same convention:
    // appended only when the feature was in play, so every pre-chain
    // golden digest stays byte-identical.
    if (counters.hopFeedbackSent || counters.hopFeedbackApplied
        || counters.hopThrottleHolds || counters.hopThrottleRejects
        || counters.hopThrottleDrops || counters.hopGrantExpired) {
        add("hopFeedbackSent", counters.hopFeedbackSent);
        add("hopFeedbackApplied", counters.hopFeedbackApplied);
        add("hopThrottleHolds", counters.hopThrottleHolds);
        add("hopThrottleRejects", counters.hopThrottleRejects);
        add("hopThrottleDrops", counters.hopThrottleDrops);
        add("hopGrantExpired", counters.hopGrantExpired);
    }
    if (!hopCounters.empty()) {
        add("chainHops", hopCounters.size());
        for (std::size_t i = 0; i < hopCounters.size(); ++i) {
            const core::ProxyCounters &h = hopCounters[i];
            std::string prefix = "hop" + std::to_string(i) + ".";
            auto addh = [&out, &prefix](const char *name,
                                        std::uint64_t v) {
                out += prefix;
                out += name;
                out += '=';
                out += std::to_string(v);
                out += '\n';
            };
            addh("messagesIn", h.messagesIn);
            addh("forwards", h.forwards);
            addh("localReplies", h.localReplies);
            addh("retransAbsorbed", h.retransAbsorbed);
            addh("timerB408s", h.timerB408s);
            addh("overloadRejected", h.overloadRejected);
            addh("overloadThrottled", h.overloadThrottled);
            addh("overloadPanicDrops", h.overloadPanicDrops);
            addh("hopFeedbackSent", h.hopFeedbackSent);
            addh("hopFeedbackApplied", h.hopFeedbackApplied);
            addh("hopThrottleHolds", h.hopThrottleHolds);
            addh("hopThrottleRejects", h.hopThrottleRejects);
            addh("hopThrottleDrops", h.hopThrottleDrops);
            addh("hopGrantExpired", h.hopGrantExpired);
        }
    }
    // Cluster group: appended only for cluster runs, so every
    // pre-cluster golden digest stays byte-identical.
    if (clusterInstances > 0) {
        add("clusterInstances",
            static_cast<std::uint64_t>(clusterInstances));
        add("dispMessagesIn", dispatcherStats.messagesIn);
        add("dispRequestsRouted", dispatcherStats.requestsRouted);
        add("dispResponsesRouted", dispatcherStats.responsesRouted);
        add("dispRegistersRouted", dispatcherStats.registersRouted);
        add("dispPeekFailures", dispatcherStats.peekFailures);
        add("dispDropsNoRoute", dispatcherStats.dropsNoRoute);
        add("dispClientConnsAccepted",
            dispatcherStats.clientConnsAccepted);
        add("locLocalHits", counters.locLocalHits);
        add("locReplicaHits", counters.locReplicaHits);
        add("locMissForwards", counters.locMissForwards);
        add("locRegisterForwards", counters.locRegisterForwards);
        add("locReplPushes", counters.locReplPushes);
        add("locReplInstalls", counters.locReplInstalls);
        for (std::size_t i = 0; i < instanceCounters.size(); ++i) {
            const core::ProxyCounters &h = instanceCounters[i];
            std::string prefix = "inst" + std::to_string(i) + ".";
            auto addi = [&out, &prefix](const char *name,
                                        std::uint64_t v) {
                out += prefix;
                out += name;
                out += '=';
                out += std::to_string(v);
                out += '\n';
            };
            addi("messagesIn", h.messagesIn);
            addi("forwards", h.forwards);
            addi("localReplies", h.localReplies);
            addi("registrations", h.registrations);
            addi("locLocalHits", h.locLocalHits);
            addi("locReplicaHits", h.locReplicaHits);
            addi("locMissForwards", h.locMissForwards);
            addi("locReplPushes", h.locReplPushes);
            addi("locReplInstalls", h.locReplInstalls);
            if (i < dispatcherStats.toInstance.size())
                addi("dispatched", dispatcherStats.toInstance[i]);
        }
    }
    out += faults.digest();
    return out;
}

stats::MetricsRegistry
collectMetrics(const RunResult &r)
{
    stats::MetricsRegistry reg;

    // Phone-side counters (operations counted at the callers).
    reg.setCounter("phone.ops", r.ops);
    reg.setCounter("phone.callsCompleted", r.callsCompleted);
    reg.setCounter("phone.callsFailed", r.callsFailed);
    reg.setCounter("phone.retransmissions", r.phoneRetransmissions);
    reg.setCounter("phone.reconnects", r.reconnects);
    reg.setCounter("phone.reconnectFailures", r.reconnectFailures);
    reg.setCounter("phone.rejected503", r.phoneRejected503);
    reg.setCounter("phone.backoffs", r.phoneBackoffs);

    // Run shape.
    reg.setCounter("run.durationNs",
                   static_cast<std::uint64_t>(
                       r.duration > 0 ? r.duration : 0));
    reg.setCounter("run.timedOut", r.timedOut ? 1 : 0);
    reg.setCounter("run.occupancySamples", r.occupancy.size());
    reg.setGauge("run.opsPerSec", r.opsPerSec);
    reg.setGauge("run.serverUtilization", r.serverUtilization);
    reg.setGauge("run.maxClientUtilization", r.maxClientUtilization);
    reg.setGauge("run.inviteP50Ms", sim::toMsecs(r.inviteP50));
    reg.setGauge("run.inviteP99Ms", sim::toMsecs(r.inviteP99));

    // Proxy counters.
    const core::ProxyCounters &c = r.counters;
    reg.setCounter("proxy.messagesIn", c.messagesIn);
    reg.setCounter("proxy.requestsIn", c.requestsIn);
    reg.setCounter("proxy.responsesIn", c.responsesIn);
    reg.setCounter("proxy.forwards", c.forwards);
    reg.setCounter("proxy.localReplies", c.localReplies);
    reg.setCounter("proxy.parseErrors", c.parseErrors);
    reg.setCounter("proxy.routeFailures", c.routeFailures);
    reg.setCounter("proxy.retransAbsorbed", c.retransAbsorbed);
    reg.setCounter("proxy.retransSent", c.retransSent);
    reg.setCounter("proxy.retransTimeouts", c.retransTimeouts);
    reg.setCounter("proxy.timerB408s", c.timerB408s);
    reg.setCounter("proxy.registrations", c.registrations);
    reg.setCounter("proxy.authChallenges", c.authChallenges);
    reg.setCounter("proxy.authAccepted", c.authAccepted);
    reg.setCounter("proxy.redirects", c.redirects);
    reg.setCounter("proxy.connsAccepted", c.connsAccepted);
    reg.setCounter("proxy.connsDestroyed", c.connsDestroyed);
    reg.setCounter("proxy.fdRequests", c.fdRequests);
    reg.setCounter("proxy.fdCacheHits", c.fdCacheHits);
    reg.setCounter("proxy.fdCacheInvalidations",
                   c.fdCacheInvalidations);
    reg.setCounter("proxy.outboundConnects", c.outboundConnects);
    reg.setCounter("proxy.sendsToDeadConns", c.sendsToDeadConns);
    reg.setCounter("proxy.idleScans", c.idleScans);
    reg.setCounter("proxy.idleScanVisited", c.idleScanVisited);
    reg.setCounter("proxy.connsReturnedByWorkers",
                   c.connsReturnedByWorkers);
    reg.setCounter("proxy.overloadRejected", c.overloadRejected);
    reg.setCounter("proxy.overloadThrottled", c.overloadThrottled);
    reg.setCounter("proxy.overloadPanicDrops", c.overloadPanicDrops);
    reg.setCounter("proxy.overloadShedEnters", c.overloadShedEnters);
    reg.setCounter("proxy.overloadShedExits", c.overloadShedExits);
    reg.setCounter("proxy.tcpReadPauses", c.tcpReadPauses);
    reg.setCounter("proxy.tcpReadResumes", c.tcpReadResumes);
    reg.setCounter("proxy.tcpAcceptPauses", c.tcpAcceptPauses);
    reg.setCounter("proxy.hopFeedbackSent", c.hopFeedbackSent);
    reg.setCounter("proxy.hopFeedbackApplied", c.hopFeedbackApplied);
    reg.setCounter("proxy.hopThrottleHolds", c.hopThrottleHolds);
    reg.setCounter("proxy.hopThrottleRejects", c.hopThrottleRejects);
    reg.setCounter("proxy.hopThrottleDrops", c.hopThrottleDrops);
    reg.setCounter("proxy.hopGrantExpired", c.hopGrantExpired);
    reg.setCounter("proxy.recvQueueDrops", r.proxyRecvQueueDrops);
    reg.setCounter("proxy.acceptRefused", r.proxyAcceptRefused);
    reg.setCounter("proxy.txnEntriesAtEnd", r.txnEntriesAtEnd);
    reg.setCounter("proxy.retransEntriesAtEnd",
                   r.retransEntriesAtEnd);
    reg.setCounter("proxy.connEntriesAtEnd", r.connEntriesAtEnd);

    // Server-architecture identity: the ArchKind ordinal (1 =
    // supervisor/worker, 2 = symmetric, 3 = event-driven) and how many
    // receive loops the resolved architecture actually ran.
    reg.setCounter("proxy.arch.kind",
                   static_cast<std::uint64_t>(r.archKind));
    reg.setCounter("proxy.arch.loops",
                   r.archLoops > 0
                       ? static_cast<std::uint64_t>(r.archLoops)
                       : 0);
    reg.setCounter("proxy.arch.connsStolen", c.connsStolen);

    // Chain topology: per-hop counters under proxy.hop<i>.* (edge
    // first). Single-proxy runs emit none of these.
    reg.setCounter("proxy.chainHops", r.hopCounters.size());
    for (std::size_t i = 0; i < r.hopCounters.size(); ++i) {
        const core::ProxyCounters &h = r.hopCounters[i];
        std::string prefix = "proxy.hop" + std::to_string(i) + ".";
        reg.setCounter(prefix + "messagesIn", h.messagesIn);
        reg.setCounter(prefix + "forwards", h.forwards);
        reg.setCounter(prefix + "localReplies", h.localReplies);
        reg.setCounter(prefix + "overloadRejected", h.overloadRejected);
        reg.setCounter(prefix + "overloadThrottled",
                       h.overloadThrottled);
        reg.setCounter(prefix + "overloadPanicDrops",
                       h.overloadPanicDrops);
        reg.setCounter(prefix + "hopFeedbackSent", h.hopFeedbackSent);
        reg.setCounter(prefix + "hopFeedbackApplied",
                       h.hopFeedbackApplied);
        reg.setCounter(prefix + "hopThrottleHolds", h.hopThrottleHolds);
        reg.setCounter(prefix + "hopThrottleRejects",
                       h.hopThrottleRejects);
        reg.setCounter(prefix + "hopThrottleDrops", h.hopThrottleDrops);
        reg.setCounter(prefix + "hopGrantExpired", h.hopGrantExpired);
    }

    // Cluster topology: dispatcher front-end counters plus per-instance
    // counters under proxy.<i>.*. Non-cluster runs emit none of these.
    if (r.clusterInstances > 0) {
        reg.setCounter("cluster.instances",
                       static_cast<std::uint64_t>(r.clusterInstances));
        const core::DispatcherStats &d = r.dispatcherStats;
        reg.setCounter("dispatcher.messagesIn", d.messagesIn);
        reg.setCounter("dispatcher.requestsRouted", d.requestsRouted);
        reg.setCounter("dispatcher.responsesRouted",
                       d.responsesRouted);
        reg.setCounter("dispatcher.registersRouted",
                       d.registersRouted);
        reg.setCounter("dispatcher.peekFailures", d.peekFailures);
        reg.setCounter("dispatcher.dropsNoRoute", d.dropsNoRoute);
        reg.setCounter("dispatcher.clientConnsAccepted",
                       d.clientConnsAccepted);
        reg.setCounter("proxy.locLocalHits", c.locLocalHits);
        reg.setCounter("proxy.locReplicaHits", c.locReplicaHits);
        reg.setCounter("proxy.locMissForwards", c.locMissForwards);
        reg.setCounter("proxy.locRegisterForwards",
                       c.locRegisterForwards);
        reg.setCounter("proxy.locReplPushes", c.locReplPushes);
        reg.setCounter("proxy.locReplInstalls", c.locReplInstalls);
        for (std::size_t i = 0; i < r.instanceCounters.size(); ++i) {
            const core::ProxyCounters &h = r.instanceCounters[i];
            std::string prefix = "proxy." + std::to_string(i) + ".";
            reg.setCounter(prefix + "messagesIn", h.messagesIn);
            reg.setCounter(prefix + "forwards", h.forwards);
            reg.setCounter(prefix + "localReplies", h.localReplies);
            reg.setCounter(prefix + "registrations", h.registrations);
            reg.setCounter(prefix + "locLocalHits", h.locLocalHits);
            reg.setCounter(prefix + "locReplicaHits",
                           h.locReplicaHits);
            reg.setCounter(prefix + "locMissForwards",
                           h.locMissForwards);
            reg.setCounter(prefix + "locReplPushes", h.locReplPushes);
            reg.setCounter(prefix + "locReplInstalls",
                           h.locReplInstalls);
            if (i < d.toInstance.size())
                reg.setCounter(prefix + "dispatched",
                               d.toInstance[i]);
        }
    }

    // Network counters.
    reg.setCounter("net.udpSent", r.net.udpSent);
    reg.setCounter("net.udpDelivered", r.net.udpDelivered);
    reg.setCounter("net.udpLost", r.net.udpLost);
    reg.setCounter("net.udpDropped", r.net.udpDropped);
    reg.setCounter("net.tcpConnects", r.net.tcpConnects);
    reg.setCounter("net.tcpRefused", r.net.tcpRefused);
    reg.setCounter("net.tcpSegments", r.net.tcpSegments);
    reg.setCounter("net.tcpBytes", r.net.tcpBytes);
    reg.setCounter("net.sctpMessages", r.net.sctpMessages);
    reg.setCounter("net.sctpDropped", r.net.sctpDropped);
    reg.setCounter("net.sctpAssocs", r.net.sctpAssocs);
    reg.setCounter("net.tlsConnects", r.net.tlsConnects);
    reg.setCounter("net.tlsHandshakesFull", r.net.tlsHandshakesFull);
    reg.setCounter("net.tlsHandshakesResumed",
                   r.net.tlsHandshakesResumed);
    reg.setCounter("net.tlsZeroRttResumes", r.net.tlsZeroRttResumes);
    reg.setCounter("net.tlsSessionEvictions",
                   r.net.tlsSessionEvictions);
    reg.setCounter("net.tlsHandshakeAborts", r.net.tlsHandshakeAborts);
    reg.setCounter("net.tlsRecords", r.net.tlsRecords);
    reg.setCounter("net.sstMessages", r.net.sstMessages);
    reg.setCounter("net.sstStreams", r.net.sstStreams);
    reg.setCounter("net.sstFrames", r.net.sstFrames);
    reg.setCounter("net.sstChannels", r.net.sstChannels);
    reg.setCounter("net.sstDropped", r.net.sstDropped);
    reg.setCounter("net.sstLost", r.net.sstLost);
    reg.setCounter("net.faultDropped", r.net.faultDropped);
    reg.setCounter("net.faultDuplicated", r.net.faultDuplicated);
    reg.setCounter("net.faultDelayed", r.net.faultDelayed);
    reg.setCounter("net.tcpFaultRefused", r.net.tcpFaultRefused);
    reg.setCounter("net.tcpRstInjected", r.net.tcpRstInjected);
    reg.setCounter("net.tcpBlackholed", r.net.tcpBlackholed);
    reg.setCounter("net.tcpRecoveries", r.net.tcpRecoveries);

    // Batched datagram I/O: syscall/message totals plus the batch-depth
    // histogram (bucket n counts batches of exactly n messages; only
    // occupied buckets are emitted).
    reg.setCounter("net.batch.recvCalls", r.net.batchRecv.calls);
    reg.setCounter("net.batch.recvMessages", r.net.batchRecv.messages);
    reg.setCounter("net.batch.recvMaxDepth", r.net.batchRecv.maxDepth);
    reg.setCounter("net.batch.sendCalls", r.net.batchSend.calls);
    reg.setCounter("net.batch.sendMessages", r.net.batchSend.messages);
    reg.setCounter("net.batch.sendMaxDepth", r.net.batchSend.maxDepth);
    for (std::size_t i = 0; i < net::BatchIoStats::kDepthBuckets; ++i) {
        if (r.net.batchRecv.depth[i])
            reg.setCounter("net.batch.recvDepth."
                               + std::to_string(i + 1),
                           r.net.batchRecv.depth[i]);
        if (r.net.batchSend.depth[i])
            reg.setCounter("net.batch.sendDepth."
                               + std::to_string(i + 1),
                           r.net.batchSend.depth[i]);
    }

    // Retained-bytes high-water marks (sim/mem_stats.hh).
    reg.setGauge("mem.arenaPeakBytes",
                 static_cast<double>(r.memArenaPeak));
    reg.setGauge("mem.eventSlabPeakBytes",
                 static_cast<double>(r.memEventSlabPeak));
    reg.setGauge("mem.framePoolPeakBytes",
                 static_cast<double>(r.memFramePoolPeak));

    // Injected-fault totals over every impaired link.
    stats::LinkFaultCounters f = r.faults.total();
    reg.setCounter("faults.offered", f.offered);
    reg.setCounter("faults.lost", f.lost);
    reg.setCounter("faults.duplicated", f.duplicated);
    reg.setCounter("faults.reordered", f.reordered);
    reg.setCounter("faults.delayed", f.delayed);
    reg.setCounter("faults.partitionDrops", f.partitionDrops);
    reg.setCounter("faults.partitionHeld", f.partitionHeld);
    reg.setCounter("faults.connectsRefused", f.connectsRefused);
    reg.setCounter("faults.rstsInjected", f.rstsInjected);
    reg.setCounter("faults.stalledDrops", f.stalledDrops);
    reg.setCounter("faults.recoveries", f.recoveries);

    // Server CPU profile over the measured phase: one share and one
    // milliseconds gauge per cost center that accrued any time.
    for (const auto &line :
         r.serverProfile.top(sim::CostCenters::count())) {
        reg.setGauge("profile.share." + line.name, line.pct / 100.0);
        reg.setGauge("profile.ms." + line.name,
                     sim::toMsecs(line.time));
    }
    reg.setGauge("profile.totalMs",
                 sim::toMsecs(r.serverProfile.total()));

    return reg;
}

Scenario
paperScenario(core::Transport transport, int clients, int ops_per_conn)
{
    Scenario sc;
    sc.proxy.transport = transport;
    sc.clients = clients;
    sc.opsPerConn = ops_per_conn;
    sc.proxy.workers = core::isStreamTransport(transport) ? 32 : 24;
    if (transport == core::Transport::Tls)
        sc.proxy.port = 5061; // RFC 3261 sips
    sc.proxy.stateful = true;
    // Scale call counts so each grid point runs a similar number of
    // operations regardless of client count.
    sc.callsPerClient = std::max(10, 12000 / clients);
    sc.name = std::string(core::transportName(transport)) + "/"
        + (ops_per_conn == 0 ? std::string("persistent")
                             : std::to_string(ops_per_conn) + "ops")
        + "/" + std::to_string(clients) + "c";
    return sc;
}

} // namespace siprox::workload

#include "workload/topology.hh"

#include <string>

#include "sip/uri.hh"
#include "workload/scenario.hh"

namespace siprox::workload {

Topology::Topology(sim::Simulation &simu, net::Network &network,
                   const Scenario &sc)
{
    if (sc.cluster.enabled()) {
        buildCluster(simu, network, sc);
        return;
    }

    hops_ = sc.chain.empty() ? 1 : sc.chain.size();

    // Machine naming keeps the single-proxy case byte-identical to
    // the pre-chain runner ("server"); chain hops are numbered.
    for (std::size_t i = 0; i < hops_; ++i) {
        auto &m = simu.addMachine(
            hops_ == 1 ? std::string("server")
                       : "server" + std::to_string(i),
            sc.serverCores);
        serverMachines_.push_back(&m);
        serverHosts_.push_back(&network.attach(m));
    }

    // Hosts exist before any proxy starts, so each hop can point at
    // the next one's address; the last hop is the chain destination
    // and keeps an invalid nextHop (routes via its registrar).
    for (std::size_t i = 0; i < hops_; ++i) {
        core::ProxyConfig cfg = sc.proxy;
        if (!sc.chain.empty()) {
            const ChainHop &hop = sc.chain[i];
            cfg.arch = hop.arch;
            if (hop.transport)
                cfg.transport = *hop.transport;
            if (hop.workers > 0)
                cfg.workers = hop.workers;
            if (hop.overloadPolicy)
                cfg.overload.policy = *hop.overloadPolicy;
            if (i + 1 < hops_)
                cfg.nextHop = serverHosts_[i + 1]->addr(sc.proxy.port);
            // Disjoint per-hop branch salts: a proxy's transaction
            // table keys on both its own and its upstream's branches,
            // so identical generator streams on two hops collide
            // (the second INVITE is eaten as a "retransmission").
            cfg.branchSaltBase = sc.proxy.branchSaltBase
                + (i << 20);
        }
        proxies_.push_back(std::make_unique<core::Proxy>(
            *serverMachines_[i], *serverHosts_[i], cfg));
        proxies_.back()->start();
    }
}

void
Topology::buildCluster(sim::Simulation &simu, net::Network &network,
                       const Scenario &sc)
{
    hops_ = 1; // a cluster is one hop wide from the phones' viewpoint
    const int n = sc.cluster.instances;

    // The dispatcher machine comes first: it is what phones talk to,
    // so fault injection keys off its host.
    dispatcherMachine_ = &simu.addMachine("dispatcher",
                                          sc.cluster.dispatcherCores);
    dispatcherHost_ = &network.attach(*dispatcherMachine_);

    for (int i = 0; i < n; ++i) {
        auto &m = simu.addMachine("proxy" + std::to_string(i),
                                  sc.serverCores);
        serverMachines_.push_back(&m);
        serverHosts_.push_back(&network.attach(m));
    }

    // Shared membership view: every instance (and the dispatcher)
    // derives shard ownership from the same ring parameters.
    core::ClusterMemberConfig member;
    member.instances = n;
    member.vnodes = sc.cluster.vnodes;
    member.staleReads = sc.cluster.staleReads;
    member.replicationLag = sc.cluster.replicationLag;
    for (int i = 0; i < n; ++i) {
        member.peers.push_back(
            serverHosts_[static_cast<std::size_t>(i)]->addr(
                sc.proxy.port));
        member.replPeers.push_back(
            serverHosts_[static_cast<std::size_t>(i)]->addr(
                member.replPort));
    }

    for (int i = 0; i < n; ++i) {
        core::ProxyConfig cfg = sc.proxy;
        cfg.cluster = member;
        cfg.cluster.instance = i;
        // Disjoint per-instance branch salts, as with chain hops:
        // miss-forwarded requests traverse two instances' transaction
        // tables, which key on branch strings.
        cfg.branchSaltBase = sc.proxy.branchSaltBase
            + (static_cast<std::size_t>(i) << 20);
        proxies_.push_back(std::make_unique<core::Proxy>(
            *serverMachines_[static_cast<std::size_t>(i)],
            *serverHosts_[static_cast<std::size_t>(i)], cfg));
        proxies_.back()->start();
    }

    core::DispatcherConfig dcfg;
    dcfg.transport = sc.proxy.transport;
    dcfg.port = sc.proxy.port;
    dcfg.policy = sc.cluster.policy;
    dcfg.workers = sc.cluster.dispatcherWorkers;
    dcfg.vnodes = sc.cluster.vnodes;
    dcfg.instances = member.peers;
    dcfg.costs = sc.proxy.costs;
    dispatcher_ = std::make_unique<core::Dispatcher>(
        *dispatcherMachine_, *dispatcherHost_, std::move(dcfg));
    // Start last: TCP trunks dial the instances' listeners at t=0.
    dispatcher_->start();

    if (sc.cluster.aorPopulation > 0)
        preSeedAors(sc.cluster.aorPopulation);
}

Topology::~Topology() = default;

net::Addr
Topology::callerEntry() const
{
    if (dispatcher_)
        return dispatcher_->addr();
    return proxies_.front()->addr();
}

net::Addr
Topology::calleeEntry() const
{
    if (dispatcher_)
        return dispatcher_->addr();
    return proxies_.back()->addr();
}

net::Host &
Topology::faultHost()
{
    if (dispatcherHost_)
        return *dispatcherHost_;
    return *serverHosts_.front();
}

std::vector<sim::Machine *>
Topology::profiledMachines() const
{
    std::vector<sim::Machine *> out = serverMachines_;
    if (dispatcherMachine_)
        out.push_back(dispatcherMachine_);
    return out;
}

void
Topology::preSeedAors(std::uint64_t population)
{
    if (proxies_.empty())
        return;
    // The simulation has not started: install directly, no locks and
    // no CPU charges. Each AOR lands only in its owner's shard — the
    // steady-state a real cluster converges to.
    const core::LocationService &view =
        proxies_.front()->shared().location;
    std::string user;
    for (std::uint64_t k = 0; k < population; ++k) {
        user = "u" + std::to_string(k);
        int owner = view.owner(user);
        if (owner < 0)
            owner = 0;
        auto idx = static_cast<std::size_t>(owner);
        if (idx >= proxies_.size())
            idx = 0;
        core::Binding b;
        b.contact = sip::uriForAddr(
            user, proxies_[idx]->shared().location.peerAddr(
                      static_cast<int>(idx)));
        proxies_[idx]->shared().registrar.update(user, std::move(b));
    }
}

void
Topology::requestStop()
{
    if (dispatcher_)
        dispatcher_->requestStop();
    for (auto &px : proxies_)
        px->requestStop();
}

} // namespace siprox::workload

/**
 * @file
 * Benchmark scenario description and results — the §4.2 methodology: a
 * registration phase (excluded from measurement), then a measured
 * phase in which every caller places a fixed number of calls to its
 * designated callee. Throughput is operations (SIP transactions — one
 * invite or one bye) per second.
 */

#ifndef SIPROX_WORKLOAD_SCENARIO_HH
#define SIPROX_WORKLOAD_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/dispatcher.hh"
#include "core/shared.hh"
#include "net/config.hh"
#include "net/network.hh"
#include "sim/profiler.hh"
#include "sim/time.hh"
#include "stats/fault_stats.hh"
#include "stats/metrics.hh"
#include "stats/timeseries.hh"

namespace siprox::workload {

/**
 * Impairment applied between one client machine (or all of them) and
 * the proxy, in the chosen direction(s).
 */
struct LinkFault
{
    /** Client machine index, or -1 for every client machine. */
    int clientMachine = -1;
    bool toProxy = true;   ///< impair client -> proxy
    bool fromProxy = true; ///< impair proxy -> client
    net::Impairment imp;
};

/** Hard two-way outage between one client machine and the proxy. */
struct Partition
{
    /** Client machine index, or -1 for every client machine. */
    int clientMachine = -1;
    sim::SimTime start = 0;
    sim::SimTime stop = sim::kTimeNever;
};

/**
 * One hop of a multi-hop proxy chain. The chain is edge -> ... ->
 * destination; callers attach to the edge, callees register at the
 * destination (their home proxy), and every non-REGISTER request
 * traverses the full chain.
 */
struct ChainHop
{
    /** Transport this hop speaks (unset: the scenario transport).
     *  Mixed-transport chains are rejected by chainSupportError() —
     *  the knob exists so the rejection is a named decision, not a
     *  silent impossibility. */
    std::optional<core::Transport> transport;
    /** Server architecture of this hop (free to vary per hop). */
    core::ArchKind arch = core::ArchKind::Auto;
    /** Worker override for this hop (0: the scenario's worker count). */
    int workers = 0;
    /** Local overload-policy override for this hop (unset: the shared
     *  proxy config's policy). Lets a chain model the literature's
     *  baseline where only the overloaded server defends itself and
     *  upstream hops blindly forward. */
    std::optional<core::OverloadPolicy> overloadPolicy;
};

/**
 * A dispatched proxy cluster: N peer proxy instances behind a front-end
 * dispatcher machine, each owning a consistent-hash shard of the
 * location database. Mutually exclusive with Scenario::chain.
 */
struct ClusterConfig
{
    /** Proxy instances (0 disables clustering entirely). */
    int instances = 0;
    /** How the dispatcher places non-REGISTER requests. */
    core::DispatchPolicy policy = core::DispatchPolicy::HashAor;
    /** Cores on the dispatcher machine (it is intentionally small —
     *  the point of a cluster is that the front end does less work per
     *  message than a proxy). */
    int dispatcherCores = 2;
    /** Receive loops on the dispatcher's shared UDP socket. */
    int dispatcherWorkers = 8;
    /** Virtual nodes per instance on the consistent-hash ring. */
    int vnodes = 64;
    /** Delay before a binding written at its owner becomes visible in
     *  peer replicas (async replication staleness knob). */
    sim::SimTime replicationLag = sim::msecs(50);
    /** Serve lookups from the local replica when the shard owner is
     *  remote (stale reads) instead of forwarding to the owner. */
    bool staleReads = false;
    /** Pre-seeded AOR population ("u0".."u<n-1>") resident in the
     *  shards before the run: models a large installed user base whose
     *  state pressures per-instance caches (100k-1M rungs). */
    std::uint64_t aorPopulation = 0;

    bool enabled() const { return instances > 0; }
};

/** One benchmark configuration. */
struct Scenario
{
    std::string name = "scenario";
    /** Concurrent caller/callee pairs ("clients" in the paper). */
    int clients = 100;
    /** Calls each caller places during the measured phase. */
    int callsPerClient = 50;
    /**
     * If nonzero, run time-based instead: callers keep placing calls
     * until this much simulated time has elapsed since the measured
     * phase started (callsPerClient becomes an upper bound per call
     * loop and is ignored). Needed for workloads whose steady state
     * depends on the idle-connection timeout.
     */
    sim::SimTime measureWindow = 0;
    /** TCP: phone reconnect period in operations (0 = persistent). */
    int opsPerConn = 0;
    core::ProxyConfig proxy;
    net::NetConfig net;
    int serverCores = 4;
    int clientMachines = 3;
    int clientCores = 2;
    std::uint64_t seed = 1;
    /** Safety cap on the measured phase (simulated time). */
    sim::SimTime maxDuration = sim::secs(300);
    sim::SimTime answerDelay = 0;
    /** Phone-side give-up deadline per transaction. */
    sim::SimTime phoneResponseTimeout = sim::secs(4);
    /** Phone-side cap on the 503 Retry-After exponential backoff. */
    sim::SimTime phoneRetryBackoffCap = sim::secs(8);
    /** If nonzero, sample proxy queue/table occupancy at this period
     *  during the measured phase (RunResult::occupancy). */
    sim::SimTime sampleInterval = 0;
    /** Windowed time-series telemetry (stats/timeseries.hh). Off by
     *  default: the sampler process perturbs event interleavings, so
     *  pinned digests only hold with telemetry disabled. */
    stats::TelemetryConfig telemetry;
    /** Extra simulated time after the last call before counters are
     *  sampled (lets idle-connection machinery drain). */
    sim::SimTime settleTime = 0;
    /** Link-level impairments between clients and the proxy. */
    std::vector<LinkFault> linkFaults;
    /** Scheduled client <-> proxy partitions (e.g. "partition client
     *  machine 2 from the proxy between t=10s and t=15s"). */
    std::vector<Partition> partitions;
    /**
     * Multi-hop proxy chain. Empty (default): the classic single-proxy
     * topology, byte-identical to pre-chain behaviour. Non-empty: one
     * entry per hop (2-4, edge first); `proxy` above provides the
     * shared base config every hop inherits. Fault injection applies
     * between the client machines and the edge.
     */
    std::vector<ChainHop> chain;
    /**
     * Dispatched cluster. Disabled (default): behaviour and digests are
     * byte-identical to pre-cluster runs. Enabled: `proxy` above is the
     * per-instance base config, `chain` must be empty, and phones talk
     * to the dispatcher instead of a proxy.
     */
    ClusterConfig cluster;
};

/** nullptr if the scenario's chain topology is runnable, else a static
 *  reason string (mirrors core::archSupportError's contract). */
const char *chainSupportError(const Scenario &scenario);

/** nullptr if the scenario's cluster topology is runnable, else a
 *  static reason string (same contract as chainSupportError). */
const char *clusterSupportError(const Scenario &scenario);

/** One proxy-occupancy sample (overload-onset time series). */
struct OccupancySample
{
    sim::SimTime at = 0;
    /** Transaction-table entries (two keys per record). */
    std::size_t txnEntries = 0;
    /** TCP worker->supervisor channel; datagram socket queue. */
    std::size_t requestQueueDepth = 0;
    /** Datagram receive queue; TCP kernel accept backlog. */
    std::size_t recvQueueDepth = 0;
};

/** Measured outcome of one scenario run. */
struct RunResult
{
    double opsPerSec = 0;
    std::uint64_t ops = 0;
    std::uint64_t callsCompleted = 0;
    std::uint64_t callsFailed = 0;
    std::uint64_t phoneRetransmissions = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t reconnectFailures = 0;
    /** 503 rejections seen by callers, and backoff sleeps taken. */
    std::uint64_t phoneRejected503 = 0;
    std::uint64_t phoneBackoffs = 0;
    sim::SimTime duration = 0;
    double serverUtilization = 0;
    double maxClientUtilization = 0;
    sim::SimTime inviteP50 = 0;
    sim::SimTime inviteP99 = 0;
    /** Aggregate proxy counters (summed across hops when chained). */
    core::ProxyCounters counters;
    /** Per-hop proxy counters, edge first. Empty for a single proxy. */
    std::vector<core::ProxyCounters> hopCounters;
    /** Cluster width (0 for non-cluster runs). */
    int clusterInstances = 0;
    /** Per-instance proxy counters (clusters only; instance order). */
    std::vector<core::ProxyCounters> instanceCounters;
    /** Dispatcher front-end counters (clusters only). */
    core::DispatcherStats dispatcherStats;
    /** Network-level traffic counters. */
    net::NetStats net;
    /** Per-link injected-fault counters. */
    stats::FaultStats faults;
    /** Shared-table occupancy when the run ended (leak checks). */
    std::size_t txnEntriesAtEnd = 0;
    std::size_t retransEntriesAtEnd = 0;
    std::size_t connEntriesAtEnd = 0;
    /** Messages the proxy's own socket dropped to queue overflow. */
    std::uint64_t proxyRecvQueueDrops = 0;
    /** TCP connects the proxy's full accept queue refused. */
    std::uint64_t proxyAcceptRefused = 0;
    /** Occupancy time series (Scenario::sampleInterval > 0). */
    std::vector<OccupancySample> occupancy;
    /** Windowed telemetry (Scenario::telemetry enabled), ready for
     *  stats::explain(). Null when telemetry was off. Shared so
     *  RunResult stays copyable. */
    std::shared_ptr<stats::TimeSeries> timeseries;
    /** Server CPU profile over the measured phase. */
    sim::Profiler serverProfile;
    /** Resolved server architecture (never Auto) and its receive-loop
     *  count. Informational; not part of the digest — existing goldens
     *  for the transport-implied architectures must stay byte-stable. */
    core::ArchKind archKind = core::ArchKind::Auto;
    int archLoops = 0;
    /** Simulation events executed over the whole run (wall-clock perf
     *  accounting; not part of the digest). */
    std::uint64_t simEvents = 0;
    /** Retained-bytes high-water marks over the run, per subsystem
     *  (sim/mem_stats.hh ledgers). Footprint accounting only — byte
     *  counts depend on allocator/layout details, so these are not
     *  part of the digest. */
    std::uint64_t memArenaPeak = 0;
    std::uint64_t memEventSlabPeak = 0;
    std::uint64_t memFramePoolPeak = 0;
    /** True if the safety cap cut the run short. */
    bool timedOut = false;

    /**
     * Canonical text rendering of every deterministic counter in this
     * result. Two runs of the same scenario with the same seed must
     * produce byte-identical digests; different seeds should not.
     */
    std::string digest() const;
};

/** Build, run, and tear down one scenario. */
RunResult runScenario(const Scenario &scenario);

/**
 * Fold every deterministic counter, derived gauge, fault total, and
 * server profile entry of @p r into one metrics registry under the
 * unified naming scheme (proxy.*, phone.*, net.*, faults.*,
 * profile.*). The counters section of the returned registry's
 * snapshot is byte-deterministic for identical runs.
 */
stats::MetricsRegistry collectMetrics(const RunResult &r);

/**
 * Scenario presets for the paper's evaluation grid.
 * @param clients 100 / 500 / 1000.
 * @param ops_per_conn 0 (persistent), 50, or 500 (TCP only).
 */
Scenario paperScenario(core::Transport transport, int clients,
                       int ops_per_conn);

} // namespace siprox::workload

#endif // SIPROX_WORKLOAD_SCENARIO_HH

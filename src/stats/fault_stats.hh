/**
 * @file
 * Per-link fault-injection counters. Every directed host pair the
 * FaultInjector touches gets a row; benches and tests render them with
 * the shared Table formatter, and the digest() string lets determinism
 * tests assert byte-identical runs.
 */

#ifndef SIPROX_STATS_FAULT_STATS_HH
#define SIPROX_STATS_FAULT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "stats/table.hh"

namespace siprox::stats {

/** Counters for one directed link (source host -> destination host). */
struct LinkFaultCounters
{
    std::uint64_t offered = 0;        ///< deliveries consulted
    std::uint64_t lost = 0;           ///< datagrams dropped by loss
    std::uint64_t duplicated = 0;     ///< extra datagram copies injected
    std::uint64_t reordered = 0;      ///< datagrams given reorder delay
    std::uint64_t delayed = 0;        ///< extra-delay/jitter applications
    std::uint64_t partitionDrops = 0; ///< dropped by an active partition
    std::uint64_t partitionHeld = 0;  ///< TCP/SCTP held until heal
    std::uint64_t connectsRefused = 0; ///< TCP SYNs refused by fault
    std::uint64_t rstsInjected = 0;   ///< mid-stream RSTs injected
    std::uint64_t stalledDrops = 0;   ///< segments blackholed by stall
    std::uint64_t recoveries = 0;     ///< in-kernel loss recoveries
};

/**
 * Table of per-link fault counters, keyed by (srcHost, dstHost).
 * Ordered map so rendering and digests are deterministic.
 */
class FaultStats
{
  public:
    using LinkKey = std::pair<std::uint32_t, std::uint32_t>;

    /** Counters for @p src -> @p dst, created on first touch. */
    LinkFaultCounters &link(std::uint32_t src, std::uint32_t dst);

    /** Counters for @p src -> @p dst, or nullptr if never touched. */
    const LinkFaultCounters *find(std::uint32_t src,
                                  std::uint32_t dst) const;

    /** Sum over all links. */
    LinkFaultCounters total() const;

    bool empty() const { return links_.empty(); }
    std::size_t linkCount() const { return links_.size(); }

    /** One row per link plus a total row. */
    Table table() const;

    /**
     * Canonical text form of every counter on every link. Two runs of
     * the same seeded scenario must produce byte-identical digests.
     */
    std::string digest() const;

  private:
    std::map<LinkKey, LinkFaultCounters> links_;
};

} // namespace siprox::stats

#endif // SIPROX_STATS_FAULT_STATS_HH

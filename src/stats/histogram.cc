#include "stats/histogram.hh"

#include <bit>

namespace siprox::stats {

int
LatencyHistogram::bucketFor(SimTime value)
{
    // Buckets indexed by (log2(value) << kSubBits) | next-4-bits.
    std::uint64_t v = static_cast<std::uint64_t>(value);
    if (v < (1u << kSubBits))
        return static_cast<int>(v);
    int log2 = 63 - std::countl_zero(v);
    int sub = static_cast<int>((v >> (log2 - kSubBits)) & ((1 << kSubBits) - 1));
    int idx = ((log2 - kSubBits + 1) << kSubBits) | sub;
    if (idx >= kBuckets)
        idx = kBuckets - 1;
    return idx;
}

SimTime
LatencyHistogram::bucketUpperBound(int bucket)
{
    if (bucket < (1 << kSubBits))
        return bucket;
    int log2 = (bucket >> kSubBits) + kSubBits - 1;
    int sub = bucket & ((1 << kSubBits) - 1);
    std::uint64_t base = 1ull << log2;
    std::uint64_t step = base >> kSubBits;
    return static_cast<SimTime>(base + step * (sub + 1) - 1);
}

SimTime
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1))
        + 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return bucketUpperBound(i);
    }
    return max_;
}

SimTime
LatencyHistogram::percentileMid(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1))
        + 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            SimTime hi = bucketUpperBound(i);
            SimTime lo = i > 0 ? bucketUpperBound(i - 1) + 1 : 0;
            return lo + (hi - lo) / 2;
        }
    }
    return max_;
}

} // namespace siprox::stats

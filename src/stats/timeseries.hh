/**
 * @file
 * Windowed time-series telemetry: per-machine series of fixed-width
 * simulated-time windows, each holding counter *deltas* (from
 * cumulative samples) and point-in-time gauge samples.
 *
 * The paper's contribution is the explanation of the throughput
 * numbers, not the numbers — which resource saturates first and when.
 * Whole-run aggregates cannot show saturation onset, overload-control
 * convergence, or the goodput knee; windows can. The sampler that
 * feeds this lives in workload/runner.cc and runs only when
 * Scenario::telemetry.windowMs > 0, so default runs stay byte-identical
 * to their pinned digests.
 *
 * Determinism: windows are cut at multiples of the window width in
 * simulated time, series and metric names are ordered, and the JSON
 * and CSV renderings use fixed formats — two runs of the same scenario
 * with the same seed must produce byte-identical artifacts.
 *
 * Invariant (checked by tools/check_trace.py --timeseries and
 * tests/test_timeseries.cc): for every counter, the sum of per-window
 * deltas equals the series' end-of-run total exactly.
 */

#ifndef SIPROX_STATS_TIMESERIES_HH
#define SIPROX_STATS_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace siprox::stats {

/**
 * Telemetry knobs, embedded in workload::Scenario. Off by default:
 * enabling telemetry spawns a sampler process per run, which perturbs
 * the event interleaving, so digests are only comparable among runs
 * with the same setting.
 */
struct TelemetryConfig
{
    /** Window width in simulated milliseconds; 0 disables sampling. */
    int windowMs = 0;

    bool enabled() const { return windowMs > 0; }

    sim::SimTime window() const { return sim::msecs(windowMs); }
};

/**
 * One closed (or still-open) sampling window: counter deltas over
 * [startNs, endNs) plus gauges sampled at its close.
 */
struct Window
{
    sim::SimTime startNs = 0;
    sim::SimTime endNs = 0;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;

    sim::SimTime duration() const { return endNs - startNs; }

    std::uint64_t counterOr(std::string_view name,
                            std::uint64_t dflt = 0) const;
    double gaugeOr(std::string_view name, double dflt = 0.0) const;
};

/**
 * One labeled series: all windows of one sampled entity (a machine, a
 * proxy hop, or a pseudo-entity like the phone fleet or the network
 * fabric).
 *
 * Counters are fed as *cumulative* values; the series differences
 * consecutive samples itself, so the producer just reads whatever
 * monotonic counter the subsystem already keeps. Gauges are stored as
 * sampled.
 */
class Series
{
  public:
    Series(std::string machine, int hop, std::string arch,
           std::string transport)
        : machine_(std::move(machine)), hop_(hop),
          arch_(std::move(arch)), transport_(std::move(transport))
    {
    }

    const std::string &machine() const { return machine_; }
    /** Proxy-chain hop index (edge = 0), or -1 for non-hop series. */
    int hop() const { return hop_; }
    const std::string &arch() const { return arch_; }
    const std::string &transport() const { return transport_; }

    /**
     * Close the current window (if any) at @p start and open the next
     * one. Window starts must be strictly increasing.
     */
    void beginWindow(sim::SimTime start);

    /** Close the final window at @p end. */
    void finish(sim::SimTime end);

    /**
     * Sample counter @p name at cumulative value @p cumulative: the
     * delta against the previous sample lands in the current window
     * (clamped at zero — counters are monotone; a clamp only fires on
     * producer bugs, which check_trace.py then flags via the sum
     * invariant).
     */
    void counter(std::string_view name, std::uint64_t cumulative);

    /** Sample gauge @p name at @p value into the current window. */
    void gauge(std::string_view name, double value);

    const std::vector<Window> &windows() const { return windows_; }

    /** Last cumulative value seen per counter (end-of-run totals once
     *  the run is finished). Σ window deltas == this, exactly. */
    const std::map<std::string, std::uint64_t, std::less<>> &
    totals() const
    {
        return prev_;
    }

  private:
    std::string machine_;
    int hop_;
    std::string arch_;
    std::string transport_;
    std::vector<Window> windows_;
    std::map<std::string, std::uint64_t, std::less<>> prev_;
};

/**
 * A whole run's telemetry: the series plus run-identifying metadata.
 * Owned by RunResult (shared_ptr: RunResult must stay copyable).
 */
class TimeSeries
{
  public:
    TimeSeries(std::string scenario, std::uint64_t seed,
               sim::SimTime window_ns, std::string transport)
        : scenario_(std::move(scenario)), seed_(seed),
          windowNs_(window_ns), transport_(std::move(transport))
    {
    }

    /** Create (and own) a new series; returns a stable reference. */
    Series &add(std::string machine, int hop, std::string arch,
                std::string transport);

    /** Measured-phase bounds (explain's phase split). */
    void
    setMeasurePhase(sim::SimTime start, sim::SimTime end)
    {
        measureStartNs_ = start;
        measureEndNs_ = end;
    }

    const std::string &scenario() const { return scenario_; }
    std::uint64_t seed() const { return seed_; }
    sim::SimTime windowNs() const { return windowNs_; }
    const std::string &transport() const { return transport_; }
    sim::SimTime measureStartNs() const { return measureStartNs_; }
    sim::SimTime measureEndNs() const { return measureEndNs_; }

    const std::vector<std::unique_ptr<Series>> &
    series() const
    {
        return series_;
    }

    /** First series whose machine label is @p machine, or nullptr. */
    const Series *find(std::string_view machine) const;

    /** Deterministic JSON document (meta + every series). */
    std::string toJson() const;

    /**
     * Deterministic long-format CSV:
     * machine,hop,arch,transport,window_start_ns,window_end_ns,
     * metric,kind,value — one row per metric per window.
     */
    std::string toCsv() const;

  private:
    std::string scenario_;
    std::uint64_t seed_;
    sim::SimTime windowNs_;
    std::string transport_;
    sim::SimTime measureStartNs_ = 0;
    sim::SimTime measureEndNs_ = 0;
    std::vector<std::unique_ptr<Series>> series_;
};

} // namespace siprox::stats

#endif // SIPROX_STATS_TIMESERIES_HH

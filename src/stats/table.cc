#include "stats/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace siprox::stats {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != columns_.size())
        throw std::invalid_argument("row width mismatch");
    rows_.push_back(std::move(cells));
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.'
            && c != '-' && c != '+' && c != '%' && c != 'x'
            && c != ',') {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
Table::render() const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells,
                    std::string &out) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::size_t pad = widths[c] - cells[c].size();
            bool right = c > 0 && looksNumeric(cells[c]);
            if (c)
                out += "  ";
            if (right)
                out.append(pad, ' ');
            out += cells[c];
            if (!right)
                out.append(pad, ' ');
        }
        // Trim trailing spaces.
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };

    std::string out;
    emit(columns_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emit(row, out);
    return out;
}

namespace {

std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::csv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out += ',';
            out += csvCell(cells[c]);
        }
        out += '\n';
    };
    emit(columns_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

} // namespace siprox::stats

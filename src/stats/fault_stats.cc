#include "stats/fault_stats.hh"

namespace siprox::stats {

namespace {

/** Field list shared by table() and digest() so they never diverge. */
struct Field
{
    const char *name;
    std::uint64_t LinkFaultCounters::*member;
};

constexpr Field kFields[] = {
    {"offered", &LinkFaultCounters::offered},
    {"lost", &LinkFaultCounters::lost},
    {"dup", &LinkFaultCounters::duplicated},
    {"reorder", &LinkFaultCounters::reordered},
    {"delayed", &LinkFaultCounters::delayed},
    {"partDrop", &LinkFaultCounters::partitionDrops},
    {"partHeld", &LinkFaultCounters::partitionHeld},
    {"refused", &LinkFaultCounters::connectsRefused},
    {"rst", &LinkFaultCounters::rstsInjected},
    {"stalled", &LinkFaultCounters::stalledDrops},
    {"recovered", &LinkFaultCounters::recoveries},
};

} // namespace

LinkFaultCounters &
FaultStats::link(std::uint32_t src, std::uint32_t dst)
{
    return links_[LinkKey{src, dst}];
}

const LinkFaultCounters *
FaultStats::find(std::uint32_t src, std::uint32_t dst) const
{
    auto it = links_.find(LinkKey{src, dst});
    return it == links_.end() ? nullptr : &it->second;
}

LinkFaultCounters
FaultStats::total() const
{
    LinkFaultCounters sum;
    for (const auto &[key, c] : links_) {
        for (const auto &f : kFields)
            sum.*(f.member) += c.*(f.member);
    }
    return sum;
}

Table
FaultStats::table() const
{
    std::vector<std::string> columns;
    columns.push_back("link");
    for (const auto &f : kFields)
        columns.push_back(f.name);
    Table t(std::move(columns));
    auto add_row = [&t](const std::string &label,
                        const LinkFaultCounters &c) {
        std::vector<std::string> cells;
        cells.push_back(label);
        for (const auto &f : kFields)
            cells.push_back(std::to_string(c.*(f.member)));
        t.addRow(std::move(cells));
    };
    for (const auto &[key, c] : links_) {
        add_row("h" + std::to_string(key.first) + "->h"
                    + std::to_string(key.second),
                c);
    }
    if (links_.size() > 1)
        add_row("total", total());
    return t;
}

std::string
FaultStats::digest() const
{
    std::string out;
    for (const auto &[key, c] : links_) {
        out += std::to_string(key.first) + ">"
            + std::to_string(key.second);
        for (const auto &f : kFields) {
            out += ' ';
            out += std::to_string(c.*(f.member));
        }
        out += '\n';
    }
    return out;
}

} // namespace siprox::stats

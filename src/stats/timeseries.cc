#include "stats/timeseries.hh"

#include <cassert>
#include <cstdio>

namespace siprox::stats {

namespace {

/** Fixed-format double: round-trips run artifacts, locale-free. */
std::string
renderDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

std::uint64_t
Window::counterOr(std::string_view name, std::uint64_t dflt) const
{
    auto it = counters.find(name);
    return it == counters.end() ? dflt : it->second;
}

double
Window::gaugeOr(std::string_view name, double dflt) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? dflt : it->second;
}

void
Series::beginWindow(sim::SimTime start)
{
    if (!windows_.empty()) {
        assert(start > windows_.back().startNs);
        windows_.back().endNs = start;
    }
    Window w;
    w.startNs = start;
    w.endNs = start;
    windows_.push_back(std::move(w));
}

void
Series::finish(sim::SimTime end)
{
    if (!windows_.empty() && end > windows_.back().startNs)
        windows_.back().endNs = end;
}

void
Series::counter(std::string_view name, std::uint64_t cumulative)
{
    assert(!windows_.empty());
    auto it = prev_.find(name);
    std::uint64_t base = it == prev_.end() ? 0 : it->second;
    std::uint64_t delta = cumulative >= base ? cumulative - base : 0;
    if (it == prev_.end())
        prev_.emplace(std::string(name), cumulative);
    else
        it->second = cumulative;
    auto &counters = windows_.back().counters;
    auto cit = counters.find(name);
    if (cit == counters.end())
        counters.emplace(std::string(name), delta);
    else
        cit->second += delta;
}

void
Series::gauge(std::string_view name, double value)
{
    assert(!windows_.empty());
    auto &gauges = windows_.back().gauges;
    auto it = gauges.find(name);
    if (it == gauges.end())
        gauges.emplace(std::string(name), value);
    else
        it->second = value;
}

Series &
TimeSeries::add(std::string machine, int hop, std::string arch,
                std::string transport)
{
    series_.push_back(std::make_unique<Series>(
        std::move(machine), hop, std::move(arch),
        std::move(transport)));
    return *series_.back();
}

const Series *
TimeSeries::find(std::string_view machine) const
{
    for (const auto &s : series_) {
        if (s->machine() == machine)
            return s.get();
    }
    return nullptr;
}

std::string
TimeSeries::toJson() const
{
    std::string out = "{\n  \"meta\": {\n    \"scenario\": \"";
    appendEscaped(out, scenario_);
    out += "\",\n    \"seed\": " + std::to_string(seed_);
    out += ",\n    \"windowNs\": " + std::to_string(windowNs_);
    out += ",\n    \"transport\": \"";
    appendEscaped(out, transport_);
    out += "\",\n    \"measureStartNs\": "
        + std::to_string(measureStartNs_);
    out += ",\n    \"measureEndNs\": " + std::to_string(measureEndNs_);
    out += "\n  },\n  \"series\": [";
    bool first_series = true;
    for (const auto &s : series_) {
        out += first_series ? "\n" : ",\n";
        first_series = false;
        out += "    {\n      \"machine\": \"";
        appendEscaped(out, s->machine());
        out += "\",\n      \"hop\": " + std::to_string(s->hop());
        out += ",\n      \"arch\": \"";
        appendEscaped(out, s->arch());
        out += "\",\n      \"transport\": \"";
        appendEscaped(out, s->transport());
        out += "\",\n      \"totals\": {";
        bool first = true;
        for (const auto &[name, v] : s->totals()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "        \"";
            appendEscaped(out, name);
            out += "\": " + std::to_string(v);
        }
        out += first ? "},\n" : "\n      },\n";
        out += "      \"windows\": [";
        bool first_win = true;
        for (const Window &w : s->windows()) {
            out += first_win ? "\n" : ",\n";
            first_win = false;
            out += "        {\"startNs\": " + std::to_string(w.startNs);
            out += ", \"endNs\": " + std::to_string(w.endNs);
            out += ", \"counters\": {";
            first = true;
            for (const auto &[name, v] : w.counters) {
                out += first ? "" : ", ";
                first = false;
                out += '"';
                appendEscaped(out, name);
                out += "\": " + std::to_string(v);
            }
            out += "}, \"gauges\": {";
            first = true;
            for (const auto &[name, v] : w.gauges) {
                out += first ? "" : ", ";
                first = false;
                out += '"';
                appendEscaped(out, name);
                out += "\": " + renderDouble(v);
            }
            out += "}}";
        }
        out += first_win ? "]" : "\n      ]";
        out += "\n    }";
    }
    out += first_series ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
TimeSeries::toCsv() const
{
    std::string out = "machine,hop,arch,transport,window_start_ns,"
                      "window_end_ns,metric,kind,value\n";
    for (const auto &s : series_) {
        std::string prefix = s->machine() + ","
            + std::to_string(s->hop()) + "," + s->arch() + ","
            + s->transport() + ",";
        for (const Window &w : s->windows()) {
            std::string wprefix = prefix + std::to_string(w.startNs)
                + "," + std::to_string(w.endNs) + ",";
            for (const auto &[name, v] : w.counters) {
                out += wprefix + name + ",counter,"
                    + std::to_string(v) + "\n";
            }
            for (const auto &[name, v] : w.gauges) {
                out += wprefix + name + ",gauge," + renderDouble(v)
                    + "\n";
            }
        }
    }
    return out;
}

} // namespace siprox::stats

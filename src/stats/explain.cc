#include "stats/explain.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace siprox::stats {

namespace {

/** Wait counters that represent *blocking* (off-core) time. Cpu and
 *  RunQueue are deliberately absent: on-core demand is the resource
 *  ranking's job (see file header in explain.hh). */
constexpr std::string_view kBlockingWaits[] = {
    "lockspin", "lockblock", "ipc", "socket", "sleep", "throttled",
};

std::string
renderDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
renderPct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
    return buf;
}

std::string
msOf(sim::SimTime ns)
{
    return std::to_string(ns / 1'000'000) + "ms";
}

void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

/** Stable descending rank: value desc, then name asc. */
void
rankDesc(std::vector<Ranked> &v)
{
    std::sort(v.begin(), v.end(),
              [](const Ranked &a, const Ranked &b) {
                  if (a.value != b.value)
                      return a.value > b.value;
                  return a.name < b.name;
              });
}

/** Utilization of every resource visible in window @p w. */
std::vector<Ranked>
windowResources(const Window &w)
{
    std::vector<Ranked> out;
    double cores = w.gaugeOr("cpu.cores");
    if (cores > 0 && w.duration() > 0) {
        double busy =
            static_cast<double>(w.counterOr("cpu.busyNs"));
        out.push_back(
            {"cpu",
             busy / (static_cast<double>(w.duration()) * cores)});
    }
    for (const auto &[name, v] : w.gauges) {
        if (name.rfind("occ.", 0) == 0)
            out.push_back({name.substr(4), v});
    }
    return out;
}

PhaseAttribution
attributePhase(const Series &s, std::string phase, std::size_t begin,
               std::size_t end, const ExplainOptions &opts)
{
    PhaseAttribution out;
    out.phase = std::move(phase);

    // Blocking-wait shares over the phase's windows.
    double blocking_total = 0;
    std::vector<Ranked> waits;
    for (std::string_view wname : kBlockingWaits) {
        std::string key = "wait.";
        key += wname;
        std::uint64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i)
            sum += s.windows()[i].counterOr(key);
        if (sum > 0) {
            waits.push_back(
                {std::string(wname), static_cast<double>(sum)});
            blocking_total += static_cast<double>(sum);
        }
    }
    if (blocking_total > 0) {
        for (Ranked &r : waits)
            r.value /= blocking_total;
        rankDesc(waits);
        out.topWait = waits.front().name;
        out.waits = std::move(waits);
    }

    // Peak utilization per resource; saturation onset.
    std::map<std::string, double, std::less<>> peaks;
    for (std::size_t i = begin; i < end; ++i) {
        bool saturated = false;
        for (const Ranked &r : windowResources(s.windows()[i])) {
            auto [it, fresh] = peaks.try_emplace(r.name, r.value);
            if (!fresh && r.value > it->second)
                it->second = r.value;
            if (r.value >= opts.saturationThreshold)
                saturated = true;
        }
        if (saturated && out.saturationWindow < 0) {
            out.saturationWindow = static_cast<int>(i);
            out.saturationStartNs = s.windows()[i].startNs;
        }
    }
    for (const auto &[name, peak] : peaks)
        out.resources.push_back({name, peak});
    rankDesc(out.resources);
    if (!out.resources.empty())
        out.topResource = out.resources.front().name;
    return out;
}

} // namespace

const PhaseAttribution *
MachineReport::phase(std::string_view name) const
{
    for (const PhaseAttribution &p : phases) {
        if (p.phase == name)
            return &p;
    }
    return nullptr;
}

const MachineReport *
ExplainReport::machine(std::string_view name) const
{
    for (const MachineReport &m : machines) {
        if (m.machine == name)
            return &m;
    }
    return nullptr;
}

ExplainReport
explain(const TimeSeries &ts, const ExplainOptions &opts)
{
    ExplainReport rep;
    rep.scenario = ts.scenario();
    rep.seed = ts.seed();
    rep.transport = ts.transport();
    rep.windowNs = ts.windowNs();

    const sim::SimTime mstart = ts.measureStartNs();
    const sim::SimTime mend = ts.measureEndNs();
    const bool phased = mend > mstart;

    for (const auto &s : ts.series()) {
        MachineReport mr;
        mr.machine = s->machine();
        mr.hop = s->hop();
        mr.arch = s->arch();
        const auto &wins = s->windows();
        // Phase split on window start: a window beginning before the
        // measured phase is warmup (registration), the rest measure.
        std::size_t split = wins.size();
        if (phased) {
            split = 0;
            while (split < wins.size()
                   && wins[split].startNs < mstart)
                ++split;
        } else {
            split = 0;
        }
        if (split > 0)
            mr.phases.push_back(
                attributePhase(*s, "warmup", 0, split, opts));
        if (split < wins.size())
            mr.phases.push_back(attributePhase(
                *s, "measure", split, wins.size(), opts));
        rep.machines.push_back(std::move(mr));
    }

    // Goodput peak and collapse over the measured phase's windows.
    if (const Series *phones = ts.find(opts.goodputSeries)) {
        double running_peak = 0;
        const auto &wins = phones->windows();
        for (std::size_t i = 0; i < wins.size(); ++i) {
            const Window &w = wins[i];
            if (w.duration() <= 0)
                continue;
            if (phased
                && (w.startNs < mstart || w.endNs > mend))
                continue;
            double secs =
                static_cast<double>(w.duration()) / 1e9;
            double rate = static_cast<double>(
                              w.counterOr(opts.goodputCounter))
                / secs;
            if (rate > running_peak) {
                running_peak = rate;
                rep.goodputPeakWindow = static_cast<int>(i);
                rep.goodputPeakStartNs = w.startNs;
                rep.goodputPeakPerSec = running_peak;
            } else if (running_peak > 0
                       && rep.goodputCollapseWindow < 0
                       && rate
                           < opts.collapseFraction * running_peak) {
                rep.goodputCollapseWindow = static_cast<int>(i);
                rep.goodputCollapseStartNs = w.startNs;
            }
        }
    }

    // Little's law, as the testable lower bound: transaction records
    // live *at least* the serve latency, so sampled occupancy L must
    // be no less than λ·W (within tolerance; reclaim lag only ever
    // adds residency on top). A window with L < λ·W / (1 + tol) means
    // rate, latency, and occupancy disagree.
    for (const auto &s : ts.series()) {
        for (const Window &w : s->windows()) {
            std::uint64_t served = w.counterOr("served.count");
            if (served < opts.littleMinServed || w.duration() <= 0)
                continue;
            double secs =
                static_cast<double>(w.duration()) / 1e9;
            double lam = static_cast<double>(served) / secs;
            double wait_s = w.gaugeOr("latency.meanMs") / 1e3;
            double little_l = lam * wait_s;
            double l = w.gaugeOr("txn.records");
            ++rep.little.checked;
            double err = little_l > l
                ? (little_l - l) / std::max({little_l, l, 1.0})
                : 0.0;
            if (err <= opts.littleTolerance)
                ++rep.little.consistent;
            if (err > rep.little.worstError)
                rep.little.worstError = err;
        }
    }

    return rep;
}

int
kneeIndex(const std::vector<double> &xs, const std::vector<double> &ys)
{
    std::size_t n = std::min(xs.size(), ys.size());
    if (n < 3)
        return -1;
    double dx = xs[n - 1] - xs[0];
    if (dx == 0)
        return -1;
    double slope = (ys[n - 1] - ys[0]) / dx;
    int best = -1;
    double best_dist = 0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        double chord = ys[0] + slope * (xs[i] - xs[0]);
        double d = std::fabs(ys[i] - chord);
        if (d > best_dist) {
            best_dist = d;
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::string
ExplainReport::text() const
{
    std::string out = "explain: " + scenario + " seed="
        + std::to_string(seed) + " transport=" + transport
        + " window=" + msOf(windowNs) + "\n";

    out += "goodput: ";
    if (goodputPeakWindow < 0) {
        out += "no signal\n";
    } else {
        out += "peak " + renderDouble(goodputPeakPerSec)
            + "/s in window #" + std::to_string(goodputPeakWindow)
            + " @ " + msOf(goodputPeakStartNs);
        if (goodputCollapseWindow >= 0) {
            out += "; collapse in window #"
                + std::to_string(goodputCollapseWindow) + " @ "
                + msOf(goodputCollapseStartNs);
        } else {
            out += "; no collapse";
        }
        out += "\n";
    }

    out += "little: ";
    if (little.checked == 0) {
        out += "no windows checked\n";
    } else {
        out += std::to_string(little.consistent) + "/"
            + std::to_string(little.checked)
            + " windows consistent (worst error "
            + renderPct(little.worstError) + ")\n";
    }

    for (const MachineReport &m : machines) {
        out += "machine " + m.machine;
        if (m.hop >= 0)
            out += " (hop " + std::to_string(m.hop) + ", arch "
                + m.arch + ")";
        out += ":\n";
        for (const PhaseAttribution &p : m.phases) {
            out += "  phase " + p.phase + ":\n";
            out += "    top wait: ";
            if (p.topWait.empty()) {
                out += "none recorded\n";
            } else {
                out += p.topWait + " (";
                bool first = true;
                for (const Ranked &r : p.waits) {
                    if (!first)
                        out += ", ";
                    first = false;
                    out += r.name + " " + renderPct(r.value);
                }
                out += " of blocking wait)\n";
            }
            out += "    top resource: ";
            if (p.topResource.empty()) {
                out += "none sampled\n";
            } else {
                out += p.topResource + " (";
                bool first = true;
                for (const Ranked &r : p.resources) {
                    if (!first)
                        out += ", ";
                    first = false;
                    out += r.name + " peak "
                        + renderDouble(r.value);
                }
                out += ")\n";
            }
            out += "    saturation onset: ";
            if (p.saturationWindow < 0)
                out += "none\n";
            else
                out += "window #"
                    + std::to_string(p.saturationWindow) + " @ "
                    + msOf(p.saturationStartNs) + "\n";
        }
    }
    return out;
}

std::string
ExplainReport::toJson() const
{
    std::string out = "{\n  \"scenario\": \"";
    appendEscaped(out, scenario);
    out += "\",\n  \"seed\": " + std::to_string(seed);
    out += ",\n  \"transport\": \"";
    appendEscaped(out, transport);
    out += "\",\n  \"windowNs\": " + std::to_string(windowNs);
    out += ",\n  \"goodput\": {\"peakWindow\": "
        + std::to_string(goodputPeakWindow) + ", \"peakStartNs\": "
        + std::to_string(goodputPeakStartNs) + ", \"peakPerSec\": "
        + renderDouble(goodputPeakPerSec) + ", \"collapseWindow\": "
        + std::to_string(goodputCollapseWindow)
        + ", \"collapseStartNs\": "
        + std::to_string(goodputCollapseStartNs) + "}";
    out += ",\n  \"little\": {\"checked\": "
        + std::to_string(little.checked) + ", \"consistent\": "
        + std::to_string(little.consistent) + ", \"worstError\": "
        + renderDouble(little.worstError) + "}";
    out += ",\n  \"machines\": [";
    bool first_m = true;
    for (const MachineReport &m : machines) {
        out += first_m ? "\n" : ",\n";
        first_m = false;
        out += "    {\"machine\": \"";
        appendEscaped(out, m.machine);
        out += "\", \"hop\": " + std::to_string(m.hop)
            + ", \"arch\": \"";
        appendEscaped(out, m.arch);
        out += "\", \"phases\": [";
        bool first_p = true;
        for (const PhaseAttribution &p : m.phases) {
            out += first_p ? "\n" : ",\n";
            first_p = false;
            out += "      {\"phase\": \"" + p.phase
                + "\", \"topWait\": \"" + p.topWait
                + "\", \"waits\": [";
            bool first = true;
            for (const Ranked &r : p.waits) {
                out += first ? "" : ", ";
                first = false;
                out += "{\"name\": \"" + r.name
                    + "\", \"share\": " + renderDouble(r.value)
                    + "}";
            }
            out += "], \"topResource\": \"" + p.topResource
                + "\", \"resources\": [";
            first = true;
            for (const Ranked &r : p.resources) {
                out += first ? "" : ", ";
                first = false;
                out += "{\"name\": \"" + r.name
                    + "\", \"peak\": " + renderDouble(r.value)
                    + "}";
            }
            out += "], \"saturationWindow\": "
                + std::to_string(p.saturationWindow)
                + ", \"saturationStartNs\": "
                + std::to_string(p.saturationStartNs) + "}";
        }
        out += first_p ? "]" : "\n    ]";
        out += "}";
    }
    out += first_m ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace siprox::stats

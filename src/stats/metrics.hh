/**
 * @file
 * Unified metrics registry: one place for every named counter, gauge,
 * and latency histogram a run produces, behind a snapshot/diff/JSON
 * API with deterministic (lexicographic) ordering. Absorbs the
 * scattered RunResult counters, FaultStats totals, and overload/
 * profiler numbers so tools and benches query one namespace instead
 * of reaching into each subsystem's structs.
 *
 * Naming scheme (see docs/observability.md): dot-separated lowercase
 * paths, subsystem first — "proxy.messagesIn", "phone.callsCompleted",
 * "faults.lost", "profile.share.ser:parse_msg". Counters are integral
 * and monotonic within a run; gauges are point-in-time doubles;
 * histograms register as
 * <name>.{count,p50_ms,p95_ms,p99_ms,p999_ms,mean_ms,max_ms}.
 */

#ifndef SIPROX_STATS_METRICS_HH
#define SIPROX_STATS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "stats/histogram.hh"

namespace siprox::stats {

/**
 * Immutable point-in-time view of a MetricsRegistry. Ordered maps
 * keep every rendering (JSON, digest) byte-deterministic.
 */
class MetricsSnapshot
{
  public:
    const std::map<std::string, std::uint64_t, std::less<>> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, double, std::less<>> &
    gauges() const
    {
        return gauges_;
    }

    /** Counter value, or @p dflt when absent. */
    std::uint64_t counterOr(std::string_view name,
                            std::uint64_t dflt = 0) const;

    /** Gauge value, or @p dflt when absent. */
    double gaugeOr(std::string_view name, double dflt = 0.0) const;

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty();
    }

    /**
     * This snapshot minus @p baseline: counters are subtracted
     * (clamped at zero) and zero deltas are dropped, so the result
     * lists only counters that moved; gauges keep their current
     * values. Use to scope monotonic counters to a measurement window.
     */
    MetricsSnapshot diff(const MetricsSnapshot &baseline) const;

    /** Pretty-printed JSON object {"counters":{...},"gauges":{...}},
     *  keys sorted, suitable for --metrics-json. */
    std::string toJson() const;

    /** Canonical "name value\n" rendering of the counters only —
     *  gauges are derived floats; counters are the determinism
     *  surface. Byte-identical across identical runs. */
    std::string digest() const;

  private:
    friend class MetricsRegistry;

    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
};

/**
 * Mutable registry. Not a sampling system: producers push final (or
 * running) values under stable names; consumers take snapshots.
 */
class MetricsRegistry
{
  public:
    /** Set counter @p name to @p v (absolute). */
    void setCounter(std::string_view name, std::uint64_t v);

    /** Add @p v to counter @p name (created at zero). */
    void addCounter(std::string_view name, std::uint64_t v);

    /** Set gauge @p name to @p v. */
    void setGauge(std::string_view name, double v);

    /** Register @p h under <name>.count/.p50_ms/.p95_ms/.p99_ms/
     *  .p999_ms/.mean_ms/.max_ms (count as a counter, the rest as
     *  gauges). */
    void recordHistogram(std::string_view name,
                         const LatencyHistogram &h);

    MetricsSnapshot snapshot() const { return snap_; }

    void clear() { snap_ = MetricsSnapshot{}; }

  private:
    MetricsSnapshot snap_;
};

} // namespace siprox::stats

#endif // SIPROX_STATS_METRICS_HH

/**
 * @file
 * Log-bucketed latency histogram with percentile queries, used for
 * per-transaction latency reporting in the workload harness.
 */

#ifndef SIPROX_STATS_HISTOGRAM_HH
#define SIPROX_STATS_HISTOGRAM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace siprox::stats {

using sim::SimTime;

/**
 * Histogram over durations with ~4% relative bucket resolution.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() : buckets_(kBuckets, 0) {}

    void
    record(SimTime value)
    {
        if (value < 0)
            value = 0;
        ++buckets_[bucketFor(value)];
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
        if (count_ == 1 || value < min_)
            min_ = value;
    }

    std::uint64_t count() const { return count_; }
    SimTime min() const { return count_ ? min_ : 0; }
    SimTime max() const { return max_; }

    SimTime
    mean() const
    {
        return count_ ? sum_ / static_cast<SimTime>(count_) : 0;
    }

    /** Value at quantile @p q in [0,1] (bucket upper bound). */
    SimTime percentile(double q) const;

    /**
     * Value at quantile @p q in [0,1], interpolated to the bucket
     * midpoint. Halves percentile()'s worst-case upper-bound bias
     * (~6% -> ~3% relative), at the cost of not being an upper bound.
     * percentile() stays as-is because run digests pin its rendering;
     * new consumers (windowed telemetry, the p95/p999 gauges) use
     * this.
     */
    SimTime percentileMid(double q) const;

    /** Accumulate another histogram into this one. */
    void
    merge(const LatencyHistogram &other)
    {
        for (int i = 0; i < kBuckets; ++i)
            buckets_[static_cast<std::size_t>(i)] +=
                other.buckets_[static_cast<std::size_t>(i)];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
        if (other.count_ && (count_ == other.count_ || other.min_ < min_))
            min_ = other.min_;
    }

    void
    reset()
    {
        buckets_.assign(kBuckets, 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
        min_ = 0;
    }

  private:
    // 16 log2 major buckets/decade over [1us, ~17min].
    static constexpr int kSubBits = 4;
    static constexpr int kBuckets = 64 << kSubBits;

    static int bucketFor(SimTime value);
    static SimTime bucketUpperBound(int bucket);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    SimTime sum_ = 0;
    SimTime max_ = 0;
    SimTime min_ = 0;
};

} // namespace siprox::stats

#endif // SIPROX_STATS_HISTOGRAM_HH

/**
 * @file
 * Minimal fixed-width table formatter for bench output, so every bench
 * binary prints paper-style rows consistently.
 */

#ifndef SIPROX_STATS_TABLE_HH
#define SIPROX_STATS_TABLE_HH

#include <string>
#include <vector>

namespace siprox::stats {

/**
 * Column-aligned text table.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    /** Append a row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Render with a header rule and right-aligned numeric cells. */
    std::string render() const;

    /** Render as RFC-4180-style CSV (quotes cells containing commas,
     *  quotes, or newlines). */
    std::string csv() const;

    /** Format helpers. */
    static std::string num(double v, int precision = 0);
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace siprox::stats

#endif // SIPROX_STATS_TABLE_HH

/**
 * @file
 * Automatic bottleneck attribution over windowed telemetry: the
 * "explain" report.
 *
 * The paper's method is to attribute a transport×architecture pairing's
 * throughput to the resource that saturates first — blocking fd-passing
 * IPC for TCP (§4.2), the run queue once that is fixed, CPU at the
 * limit. This module mechanizes that attribution so benches can assert
 * on it: given a TimeSeries (and the wait-state counters the sampler
 * folds into it when a trace recorder is attached), it ranks
 *
 *  - blocking wait states per machine and phase (lockspin, lockblock,
 *    ipc, socket, sleep, throttled — cpu and runqueue are excluded
 *    here because on-core demand is what the resource ranking below
 *    measures; a wait ranking dominated by "cpu" explains nothing),
 *  - resources by peak utilization (cpu via per-window busy-time
 *    deltas, every "occ.*" occupancy gauge as-is),
 *  - the saturation-onset window (first window where any resource
 *    crosses the threshold),
 *  - the goodput peak and collapse windows (from the phone fleet's
 *    per-window completion rate),
 *  - a Little's-law consistency check per window (L ≈ λ·W), flagging
 *    windows where occupancy, rate, and latency disagree — the classic
 *    sign of a measurement (or model) bug,
 *
 * and renders the result as deterministic text and JSON.
 */

#ifndef SIPROX_STATS_EXPLAIN_HH
#define SIPROX_STATS_EXPLAIN_HH

#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"
#include "stats/timeseries.hh"

namespace siprox::stats {

/** Tunables for the attribution heuristics. */
struct ExplainOptions
{
    /** A resource at/above this utilization is saturated. */
    double saturationThreshold = 0.9;
    /** Collapse: goodput below this fraction of the running peak. */
    double collapseFraction = 0.5;
    /** Little's-law windows may disagree by this relative factor. */
    double littleTolerance = 0.5;
    /** Windows with fewer served transactions than this are too thin
     *  for the Little check. */
    std::uint64_t littleMinServed = 10;
    /** Series/counter the goodput windows come from. */
    std::string goodputSeries = "phones";
    std::string goodputCounter = "phone.callsCompleted";
};

/** One ranked entry: a wait state's share or a resource's peak. */
struct Ranked
{
    std::string name;
    double value = 0;
};

/** Attribution for one machine over one phase's windows. */
struct PhaseAttribution
{
    std::string phase; ///< "warmup" or "measure"
    /** Blocking-wait shares (of total blocking wait), descending.
     *  Empty when the run had no trace recorder attached. */
    std::vector<Ranked> waits;
    /** "" when no blocking wait time was recorded. */
    std::string topWait;
    /** Peak utilization per resource, descending. */
    std::vector<Ranked> resources;
    std::string topResource;
    /** First window (global index into the series) where any resource
     *  reached the saturation threshold; -1 if none did. */
    int saturationWindow = -1;
    sim::SimTime saturationStartNs = -1;
};

/** All phases of one series. */
struct MachineReport
{
    std::string machine;
    int hop = -1;
    std::string arch;
    std::vector<PhaseAttribution> phases;

    const PhaseAttribution *phase(std::string_view name) const;
};

/** Per-window L ≈ λ·W consistency over the serving series. */
struct LittleCheck
{
    int checked = 0;
    int consistent = 0;
    /** Worst |L - λW| / max(L, λW, 1) seen; 0 when nothing checked. */
    double worstError = 0;
};

struct ExplainReport
{
    std::string scenario;
    std::uint64_t seed = 0;
    std::string transport;
    sim::SimTime windowNs = 0;

    std::vector<MachineReport> machines;

    /** Goodput knee over this run's windows (global indices into the
     *  goodput series; -1 when the series or signal is missing). */
    int goodputPeakWindow = -1;
    sim::SimTime goodputPeakStartNs = -1;
    double goodputPeakPerSec = 0;
    int goodputCollapseWindow = -1;
    sim::SimTime goodputCollapseStartNs = -1;

    LittleCheck little;

    const MachineReport *machine(std::string_view name) const;

    /** Deterministic human-readable report. */
    std::string text() const;

    /** Deterministic JSON rendering of the same content. */
    std::string toJson() const;
};

/** Build the attribution report for one run's telemetry. */
ExplainReport explain(const TimeSeries &ts,
                      const ExplainOptions &opts = {});

/**
 * Knee of a monotone-ish curve (e.g. goodput vs offered load across a
 * sweep): the index of the point with the greatest vertical distance
 * above/below the chord from first to last point (Kneedle, without the
 * smoothing). -1 when fewer than 3 points.
 */
int kneeIndex(const std::vector<double> &xs,
              const std::vector<double> &ys);

} // namespace siprox::stats

#endif // SIPROX_STATS_EXPLAIN_HH

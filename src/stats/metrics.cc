#include "stats/metrics.hh"

#include <cstdio>

namespace siprox::stats {

namespace {

/** Fixed-format double: enough digits to round-trip run artifacts,
 *  no locale dependence. */
std::string
renderDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

std::uint64_t
MetricsSnapshot::counterOr(std::string_view name,
                           std::uint64_t dflt) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? dflt : it->second;
}

double
MetricsSnapshot::gaugeOr(std::string_view name, double dflt) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? dflt : it->second;
}

MetricsSnapshot
MetricsSnapshot::diff(const MetricsSnapshot &baseline) const
{
    MetricsSnapshot out;
    for (const auto &[name, v] : counters_) {
        std::uint64_t base = baseline.counterOr(name);
        std::uint64_t delta = v >= base ? v - base : 0;
        // Zero deltas are suppressed: a window diff lists only what
        // moved, and counterOr() defaults absent keys to 0 anyway.
        if (delta != 0)
            out.counters_[name] = delta;
    }
    out.gauges_ = gauges_;
    return out;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        appendEscaped(out, name);
        out += "\": ";
        out += std::to_string(v);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        appendEscaped(out, name);
        out += "\": ";
        out += renderDouble(v);
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string
MetricsSnapshot::digest() const
{
    std::string out;
    for (const auto &[name, v] : counters_) {
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    }
    return out;
}

void
MetricsRegistry::setCounter(std::string_view name, std::uint64_t v)
{
    auto it = snap_.counters_.find(name);
    if (it == snap_.counters_.end())
        snap_.counters_.emplace(std::string(name), v);
    else
        it->second = v;
}

void
MetricsRegistry::addCounter(std::string_view name, std::uint64_t v)
{
    auto it = snap_.counters_.find(name);
    if (it == snap_.counters_.end())
        snap_.counters_.emplace(std::string(name), v);
    else
        it->second += v;
}

void
MetricsRegistry::setGauge(std::string_view name, double v)
{
    auto it = snap_.gauges_.find(name);
    if (it == snap_.gauges_.end())
        snap_.gauges_.emplace(std::string(name), v);
    else
        it->second = v;
}

void
MetricsRegistry::recordHistogram(std::string_view name,
                                 const LatencyHistogram &h)
{
    std::string base(name);
    setCounter(base + ".count", h.count());
    setGauge(base + ".p50_ms", sim::toMsecs(h.percentile(0.50)));
    // p95/p999 are newer additions with no digest pinned to them, so
    // they use the midpoint estimator (half the relative bias).
    setGauge(base + ".p95_ms", sim::toMsecs(h.percentileMid(0.95)));
    setGauge(base + ".p99_ms", sim::toMsecs(h.percentile(0.99)));
    setGauge(base + ".p999_ms", sim::toMsecs(h.percentileMid(0.999)));
    setGauge(base + ".mean_ms", sim::toMsecs(h.mean()));
    setGauge(base + ".max_ms", sim::toMsecs(h.max()));
}

} // namespace siprox::stats

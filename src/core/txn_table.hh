/**
 * @file
 * Shared-memory stateful transaction store (OpenSER "tm" module) and
 * the global retransmission timer list (§3.2). Both sit behind
 * spin-then-yield locks shared by all worker processes; callers charge
 * CPU per the cost model.
 */

#ifndef SIPROX_CORE_TXN_TABLE_HH
#define SIPROX_CORE_TXN_TABLE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hh"
#include "sim/sync.hh"
#include "sim/time.hh"
#include "sip/message.hh"
#include "sip/transaction.hh"

namespace siprox::core {

using sim::SimTime;

/** Proxy-side state for one SIP transaction. */
struct TxnRecord
{
    enum class State
    {
        Proceeding,
        Completed,
        Terminated,
    };

    /** Key from the caller-side top Via (matches request retransmits). */
    sip::TransactionKey serverKey;
    /** Key of the proxy's own downstream branch (matches responses). */
    sip::TransactionKey clientKey;
    sip::Method method = sip::Method::Unknown;
    State state = State::Proceeding;

    /** Where responses are forwarded (toward the request originator). */
    net::Addr upstreamAddr;
    std::uint64_t upstreamConnId = 0;

    /** When the proxy created this record (serving-latency signal). */
    SimTime createdAt = 0;

    /** True when this INVITE holds a hop-gate window slot toward the
     *  next hop; the slot is released exactly once, at the final
     *  response or at Timer B. */
    bool hopGated = false;

    /** Last response forwarded upstream; replayed to absorb request
     *  retransmissions (stateful behaviour). */
    std::string lastResponse;
};

/**
 * Hash table of in-flight transactions, addressable by both keys.
 */
class TxnTable
{
  public:
    sim::SpinLock &lock() { return lock_; }

    /** All methods below require the lock to be held. */

    std::shared_ptr<TxnRecord>
    find(const sip::TransactionKey &key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    std::shared_ptr<TxnRecord>
    insert(TxnRecord record)
    {
        auto rec = std::make_shared<TxnRecord>(std::move(record));
        map_[rec->serverKey] = rec;
        map_[rec->clientKey] = rec;
        return rec;
    }

    /** Queue @p rec for removal at @p at (cleanup is FIFO in time). */
    void
    scheduleExpiry(const std::shared_ptr<TxnRecord> &rec, SimTime at)
    {
        expiry_.push_back({at, rec});
    }

    /**
     * Remove entries whose expiry passed. Returns the number of
     * records destroyed (callers charge per-record cost).
     */
    std::size_t
    cleanupExpired(SimTime now)
    {
        std::size_t removed = 0;
        while (!expiry_.empty() && expiry_.front().at <= now) {
            auto rec = expiry_.front().rec;
            expiry_.pop_front();
            map_.erase(rec->serverKey);
            map_.erase(rec->clientKey);
            ++removed;
        }
        return removed;
    }

    /** Records present (two keys per record). */
    std::size_t size() const { return map_.size(); }

  private:
    struct Expiry
    {
        SimTime at;
        std::shared_ptr<TxnRecord> rec;
    };

    sim::SpinLock lock_{"txn_hash"};
    std::unordered_map<sip::TransactionKey, std::shared_ptr<TxnRecord>,
                       sip::TransactionKeyHash>
        map_;
    std::deque<Expiry> expiry_;
};

/**
 * The global retransmission list of §3.2: every forwarded request on an
 * unreliable transport gets an entry; the timer process walks the whole
 * list each tick. Workers arm/cancel entries under the same lock.
 */
class RetransList
{
  public:
    struct Entry
    {
        sip::TransactionKey key;
        std::string wire;
        net::Addr dst;
        SimTime nextAt = 0;
        SimTime interval = 0;
        SimTime deadline = 0;
        bool invite = false;
        bool cancelled = false;
        int sent = 0;
    };

    /** A retransmission the timer process must perform. */
    struct Due
    {
        std::string wire;
        net::Addr dst;
    };

    /** An entry whose Timer B/F deadline expired without a response. */
    struct TimedOut
    {
        sip::TransactionKey key;
        std::string wire; ///< the forwarded request, for the 408
        bool invite = false;
    };

    sim::SpinLock &lock() { return lock_; }

    /** All methods below require the lock to be held. */

    void
    arm(Entry entry)
    {
        entries_.push_back(std::move(entry));
        auto it = std::prev(entries_.end());
        index_[it->key] = it;
    }

    /** Mark the entry for @p key cancelled; true if it existed. */
    bool
    cancel(const sip::TransactionKey &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return false;
        it->second->cancelled = true;
        index_.erase(it);
        return true;
    }

    /**
     * Walk the entire list (the paper's design): erase cancelled and
     * expired entries, collect due retransmissions, and back off their
     * timers (T1 doubling; non-INVITE capped at T2).
     *
     * @param now Current time.
     * @param out Receives messages to retransmit.
     * @param timeouts Receives the count of deadline-expired entries.
     * @return Number of entries visited (for cost accounting).
     */
    std::size_t collectDue(SimTime now, std::vector<Due> &out,
                           std::size_t &timeouts);

    /** As above, but expired entries are returned so the caller can
     *  answer the transaction with a 408 and reclaim its record. */
    std::size_t collectDue(SimTime now, std::vector<Due> &out,
                           std::vector<TimedOut> &timed_out);

    std::size_t size() const { return entries_.size(); }

  private:
    sim::SpinLock lock_{"timer_list"};
    std::list<Entry> entries_;
    std::unordered_map<sip::TransactionKey, std::list<Entry>::iterator,
                       sip::TransactionKeyHash>
        index_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_TXN_TABLE_HH

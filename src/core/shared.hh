/**
 * @file
 * The proxy's shared memory segment: everything the worker processes,
 * supervisor, and timer process share, plus aggregate counters.
 */

#ifndef SIPROX_CORE_SHARED_HH
#define SIPROX_CORE_SHARED_HH

#include <cstdint>

#include "core/conn_table.hh"
#include "core/hopctl.hh"
#include "core/location.hh"
#include "core/overload.hh"
#include "core/registrar.hh"
#include "core/txn_table.hh"

namespace siprox::core {

/** Aggregate proxy counters (monotonic; read by tests and benches). */
struct ProxyCounters
{
    std::uint64_t messagesIn = 0;
    std::uint64_t requestsIn = 0;
    std::uint64_t responsesIn = 0;
    std::uint64_t forwards = 0;
    std::uint64_t localReplies = 0; ///< TRYING, 200-to-REGISTER, errors
    std::uint64_t parseErrors = 0;
    std::uint64_t routeFailures = 0;
    std::uint64_t retransAbsorbed = 0; ///< request retransmits answered
    std::uint64_t retransSent = 0;     ///< timer-driven retransmissions
    std::uint64_t retransTimeouts = 0;
    std::uint64_t timerB408s = 0; ///< 408s generated on Timer B expiry
    std::uint64_t registrations = 0;
    std::uint64_t authChallenges = 0;
    std::uint64_t authAccepted = 0;
    std::uint64_t redirects = 0;
    // --- TCP architecture ---------------------------------------------
    std::uint64_t connsAccepted = 0;
    std::uint64_t connsDestroyed = 0;
    std::uint64_t fdRequests = 0;
    std::uint64_t fdCacheHits = 0;
    std::uint64_t fdCacheInvalidations = 0;
    std::uint64_t outboundConnects = 0;
    std::uint64_t sendsToDeadConns = 0;
    std::uint64_t idleScans = 0;
    std::uint64_t idleScanVisited = 0;
    std::uint64_t connsReturnedByWorkers = 0;
    /** Event arch: connections migrated to an idle loop (work steal). */
    std::uint64_t connsStolen = 0;
    // --- overload control ---------------------------------------------
    std::uint64_t overloadRejected = 0;  ///< 503s from ThresholdReject
    std::uint64_t overloadThrottled = 0; ///< 503s from RateThrottle
    std::uint64_t overloadPanicDrops = 0; ///< pre-parse silent drops
    std::uint64_t overloadShedEnters = 0; ///< hysteresis transitions in
    std::uint64_t overloadShedExits = 0;  ///< hysteresis transitions out
    std::uint64_t tcpReadPauses = 0;  ///< read-pause slices started
    std::uint64_t tcpReadResumes = 0; ///< read-pause slices expired
    std::uint64_t tcpAcceptPauses = 0; ///< accept-drain pauses started
    // --- hop-by-hop distributed control --------------------------------
    std::uint64_t hopFeedbackSent = 0; ///< responses carrying Overload:
    std::uint64_t hopFeedbackApplied = 0; ///< advertisements consumed
    std::uint64_t hopThrottleHolds = 0; ///< INVITEs parked for a grant
    std::uint64_t hopThrottleRejects = 0; ///< 503s from the hop gate
    std::uint64_t hopThrottleDrops = 0; ///< pre-parse drops (on/off)
    std::uint64_t hopGrantExpired = 0; ///< stale grants failed open
    // --- sharded location service (clusters only) -----------------------
    std::uint64_t locLocalHits = 0;    ///< lookups served by own shard
    std::uint64_t locReplicaHits = 0;  ///< stale reads from replicas
    std::uint64_t locMissForwards = 0; ///< requests forwarded to owner
    std::uint64_t locRegisterForwards = 0; ///< REGISTERs at a non-owner
    std::uint64_t locReplPushes = 0;   ///< binding writes replicated out
    std::uint64_t locReplInstalls = 0; ///< replica bindings installed

    /** Field-wise accumulate (chain runs sum counters across hops). */
    void
    add(const ProxyCounters &o)
    {
        messagesIn += o.messagesIn;
        requestsIn += o.requestsIn;
        responsesIn += o.responsesIn;
        forwards += o.forwards;
        localReplies += o.localReplies;
        parseErrors += o.parseErrors;
        routeFailures += o.routeFailures;
        retransAbsorbed += o.retransAbsorbed;
        retransSent += o.retransSent;
        retransTimeouts += o.retransTimeouts;
        timerB408s += o.timerB408s;
        registrations += o.registrations;
        authChallenges += o.authChallenges;
        authAccepted += o.authAccepted;
        redirects += o.redirects;
        connsAccepted += o.connsAccepted;
        connsDestroyed += o.connsDestroyed;
        fdRequests += o.fdRequests;
        fdCacheHits += o.fdCacheHits;
        fdCacheInvalidations += o.fdCacheInvalidations;
        outboundConnects += o.outboundConnects;
        sendsToDeadConns += o.sendsToDeadConns;
        idleScans += o.idleScans;
        idleScanVisited += o.idleScanVisited;
        connsReturnedByWorkers += o.connsReturnedByWorkers;
        connsStolen += o.connsStolen;
        overloadRejected += o.overloadRejected;
        overloadThrottled += o.overloadThrottled;
        overloadPanicDrops += o.overloadPanicDrops;
        overloadShedEnters += o.overloadShedEnters;
        overloadShedExits += o.overloadShedExits;
        tcpReadPauses += o.tcpReadPauses;
        tcpReadResumes += o.tcpReadResumes;
        tcpAcceptPauses += o.tcpAcceptPauses;
        hopFeedbackSent += o.hopFeedbackSent;
        hopFeedbackApplied += o.hopFeedbackApplied;
        hopThrottleHolds += o.hopThrottleHolds;
        hopThrottleRejects += o.hopThrottleRejects;
        hopThrottleDrops += o.hopThrottleDrops;
        hopGrantExpired += o.hopGrantExpired;
        locLocalHits += o.locLocalHits;
        locReplicaHits += o.locReplicaHits;
        locMissForwards += o.locMissForwards;
        locRegisterForwards += o.locRegisterForwards;
        locReplPushes += o.locReplPushes;
        locReplInstalls += o.locReplInstalls;
    }
};

/** Everything in the proxy's shared memory. */
struct SharedState
{
    Registrar registrar;
    TxnTable txns;
    RetransList retrans;
    ConnTable conns;
    IdlePq supervisorPq;
    ProxyCounters counters;
    OverloadController overload;
    /** Upstream side of hop-by-hop control (per-destination gate). */
    HopThrottleTable hopGate;
    /** Cluster shard membership + replica store (disabled by default). */
    LocationService location;
};

} // namespace siprox::core

#endif // SIPROX_CORE_SHARED_HH

/**
 * @file
 * OpenSER's UDP architecture (paper §3.2, Figure 2): N symmetric worker
 * processes all receiving from one shared socket, plus the timer
 * process that scans the global retransmission list.
 */

#ifndef SIPROX_CORE_UDP_ARCH_HH
#define SIPROX_CORE_UDP_ARCH_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/shared.hh"
#include "net/network.hh"
#include "net/udp.hh"
#include "sim/machine.hh"

namespace siprox::core {

/**
 * The symmetric-worker datagram architecture. Also used for SCTP
 * (§6): identical structure over a message-based, connection-oriented
 * socket whose connection management lives in the kernel.
 */
class UdpArch
{
  public:
    UdpArch(sim::Machine &machine, net::Host &host, SharedState &shared,
            const ProxyConfig &cfg);

    /** Bind the socket and spawn workers + timer process. */
    void start();

    /** Ask all loops to exit at their next wakeup. */
    void requestStop() { stop_ = true; }

    /** Depth of the shared socket receive queue (sampling). */
    std::size_t recvQueueDepth() const;

    /** Messages the proxy socket dropped to receive-queue overflow. */
    std::uint64_t recvQueueDrops() const;

  private:
    sim::Task workerMain(sim::Process &p, int id);
    sim::Task timerMain(sim::Process &p);

    /** Transport-generic receive/send hooks (UDP or SCTP socket). */
    sim::Task recvOne(sim::Process &p, net::Datagram &out);
    sim::Task sendOne(sim::Process &p, net::Addr dst, std::string wire);

    sim::Machine &machine_;
    net::Host &host_;
    SharedState &shared_;
    const ProxyConfig &cfg_;
    net::UdpSocket *udpSock_ = nullptr;
    net::SctpSocket *sctpSock_ = nullptr;
    std::vector<std::unique_ptr<Engine>> engines_;
    bool stop_ = false;
};

} // namespace siprox::core

#endif // SIPROX_CORE_UDP_ARCH_HH

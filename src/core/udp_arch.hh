/**
 * @file
 * OpenSER's UDP architecture (paper §3.2, Figure 2): N symmetric worker
 * processes all receiving from one shared socket, plus the timer
 * process that scans the global retransmission list.
 */

#ifndef SIPROX_CORE_UDP_ARCH_HH
#define SIPROX_CORE_UDP_ARCH_HH

#include <memory>
#include <vector>

#include "core/arch.hh"
#include "core/config.hh"
#include "core/engine.hh"
#include "core/shared.hh"
#include "core/worker_loop.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/machine.hh"

namespace siprox::core {

/**
 * The symmetric-worker datagram architecture. Also used for SCTP
 * (§6): identical structure over a message-based, connection-oriented
 * socket whose connection management lives in the kernel — the
 * transport difference is entirely behind net::DatagramSocket.
 */
class UdpArch final : public ServerArch
{
  public:
    UdpArch(sim::Machine &machine, net::Host &host, SharedState &shared,
            const ProxyConfig &cfg);

    /** Bind the socket and spawn workers + timer process. */
    void start() override;

    void requestStop() override { stop_ = true; }

    ArchKind kind() const override { return ArchKind::SymmetricWorker; }
    int loopCount() const override { return cfg_.workers; }

    /** No internal work queue exists: the socket receive queue is the
     *  only queue, so it doubles as the request-queue signal. */
    std::size_t
    requestQueueDepth() const override
    {
        return recvQueueDepth();
    }

    /** Depth of the shared socket receive queue (sampling). */
    std::size_t recvQueueDepth() const override;

    /** Messages the proxy socket dropped to receive-queue overflow. */
    std::uint64_t recvQueueDrops() const override;

    std::uint64_t acceptRefused() const override { return 0; }

    /** Gauges: receive-queue high-water mark. */
    void appendTelemetryGauges(std::vector<ArchGauge> &out)
        const override;

  private:
    sim::Task workerMain(sim::Process &p, int id);
    sim::Task workerLegacy(sim::Process &p, int id);
    sim::Task workerBatched(sim::Process &p, int id);
    sim::Task timerMain(sim::Process &p);

    sim::Task sendOne(sim::Process &p, net::Addr dst, std::string wire);

    sim::Machine &machine_;
    net::Host &host_;
    SharedState &shared_;
    const ProxyConfig &cfg_;
    net::DatagramSocket *sock_ = nullptr;
    std::vector<std::unique_ptr<Engine>> engines_;
    /** One per process (workers + timer): see worker_loop.hh. */
    std::vector<std::unique_ptr<WorkerLoop>> loops_;
    std::unique_ptr<WorkerLoop> timerLoop_;
    bool stop_ = false;
};

} // namespace siprox::core

#endif // SIPROX_CORE_UDP_ARCH_HH

/**
 * @file
 * The event-driven server architecture the paper's analysis points at
 * (§5–§6): the supervisor/worker split and its blocking fd-passing IPC
 * are replaced by one process per core running a readiness loop.
 *
 * Differences from OpenSER's designs (§3.1/§3.2):
 *  - No supervisor. Every loop polls the shared listener and accepts
 *    directly (non-blocking), so there is no dispatch channel, no
 *    fd-request round trip, and no process that can become the
 *    bottleneck when de-prioritised (§4.3).
 *  - Shared descriptor table instead of fd passing. Accepting a
 *    connection installs a duplicate descriptor in the shared
 *    connection table (as the multithreaded variant of §6 does). A
 *    loop's first send to another loop's connection dups that
 *    descriptor into a private per-loop cache under the table lock;
 *    every later send writes the private duplicate with no locks at
 *    all (one atomic write per SIP message) — the §5.2 fd cache's
 *    fast path with nothing behind a miss but a hash lookup and a
 *    dup(), no IPC round trip.
 *  - Per-core connection ownership with priority-queue idle
 *    management, always (§5.3's fix is the design here, not a knob;
 *    ProxyConfig::fdCache and ::idleStrategy do not apply).
 *  - Work stealing. A loop that would otherwise block with nothing
 *    ready migrates one ready connection (descriptor, framer state,
 *    idle-queue entry) from a backlogged sibling and services it.
 *    Static per-core ownership alone leaves cores idle whenever the
 *    instantaneous ready-set distribution is skewed — the same
 *    head-of-line effect SO_REUSEPORT accept sharding shows — and a
 *    handful of loops cannot smooth it statistically the way §3.1's
 *    32 workers do.
 *
 * Works over TCP, UDP, and SCTP. For datagram transports the loops
 * degenerate to symmetric readiness-driven receivers on the shared
 * socket; the architectural changes only matter for TCP, which is the
 * point: it closes most of TCP's gap to UDP.
 */

#ifndef SIPROX_CORE_EVENT_ARCH_HH
#define SIPROX_CORE_EVENT_ARCH_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/arch.hh"
#include "core/config.hh"
#include "core/engine.hh"
#include "core/shared.hh"
#include "core/worker_loop.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "net/tcp.hh"
#include "sim/machine.hh"

namespace siprox::core {

class EventArch final : public ServerArch
{
  public:
    EventArch(sim::Machine &machine, net::Host &host,
              SharedState &shared, const ProxyConfig &cfg);
    ~EventArch() override;

    void start() override;
    void requestStop() override { stop_ = true; }

    ArchKind kind() const override { return ArchKind::EventDriven; }
    int loopCount() const override
    {
        return static_cast<int>(loops_.size());
    }

    /** No internal queues exist; the kernel queue is the signal. */
    std::size_t requestQueueDepth() const override
    {
        return recvQueueDepth();
    }

    std::size_t recvQueueDepth() const override;
    std::uint64_t recvQueueDrops() const override;
    std::uint64_t acceptRefused() const override;

    /** Gauges: owned connections, peer-fd duplicates, connections
     *  stolen (datagram mode: receive-queue high-water mark). */
    void appendTelemetryGauges(std::vector<ArchGauge> &out)
        const override;

  private:
    struct Loop
    {
        int id = -1;
        /** Connections this loop reads (it holds the fd). */
        std::unordered_map<std::uint64_t, net::TcpConn> owned;
        std::vector<std::uint64_t> ownedOrder;
        std::unordered_map<std::uint64_t, sip::StreamFramer> framers;
        /** Duplicate descriptors for other loops' connections, filled
         *  on first cross-loop send from the shared table. Unlike the
         *  §5.2 fd cache there is no IPC behind a miss — the dup comes
         *  straight out of the shared descriptor table — and no lock
         *  on a hit (each loop writes its own descriptor; a send is
         *  one atomic write). Swept with the idle scan. */
        std::unordered_map<std::uint64_t, net::TcpConn> peerFds;
        /** §5.3 always-on: per-core idle/destroy priority queue. */
        IdlePq idlePq;
        /** Connections this loop is mid-operation on (a coroutine of
         *  ours holds a reference across a suspension point). Thieves
         *  must not migrate these. */
        std::unordered_set<std::uint64_t> busy;
        std::unique_ptr<Engine> engine;
        std::unique_ptr<WorkerLoop> wloop;
        sim::SimTime nextScan = 0;
        int rrCursor = 0;
    };

    bool tcpMode() const { return isStreamTransport(cfg_.transport); }

    sim::Task loopMain(sim::Process &p, int id);
    sim::Task loopMainDatagram(sim::Process &p, int id);
    sim::Task loopMainDatagramLegacy(sim::Process &p, int id);
    sim::Task loopMainDatagramBatched(sim::Process &p, int id);

    /** Accept-drain: install accepted connections as loop-owned. */
    sim::Task loopAccept(sim::Process &p, Loop &l, sim::SimTime until);
    sim::Task installConn(sim::Process &p, Loop &l, net::TcpConn conn,
                          bool accepted);
    sim::Task loopReadConn(sim::Process &p, Loop &l,
                           std::uint64_t conn_id);
    sim::Task loopSend(sim::Process &p, Loop &l, SendAction action);
    sim::Task loopSendDatagram(sim::Process &p, Loop &l,
                               SendAction action);
    sim::Task loopConnect(sim::Process &p, Loop &l, SendAction action);

    /**
     * Migrate one ready, non-busy connection from a sibling loop and
     * service it. The migration itself has no suspension points, so it
     * is atomic under the cooperative scheduler. Sets @p stole.
     */
    sim::Task loopSteal(sim::Process &p, Loop &l, bool *stole);

    /** Close this loop's read side and drop the local maps. */
    sim::Task closeOwned(sim::Process &p, Loop &l,
                         std::uint64_t conn_id);

    /**
     * Remove the connection from the shared table and close the
     * table's descriptor — only if loop @p l still owns it (a stale
     * idle-queue entry on the old owner must not destroy a connection
     * that has since been stolen). Other loops' peerFds duplicates
     * stay valid (each holds its own handle) and are reaped by their
     * sweeps; writes on the dead connection are silently dropped.
     */
    sim::Task destroyConn(sim::Process &p, Loop &l,
                          std::uint64_t conn_id);

    sim::Task loopIdleScan(sim::Process &p, Loop &l);
    sim::Task timerMain(sim::Process &p);

    sim::Machine &machine_;
    net::Host &host_;
    SharedState &shared_;
    const ProxyConfig &cfg_;
    net::TcpListener *listener_ = nullptr;
    net::DatagramSocket *sock_ = nullptr;
    std::vector<std::unique_ptr<Loop>> loops_;
    std::unique_ptr<WorkerLoop> timerLoop_;
    bool stop_ = false;

    sim::CostCenterId ccPoll_;
    sim::CostCenterId ccConnHash_;
    sim::CostCenterId ccScan_;
    sim::CostCenterId ccKernAccept_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_EVENT_ARCH_HH

#include "core/tcp_arch.hh"

#include <algorithm>
#include <cassert>

#include "net/error.hh"
#include "sim/pollable.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::core {

TcpArch::TcpArch(sim::Machine &machine, net::Host &host,
                 SharedState &shared, const ProxyConfig &cfg)
    : machine_(machine), host_(host), shared_(shared), cfg_(cfg),
      ccFdReq_(sim::CostCenters::id("ser:tcp_send_fd_request")),
      ccIpc_(sim::CostCenters::id("kernel:unix_ipc")),
      ccTcpMain_(sim::CostCenters::id("ser:tcp_main_loop")),
      ccScan_(sim::CostCenters::id("ser:tcpconn_timeout")),
      ccConnHash_(sim::CostCenters::id("ser:tcpconn_hash")),
      ccPoll_(sim::CostCenters::id("ser:io_wait")),
      ccKernAccept_(sim::CostCenters::id("kernel:tcp_accept")),
      ccKernClose_(sim::CostCenters::id("kernel:tcp_close"))
{
}

TcpArch::~TcpArch() = default;

void
TcpArch::start()
{
    listener_ = &host_.tcpListen(cfg_.port);
    reqChan_ = std::make_unique<sim::Channel<ReqMsg>>(
        static_cast<std::size_t>(cfg_.requestChannelCapacity),
        "tcp_req");
    pendingDispatch_.resize(static_cast<std::size_t>(cfg_.workers));
    net::Addr addr = host_.addr(cfg_.port);
    for (int i = 0; i < cfg_.workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->id = i;
        w->dispatch = std::make_unique<sim::Channel<NewConnMsg>>(
            static_cast<std::size_t>(cfg_.dispatchChannelCapacity),
            "tcp_dispatch");
        w->resp = std::make_unique<sim::Channel<FdRespMsg>>(4,
                                                            "tcp_resp");
        w->engine = std::make_unique<Engine>(shared_, cfg_, addr, i);
        w->loop = std::make_unique<WorkerLoop>(shared_, cfg_,
                                              *w->engine);
        workers_.push_back(std::move(w));
        machine_.spawn("tcp_worker" + std::to_string(i), 0,
                       [this, i](sim::Process &p) {
                           return workerMain(p, i);
                       });
    }
    machine_.spawn("tcp_supervisor", cfg_.supervisorNice,
                   [this](sim::Process &p) { return supervisorMain(p); });
    // §3.1: the timer process exists but is superfluous for TCP; here
    // it only reclaims terminated transaction records.
    machine_.spawn("timer", 0,
                   [this](sim::Process &p) { return timerMain(p); });
}

std::size_t
TcpArch::requestQueueDepth() const
{
    return reqChan_ ? reqChan_->size() : 0;
}

std::size_t
TcpArch::acceptBacklogDepth() const
{
    return listener_ ? listener_->backlogDepth() : 0;
}

std::uint64_t
TcpArch::acceptRefused() const
{
    return listener_ ? listener_->backlogRefused() : 0;
}

void
TcpArch::appendTelemetryGauges(std::vector<ArchGauge> &out) const
{
    std::size_t owned = 0, cached = 0;
    for (const auto &w : workers_) {
        owned += w->owned.size();
        cached += w->fdCache.size();
    }
    std::size_t pending = 0;
    for (const auto &q : pendingDispatch_)
        pending += q.size();
    out.push_back({"arch.ownedConns", static_cast<double>(owned)});
    out.push_back({"arch.fdCacheEntries", static_cast<double>(cached)});
    out.push_back(
        {"arch.pendingDispatch", static_cast<double>(pending)});
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

sim::Task
TcpArch::workerMain(sim::Process &p, int id)
{
    Worker &w = *workers_[static_cast<std::size_t>(id)];
    w.nextScan = p.sim().now() + cfg_.idleScanInterval;
    std::vector<sim::Pollable *> items;
    std::vector<std::uint64_t> item_conn;
    while (!stop_) {
        shared_.overload.noteQueueDepth(requestQueueDepth());
        // While shedding, connections leave the poll set entirely: the
        // proxy stops reading, rxBufs fill, and kernel flow control
        // pushes back on clients. The pause is a bounded slice; the
        // dispatch channel stays pollable throughout.
        const bool reads_paused =
            shared_.overload.tcpReadsPaused(p.sim().now());
        // Rebuild the poll set with a rotating cursor for fairness.
        items.clear();
        item_conn.clear();
        items.push_back(&w.dispatch->readable());
        item_conn.push_back(0);
        const int n = static_cast<int>(w.ownedOrder.size());
        for (int k = 0; !reads_paused && k < n; ++k) {
            std::uint64_t cid =
                w.ownedOrder[static_cast<std::size_t>((w.rrCursor + k)
                                                      % n)];
            auto it = w.owned.find(cid);
            if (it == w.owned.end() || !it->second.valid())
                continue;
            items.push_back(&it->second.readable());
            item_conn.push_back(cid);
        }
        sim::SimTime timeout = w.nextScan - p.sim().now();
        if (reads_paused && cfg_.overload.pauseSlice < timeout)
            timeout = cfg_.overload.pauseSlice;
        if (timeout < 0)
            timeout = 0;
        int idx = -1;
        co_await sim::poll(p, items, timeout, idx);
        if (stop_)
            break;
        co_await p.cpu(cfg_.costs.pollOverhead, ccPoll_);
        if (idx == 0) {
            NewConnMsg msg;
            while (w.dispatch->tryRecv(msg))
                co_await workerInstallConn(p, w, std::move(msg));
        } else if (idx > 0) {
            if (n > 0)
                w.rrCursor = (w.rrCursor + idx) % n;
            co_await workerReadConn(
                p, w, item_conn[static_cast<std::size_t>(idx)]);
        }
        if (p.sim().now() >= w.nextScan) {
            co_await workerIdleScan(p, w);
            w.nextScan = p.sim().now() + cfg_.idleScanInterval;
        }
    }
}

sim::Task
TcpArch::workerInstallConn(sim::Process &p, Worker &w, NewConnMsg msg)
{
    co_await p.cpu(cfg_.costs.fdInstall, ccFdReq_);
    std::uint64_t id = msg.connId;
    w.owned[id] = std::move(msg.fd);
    w.framers[id] = sip::StreamFramer{};
    w.ownedOrder.push_back(id);
    if (cfg_.idleStrategy == IdleStrategy::PriorityQueue) {
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        w.localPq.push(p.sim().now() + cfg_.idleTimeout, id);
    }
}

sim::Task
TcpArch::workerReadConn(sim::Process &p, Worker &w,
                        std::uint64_t conn_id)
{
    auto it = w.owned.find(conn_id);
    if (it == w.owned.end())
        co_return;
    std::string bytes;
    co_await it->second.recv(p, bytes);
    WorkerLoop::traceRxConn(p, conn_id, bytes.size());
    if (bytes.empty()) {
        // EOF or reset.
        co_await workerCloseConn(p, w, conn_id, /*dead=*/true);
        co_return;
    }
    net::Addr peer = it->second.remote();
    auto fit = w.framers.find(conn_id);
    if (fit == w.framers.end())
        co_return;
    fit->second.feed(std::move(bytes));
    for (;;) {
        // Re-find the framer: handling a message can close conns.
        fit = w.framers.find(conn_id);
        if (fit == w.framers.end())
            co_return;
        if (fit->second.poisoned()) {
            co_await workerCloseConn(p, w, conn_id, /*dead=*/true);
            co_return;
        }
        auto raw = fit->second.next();
        if (!raw)
            break;
        // The lambda merely calls named member coroutines (lifetime
        // rule, sim/task.hh); &w stays valid for the whole run.
        Worker *wp = &w;
        co_await w.loop->dispatch(
            p, std::move(*raw), MsgSource{peer, conn_id},
            [this, wp](sim::Process &sp, SendAction action) {
                return threadMode()
                    ? workerSendThreadMode(sp, *wp, std::move(action))
                    : workerSend(sp, *wp, std::move(action));
            });
    }
    // Reading refreshes the connection's timestamp (unlocked
    // single-word store, as OpenSER's timestamp updates are).
    if (TcpConnObj *obj = shared_.conns.byId(conn_id))
        obj->lastUse = p.sim().now();
}

sim::Task
TcpArch::workerSend(sim::Process &p, Worker &w, SendAction action)
{
    // Â§5.2 fast path: a cached descriptor for a known connection skips
    // the shared hash entirely -- the cache maps connection object to
    // fd directly, and the timestamp refresh is an unlocked single-word
    // store (as OpenSER's are).
    if (cfg_.fdCache && action.dstConnId) {
        auto cit = w.fdCache.find(action.dstConnId);
        if (cit != w.fdCache.end()) {
            ++shared_.counters.fdCacheHits;
            co_await p.cpu(cfg_.costs.fdCacheHit, ccFdReq_);
            if (TcpConnObj *obj =
                    shared_.conns.byId(action.dstConnId)) {
                obj->lastUse = p.sim().now(); // dirty write
            }
            co_await cit->second.send(p, std::move(action.wire));
            co_return;
        }
    }

    // Resolve the connection object: preferred id, then address alias.
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    TcpConnObj *obj = action.dstConnId
        ? shared_.conns.byId(action.dstConnId)
        : nullptr;
    if (!obj)
        obj = shared_.conns.byAddr(action.dstAddr);
    std::uint64_t id = 0;
    if (obj) {
        id = obj->id;
        obj->lastUse = p.sim().now();
        if (cfg_.idleStrategy == IdleStrategy::PriorityQueue) {
            // §5.3: workers adjust the object's place in the shared
            // priority queue when they touch a connection.
            co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        }
    }
    shared_.conns.lock().release();

    if (!obj) {
        co_await workerOutboundConnect(p, w, std::move(action));
        co_return;
    }

    // Fast path: we own the connection's read side (and its fd).
    if (auto it = w.owned.find(id); it != w.owned.end()) {
        co_await it->second.send(p, std::move(action.wire));
        co_return;
    }

    // §5.2 fd cache.
    if (cfg_.fdCache) {
        auto it = w.fdCache.find(id);
        if (it != w.fdCache.end()) {
            ++shared_.counters.fdCacheHits;
            co_await p.cpu(cfg_.costs.fdCacheHit, ccFdReq_);
            co_await it->second.send(p, std::move(action.wire));
            co_return;
        }
    }

    // Request the descriptor from the supervisor and block for the
    // reply (§3.1).
    ++shared_.counters.fdRequests;
    co_await p.cpu(cfg_.costs.ipcRequest, ccFdReq_);
    co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
    co_await reqChan_->send(p, ReqMsg{ReqMsg::Kind::FdRequest, w.id, id,
                                      net::TcpConn{}});
    FdRespMsg resp;
    co_await w.resp->recv(p, resp);
    co_await p.cpu(cfg_.costs.ipcRecv, ccIpc_);
    double fd_factor = 1.0
        + static_cast<double>(shared_.conns.size())
            / cfg_.costs.fdTableScale;
    co_await p.cpu(static_cast<sim::SimTime>(
                       cfg_.costs.fdInstall * fd_factor),
                   ccFdReq_);
    if (!resp.ok) {
        ++shared_.counters.sendsToDeadConns;
        co_return;
    }
    co_await resp.fd.send(p, std::move(action.wire));
    if (cfg_.fdCache) {
        w.fdCache[id] = std::move(resp.fd);
    } else {
        // §5.1: without the cache the worker closes its descriptor
        // right after forwarding.
        co_await resp.fd.close(p);
    }
}

sim::Task
TcpArch::workerSendThreadMode(sim::Process &p, Worker &w,
                              SendAction action)
{
    // §6: all threads share one descriptor table. No IPC, no cache —
    // only a per-connection write lock.
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    TcpConnObj *obj = action.dstConnId
        ? shared_.conns.byId(action.dstConnId)
        : nullptr;
    if (!obj)
        obj = shared_.conns.byAddr(action.dstAddr);
    if (!obj) {
        shared_.conns.lock().release();
        co_await workerOutboundConnect(p, w, std::move(action));
        co_return;
    }
    obj->lastUse = p.sim().now();
    if (cfg_.idleStrategy == IdleStrategy::PriorityQueue)
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
    // Lock ordering: table lock -> write lock; release the table lock
    // before the (long) send.
    co_await obj->writeLock.acquire(p);
    shared_.conns.lock().release();
    co_await obj->supFd.send(p, std::move(action.wire));
    obj->writeLock.release();
}

sim::Task
TcpArch::workerOutboundConnect(sim::Process &p, Worker &w,
                               SendAction action)
{
    ++shared_.counters.outboundConnects;
    net::TcpConn conn;
    try {
        if (cfg_.transport == Transport::Tls)
            co_await host_.tlsConnect(p, action.dstAddr, conn);
        else
            co_await host_.tcpConnect(p, action.dstAddr, conn);
    } catch (const net::NetError &) {
        ++shared_.counters.sendsToDeadConns;
        co_return;
    }
    std::uint64_t id = conn.id();
    auto obj = std::make_unique<TcpConnObj>();
    obj->id = id;
    obj->peer = action.dstAddr;
    obj->ownerWorker = w.id;
    obj->lastUse = p.sim().now();
    net::TcpConn sup_copy = conn.dup();
    if (threadMode())
        obj->supFd = conn.dup();

    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connInsert, ccConnHash_);
    shared_.conns.insert(std::move(obj));
    shared_.conns.setAlias(action.dstAddr, id);
    if (cfg_.idleStrategy == IdleStrategy::PriorityQueue) {
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        shared_.supervisorPq.push(
            p.sim().now() + 2 * cfg_.idleTimeout, id);
    }
    shared_.conns.lock().release();

    // The worker owns the new connection; the supervisor receives its
    // own descriptor over IPC (as OpenSER's tcpconn_connect does).
    if (!threadMode()) {
        co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
        co_await reqChan_->send(
            p, ReqMsg{ReqMsg::Kind::RegisterConn, w.id, id,
                      std::move(sup_copy)});
    } else {
        sup_copy.closeQuiet();
    }

    co_await conn.send(p, std::move(action.wire));
    co_await workerInstallConn(p, w, NewConnMsg{id, std::move(conn)});
}

sim::Task
TcpArch::workerCloseConn(sim::Process &p, Worker &w,
                         std::uint64_t conn_id, bool dead)
{
    auto it = w.owned.find(conn_id);
    if (it == w.owned.end())
        co_return;
    co_await it->second.close(p);
    w.owned.erase(it);
    w.framers.erase(conn_id);
    auto oit = std::find(w.ownedOrder.begin(), w.ownedOrder.end(),
                         conn_id);
    if (oit != w.ownedOrder.end())
        w.ownedOrder.erase(oit);

    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    if (TcpConnObj *obj = shared_.conns.byId(conn_id)) {
        obj->returned = true;
        if (dead)
            obj->dead = true;
    }
    shared_.conns.lock().release();

    // Return the connection to the supervisor (§3.1 close protocol).
    ++shared_.counters.connsReturnedByWorkers;
    co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
    co_await reqChan_->send(p, ReqMsg{ReqMsg::Kind::ConnReturned, w.id,
                                      conn_id, net::TcpConn{}});
}

sim::Task
TcpArch::workerIdleScan(sim::Process &p, Worker &w)
{
    sim::SimTime now = p.sim().now();
    std::vector<std::uint64_t> due;
    std::vector<std::uint64_t> stale_cache;

    if (cfg_.idleStrategy == IdleStrategy::LinearScan) {
        // §5.2: every worker walks every connection it owns, under the
        // shared hash lock.
        co_await shared_.conns.lock().acquire(p);
        std::size_t visited = w.owned.size() + w.fdCache.size();
        if (visited) {
            co_await p.cpu(static_cast<sim::SimTime>(visited)
                               * cfg_.costs.idleScanPerConn,
                           ccScan_);
        }
        for (const auto &[id, fd] : w.owned) {
            TcpConnObj *obj = shared_.conns.byId(id);
            if (obj && !obj->dead
                && now >= obj->lastUse + cfg_.idleTimeout) {
                due.push_back(id);
            }
        }
        for (const auto &[id, fd] : w.fdCache) {
            if (!shared_.conns.byId(id))
                stale_cache.push_back(id);
        }
        shared_.conns.lock().release();
    } else {
        // §5.3: pop only expired entries from the local queue.
        while (!w.localPq.empty() && w.localPq.top().expireAt <= now) {
            std::uint64_t id = w.localPq.top().id;
            w.localPq.pop();
            co_await p.cpu(cfg_.costs.pqOp, ccScan_);
            if (!w.owned.count(id))
                continue;
            co_await shared_.conns.lock().acquire(p);
            co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
            TcpConnObj *obj = shared_.conns.byId(id);
            sim::SimTime expire =
                obj ? obj->lastUse + cfg_.idleTimeout : 0;
            shared_.conns.lock().release();
            if (obj && expire > now) {
                co_await p.cpu(cfg_.costs.pqOp, ccScan_);
                w.localPq.push(expire, id);
            } else {
                due.push_back(id);
            }
        }
        // The fd cache is still swept linearly, but it is small and
        // this happens without the shared lock (local data).
        for (const auto &[id, fd] : w.fdCache) {
            if (fd.endpoint() && fd.endpoint()->peerClosed())
                stale_cache.push_back(id);
        }
        if (!stale_cache.empty()) {
            co_await shared_.conns.lock().acquire(p);
            co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
            for (auto it = stale_cache.begin();
                 it != stale_cache.end();) {
                if (shared_.conns.byId(*it))
                    it = stale_cache.erase(it); // still live: keep
                else
                    ++it;
            }
            shared_.conns.lock().release();
        }
    }

    for (std::uint64_t id : due)
        co_await workerCloseConn(p, w, id, /*dead=*/false);
    for (std::uint64_t id : stale_cache) {
        auto it = w.fdCache.find(id);
        if (it != w.fdCache.end()) {
            ++shared_.counters.fdCacheInvalidations;
            co_await p.cpu(host_.net().config().tcpCloseCost,
                           ccKernClose_);
            it->second.closeQuiet();
            w.fdCache.erase(it);
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

sim::Task
TcpArch::supervisorMain(sim::Process &p)
{
    sim::SimTime next_scan = p.sim().now() + cfg_.idleScanInterval;
    std::vector<sim::Pollable *> items;
    std::vector<int> item_worker;
    while (!stop_) {
        // While shedding, the listener leaves the poll set and the
        // accept drain below is skipped: the kernel accept queue fills
        // and further SYNs are refused (backpressure at connect time).
        const bool accepts_paused =
            shared_.overload.acceptsPaused(p.sim().now());
        items.clear();
        item_worker.clear();
        if (!accepts_paused) {
            items.push_back(listener_);
            item_worker.push_back(-1);
        }
        items.push_back(&reqChan_->readable());
        item_worker.push_back(-1);
        if (cfg_.eventDrivenIpc) {
            for (std::size_t i = 0; i < pendingDispatch_.size(); ++i) {
                if (!pendingDispatch_[i].empty()) {
                    items.push_back(&workers_[i]->dispatch->writable());
                    item_worker.push_back(static_cast<int>(i));
                }
            }
        }
        sim::SimTime timeout = next_scan - p.sim().now();
        if (timeout < 0)
            timeout = 0;
        int idx = -1;
        co_await sim::poll(p, items, timeout, idx);
        if (stop_)
            break;
        co_await p.cpu(cfg_.costs.pollOverhead, ccTcpMain_);

        // Drain accepts, but never past the timer tick: OpenSER's
        // tcp_main checks tcpconn_timeout every loop iteration.
        net::TcpConn conn;
        while (!accepts_paused && p.sim().now() < next_scan
               && listener_->tryAccept(conn)) {
            co_await p.cpu(host_.net().config().tcpAcceptCost,
                           ccKernAccept_);
            co_await supervisorAccept(p, std::move(conn));
            if (stop_)
                co_return;
        }
        // Drain worker requests.
        ReqMsg req;
        while (p.sim().now() < next_scan && reqChan_->tryRecv(req)) {
            co_await p.cpu(cfg_.costs.ipcRecv, ccIpc_);
            co_await supervisorHandleRequest(p, std::move(req));
            if (stop_)
                co_return;
        }
        // Flush event-driven dispatch backlogs.
        if (cfg_.eventDrivenIpc) {
            for (std::size_t i = 0; i < pendingDispatch_.size(); ++i) {
                if (!pendingDispatch_[i].empty())
                    co_await supervisorFlushPending(
                        p, static_cast<int>(i));
            }
        }
        if (p.sim().now() >= next_scan) {
            co_await supervisorIdleScan(p);
            next_scan = p.sim().now() + cfg_.idleScanInterval;
        }
    }
}

sim::Task
TcpArch::supervisorAccept(sim::Process &p, net::TcpConn conn)
{
    std::uint64_t id = conn.id();
    auto obj = std::make_unique<TcpConnObj>();
    obj->id = id;
    obj->peer = conn.remote();
    obj->ownerWorker = rrNext_;
    obj->lastUse = p.sim().now();
    obj->supFd = conn.dup();

    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connInsert, ccConnHash_);
    shared_.conns.insert(std::move(obj));
    if (cfg_.idleStrategy == IdleStrategy::PriorityQueue) {
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        shared_.supervisorPq.push(
            p.sim().now() + 2 * cfg_.idleTimeout, id);
    }
    shared_.conns.lock().release();
    ++shared_.counters.connsAccepted;

    int target = rrNext_;
    rrNext_ = (rrNext_ + 1) % cfg_.workers;
    co_await supervisorDispatch(p, target,
                                NewConnMsg{id, std::move(conn)});
}

sim::Task
TcpArch::supervisorDispatch(sim::Process &p, int worker, NewConnMsg msg)
{
    co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
    auto &w = *workers_[static_cast<std::size_t>(worker)];
    if (cfg_.eventDrivenIpc) {
        auto &pending =
            pendingDispatch_[static_cast<std::size_t>(worker)];
        // Preserve order: back up behind any queued dispatches.
        if (!pending.empty() || w.dispatch->full())
            pending.push_back(std::move(msg));
        else
            w.dispatch->trySend(std::move(msg));
        co_return;
    }
    // §6: this send blocks when the worker's channel is full — the
    // deadlock scenario.
    co_await w.dispatch->send(p, std::move(msg));
}

sim::Task
TcpArch::supervisorFlushPending(sim::Process &p, int worker)
{
    auto &pending = pendingDispatch_[static_cast<std::size_t>(worker)];
    auto &w = *workers_[static_cast<std::size_t>(worker)];
    while (!pending.empty() && !w.dispatch->full()) {
        w.dispatch->trySend(std::move(pending.front()));
        pending.pop_front();
        co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
    }
}

sim::Task
TcpArch::supervisorHandleRequest(sim::Process &p, ReqMsg req)
{
    switch (req.kind) {
      case ReqMsg::Kind::FdRequest: {
        // dup + SCM_RIGHTS install scale with the supervisor's fd
        // table, which holds every open connection.
        double fd_factor = 1.0
            + static_cast<double>(shared_.conns.size())
                / cfg_.costs.fdTableScale;
        co_await p.cpu(static_cast<sim::SimTime>(
                           cfg_.costs.ipcHandle * fd_factor),
                       ccTcpMain_);
        FdRespMsg resp;
        resp.connId = req.connId;
        co_await shared_.conns.lock().acquire(p);
        co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
        TcpConnObj *obj = shared_.conns.byId(req.connId);
        if (obj && obj->supFd.valid() && !obj->dead) {
            resp.fd = obj->supFd.dup();
            resp.ok = true;
        }
        shared_.conns.lock().release();
        co_await p.cpu(cfg_.costs.ipcSend, ccIpc_);
        co_await workers_[static_cast<std::size_t>(req.worker)]
            ->resp->send(p, std::move(resp));
        break;
      }
      case ReqMsg::Kind::ConnReturned: {
        co_await shared_.conns.lock().acquire(p);
        co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
        TcpConnObj *obj = shared_.conns.byId(req.connId);
        if (obj && obj->dead
            && cfg_.idleStrategy == IdleStrategy::PriorityQueue) {
            // Dead connections become destroyable immediately.
            shared_.supervisorPq.push(p.sim().now(), req.connId);
        }
        shared_.conns.lock().release();
        break;
      }
      case ReqMsg::Kind::RegisterConn: {
        co_await shared_.conns.lock().acquire(p);
        co_await p.cpu(cfg_.costs.connLookup + cfg_.costs.fdInstall,
                       ccConnHash_);
        if (TcpConnObj *obj = shared_.conns.byId(req.connId))
            obj->supFd = std::move(req.fd);
        shared_.conns.lock().release();
        break;
      }
    }
}

void
TcpArch::destroyLocked(TcpConnObj &obj)
{
    if (threadMode() && !obj.writeLock.tryAcquire())
        return; // a sender holds the fd; retry on a later scan
    std::uint64_t id = obj.id;
    obj.supFd.closeQuiet();
    shared_.conns.erase(id); // frees the object
    ++shared_.counters.connsDestroyed;
}

sim::Task
TcpArch::supervisorIdleScan(sim::Process &p)
{
    sim::SimTime now = p.sim().now();
    ++shared_.counters.idleScans;
    const sim::SimTime destroy_after = 2 * cfg_.idleTimeout;

    if (cfg_.idleStrategy == IdleStrategy::LinearScan) {
        // §5.2: walk *every* connection object while holding the hash
        // lock. Workers needing the lock spin and sched_yield.
        co_await shared_.conns.lock().acquire(p);
        std::size_t n = shared_.conns.size();
        shared_.counters.idleScanVisited += n;
        if (n) {
            co_await p.cpu(static_cast<sim::SimTime>(n)
                               * cfg_.costs.idleScanPerConn,
                           ccScan_);
        }
        std::vector<std::uint64_t> doomed;
        shared_.conns.forEach([&](TcpConnObj &obj) {
            bool due = (obj.dead && obj.returned)
                || (obj.returned
                    && now >= obj.lastUse + destroy_after);
            if (due)
                doomed.push_back(obj.id);
        });
        if (!doomed.empty()) {
            co_await p.cpu(static_cast<sim::SimTime>(doomed.size())
                               * (cfg_.costs.connErase
                                  + host_.net().config().tcpCloseCost),
                           ccScan_);
            for (std::uint64_t id : doomed) {
                if (TcpConnObj *obj = shared_.conns.byId(id))
                    destroyLocked(*obj);
            }
        }
        shared_.conns.lock().release();
        co_return;
    }

    // §5.3: pop only entries whose timeout expired; reinsert those
    // whose timestamp moved (workers refreshed them).
    co_await shared_.conns.lock().acquire(p);
    auto &pq = shared_.supervisorPq;
    std::size_t visited = 0;
    while (!pq.empty() && pq.top().expireAt <= now) {
        std::uint64_t id = pq.top().id;
        pq.pop();
        ++visited;
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        TcpConnObj *obj = shared_.conns.byId(id);
        if (!obj)
            continue;
        bool due = (obj->dead && obj->returned)
            || (obj->returned && now >= obj->lastUse + destroy_after);
        if (due) {
            co_await p.cpu(cfg_.costs.connErase
                               + host_.net().config().tcpCloseCost,
                           ccScan_);
            destroyLocked(*obj);
            continue;
        }
        sim::SimTime expire =
            std::max(obj->lastUse + destroy_after,
                     now + cfg_.idleScanInterval);
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        pq.push(expire, id);
    }
    shared_.counters.idleScanVisited += visited;
    shared_.conns.lock().release();
}

sim::Task
TcpArch::timerMain(sim::Process &p)
{
    while (!stop_) {
        co_await p.sleepFor(cfg_.timerTick);
        if (stop_)
            break;
        co_await WorkerLoop::reclaimTxns(p, shared_, cfg_);
    }
}

} // namespace siprox::core

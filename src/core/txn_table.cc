#include "core/txn_table.hh"

#include "sip/timers.hh"

namespace siprox::core {

std::size_t
RetransList::collectDue(SimTime now, std::vector<Due> &out,
                        std::size_t &timeouts)
{
    std::vector<TimedOut> expired;
    std::size_t visited = collectDue(now, out, expired);
    timeouts += expired.size();
    return visited;
}

std::size_t
RetransList::collectDue(SimTime now, std::vector<Due> &out,
                        std::vector<TimedOut> &timed_out)
{
    std::size_t visited = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        ++visited;
        if (it->cancelled) {
            it = entries_.erase(it);
            continue;
        }
        if (now >= it->deadline) {
            timed_out.push_back(
                TimedOut{it->key, std::move(it->wire), it->invite});
            index_.erase(it->key);
            it = entries_.erase(it);
            continue;
        }
        if (now >= it->nextAt) {
            out.push_back(Due{it->wire, it->dst});
            ++it->sent;
            it->interval *= 2;
            if (!it->invite && it->interval > sip::timers::kT2)
                it->interval = sip::timers::kT2;
            it->nextAt = now + it->interval;
        }
        ++it;
    }
    return visited;
}

} // namespace siprox::core

#include "core/hopctl.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "core/shared.hh"

namespace siprox::core {

const char *
feedbackSchemeName(FeedbackScheme s)
{
    switch (s) {
      case FeedbackScheme::None:
        return "none";
      case FeedbackScheme::OnOff:
        return "onoff";
      case FeedbackScheme::Rate:
        return "rate";
      case FeedbackScheme::Window:
        return "window";
    }
    return "?";
}

std::size_t
renderHopFeedback(const HopFeedback &fb, char *buf, std::size_t cap)
{
    int n = 0;
    switch (fb.scheme) {
      case FeedbackScheme::None:
        return 0;
      case FeedbackScheme::OnOff:
        n = std::snprintf(buf, cap, "onoff;on=%d", fb.on ? 1 : 0);
        break;
      case FeedbackScheme::Rate:
        n = std::snprintf(buf, cap, "rate;r=%.2f", fb.rate);
        break;
      case FeedbackScheme::Window:
        n = std::snprintf(buf, cap, "win;w=%d", fb.window);
        break;
    }
    if (n <= 0 || static_cast<std::size_t>(n) >= cap)
        return 0;
    return static_cast<std::size_t>(n);
}

bool
parseHopFeedback(std::string_view text, HopFeedback *out)
{
    auto semi = text.find(';');
    if (semi == std::string_view::npos)
        return false;
    std::string_view kind = text.substr(0, semi);
    std::string_view param = text.substr(semi + 1);
    auto eq = param.find('=');
    if (eq == std::string_view::npos)
        return false;
    std::string_view key = param.substr(0, eq);
    std::string_view value = param.substr(eq + 1);
    if (kind == "onoff" && key == "on") {
        out->scheme = FeedbackScheme::OnOff;
        out->on = value != "0";
        return value == "0" || value == "1";
    }
    if (kind == "rate" && key == "r") {
        out->scheme = FeedbackScheme::Rate;
        // Header values render with %.2f; parse integer and fraction
        // parts separately so only integral from_chars is needed.
        std::uint64_t whole = 0;
        auto dot = value.find('.');
        std::string_view ip = value.substr(0, dot);
        auto [p1, e1] = std::from_chars(ip.data(), ip.data() + ip.size(),
                                        whole);
        if (e1 != std::errc() || p1 != ip.data() + ip.size())
            return false;
        double frac = 0;
        if (dot != std::string_view::npos) {
            std::string_view fp = value.substr(dot + 1);
            std::uint32_t digits = 0;
            auto [p2, e2] = std::from_chars(fp.data(),
                                            fp.data() + fp.size(), digits);
            if (e2 != std::errc() || p2 != fp.data() + fp.size())
                return false;
            double scale = 1;
            for (std::size_t i = 0; i < fp.size(); ++i)
                scale *= 10;
            frac = static_cast<double>(digits) / scale;
        }
        out->rate = static_cast<double>(whole) + frac;
        return true;
    }
    if (kind == "win" && key == "w") {
        out->scheme = FeedbackScheme::Window;
        int w = 0;
        auto [p, e] = std::from_chars(value.data(),
                                      value.data() + value.size(), w);
        if (e != std::errc() || p != value.data() + value.size()
            || w < 0)
            return false;
        out->window = w;
        return true;
    }
    return false;
}

void
HopThrottleTable::configure(const HopControlConfig &cfg,
                            ProxyCounters *counters)
{
    cfg_ = cfg;
    counters_ = counters;
    dests_.clear();
}

HopThrottleTable::PerDest *
HopThrottleTable::find(net::Addr dst)
{
    for (auto &d : dests_) {
        if (d.dst == dst)
            return &d;
    }
    PerDest d;
    d.dst = dst;
    // Until the first advertisement arrives, the configured initial
    // grant applies — a cold chain must be able to carry the very
    // first INVITE (whose response brings the first real feedback).
    d.fb.scheme = cfg_.scheme;
    d.fb.rate = cfg_.initialRate;
    d.fb.window = cfg_.initialWindow;
    d.fb.on = true;
    d.tokens = cfg_.burstTokens;
    dests_.push_back(d);
    return &dests_.back();
}

const HopThrottleTable::PerDest *
HopThrottleTable::findExisting(net::Addr dst) const
{
    for (const auto &d : dests_) {
        if (d.dst == dst)
            return &d;
    }
    return nullptr;
}

void
HopThrottleTable::applyFeedback(net::Addr from, const HopFeedback &fb,
                                sim::SimTime now)
{
    if (!enabled())
        return;
    PerDest *d = find(from);
    d->fb = fb;
    d->fbAt = now;
    d->sawFeedback = true;
    ++counters_->hopFeedbackApplied;
}

HopThrottleTable::Gate
HopThrottleTable::tryAdmit(net::Addr dst, sim::SimTime now)
{
    if (!enabled())
        return Gate::Admit;
    PerDest *d = find(dst);
    if (d->sawFeedback && cfg_.grantTtl > 0
        && now - d->fbAt > cfg_.grantTtl) {
        // Stale grant: the response stream that refreshes it has dried
        // up. Fail open rather than throttle on dead information.
        ++counters_->hopGrantExpired;
        d->sawFeedback = false;
        d->fb.rate = cfg_.initialRate;
        d->fb.window = cfg_.initialWindow;
        d->fb.on = true;
    }
    switch (cfg_.scheme) {
      case FeedbackScheme::None:
        return Gate::Admit;
      case FeedbackScheme::OnOff:
        return d->fb.on ? Gate::Admit : Gate::Busy;
      case FeedbackScheme::Rate: {
        if (d->lastRefill == 0) {
            d->lastRefill = now;
        } else {
            d->tokens = std::min(
                cfg_.burstTokens,
                d->tokens
                    + d->fb.rate * sim::toSecs(now - d->lastRefill));
            d->lastRefill = now;
        }
        if (d->tokens >= 1.0) {
            d->tokens -= 1.0;
            return Gate::Admit;
        }
        return Gate::Busy;
      }
      case FeedbackScheme::Window:
        if (d->pending < d->fb.window) {
            ++d->pending;
            return Gate::Admit;
        }
        return Gate::Busy;
    }
    return Gate::Admit;
}

void
HopThrottleTable::noteCompleted(net::Addr dst)
{
    if (cfg_.scheme != FeedbackScheme::Window)
        return;
    PerDest *d = find(dst);
    if (d->pending > 0)
        --d->pending;
}

void
HopThrottleTable::noteAborted(net::Addr dst)
{
    noteCompleted(dst);
}

bool
HopThrottleTable::restricted(net::Addr dst, sim::SimTime now) const
{
    if (cfg_.scheme != FeedbackScheme::OnOff)
        return false;
    const PerDest *d = findExisting(dst);
    if (!d || !d->sawFeedback)
        return false;
    if (cfg_.grantTtl > 0 && now - d->fbAt > cfg_.grantTtl)
        return false; // stale: fail open
    return !d->fb.on;
}

double
HopThrottleTable::grantedRate(net::Addr dst) const
{
    const PerDest *d = findExisting(dst);
    return d ? d->fb.rate : cfg_.initialRate;
}

int
HopThrottleTable::grantedWindow(net::Addr dst) const
{
    const PerDest *d = findExisting(dst);
    return d ? d->fb.window : cfg_.initialWindow;
}

int
HopThrottleTable::pendingToward(net::Addr dst) const
{
    const PerDest *d = findExisting(dst);
    return d ? d->pending : 0;
}

} // namespace siprox::core

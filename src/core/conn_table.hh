/**
 * @file
 * Shared-memory TCP connection table (§3.1): application-level
 * connection objects in a hash table behind the hot "tcpconn" spin
 * lock, address aliases for routing, and the timeout-ordered priority
 * queue of the §5.3 fix.
 */

#ifndef SIPROX_CORE_CONN_TABLE_HH
#define SIPROX_CORE_CONN_TABLE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/addr.hh"
#include "net/tcp.hh"
#include "sim/sync.hh"
#include "sim/time.hh"

namespace siprox::core {

using sim::SimTime;

/** Application-level state for one TCP connection. */
struct TcpConnObj
{
    std::uint64_t id = 0;
    /** The supervisor's own descriptor for the socket (it keeps a copy
     *  of every open socket so it can answer fd requests). In the
     *  multithreaded architecture this doubles as the shared fd. */
    net::TcpConn supFd;
    net::Addr peer;
    int ownerWorker = -1;
    SimTime lastUse = 0;
    /** Worker closed and returned its descriptor (idle protocol). */
    bool returned = false;
    /** EOF or error seen; destroy promptly. */
    bool dead = false;
    /** Alias addresses (Via/Contact) pointing at this connection. */
    std::vector<net::Addr> aliases;
    /** §6 thread mode: serializes writers sharing the fd. */
    sim::SpinLock writeLock{"tcpconn_write"};
};

/**
 * The shared connection hash table. All methods require lock() held;
 * callers charge CPU per the cost model.
 */
class ConnTable
{
  public:
    sim::SpinLock &lock() { return lock_; }

    TcpConnObj *
    insert(std::unique_ptr<TcpConnObj> obj)
    {
        TcpConnObj *raw = obj.get();
        byId_[raw->id] = std::move(obj);
        return raw;
    }

    TcpConnObj *
    byId(std::uint64_t id)
    {
        auto it = byId_.find(id);
        return it == byId_.end() ? nullptr : it->second.get();
    }

    /** Resolve an alias (Via/Contact address) to a connection. */
    TcpConnObj *
    byAddr(net::Addr addr)
    {
        auto it = byAddr_.find(addr);
        if (it == byAddr_.end())
            return nullptr;
        return byId(it->second);
    }

    /** Point @p addr at connection @p id (refreshes on reconnect). */
    void
    setAlias(net::Addr addr, std::uint64_t id)
    {
        TcpConnObj *obj = byId(id);
        if (!obj)
            return;
        auto it = byAddr_.find(addr);
        if (it != byAddr_.end() && it->second == id)
            return;
        byAddr_[addr] = id;
        obj->aliases.push_back(addr);
    }

    /** Remove a connection and any aliases still pointing at it. */
    void
    erase(std::uint64_t id)
    {
        auto it = byId_.find(id);
        if (it == byId_.end())
            return;
        for (const auto &alias : it->second->aliases) {
            auto ait = byAddr_.find(alias);
            if (ait != byAddr_.end() && ait->second == id)
                byAddr_.erase(ait);
        }
        byId_.erase(it);
    }

    std::size_t size() const { return byId_.size(); }

    /** Visit every connection object (the §5.2 linear scan). */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (auto &[id, obj] : byId_)
            fn(*obj);
    }

  private:
    sim::SpinLock lock_{"tcpconn_hash"};
    std::unordered_map<std::uint64_t, std::unique_ptr<TcpConnObj>> byId_;
    std::unordered_map<net::Addr, std::uint64_t, net::AddrHash> byAddr_;
};

/**
 * Timeout-ordered queue of connection ids (§5.3). Entries are lazily
 * revalidated against the connection object at pop time; a stale head
 * is reinserted with its fresh expiry rather than updated in place.
 */
class IdlePq
{
  public:
    struct Item
    {
        SimTime expireAt;
        std::uint64_t id;

        bool
        operator>(const Item &o) const
        {
            return expireAt > o.expireAt;
        }
    };

    void push(SimTime expire_at, std::uint64_t id)
    {
        heap_.push(Item{expire_at, id});
    }

    bool empty() const { return heap_.empty(); }

    const Item &top() const { return heap_.top(); }

    void pop() { heap_.pop(); }

    std::size_t size() const { return heap_.size(); }

  private:
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_CONN_TABLE_HH

#include "core/location.hh"

#include <algorithm>

namespace siprox::core {

std::uint64_t
HashRing::hash(std::string_view s)
{
    // FNV-1a 64-bit: deterministic across platforms (the ring feeds
    // digest-pinned counters, so std::hash's unspecified algorithm is
    // not an option).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    // Raw FNV-1a clusters badly on the short keys this ring sees
    // ("c17", "inst3#v42"): without avalanching, whole instances end
    // up owning nothing. Finish with the murmur3 fmix64 steps.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

void
HashRing::build(int instances, int vnodes)
{
    ring_.clear();
    if (instances <= 0 || vnodes <= 0)
        return;
    ring_.reserve(static_cast<std::size_t>(instances)
                  * static_cast<std::size_t>(vnodes));
    std::string label;
    for (int i = 0; i < instances; ++i) {
        for (int v = 0; v < vnodes; ++v) {
            label = "inst" + std::to_string(i) + "#v"
                + std::to_string(v);
            ring_.emplace_back(hash(label), i);
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

int
HashRing::owner(std::string_view key) const
{
    if (ring_.empty())
        return -1;
    const std::uint64_t h = hash(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &point, std::uint64_t v) {
            return point.first < v;
        });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around
    return it->second;
}

void
LocationService::configure(const ClusterMemberConfig &cfg)
{
    cfg_ = cfg;
    ring_.build(cfg.instances, cfg.vnodes);
}

std::string
renderReplication(const std::string &user, const std::string &contact)
{
    std::string out;
    out.reserve(5 + user.size() + 1 + contact.size());
    out += "REPL ";
    out += user;
    out += ' ';
    out += contact;
    return out;
}

bool
parseReplication(std::string_view wire, std::string &user,
                 std::string &contact)
{
    constexpr std::string_view kTag = "REPL ";
    if (wire.substr(0, kTag.size()) != kTag)
        return false;
    wire.remove_prefix(kTag.size());
    std::size_t sp = wire.find(' ');
    if (sp == std::string_view::npos || sp == 0
        || sp + 1 >= wire.size())
        return false;
    user.assign(wire.substr(0, sp));
    contact.assign(wire.substr(sp + 1));
    return true;
}

} // namespace siprox::core
